"""Pretrain every zoo model and cache the weights (idempotent).

Run from the repository root:  python scripts/pretrain_zoo.py
"""
import time

from repro.zoo import ALL_MODELS, pretrained

ORDER = ["SST-2", "CoLA", "MRPC", "MNLI-mm",           # fast text models first
         "VGG16", "MobileNet_v2", "EfficientNet_v2", "ResNet50",
         "MobileNet_v3", "EfficientNet_b0", "ResNet18", "ResNet101"]

if __name__ == "__main__":
    for name in ORDER:
        assert name in ALL_MODELS
        t0 = time.time()
        _, score = pretrained(name)
        print(f"[{time.time() - t0:6.0f}s] {name:16s} fp32 score {score:.2f}", flush=True)
    print("zoo complete", flush=True)
