#!/usr/bin/env sh
# Repo-wide CI gate: static analysis + tier-1 tests.
#
#   scripts/check.sh           # lint + netlist verify + tier-1 pytest
#   scripts/check.sh --slow    # additionally run the slow sweeps
#   scripts/check.sh --chaos   # only the fault-injection recovery suite
#   scripts/check.sh --serve   # only the inference-service suite
#   scripts/check.sh --grid    # only the worker-pool fabric smoke
#   scripts/check.sh --shard   # only the sharded-serving suite
#   scripts/check.sh --net     # only the network-gateway suite
#   scripts/check.sh --sanitize  # serve/shard/grid/net under REPRO_SANITIZE=1
#
# Exits non-zero on the first failing stage.
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

if [ "${1:-}" = "--chaos" ]; then
    echo "== chaos (fault-injection) suite =="
    python -m pytest -x -q -m chaos
    echo "check.sh: chaos suite passed"
    exit 0
fi

if [ "${1:-}" = "--grid" ]; then
    echo "== grid (worker-pool fabric) smoke =="
    python -m pytest -x -q -m grid
    echo "check.sh: grid smoke passed"
    exit 0
fi

if [ "${1:-}" = "--serve" ]; then
    echo "== serve (inference service) suite =="
    python -m pytest -x -q -m serve
    echo "check.sh: serve suite passed"
    exit 0
fi

if [ "${1:-}" = "--shard" ]; then
    echo "== shard (multi-process serving) suite =="
    python -m pytest -x -q -m shard
    echo "check.sh: shard suite passed"
    exit 0
fi

if [ "${1:-}" = "--net" ]; then
    echo "== net (gateway) suite =="
    python -m pytest -x -q -m net
    echo "check.sh: net suite passed"
    exit 0
fi

if [ "${1:-}" = "--sanitize" ]; then
    echo "== serve/shard/grid/net suites under the runtime sanitizer =="
    REPRO_SANITIZE=1 python -m pytest -x -q -m "serve or shard or grid or sanitize or net"
    echo "check.sh: sanitize suite passed"
    exit 0
fi

echo "== repro analyze lint =="
python -m repro.cli analyze lint

echo "== repro analyze netlist --all =="
python -m repro.cli analyze netlist --all

echo "== repro analyze concurrency =="
python -m repro.cli analyze concurrency

echo "== tier-1 pytest =="
python -m pytest -x -q

if [ "${1:-}" = "--slow" ]; then
    echo "== slow sweeps =="
    python -m pytest -x -q -m slow
fi

echo "check.sh: all gates passed"
