"""Render EXPERIMENTS.md from the experiment artifacts.

Run after the experiment drivers (and the Table 2 grid) have produced
their JSON artifacts:

    python -m repro.cli experiments table1 fig2 fig4 fig6 fig7 table3 headline
    python -m repro.cli experiments table2
    python scripts/make_experiments_md.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis import depth_report
from repro.experiments import fig2, fig4, fig6, fig7, headline, table1, table2, table3
from repro.experiments.common import load_artifact
from repro.experiments.table2 import MODEL_ORDER, PAPER_TABLE2

OUT = Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"


def table2_section() -> str:
    art = load_artifact("table2")
    if not art or "grid" not in art:
        return "*(Table 2 grid not yet generated — run " \
               "`python -m repro.cli experiments table2`.)*\n"
    grid = art["grid"]
    formats = ["FP32", "INT8", "FP(8,2)", "FP(8,3)", "FP(8,4)", "FP(8,5)",
               "Posit(8,0)", "Posit(8,1)", "Posit(8,2)", "Posit(8,3)",
               "MERSIT(8,2)", "MERSIT(8,3)"]
    lines = ["| Model | " + " | ".join(formats) + " |",
             "|" + "---|" * (len(formats) + 1)]
    for name in MODEL_ORDER:
        if name not in grid:
            continue
        cells = []
        for f in formats:
            got = grid[name].get(f)
            paper = PAPER_TABLE2[name][f]
            cells.append(f"{got:.1f} _(p {paper:.1f})_" if got is not None else "—")
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    lines.append("")
    # shape checks
    checks = []
    def cell(m, f):
        return grid.get(m, {}).get(f)
    if cell("MobileNet_v3", "Posit(8,0)") is not None:
        fragile = ["MobileNet_v3", "EfficientNet_b0", "EfficientNet_v2"]
        for f in ("INT8", "Posit(8,0)", "FP(8,2)"):
            drops = [cell(m, "FP32") - cell(m, f) for m in fragile
                     if cell(m, f) is not None]
            vdrop = cell("VGG16", "FP32") - cell("VGG16", f)
            if drops:
                checks.append(
                    f"* `{f}` mean drop on the fragile trio: "
                    f"{sum(drops)/len(drops):+.2f} vs {vdrop:+.2f} on VGG16.")
        gaps = [abs(cell(m, "MERSIT(8,2)") - cell(m, "Posit(8,1)"))
                for m in MODEL_ORDER
                if cell(m, "MERSIT(8,2)") is not None and cell(m, "Posit(8,1)") is not None]
        if gaps:
            checks.append(f"* max |MERSIT(8,2) − Posit(8,1)| across rows: "
                          f"{max(gaps):.2f} points (the paper's core accuracy claim).")
    return "\n".join(lines + checks) + "\n"


def frontier_section() -> str:
    art = load_artifact("frontier")
    if not art or "models" not in art:
        return "*(frontier artifact missing — run " \
               "`python -m repro.cli experiments frontier`.)*\n"
    parts = [
        "Not a paper table: the mixed-precision extension "
        "(`repro.quant.mixed`).  Per layer,\nformats are allocated by a "
        "knapsack over sensitivity x gate-level MAC cost; points\nare "
        "DFQ-bias-corrected accuracy vs MAC-weighted mean area x power "
        "(10^-3 um^2 uW\nper MAC, so a uniform point costs exactly its "
        "format's unit cost).  `*` marks the\nPareto set.\n"]
    for name, s in art["models"].items():
        pareto = {(p["kind"], p["label"]) for p in s.get("pareto", [])}
        fp32 = s.get("fp32")
        title = f"**{name}**" + (f" (FP32 {fp32:.2f})" if fp32 else "")
        parts.append(title + "\n")
        parts.append("| point | cost | accuracy | vs FP32 |\n|---|---|---|---|")
        for p in s.get("points", []):
            tag = "\\*" if (p["kind"], p["label"]) in pareto else ""
            delta = f"{p['acc'] - fp32:+.2f}" if fp32 else "—"
            parts.append(f"| {p['kind']}:{p['label']}{tag} | {p['cost']:.2f} "
                         f"| {p['acc']:.2f} | {delta} |")
        parts.append("")
        dom = s.get("dominance")
        if dom is None:
            parts.append("* dominance: pending (uniform or mixed points "
                         "missing).")
        elif dom.get("dominant") is None:
            parts.append("* dominance: no mixed point strictly beats every "
                         "uniform anchor.")
        else:
            parts.append(
                f"* dominance: **mixed:{dom['dominant']}** at accuracy "
                f"{dom['acc']:.2f} / cost {dom['cost']:.2f} strictly beats "
                f"every uniform anchor (best uniform accuracy "
                f"{dom['uniform_best_acc']:.2f}, cheapest uniform cost "
                f"{dom['uniform_min_cost']:.2f}).")
        parts.append("")
    return "\n".join(parts)


def main() -> None:
    t1 = table1.run()
    f2 = fig2.run()
    f4 = fig4.run()
    f6_art = load_artifact("fig6")
    f7_art = load_artifact("fig7")
    t3_art = load_artifact("table3")
    hl_art = load_artifact("headline")

    parts = []
    parts.append("""# EXPERIMENTS — paper vs measured

Every table and figure of the paper, regenerated by this repository.
Absolute values differ where the substrate differs (synthetic tasks,
miniaturised models, NanGate45-class cells instead of a commercial 45 nm
library); the reproduction targets are orderings and ratios.  Regenerate
any artefact with `python -m repro.cli experiments <id>` or the
corresponding `benchmarks/bench_*.py`.
""")

    parts.append("## Table 1 — MERSIT(8,2) representation\n")
    parts.append(f"**Bit-exact match: {t1['matches_paper']}** "
                 f"({t1['row_count']} rows, zero mismatches). "
                 "See `repro.formats.MersitFormat.decode_table`.\n")

    parts.append("## Fig. 2 table — MAC widths\n")
    parts.append(f"**Exact match: {f2['all_match']}** — dynamic ranges, P, M and "
                 "W (33/45/35) all equal the paper's values.\n")

    parts.append("## Fig. 4 — range and precision\n")
    c = f4["claims"]
    parts.append(
        f"Profiles regenerated for all nine formats. Section 3.2 claim "
        f"(MERSIT(8,2) holds 4-bit precision over a wider band than "
        f"Posit(8,1)): **{c['mersit_band_wider']}** "
        f"(2^{c['mersit82_4bit_band'][0]}..2^{c['mersit82_4bit_band'][1]} vs "
        f"2^{c['posit81_4bit_band'][0]}..2^{c['posit81_4bit_band'][1]}). "
        f"Section 4.3 fraction-bearing bands: MERSIT "
        f"2^{c['mersit82_fraction_band'][0]}..2^{c['mersit82_fraction_band'][1]}, "
        f"Posit 2^{c['posit81_fraction_band'][0]}..2^{c['posit81_fraction_band'][1]} "
        f"(paper: 2^-6..2^5 vs 2^-8..2^7).\n")

    parts.append("## Table 2 — PTQ accuracy (measured, paper value in parentheses)\n")
    parts.append(table2_section())

    parts.append("## Fig. 6 — RMSE of quantized tensors\n")
    if f6_art:
        rows = []
        for m, by_fmt in f6_art["grid"].items():
            for f, v in by_fmt.items():
                rows.append(f"| {m} | {f} | {v['weight_rmse']:.4f} | "
                            f"{v['activation_rmse']:.4f} |")
        parts.append("| Model | Format | weight rel-RMSE | act rel-RMSE |\n"
                     "|---|---|---|---|\n" + "\n".join(rows) + "\n")
        for m, chk in f6_art["checks"].items():
            parts.append(f"* {m}: MERSIT < FP(8,4): **{chk['mersit_leq_fp8']}** "
                         f"(paper: true); MERSIT/Posit ratio "
                         f"{chk['mersit_vs_posit_ratio']:.2f} (paper: ≈1 or below).")
        parts.append("")
    else:
        parts.append("*(fig6 artifact missing)*\n")

    parts.append("## Fig. 7 — MAC area and power\n")
    if f7_art:
        parts.append("| Format | area μm² | power μW | logic levels | paper W |"
                     "\n|---|---|---|---|---|")
        for n, r in f7_art["rows"].items():
            parts.append(f"| {n} | {r['area_total']:.0f} | "
                         f"{r['power_total']:.1f} | {r.get('logic_depth', '—')} | "
                         f"{r['paper_w']} |")
        parts.append("")
        for k, v in f7_art["headlines"].items():
            parts.append(f"* {k}: **{v:.1f}%** (paper {f7_art['paper'][k]:.1f}%)")
        parts.append("")
    else:
        parts.append("*(fig7 artifact missing)*\n")

    parts.append("## Logic depth — levelized critical path (gate levels)\n")
    parts.append(
        "Regenerated live by the structural verifier "
        "(`python -m repro.cli analyze netlist --all`); depth in gate "
        "levels is the library-independent companion to the synthesis "
        "numbers above. The paper's §4.1 shallow-decoder claim shows up "
        "directly: grouped MERSIT decoding needs no leading-run detector.\n")
    rows = depth_report()
    parts.append("| Variant | logic levels | gates | critical path ns |\n"
                 "|---|---|---|---|")
    for r in rows:
        parts.append(f"| {r.variant} | {r.logic_depth} | {r.gate_count} | "
                     f"{r.critical_path_ns:.2f} |")
    parts.append("")
    by_name = {r.variant: r for r in rows}
    mersit = by_name["decoder:MERSIT(8,2)"].logic_depth
    posit = by_name["decoder:Posit(8,1)"].logic_depth
    parts.append(f"* decoder depth MERSIT(8,2) vs Posit(8,1): **{mersit} vs "
                 f"{posit} levels** ({100 * (posit - mersit) / posit:.0f}% "
                 f"shallower; pinned in `tests/test_analysis_gate.py`).\n")

    parts.append("## Table 3 — multiplier breakdown\n")
    if t3_art:
        parts.append("| Component | FP(8,4) | Posit(8,1) | MERSIT(8,2) | paper |\n"
                     "|---|---|---|---|---|")
        paper = table3.PAPER_TABLE3
        for kind in ("area", "power"):
            for comp in ("decoder", "exp_adder", "frac_multiplier"):
                vals = [t3_art["rows"][f][kind][comp]
                        for f in ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)")]
                pvals = [paper[f][kind][comp]
                         for f in ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)")]
                parts.append(f"| {kind} {comp} | {vals[0]:.1f} | {vals[1]:.1f} | "
                             f"{vals[2]:.1f} | {pvals[0]}/{pvals[1]}/{pvals[2]} |")
        parts.append("")
        parts.append(f"* MERSIT decoder area saving vs Posit: "
                     f"**{t3_art['decoder_area_saving_vs_posit_pct']:.1f}%** "
                     f"(paper 59.2%).\n")
    else:
        parts.append("*(table3 artifact missing)*\n")

    parts.append("## Headline claims\n")
    if hl_art:
        parts.append("| Claim | measured | paper |\n|---|---|---|")
        for k, v in hl_art["claims"].items():
            parts.append(f"| {k} | {v['measured']:.1f} | {v['paper']} |")
        parts.append("")

    parts.append("## Engine delta — fake-quant vs true-quantized accuracy\n")
    ed_art = load_artifact("engine_delta")
    if ed_art:
        parts.append(
            "Not a paper table: a reproduction-integrity check. The Table 2 "
            "grid is\nmeasured with fake-quant (float accumulation, no output "
            "rounding); the\nhardware re-encodes every MAC output. "
            "`engine_delta` scores "
            f"{ed_art['model']} under\nboth paths (`mode=\"engine\"` runs the "
            "bit-true Kulisch engine):\n")
        parts.append("| Format | fakequant | engine | delta |\n|---|---|---|---|")
        for f, r in ed_art["rows"].items():
            parts.append(f"| {f} | {r['fakequant']:.2f} | {r['engine']:.2f} | "
                         f"{r['delta']:.2f} |")
        parts.append("")
        parts.append(
            "Zero label flips: the fake-quant estimate transfers to the\n"
            "true datapath, so Table 2 comparisons measure the format, not "
            "the\nestimator.\n")
    else:
        parts.append("*(engine_delta artifact missing)*\n")

    parts.append("## Frontier — mixed-precision accuracy vs hardware cost\n")
    parts.append(frontier_section())

    parts.append("""## Known deviations

* **Absolute PTQ scores** — the zoo trains miniaturised analogues from
  scratch on procedural tasks, so FP32 baselines sit in the high 80s/low
  90s instead of the paper's exact values; deltas, orderings and failure
  patterns are the comparison targets.
* **The full-scale collapses do not reproduce in miniature** — the paper's
  most dramatic Table 2 cells (INT8 -> 25-50 on EfficientNets,
  FP(8,2)/Posit(8,0) -> ~0 on depthwise/SE models and GLUE) rely on the
  extreme activation-outlier channels of production-scale networks
  (max/median ratios in the hundreds).  Our miniaturised analogues show the
  same *mechanism* at measurable but milder strength (`bench_activation_stats`:
  depthwise/SE families reach mean max/median ~19-24 vs ~6 for VGG), which
  translates into consistent but small narrow-format penalties rather than
  collapse.  The precision-side degradations (FP(8,5)/Posit(8,3), 2-bit
  fractions) reproduce clearly, as do all MERSIT-vs-Posit equivalences.
* **No strict mixed-over-uniform dominance on this zoo** — the frontier's
  dominance verdict asks for a mixed point with *better* accuracy than every
  uniform anchor at lower-or-equal cost.  Because MERSIT(8,2)/Posit(8,1)
  uniform PTQ is already at FP32 level here (the paper's own headline
  claim), there is no accuracy headroom for a mixed assignment to win
  strictly; seed-averaged anchors even sit a noise-width *above* FP32.  The
  frontier instead shows the cost side: mixed points hold FP32-level
  accuracy at ~35-45 % lower area x power than the cheapest uniform anchor,
  and they dominate the anchors in the weak (<=, >=) Pareto sense.
* **GLUE rows are uniformly robust** — MiniBERT (2 layers, dim 64, FP32
  LayerNorm after every sub-block) additionally lacks BERT-base's
  quantization-fragile outlier channels; the vision rows carry the format
  contrast.
* **FP8 decoder is leaner than the paper's** — our FP(8,4) decoder netlist
  comes out smaller than the MERSIT one, unlike Table 3 (434 vs 338 μm²);
  their synthesis flow evidently spends more on subnormal/bias handling.
  Consequently the measured "MERSIT multiplier ≈ FP8 multiplier area"
  becomes "MERSIT multiplier ≈ 1.4× FP8" here, while every Posit-relative
  ratio and all power orderings reproduce.
* **Absolute μm²/μW** — NanGate45-class open cells vs a commercial 45 nm
  library; ratios are library-independent and are what we compare.
* **Critical path** (§4.1 side claim) reproduces: MERSIT decoder ~0.85 ns
  vs Posit ~1.55 ns in zero-load static timing (23 vs 42 gate levels).
""")

    OUT.write_text("\n".join(parts))
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
