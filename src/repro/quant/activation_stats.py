"""Activation-distribution statistics across a model's quantized layers.

The paper's Table 2 ordering is driven by activation statistics: depthwise
and squeeze-excite architectures produce heavy-tailed activations whose
max-calibrated quantization crushes typical values.  This module measures
exactly that — per-layer max/median ratio, kurtosis, and the effective
number of INT8 levels the median value receives — making the mechanism
quantifiable rather than anecdotal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn.module import Module
from .ptq import quantized_layers

__all__ = ["ActivationStats", "collect_activation_stats", "summarize_stats"]


@dataclass(frozen=True)
class ActivationStats:
    """Distribution statistics of one layer's input activations."""

    layer: str
    abs_max: float
    abs_median: float
    kurtosis: float

    @property
    def range_ratio(self) -> float:
        """max/median of |x|: how far the tail stretches past typical values."""
        if self.abs_median == 0.0:  # lint: allow[float-equality] exact-zero median guard
            return float("inf")
        return self.abs_max / self.abs_median

    @property
    def median_int8_levels(self) -> float:
        """INT8 levels available to the median |x| under max calibration."""
        if self.abs_max == 0.0:  # lint: allow[float-equality] exact all-zero tensor guard
            return 0.0
        return 127.0 * self.abs_median / self.abs_max


def collect_activation_stats(model: Module, inputs, forward=None) -> list[ActivationStats]:
    """Run ``inputs`` through ``model`` and collect per-layer input stats.

    ``forward(model, inputs)`` defaults to ``model(Tensor(inputs))`` for
    vision models; pass an adapter for multi-input models.
    """
    forward = forward or (lambda m, x: m(Tensor(np.asarray(x))))
    layers = [(n, l) for n, l in quantized_layers(model)]
    captured: list[tuple[str, np.ndarray]] = []
    originals = [type(l).forward for _, l in layers]

    def make_hook(name, layer, orig):
        def hooked(x):
            captured.append((name, np.asarray(x.data, dtype=np.float64)))
            return orig(layer, x)
        return hooked

    for (name, layer), orig in zip(layers, originals):
        layer.forward = make_hook(name, layer, orig)
    try:
        model.eval()
        with no_grad():
            forward(model, inputs)
    finally:
        for _, layer in layers:
            del layer.forward

    stats = []
    for name, act in captured:
        a = np.abs(act.ravel())
        nz = a[a > 0]
        median = float(np.median(nz)) if nz.size else 0.0
        x = act.ravel()
        var = float(x.var())
        kurt = float(((x - x.mean()) ** 4).mean() / (var ** 2)) if var > 0 else 0.0
        stats.append(ActivationStats(layer=name, abs_max=float(a.max(initial=0.0)),
                                     abs_median=median, kurtosis=kurt))
    return stats


def summarize_stats(stats: list[ActivationStats]) -> dict[str, float]:
    """Model-level aggregates: the numbers behind the Table 2 ordering."""
    if not stats:
        raise ValueError("no activation stats collected")
    ratios = [s.range_ratio for s in stats if np.isfinite(s.range_ratio)]
    return {
        "layers": float(len(stats)),
        "mean_range_ratio": float(np.mean(ratios)),
        "max_range_ratio": float(np.max(ratios)),
        "mean_kurtosis": float(np.mean([s.kurtosis for s in stats])),
        "min_median_int8_levels": float(min(s.median_int8_levels for s in stats)),
    }
