"""Block floating point (paper §2.1's second related format).

BFP shares one exponent across a block of fixed-point mantissas; the
shared exponent doubles as a per-block scaling parameter (Yeh et al.,
ICML'22).  The paper treats BFP as aligning with FP8 under its scaling
methodology; :func:`bfp_quantize` implements it so the ablation bench can
measure that alignment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bfp_quantize"]


def bfp_quantize(x: np.ndarray, mantissa_bits: int = 7, block_size: int = 16,
                 axis: int = -1) -> np.ndarray:
    """Quantize ``x`` to block floating point along ``axis``.

    Each contiguous block of ``block_size`` elements shares the exponent
    of its max-magnitude member; mantissas are signed fixed point with
    ``mantissa_bits`` bits (sign included), rounded to nearest.

    The trailing partial block (when the axis length is not divisible by
    ``block_size``) is quantized as its own smaller block.
    """
    if mantissa_bits < 2:
        raise ValueError("mantissa_bits must be >= 2 (sign + magnitude)")
    if block_size < 1:
        raise ValueError("block_size must be positive")
    x = np.asarray(x, dtype=np.float64)
    moved = np.moveaxis(x, axis, -1)
    out = np.empty_like(moved)
    length = moved.shape[-1]
    levels = (1 << (mantissa_bits - 1)) - 1  # symmetric mantissa range
    for start in range(0, length, block_size):
        block = moved[..., start:start + block_size]
        amax = np.max(np.abs(block), axis=-1, keepdims=True)
        # shared exponent: smallest power of two covering the block max
        with np.errstate(divide="ignore"):
            exp = np.ceil(np.log2(np.where(amax > 0, amax / levels, 1.0)))
        step = np.exp2(exp)
        q = np.clip(np.rint(block / step), -levels, levels) * step
        out[..., start:start + block_size] = np.where(amax > 0, q, 0.0)
    return np.moveaxis(out, -1, axis)
