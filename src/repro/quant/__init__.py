"""Post-training quantization: fake-quant, calibration, metrics, PTQ driver."""

from .activation_stats import ActivationStats, collect_activation_stats, summarize_stats
from .bfp import bfp_quantize
from .fakequant import FakeQuantizer, quantize_with_scale
from .sensitivity import LayerSensitivity, layer_sensitivity
from .mixed import (
    Allocation, AllocationProblem, allocate, bias_correct, build_problem,
    canonical_format_spec, count_macs, format_unit_cost, parse_format_spec,
    render_format_spec,
)
from .observers import MaxObserver, MSEObserver, PercentileObserver, make_observer
from .metrics import accuracy, f1_score, matthews_corrcoef, relative_rmse, rmse, sqnr_db
from .ptq import PTQConfig, dequantize_model, quantize_model, quantized_layers

__all__ = [
    "FakeQuantizer", "quantize_with_scale",
    "ActivationStats", "collect_activation_stats", "summarize_stats",
    "LayerSensitivity", "layer_sensitivity", "bfp_quantize",
    "Allocation", "AllocationProblem", "allocate", "bias_correct",
    "build_problem", "canonical_format_spec", "count_macs",
    "format_unit_cost", "parse_format_spec", "render_format_spec",
    "MaxObserver", "PercentileObserver", "MSEObserver", "make_observer",
    "rmse", "relative_rmse", "sqnr_db", "accuracy", "f1_score", "matthews_corrcoef",
    "PTQConfig", "quantize_model", "dequantize_model", "quantized_layers",
]
