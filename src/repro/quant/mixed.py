"""Mixed-precision PTQ: per-layer format allocation under hardware cost.

The paper scores each model with one format for the whole network; this
module turns that grid into a per-model accuracy / hardware-cost
*frontier* by assigning each layer its own format from the registry
(Deep Positron's per-layer precision selection, driven by the repo's own
gate-level MAC costs):

* **format specs** — a mixed assignment serialises to the opaque string
  ``mixed(DEFAULT;layer=FMT;...)``.  The spec contains neither ``|``
  (the serving ``model|format|mode`` key separator) nor ``,`` outside
  format names, so it flows through the scheduler, the shard router and
  the gateway unchanged; :func:`canonical_format_spec` sorts entries and
  drops ones equal to the default, so a map that assigns the default
  everywhere *is* the uniform spec (and shares its serving cache).
* **hardware cost** — :func:`format_unit_cost` synthesises the format's
  gate-level MAC (:class:`~repro.hardware.MacUnit`) and simulates
  activity-based power on a seeded operand stream; the cost metric is
  the area x power product per MAC.  A layer's cost is its MAC-count
  share of the network (:func:`count_macs`) times its format's unit
  cost, so a model's total is the MAC-weighted mean area x power.
* **allocation** — :func:`allocate` solves the resulting
  multiple-choice knapsack (one format per layer, predicted drops from
  :func:`~repro.quant.sensitivity.layer_sensitivity`) under either a
  cost ``budget`` (minimise drop) or an accuracy ``floor`` (minimise
  cost), with a ratio-greedy solver and an exact DP fallback over a
  fixed integer cost grid.  Hosts the ``mixed:allocate/KEY`` fault
  point.
* **bias correction** — :func:`bias_correct` removes the DFQ-style
  biased error that aggressive low-precision layers introduce: per
  layer, the expected output over the calibration stream is matched to
  the FP32 expectation by folding the difference into the layer bias
  (sequentially, so upstream corrections are seen downstream).

INT8 is deliberately absent from allocation palettes: it has no
gate-level decoder in :mod:`repro.hardware`, so it cannot be costed
(``MacUnit`` raises ``TypeError``).
"""

from __future__ import annotations

import math
import threading
from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from ..autograd import no_grad
from ..formats import get_format
from ..nn.layers import Conv2d, Linear
from ..nn.module import Module
from ..resilience import NumericsError, faults
from .ptq import quantized_layers

__all__ = [
    "parse_format_spec", "render_format_spec", "canonical_format_spec",
    "format_unit_cost", "count_macs",
    "AllocationProblem", "Allocation", "build_problem", "allocate",
    "bias_correct",
]


# ----------------------------------------------------------------------
# mixed format specs
# ----------------------------------------------------------------------

_SPEC_PREFIX = "mixed("
#: characters that would collide with the spec grammar or the serving
#: ``model|format|mode`` key if they appeared in a layer name
_FORBIDDEN_IN_LAYER = ("|", ";", "=", "(", ")")


def render_format_spec(default, layer_formats: dict | None = None) -> str:
    """Serialise a (default, per-layer overrides) pair to a spec string.

    The result is canonical: overrides are sorted by layer name, format
    names come from the registry, and overrides equal to the default are
    dropped — an empty override map renders as the plain default name,
    so the uniform case round-trips to the uniform spec.
    """
    default_name = get_format(default).name if isinstance(default, str) \
        else default.name
    entries = []
    for layer in sorted(layer_formats or {}):
        for ch in _FORBIDDEN_IN_LAYER:
            if ch in layer:
                raise ValueError(
                    f"layer name {layer!r} contains {ch!r}, which collides "
                    "with the mixed-spec / serving-key grammar")
        f = layer_formats[layer]
        fmt_name = get_format(f).name if isinstance(f, str) else f.name
        if fmt_name != default_name:
            entries.append(f"{layer}={fmt_name}")
    if not entries:
        return default_name
    return _SPEC_PREFIX + ";".join([default_name] + entries) + ")"


def parse_format_spec(spec: str) -> tuple[str, dict[str, str]]:
    """``(default_name, {layer: format_name})`` for a format spec.

    Accepts either a plain registry format name (empty override map) or
    a ``mixed(DEFAULT;layer=FMT;...)`` string.  Unknown format names and
    malformed entries raise ``ValueError``/``KeyError`` loudly.
    """
    spec = spec.strip()
    if not (spec.startswith(_SPEC_PREFIX) and spec.endswith(")")):
        return get_format(spec).name, {}
    body = spec[len(_SPEC_PREFIX):-1]
    parts = body.split(";")
    if not parts or not parts[0]:
        raise ValueError(f"mixed spec {spec!r} is missing its default format")
    default_name = get_format(parts[0]).name
    layer_formats: dict[str, str] = {}
    for entry in parts[1:]:
        layer, sep, fmt_name = entry.partition("=")
        if not sep or not layer:
            raise ValueError(f"malformed mixed-spec entry {entry!r} in {spec!r} "
                             "(expected layer=FORMAT)")
        if layer in layer_formats:
            raise ValueError(f"duplicate layer {layer!r} in mixed spec {spec!r}")
        layer_formats[layer] = get_format(fmt_name).name
    return default_name, layer_formats


def canonical_format_spec(spec: str) -> str:
    """The canonical text of ``spec`` (parse + re-render).

    Uniform specs canonicalise exactly like ``get_format(spec).name``;
    mixed specs get sorted entries and default-equal overrides dropped,
    so two spellings of the same assignment share one serving cache key.
    """
    default_name, layer_formats = parse_format_spec(spec)
    return render_format_spec(default_name, layer_formats)


# ----------------------------------------------------------------------
# hardware cost model
# ----------------------------------------------------------------------

#: scale applied to the raw area[um^2] x power[uW] product so costs
#: print in convenient units (10^-3 um^2*uW per MAC)
COST_SCALE = 1e-3

_COST_LOCK = threading.Lock()
_COST_CACHE: dict[tuple, dict] = {}


def format_unit_cost(fmt, n: int = 512, seed: int = 0,
                     clock_mhz: float = 100.0) -> dict:
    """Per-MAC hardware cost of one format: area, power, area x power.

    Synthesises the format's gate-level MAC and simulates activity-based
    power on ``n`` seeded gaussian operand pairs (the same stream for
    every format, so costs are comparable).  Deterministic and memoized
    — MAC synthesis is ~100 ms per format.  Formats without a
    gate-level decoder (INT8) raise ``TypeError``.
    """
    fmt = get_format(fmt) if isinstance(fmt, str) else fmt
    key = (fmt.name, n, seed, clock_mhz)
    with _COST_LOCK:
        hit = _COST_CACHE.get(key)
    if hit is not None:
        return hit
    from ..hardware import MacUnit, dnn_operand_stream, mac_cost
    rng = np.random.default_rng(seed)
    w = rng.normal(size=4096)
    a = rng.normal(size=4096)
    w_codes, a_codes = dnn_operand_stream(fmt, w, a, n=n, seed=seed)
    row = mac_cost(MacUnit(fmt), w_codes, a_codes, clock_mhz=clock_mhz)
    out = {"area": row.area_total, "power": row.power_total,
           "cost": row.area_total * row.power_total * COST_SCALE}
    with _COST_LOCK:
        # idempotent memo: racers compute equal values for equal keys
        _COST_CACHE[key] = out
    return out


def count_macs(model: Module, batch, forward=None) -> dict[str, int]:
    """Multiply-accumulate count per quantizable layer for one batch.

    Hooks every quantizable layer, runs ``batch`` through the model once
    and derives MAC counts from the observed input/output shapes:
    ``prod(x.shape[:-1]) * in_features * out_features`` for Linear,
    ``y.numel() * (C_in/groups) * kh * kw`` for Conv2d.  Only the
    *shares* matter to the allocator, so any consistent batch size
    works.
    """
    forward = forward or (lambda m, x: m(x))
    layers = quantized_layers(model)
    macs: dict[str, int] = {}
    originals = [type(layer).forward for _, layer in layers]

    def make_hook(name, layer, orig):
        def hooked(x):
            y = orig(layer, x)
            if isinstance(layer, Conv2d):
                _o, i_g, kh, kw = layer.weight.data.shape
                per_out = i_g * kh * kw
                count = int(np.prod(y.data.shape)) * per_out
            elif isinstance(layer, Linear):
                out_f, in_f = layer.weight.data.shape
                rows = int(np.prod(x.data.shape[:-1]))
                count = rows * in_f * out_f
            else:  # generic fallback: one weight application per row
                count = int(np.prod(x.data.shape[:-1])) * layer.weight.data.size
            macs[name] = macs.get(name, 0) + count
            return y
        return hooked

    for (name, layer), orig in zip(layers, originals):
        layer.forward = make_hook(name, layer, orig)
    try:
        model.eval()
        with no_grad():
            forward(model, batch)
    finally:
        for _, layer in layers:
            del layer.forward
    if not macs:
        raise ValueError("model has no quantizable layers (or the batch "
                         "never reached one)")
    return macs


# ----------------------------------------------------------------------
# the allocator (multiple-choice knapsack)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AllocationProblem:
    """One format-per-layer assignment problem.

    ``drop[layer][fmt]`` is the predicted accuracy drop of running
    ``layer`` in ``fmt`` (from the sensitivity sweep; may be negative),
    ``cost[layer][fmt]`` the layer's hardware cost under ``fmt`` (MAC
    share times the format's unit cost).  Both tables must be complete
    over ``layers`` x ``formats``.
    """

    layers: tuple[str, ...]
    formats: tuple[str, ...]
    drop: dict
    cost: dict


@dataclass(frozen=True)
class Allocation:
    """A solved assignment with its predicted totals."""

    assignment: dict[str, str]
    predicted_drop: float
    cost: float
    method: str

    def spec(self, default: str) -> str:
        """The assignment as a canonical ``mixed(...)`` format spec."""
        return render_format_spec(default, self.assignment)


def build_problem(drops: dict[str, dict[str, float]], macs: dict[str, int],
                  unit_costs: dict[str, float],
                  layers: Iterable[str] | None = None) -> AllocationProblem:
    """Assemble an :class:`AllocationProblem` from its three ingredients.

    ``drops[fmt][layer]`` comes from per-format sensitivity sweeps,
    ``macs`` from :func:`count_macs`, ``unit_costs[fmt]`` from
    :func:`format_unit_cost` (the scalar ``cost`` entry).  Layer costs
    are MAC shares times unit costs, so a uniform assignment's total
    cost equals the format's unit cost exactly.
    """
    formats = tuple(drops)
    if not formats:
        raise ValueError("no formats in the drop table")
    layer_names = tuple(layers) if layers is not None else tuple(macs)
    total_macs = float(sum(macs[l] for l in layer_names))
    if total_macs <= 0:
        raise ValueError("total MAC count is zero")
    drop_t: dict[str, dict[str, float]] = {}
    cost_t: dict[str, dict[str, float]] = {}
    for l in layer_names:
        share = macs[l] / total_macs
        drop_t[l] = {f: float(drops[f][l]) for f in formats}
        cost_t[l] = {f: share * float(unit_costs[f]) for f in formats}
    return AllocationProblem(layers=layer_names, formats=formats,
                             drop=drop_t, cost=cost_t)


def _check_finite(problem: AllocationProblem, drop: dict) -> None:
    for l in problem.layers:
        for f in problem.formats:
            if not (math.isfinite(drop[l][f])
                    and math.isfinite(problem.cost[l][f])):
                raise NumericsError(
                    f"allocator table has a non-finite entry at "
                    f"layer {l!r} format {f!r}", stat="drop")


def _greedy_budget(problem: AllocationProblem, drop: dict,
                   budget: float) -> dict[str, str]:
    """Ratio-greedy MCKP: cheapest base, then best drop-per-cost upgrades."""
    layers, formats = problem.layers, problem.formats
    cost = problem.cost
    pick = {l: min(formats, key=lambda f: (cost[l][f], drop[l][f]))
            for l in layers}
    total_cost = sum(cost[l][pick[l]] for l in layers)
    while True:
        best = None   # (ratio, layer_idx, fmt_idx)
        for li, l in enumerate(layers):
            cur_d, cur_c = drop[l][pick[l]], cost[l][pick[l]]
            for fi, f in enumerate(formats):
                if f == pick[l]:
                    continue
                dd = cur_d - drop[l][f]          # drop reduction (good if > 0)
                dc = cost[l][f] - cur_c          # extra cost
                if dd <= 0 or total_cost + dc > budget:
                    continue
                ratio = dd / dc if dc > 0 else math.inf
                cand = (ratio, -li, -fi)
                if best is None or cand > best[0]:
                    best = (cand, l, f, dc)
        if best is None:
            return pick
        _, l, f, dc = best
        pick[l] = f
        total_cost += dc


def _greedy_floor(problem: AllocationProblem, drop: dict,
                  floor: float) -> dict[str, str]:
    """Ratio-greedy dual: best-accuracy base, then cheapest downgrades."""
    layers, formats = problem.layers, problem.formats
    cost = problem.cost
    pick = {l: min(formats, key=lambda f: (drop[l][f], cost[l][f]))
            for l in layers}
    total_drop = sum(drop[l][pick[l]] for l in layers)
    while True:
        best = None
        for li, l in enumerate(layers):
            cur_d, cur_c = drop[l][pick[l]], cost[l][pick[l]]
            for fi, f in enumerate(formats):
                if f == pick[l]:
                    continue
                save = cur_c - cost[l][f]        # cost saving (good if > 0)
                dd = drop[l][f] - cur_d          # extra drop
                if save <= 0 or total_drop + dd > floor:
                    continue
                ratio = save / dd if dd > 0 else math.inf
                cand = (ratio, -li, -fi)
                if best is None or cand > best[0]:
                    best = (cand, l, f, dd)
        if best is None:
            return pick
        _, l, f, dd = best
        pick[l] = f
        total_drop += dd


def _dp_min_value(layers, formats, units, value, capacity):
    """Exact MCKP DP: min sum(value) with sum(units) <= capacity.

    ``units[l][f]`` are non-negative integer weights; returns the
    assignment dict or None when no selection fits.
    """
    inf = math.inf
    dp = [0.0] + [inf] * capacity
    choice: list[list[int]] = []
    for l in layers:
        nxt = [inf] * (capacity + 1)
        ch = [-1] * (capacity + 1)
        for b in range(capacity + 1):
            for fi, f in enumerate(formats):
                u = units[l][f]
                if u > b:
                    continue
                prev = dp[b - u]
                v = prev + value[l][f]
                if v < nxt[b]:
                    nxt[b], ch[b] = v, fi
        dp = nxt
        choice.append(ch)
    b = min(range(capacity + 1), key=lambda i: (dp[i], i))
    if not math.isfinite(dp[b]):
        return None
    pick: dict[str, str] = {}
    for li in range(len(layers) - 1, -1, -1):
        l = layers[li]
        fi = choice[li][b]
        f = formats[fi]
        pick[l] = f
        b -= units[l][f]
    return pick


#: integer grid density of the exact DP (fraction of the worst-case
#: total cost per unit); rounding item weights *up* keeps every DP
#: solution feasible in real units
DP_RESOLUTION = 4096


def allocate(problem: AllocationProblem, *, budget: float | None = None,
             floor: float | None = None, method: str = "auto",
             resolution: int = DP_RESOLUTION, key: str = "*") -> Allocation:
    """Solve the per-layer format assignment.

    Exactly one of ``budget`` (hardware-cost ceiling: minimise predicted
    drop) or ``floor`` (predicted-drop ceiling: minimise cost) must be
    given.  ``method`` is ``"greedy"``, ``"exact"`` (DP over a fixed
    integer grid of ``resolution`` units — the grid is anchored to the
    worst-case total, not the budget, so relaxing the budget never
    worsens the solution) or ``"auto"`` (exact when the DP table is
    small enough, greedy otherwise).  Solutions always respect the
    ceiling in *real* units: DP item weights round up, greedy never
    steps over.  Deterministic: stable tie-breaks, no randomness.

    Hosts the ``mixed:allocate/KEY`` fault point; the ``nan`` action
    poisons the drop table, which the finiteness guard turns into a
    :class:`~repro.resilience.NumericsError` (exercised by the chaos
    suite).
    """
    if (budget is None) == (floor is None):
        raise ValueError("exactly one of budget= or floor= is required")
    if method not in ("auto", "greedy", "exact"):
        raise ValueError(f"unknown method {method!r}")
    if not problem.layers:
        raise ValueError("allocation problem has no layers")

    drop = {l: {f: float(problem.drop[l][f]) for f in problem.formats}
            for l in problem.layers}
    if faults.maybe_fault("mixed", f"allocate/{key}") == "nan":
        first = problem.layers[0]
        drop[first][problem.formats[0]] = float("nan")
    _check_finite(problem, drop)

    layers, formats, cost = problem.layers, problem.formats, problem.cost
    if budget is not None:
        min_cost = sum(min(cost[l][f] for f in formats) for l in layers)
        if budget < min_cost:
            raise ValueError(f"budget {budget:g} is below the cheapest "
                             f"assignment ({min_cost:g})")
        max_cost = sum(max(cost[l][f] for f in formats) for l in layers)
        use_exact = method == "exact" or (
            method == "auto"
            and len(layers) * len(formats) * resolution <= 50_000_000)
        pick = None
        if use_exact and math.isfinite(budget):
            scale = max_cost / resolution
            units = {l: {f: math.ceil(cost[l][f] / scale) for f in formats}
                     for l in layers}
            capacity = min(int(budget / scale), resolution)
            pick = _dp_min_value(layers, formats, units, drop, capacity)
            how = "exact"
        if pick is None:
            # unbounded budget, greedy method, or a DP grid too coarse to
            # certify feasibility: the greedy never steps over the budget
            pick = _greedy_budget(problem, drop, budget)
            how = "greedy"
    else:
        shift = {l: min(drop[l][f] for f in formats) for l in layers}
        min_drop = sum(shift.values())
        if floor < min_drop:
            raise ValueError(f"floor {floor:g} is below the best achievable "
                             f"total drop ({min_drop:g})")
        max_drop = sum(max(drop[l][f] for f in formats) for l in layers)
        span = max_drop - min_drop
        use_exact = method == "exact" or (
            method == "auto" and span > 0
            and len(layers) * len(formats) * resolution <= 50_000_000)
        pick = None
        if use_exact and span > 0:
            scale = span / resolution
            units = {l: {f: math.ceil((drop[l][f] - shift[l]) / scale)
                         for f in formats} for l in layers}
            capacity = min(int((floor - min_drop) / scale), resolution)
            pick = _dp_min_value(layers, formats, units, cost, capacity)
            how = "exact"
        if pick is None:
            pick = _greedy_floor(problem, drop, floor)
            how = "greedy"

    return Allocation(
        assignment={l: pick[l] for l in layers},
        predicted_drop=float(sum(drop[l][pick[l]] for l in layers)),
        cost=float(sum(cost[l][pick[l]] for l in layers)),
        method=how)


# ----------------------------------------------------------------------
# DFQ-style bias correction
# ----------------------------------------------------------------------

def _channel_axis(layer) -> int:
    """The output-channel axis of a layer's output tensor."""
    return 1 if isinstance(layer, Conv2d) else -1


def _mean_outputs(model: Module, batches: list, forward,
                  targets: list) -> dict[str, np.ndarray]:
    """Per-channel mean output of each target layer over ``batches``."""
    sums: dict[str, np.ndarray] = {}
    counts: dict[str, int] = {}
    originals = [type(layer).forward for _, layer in targets]

    def make_hook(name, layer, orig):
        axis = _channel_axis(layer)
        def hooked(x):
            y = orig(layer, x)
            out = np.asarray(y.data, dtype=np.float64)
            out = np.moveaxis(out, axis, -1).reshape(-1, out.shape[axis])
            sums[name] = sums.get(name, 0.0) + out.sum(axis=0)
            counts[name] = counts.get(name, 0) + out.shape[0]
            return y
        return hooked

    for (name, layer), orig in zip(targets, originals):
        layer.forward = make_hook(name, layer, orig)
    try:
        with no_grad():
            for batch in batches:
                forward(model, batch)
    finally:
        for _, layer in targets:
            del layer.forward
    return {name: sums[name] / counts[name] for name in sums}


def bias_correct(
    model: Module,
    calibration_batches: Iterable,
    forward: Callable[[Module, object], object] | None = None,
) -> dict[str, np.ndarray]:
    """DFQ-style sequential bias correction of a quantized model (in place).

    Quantization shifts each layer's expected output; this folds the
    shift back into the layer bias: the FP32 per-channel expected output
    of every quantized layer is measured once (quantizers stashed), then
    layers are corrected in topological order — measure the layer's
    quantized expectation (upstream corrections already applied), add
    ``E_fp - E_q`` to its bias, move on.  After the pass every corrected
    layer's mean output matches its FP32 expectation on the calibration
    stream.

    Exactly-zero corrections are *not* applied, so a model with zero
    quantization error (e.g. an FP32 passthrough) keeps bit-identical
    biases; layers without a bias term are skipped.  Engine-mode layers
    have their executor's bias snapshot refreshed.  Returns the applied
    per-layer corrections.
    """
    forward = forward or (lambda m, batch: m(batch))
    batches = list(calibration_batches)
    if not batches:
        raise ValueError("calibration stream is empty")
    model.eval()
    targets = [(name, layer) for name, layer in quantized_layers(model)
               if layer.weight_quant is not None or layer.input_quant is not None]
    if not targets:
        return {}

    stash = [(layer.weight_quant, layer.input_quant, layer.engine_exec)
             for _, layer in targets]
    for _, layer in targets:
        layer.weight_quant = layer.input_quant = layer.engine_exec = None
    try:
        fp_mean = _mean_outputs(model, batches, forward, targets)
    finally:
        for (_, layer), (wq, iq, eng) in zip(targets, stash):
            layer.weight_quant, layer.input_quant, layer.engine_exec = wq, iq, eng

    corrections: dict[str, np.ndarray] = {}
    for name, layer in targets:
        if layer.bias is None:
            continue
        q_mean = _mean_outputs(model, batches, forward, [(name, layer)])[name]
        corr = fp_mean[name] - q_mean
        if np.any(corr != 0.0):  # lint: allow[float-equality] exact-zero corrections must not rewrite the bias bits
            dtype = layer.bias.data.dtype
            layer.bias.data = (layer.bias.data.astype(np.float64)
                               + corr).astype(dtype)
            if layer.engine_exec is not None:
                # the engine snapshots the bias at build time; refresh it
                layer.engine_exec.bias = layer.bias.data.astype(np.float64)
        corrections[name] = corr
    return corrections
