"""Calibration observers: max, percentile and MSE-optimal scaling.

The paper deliberately uses plain max observers ("basic settings", §4.1)
so that accuracy differences are attributable to the data format.  This
module adds the two standard alternatives so that choice can be measured
rather than assumed:

* :class:`MaxObserver` — the paper's policy (absolute maximum).
* :class:`PercentileObserver` — clip the top tail (robust to outliers;
  the usual way INT8 is rescued on heavy-tailed activations).
* :class:`MSEObserver` — grid-search the scale minimising quantization
  MSE against the calibration data.

All observers stream batches via :meth:`observe` and produce a scalar or
per-channel ``scale`` compatible with
:class:`~repro.quant.fakequant.FakeQuantizer`.
"""

from __future__ import annotations

import numpy as np

from ..formats.base import CodebookFormat
from ..resilience.numerics import ensure_finite
from .fakequant import quantize_with_scale

__all__ = ["MaxObserver", "PercentileObserver", "MSEObserver", "make_observer"]


class _ObserverBase:
    """Shared channel handling for streaming observers."""

    def __init__(self, axis: int | None = None):
        self.axis = axis

    def _per_channel(self, x: np.ndarray) -> np.ndarray:
        moved = np.moveaxis(np.abs(x), self.axis, 0)
        return moved.reshape(moved.shape[0], -1)

    def observe(self, x: np.ndarray) -> "_ObserverBase":
        raise NotImplementedError

    def compute_scale(self) -> np.ndarray | float:
        raise NotImplementedError


class MaxObserver(_ObserverBase):
    """Running absolute maximum (the paper's calibration)."""

    def __init__(self, axis: int | None = None):
        super().__init__(axis)
        self._max: np.ndarray | float | None = None

    def observe(self, x: np.ndarray) -> "MaxObserver":
        x = np.asarray(x, dtype=np.float64)
        new = (np.max(np.abs(x)) if self.axis is None
               else self._per_channel(x).max(axis=1))
        # guard at the batch that introduced the NaN/Inf, not at the end
        ensure_finite(new, "batch max", observer="max")
        self._max = new if self._max is None else np.maximum(self._max, new)
        return self

    def compute_scale(self):
        if self._max is None:
            raise RuntimeError("observer saw no data")
        return ensure_finite(self._max, "running max", observer="max")


class PercentileObserver(_ObserverBase):
    """Percentile of |x| over the whole calibration stream.

    Keeps a bounded reservoir of samples per channel so memory stays flat
    regardless of stream length.
    """

    def __init__(self, axis: int | None = None, percentile: float = 99.9,
                 reservoir: int = 100_000, seed: int = 0):
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        super().__init__(axis)
        self.percentile = percentile
        self.reservoir = reservoir
        self._rng = np.random.default_rng(seed)
        self._samples: list[np.ndarray] = []

    def observe(self, x: np.ndarray) -> "PercentileObserver":
        x = np.asarray(x, dtype=np.float64)
        flat = np.abs(x) if self.axis is None else self._per_channel(x)
        if self.axis is None:
            flat = flat.ravel()
            if flat.size > self.reservoir:
                flat = self._rng.choice(flat, self.reservoir, replace=False)
            self._samples.append(flat)
        else:
            keep = min(flat.shape[1], max(1, self.reservoir // flat.shape[0]))
            if flat.shape[1] > keep:
                idx = self._rng.choice(flat.shape[1], keep, replace=False)
                flat = flat[:, idx]
            self._samples.append(flat)
        return self

    def compute_scale(self):
        if not self._samples:
            raise RuntimeError("observer saw no data")
        if self.axis is None:
            scale = float(np.percentile(np.concatenate(self._samples),
                                        self.percentile))
        else:
            data = np.concatenate(self._samples, axis=1)
            scale = np.percentile(data, self.percentile, axis=1)
        return ensure_finite(scale, "percentile scale", observer="percentile")


class MSEObserver(_ObserverBase):
    """Scale minimising quantization MSE on the calibration stream.

    Searches a multiplicative grid below the observed max; per-tensor
    only (the standard usage for activations).
    """

    def __init__(self, fmt: CodebookFormat, grid: int = 24,
                 lowest: float = 0.25):
        super().__init__(axis=None)
        self.fmt = fmt
        self.grid = grid
        self.lowest = lowest
        self._chunks: list[np.ndarray] = []
        self._max = 0.0

    def observe(self, x: np.ndarray) -> "MSEObserver":
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size > 20_000:
            x = x[:: x.size // 20_000 + 1]
        self._chunks.append(x)
        self._max = max(self._max, float(np.max(np.abs(x))) if x.size else 0.0)
        return self

    def compute_scale(self) -> float:
        if not self._chunks:
            raise RuntimeError("observer saw no data")
        data = np.concatenate(self._chunks)
        # a NaN in the stream poisons every grid-search MSE (all
        # comparisons false), silently returning the raw max — guard first
        ensure_finite(data, "calibration stream", observer="mse")
        if self._max == 0.0:  # lint: allow[float-equality] exact all-zero stream guard
            return 1.0
        best_scale, best_err = self._max, np.inf
        for factor in np.geomspace(self.lowest, 1.0, self.grid):
            scale = self._max * factor
            q = quantize_with_scale(data, self.fmt, scale)
            err = float(np.mean((data - q) ** 2))
            if err < best_err:
                best_scale, best_err = scale, err
        return best_scale


def make_observer(kind: str, fmt: CodebookFormat, axis: int | None = None):
    """Factory: ``"max"`` | ``"percentile"`` | ``"mse"``."""
    if kind == "max":
        return MaxObserver(axis=axis)
    if kind == "percentile":
        return PercentileObserver(axis=axis)
    if kind == "mse":
        if axis is not None:
            raise ValueError("MSEObserver is per-tensor only")
        return MSEObserver(fmt)
    raise KeyError(f"unknown observer kind {kind!r}")
