"""Layer-wise quantization sensitivity analysis.

A standard PTQ diagnostic the paper's methodology implies but does not
tabulate: quantize exactly one layer at a time and measure the metric
drop, attributing damage to individual layers.  This explains *where* a
format fails inside a fragile model (depthwise expansions, SE gates)
versus a robust one.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from ..nn.module import Module
from .fakequant import FakeQuantizer
from .ptq import PTQConfig, quantized_layers

__all__ = ["LayerSensitivity", "layer_sensitivity"]


@dataclass(frozen=True)
class LayerSensitivity:
    """Metric impact of quantizing one layer alone."""

    layer: str
    score: float
    drop: float  # baseline - score


def layer_sensitivity(
    model: Module,
    config: PTQConfig,
    calibration_batches: Iterable,
    evaluate: Callable[[Module], float],
    forward: Callable[[Module, object], object] | None = None,
) -> list[LayerSensitivity]:
    """Per-layer sensitivity sweep.

    For every quantizable layer: attach weight+activation quantizers to
    that layer only, calibrate on the stream, evaluate, restore.  Returns
    results sorted by descending drop.

    ``evaluate`` maps the (possibly quantized) model to a scalar metric;
    ``forward`` adapts calibration batches as in
    :func:`repro.quant.ptq.quantize_model`.
    """
    forward = forward or (lambda m, batch: m(batch))
    model.eval()
    baseline = evaluate(model)
    batches = list(calibration_batches)
    if not batches:
        raise ValueError("calibration stream is empty")

    results = []
    for name, layer in quantized_layers(model):
        if config.skip is not None and config.skip(name, layer):
            continue
        axis = 0 if config.per_channel_weights else None
        layer.weight_quant = FakeQuantizer(
            config.wfmt, axis=axis, gain=config.gain_override).calibrate(layer.weight.data)
        layer.input_quant = FakeQuantizer(config.afmt, axis=None,
                                          gain=config.gain_override)
        layer.observing = True
        from ..autograd import no_grad
        with no_grad():
            for batch in batches:
                forward(model, batch)
        layer.observing = False
        score = evaluate(model)
        layer.clear_quant()
        results.append(LayerSensitivity(layer=name, score=float(score),
                                        drop=float(baseline - score)))
    results.sort(key=lambda r: -r.drop)
    return results
