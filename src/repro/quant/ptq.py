"""Model-level post-training quantization (the paper's Section 4.1 recipe).

The methodology deliberately mirrors the paper's "basic settings":

1. Attach a fake quantizer to every quantizable layer (Linear/Conv2d):
   weights per-output-channel, activations per-tensor (layer-level).
2. Weight scales come straight from the weight maxima.
3. Activation scales come from a *small* calibration stream (the paper uses
   1000 ImageNet images / 5 % of GLUE inputs) via running-max observers.
4. No advanced PTQ (no PD-Quant/QDrop, no bias correction, no per-layer
   tuning) so accuracy differences are attributable to the format alone.

The driver is architecture-agnostic: it walks the module tree for
:class:`~repro.nn.layers.QuantizableMixin` layers and uses a caller-supplied
``forward`` callable for the calibration stream.

Mixed precision is opt-in: ``PTQConfig(layer_formats={...})`` overrides
the format per named layer (the allocator in :mod:`repro.quant.mixed`
produces such maps, and its DFQ-style bias correction is a separate
post-calibration step) — with no overrides the paper's uniform recipe
above is executed byte-identically.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from ..autograd import no_grad
from ..formats import CodebookFormat, get_format
from ..nn.layers import QuantizableMixin
from ..nn.module import Module
from ..resilience import NumericsError
from .fakequant import FakeQuantizer

__all__ = ["PTQConfig", "quantize_model", "dequantize_model", "quantized_layers"]


@dataclass
class PTQConfig:
    """What to quantize and how.

    Attributes
    ----------
    weight_format / activation_format:
        Format objects or registry names. The paper always uses the same
        format for both; they are separate here to support ablations.
    per_channel_weights:
        Per-output-channel weight scales (paper default). Axis 0 is the
        output channel for both Conv2d (OIHW) and Linear (out, in).
    skip:
        Optional predicate ``(name, module) -> bool``; layers for which it
        returns True stay in full precision.
    mode:
        ``"fakequant"`` (default) estimates quantization in float;
        ``"engine"`` additionally attaches a true-quantized executor
        (:mod:`repro.engine`) to every quantized layer after calibration,
        so inference runs bit-true Kulisch arithmetic in code space.
    layer_formats:
        Optional per-layer overrides (layer name -> format or registry
        name) for mixed-precision PTQ; every other layer uses the
        uniform default above.  An override applies to both the layer's
        weight and activation format (one MAC datapath per layer — see
        :mod:`repro.quant.mixed`, which produces these maps).  Unknown
        layer names fail loudly in :func:`quantize_model`.
    """

    weight_format: CodebookFormat | str = "MERSIT(8,2)"
    activation_format: CodebookFormat | str | None = None
    per_channel_weights: bool = True
    skip: Callable[[str, Module], bool] | None = None
    mode: str = "fakequant"
    #: override of the formats' quantization_gain (ablation studies only)
    gain_override: float | None = None
    #: activation calibration policy: "max" (paper), "percentile" or "mse"
    activation_observer: str = "max"
    #: per-layer format overrides (mixed precision); None = uniform
    layer_formats: dict[str, CodebookFormat | str] | None = None
    _wfmt: CodebookFormat = field(init=False, repr=False, default=None)
    _afmt: CodebookFormat = field(init=False, repr=False, default=None)
    _layer_fmts: dict = field(init=False, repr=False, default=None)

    def __post_init__(self):
        if self.mode not in ("fakequant", "engine"):
            raise ValueError(f"unknown PTQ mode {self.mode!r} "
                             "(expected 'fakequant' or 'engine')")
        self._wfmt = (get_format(self.weight_format)
                      if isinstance(self.weight_format, str) else self.weight_format)
        act = self.activation_format if self.activation_format is not None else self._wfmt
        self._afmt = get_format(act) if isinstance(act, str) else act
        self._layer_fmts = {
            name: get_format(f) if isinstance(f, str) else f
            for name, f in (self.layer_formats or {}).items()}

    @property
    def wfmt(self) -> CodebookFormat:
        return self._wfmt

    @property
    def afmt(self) -> CodebookFormat:
        return self._afmt

    def layer_wfmt(self, name: str) -> CodebookFormat:
        """The weight format serving layer ``name`` (override or default)."""
        return self._layer_fmts.get(name, self._wfmt)

    def layer_afmt(self, name: str) -> CodebookFormat:
        """The activation format serving layer ``name`` (override or default)."""
        return self._layer_fmts.get(name, self._afmt)


def quantized_layers(model: Module) -> list[tuple[str, QuantizableMixin]]:
    """All (name, layer) pairs in ``model`` that carry quantization hooks."""
    return [(name, m) for name, m in model.named_modules()
            if isinstance(m, QuantizableMixin)]


def quantize_model(
    model: Module,
    config: PTQConfig,
    calibration_batches: Iterable,
    forward: Callable[[Module, object], object] | None = None,
) -> Module:
    """Attach and calibrate fake quantizers on ``model`` (in place).

    Parameters
    ----------
    model:
        The pretrained model; switched to eval mode.
    config:
        Formats and scaling policy.
    calibration_batches:
        Iterable of batches fed through the model once to observe
        activation maxima.
    forward:
        ``forward(model, batch)`` adapter; defaults to ``model(batch)``.
        Use it for models with multi-input signatures (e.g. BERT takes
        ``(ids, mask)``).
    """
    forward = forward or (lambda m, batch: m(batch))
    model.eval()

    targets = [(name, layer) for name, layer in quantized_layers(model)
               if config.skip is None or not config.skip(name, layer)]
    if not targets:
        raise ValueError("model has no quantizable layers")
    unknown = set(config._layer_fmts) - {name for name, _ in targets}
    if unknown:
        raise ValueError(
            f"layer_formats names unknown/skipped layers: {sorted(unknown)}; "
            f"quantizable: {sorted(name for name, _ in targets)}")

    for name, layer in targets:
        axis = 0 if config.per_channel_weights else None
        wfmt, afmt = config.layer_wfmt(name), config.layer_afmt(name)
        # quantizers carry the layer name so NumericsError diagnostics
        # (and the `calib` fault point) identify the offending layer
        layer.weight_quant = FakeQuantizer(
            wfmt, axis=axis, gain=config.gain_override,
            name=name).calibrate(layer.weight.data)
        observer = None
        if config.activation_observer != "max":
            from .observers import make_observer
            observer = make_observer(config.activation_observer, afmt)
        layer.input_quant = FakeQuantizer(afmt, axis=None,
                                          gain=config.gain_override,
                                          observer=observer, name=name)
        layer.observing = True

    with no_grad():
        saw_batch = False
        for batch in calibration_batches:
            saw_batch = True
            forward(model, batch)
    if not saw_batch:
        raise ValueError("calibration stream is empty")

    for name, layer in targets:
        layer.observing = False
        try:
            layer.input_quant.finalize()
        except NumericsError as exc:
            # observers raise without layer context; attach it here
            raise exc.with_context(layer=name) from exc
        if not layer.input_quant.calibrated:
            raise RuntimeError(f"quantized layer {name!r} saw no calibration data")
        # warm the memoized weight path so the first evaluation batch does
        # not pay the one-off quantization cost (weights are static now)
        layer.weight_quant.quantize_cached(layer.weight)
        if config.mode == "engine":
            from ..engine import build_layer_engine
            layer.engine_exec = build_layer_engine(
                layer, config.layer_wfmt(name), config.layer_afmt(name),
                config.gain_override)
    return model


def dequantize_model(model: Module) -> Module:
    """Strip every quantization hook, restoring full-precision inference."""
    for _, layer in quantized_layers(model):
        layer.clear_quant()
    return model
