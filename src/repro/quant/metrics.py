"""Error and task metrics used by the paper's evaluation.

* :func:`rmse` — the Fig. 6 root-mean-square error between FP32 and
  quantized tensors.
* :func:`sqnr_db` — signal-to-quantization-noise ratio, a standard
  supplementary view of the same comparison.
* GLUE metrics — accuracy, F1 (MRPC) and Matthews correlation (CoLA),
  matching the conventions of the GLUE benchmark the paper reports.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rmse",
    "relative_rmse",
    "sqnr_db",
    "accuracy",
    "f1_score",
    "matthews_corrcoef",
]


def rmse(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Root-mean-square error between a reference and its quantized copy."""
    reference = np.asarray(reference, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    if reference.shape != quantized.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {quantized.shape}")
    return float(np.sqrt(np.mean((reference - quantized) ** 2)))


def relative_rmse(reference: np.ndarray, quantized: np.ndarray) -> float:
    """RMSE normalised by the reference RMS, comparable across layers."""
    denom = float(np.sqrt(np.mean(np.asarray(reference, dtype=np.float64) ** 2)))
    if denom == 0.0:  # lint: allow[float-equality] exact zero-signal guard
        return 0.0
    return rmse(reference, quantized) / denom


def sqnr_db(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB (higher is better)."""
    reference = np.asarray(reference, dtype=np.float64)
    noise = reference - np.asarray(quantized, dtype=np.float64)
    p_sig = float(np.mean(reference ** 2))
    p_noise = float(np.mean(noise ** 2))
    if p_noise == 0.0:  # lint: allow[float-equality] exact noiseless guard
        return float("inf")
    if p_sig == 0.0:  # lint: allow[float-equality] exact zero-signal guard
        return float("-inf")
    return 10.0 * np.log10(p_sig / p_noise)


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches, in percent."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("label arrays must have the same shape")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(y_true == y_pred)) * 100.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Binary F1 (percent), the GLUE metric for MRPC."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = float(np.sum((y_pred == positive) & (y_true == positive)))
    fp = float(np.sum((y_pred == positive) & (y_true != positive)))
    fn = float(np.sum((y_pred != positive) & (y_true == positive)))
    if tp == 0.0:  # lint: allow[float-equality] tp is an exact integer count
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 200.0 * precision * recall / (precision + recall)


def matthews_corrcoef(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Matthews correlation coefficient (percent), the GLUE metric for CoLA."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = float(np.sum((y_pred == 1) & (y_true == 1)))
    tn = float(np.sum((y_pred == 0) & (y_true == 0)))
    fp = float(np.sum((y_pred == 1) & (y_true == 0)))
    fn = float(np.sum((y_pred == 0) & (y_true == 1)))
    denom = np.sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
    if denom == 0.0:  # lint: allow[float-equality] exact zero from integer counts
        return 0.0
    return 100.0 * (tp * tn - fp * fn) / denom
