"""Fake quantization: scale -> round-to-format -> rescale (paper Section 4.1).

The paper's PTQ methodology is deliberately simple: the only calibration is
a max observer, whose value becomes the scaling parameter.  A tensor ``x``
with scale ``s`` is quantized as::

    q = (format_max / s) * x      # map the observed max onto the format max
    q = format.quantize(q)        # round-to-nearest representable
    x' = q * (s / format_max)     # back to real units

For INT8 this degenerates to the familiar symmetric ``round(x * 127 / s)``.
Scales can be scalar (per-tensor) or one-per-channel (per-output-channel for
weights, as in the paper).
"""

from __future__ import annotations

import numpy as np

from ..formats.base import CodebookFormat
from ..resilience import faults
from ..resilience.numerics import ensure_finite

__all__ = ["FakeQuantizer", "quantize_with_scale"]


def _broadcast_scale(scale: np.ndarray | float, x: np.ndarray, axis: int | None) -> np.ndarray:
    """Reshape a per-channel scale vector for broadcasting along ``axis``."""
    s = np.asarray(scale, dtype=np.float64)
    if s.ndim == 0 or axis is None:
        return s
    if s.ndim != 1:
        raise ValueError(f"scale must be scalar or 1-D, got shape {s.shape}")
    if s.shape[0] != x.shape[axis]:
        raise ValueError(
            f"scale length {s.shape[0]} does not match x.shape[{axis}] = {x.shape[axis]}")
    shape = [1] * x.ndim
    shape[axis] = s.shape[0]
    return s.reshape(shape)


def quantize_with_scale(
    x: np.ndarray,
    fmt: CodebookFormat,
    scale: np.ndarray | float,
    axis: int | None = None,
    gain: float | None = None,
) -> np.ndarray:
    """Fake-quantize ``x`` with max-value ``scale`` mapped onto ``fmt``'s gain.

    The observed max magnitude ``scale`` is mapped onto the format's
    ``quantization_gain``: ``max_value`` for uniform-precision formats
    (INT8's familiar ``x * 127 / s``), 1.0 for tapered formats (Posit,
    MERSIT), which places the data in the high-precision regime band.

    Parameters
    ----------
    x:
        Input array (not modified).
    fmt:
        Target codebook format.
    scale:
        Observed max magnitude: a scalar (per-tensor) or a 1-D vector with
        one entry per index of ``axis`` (per-channel).
    axis:
        Channel axis for per-channel scales; ignored for scalar scales.
    gain:
        Override of ``fmt.quantization_gain`` (used by ablation studies).
    """
    x = np.asarray(x, dtype=np.float64)
    s = _broadcast_scale(scale, x, axis)
    # all-zero channels quantize to zero anyway; subnormal scales would
    # overflow the reciprocal, so clamp them to the smallest normal double
    tiny = np.finfo(np.float64).tiny
    s = np.where(s <= 0.0, 1.0, np.maximum(s, tiny))
    g = fmt.quantization_gain if gain is None else gain
    # fused scaling: one broadcast multiply in, one out (the naive
    # ``(x / s) * g`` form does a divide plus a multiply per element)
    return fmt.quantize(x * (g / s)) * (s / g)


def _channel_max(x: np.ndarray, axis: int, empty: float) -> np.ndarray:
    """Per-channel max magnitude along ``axis``; ``empty`` when channels hold
    zero elements (a zero-size reduction would raise)."""
    moved = np.moveaxis(np.abs(x), axis, 0)
    flat = moved.reshape(moved.shape[0], -1)
    if flat.shape[1] == 0:
        return np.full(flat.shape[0], empty, dtype=np.float64)
    return flat.max(axis=1)


class FakeQuantizer:
    """A reusable (format, scale policy) pair.

    The quantizer is calibrated once with :meth:`calibrate` (or by passing
    ``scale=``) and then applied to any number of tensors via
    :meth:`__call__`.  For tensors that rarely change between calls (layer
    weights), :meth:`quantize_cached` memoizes the result keyed on the
    tensor's data version and this quantizer's scale version.

    Calibration statistics are guarded: a NaN/Inf reaching the scale
    raises a diagnostic :class:`~repro.resilience.NumericsError` naming
    the layer (``name``), the observer and the offending statistic,
    instead of silently producing a garbage scale.
    """

    def __init__(
        self,
        fmt: CodebookFormat,
        axis: int | None = None,
        scale: np.ndarray | float | None = None,
        gain: float | None = None,
        observer=None,
        name: str | None = None,
    ):
        self.fmt = fmt
        self.axis = axis
        self._scale_version = 0
        self._qcache: tuple | None = None
        self.scale = None if scale is None else np.asarray(scale, dtype=np.float64)
        self.gain = gain
        #: optional streaming observer (see repro.quant.observers); when
        #: set, observe() delegates to it and finalize() derives the scale.
        self.observer = observer
        #: owning-layer name, used in NumericsError diagnostics and as
        #: the key of the ``calib`` fault-injection point
        self.name = name

    @property
    def scale(self) -> np.ndarray | None:
        return self._scale

    @scale.setter
    def scale(self, value) -> None:
        # every (re)calibration lands here, so bumping the version in the
        # setter is what keeps quantize_cached honest across recalibration
        self._scale = value
        self._scale_version += 1
        self._qcache = None

    @property
    def calibrated(self) -> bool:
        return self.scale is not None

    def calibrate(self, x: np.ndarray) -> "FakeQuantizer":
        """Set the scale to the max magnitude of ``x`` (per-channel if axis set).

        Empty input calibrates to the neutral scale 1.0 (per-channel: a
        channel with zero elements gets 1.0) rather than raising.  A
        non-finite maximum raises :class:`~repro.resilience.NumericsError`.
        """
        x = np.asarray(x, dtype=np.float64)
        if self.axis is None:
            scale = np.asarray(np.max(np.abs(x)) if x.size else 1.0)
        else:
            scale = _channel_max(x, self.axis, empty=1.0)
        self.scale = ensure_finite(scale, "max-magnitude scale",
                                   layer=self.name, observer="max")
        return self

    def observe(self, x: np.ndarray) -> "FakeQuantizer":
        """Streaming calibration update (running max, or the attached observer).

        Empty input contributes 0.0 — the identity of the running max — so
        it never shrinks an already-observed scale.  A non-finite batch
        maximum raises :class:`~repro.resilience.NumericsError` at the
        batch that introduced it.  Hosts the ``calib`` fault-injection
        point (keyed by the layer name).
        """
        x = np.asarray(x, dtype=np.float64)
        if faults.maybe_fault("calib", self.name or "activation") == "nan":
            x = faults.poison_nan(x)
        if self.observer is not None:
            self.observer.observe(x)
            return self
        if self.axis is None:
            new = np.asarray(np.max(np.abs(x)) if x.size else 0.0)
        else:
            new = _channel_max(x, self.axis, empty=0.0)
        ensure_finite(new, "running max", layer=self.name, observer="max")
        self.scale = new if self.scale is None else np.maximum(self.scale, new)
        return self

    def finalize(self) -> "FakeQuantizer":
        """Derive the scale from the attached observer (no-op otherwise)."""
        if self.observer is not None:
            scale = np.asarray(self.observer.compute_scale(), dtype=np.float64)
            self.scale = ensure_finite(
                scale, "observer scale", layer=self.name,
                observer=type(self.observer).__name__)
        return self

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self.scale is None:
            raise RuntimeError("FakeQuantizer used before calibration")
        return quantize_with_scale(x, self.fmt, self.scale, self.axis, self.gain)

    def quantize_cached(self, tensor) -> np.ndarray:
        """Quantize an :class:`~repro.autograd.Tensor`'s data, memoized.

        The cache key is (tensor identity, ``tensor.version``, this
        quantizer's scale version): replacing or updating ``tensor.data``
        bumps the tensor version, and any recalibration bumps the scale
        version, so either invalidates the cache.  Callers mutating a
        tensor's array *in place* (``t.data[...] = ...``) must call
        ``t.bump_version()`` — see the contract on ``Tensor.data``.

        Safe under concurrent callers (serving workers share one layer):
        the versions are snapshotted *before* the data is read, so a
        rebind racing with the computation can only make the stored entry
        conservatively stale (key = old version, data = new plane), never
        the reverse; the next call then recomputes instead of serving a
        stale plane under a fresh version.  The cache slot itself is a
        single tuple rebinding, which is atomic under the GIL.
        """
        cached = self._qcache
        if (cached is not None and cached[0] is tensor
                and cached[1] == tensor.version
                and cached[2] == self._scale_version):
            return cached[3]
        tensor_version = tensor.version
        scale_version = self._scale_version
        out = self(tensor.data).astype(np.float32)
        self._qcache = (tensor, tensor_version, scale_version, out)
        return out

    def install_cached(self, tensor, plane: np.ndarray) -> None:
        """Seed the :meth:`quantize_cached` memo with a precomputed plane.

        ``plane`` must be byte-identical to what :meth:`quantize_cached`
        would compute for ``tensor`` under the current scale — the
        caller vouches for that (the serving layer installs quantized
        weight planes published by a calibrate-once parent process via
        shared memory, where the plane *was* computed by this exact
        code).  The cache keys on the tensor's current data version and
        this quantizer's scale version, so any later rebind or
        recalibration invalidates the installed plane exactly like a
        computed one.
        """
        if plane.shape != np.shape(tensor.data):
            raise ValueError(
                f"plane shape {plane.shape} does not match tensor shape "
                f"{np.shape(tensor.data)}")
        self._qcache = (tensor, tensor.version, self._scale_version, plane)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = "per-tensor" if self.axis is None else f"per-channel(axis={self.axis})"
        return f"<FakeQuantizer {self.fmt.name} {where} calibrated={self.calibrated}>"
