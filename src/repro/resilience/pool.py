"""Persistent warm-worker process pool: the parallel-grid fabric.

The old pool path created a fresh ``multiprocessing.Pool`` per retry
wave and tore it down at wave end, so pool startup plus per-cell state
loading swamped the actual cell work (BENCH_kernels.json recorded the
``--jobs 4`` Table 2 grid *slower* than serial).  This module replaces
that with a process-level fabric:

* **Persistent workers** — one :class:`WorkerPool` per multiprocessing
  start method lives for the whole process (module-level registry,
  :func:`get_pool`); its workers survive across retry waves *and* across
  :func:`~repro.resilience.executor.run_cells` calls, and are torn down
  and selectively respawned only when a worker hangs past its deadline
  or dies.
* **Warm per-worker state** — a per-run ``initializer`` primes each
  worker once with expensive read-only state (pretrained weights,
  dataset splits, kernel LUTs); on fork platforms the caller pre-warms
  the parent *before* the first worker forks, so children share the
  pages copy-on-write.  Workers report warm-cache counters (see
  :func:`register_stats_provider`) with every result, surfaced through
  ``executor.last_run_stats`` and the kernels benchmark.
* **Work stealing** — the parent dispatches cells to whichever worker
  is idle, so a fast worker drains the queue while a slow one computes;
  each dispatch carries its own deadline measured from submission to
  the worker, so one straggler can neither serialize collection nor
  trigger a full-pool teardown.

Each worker owns a private duplex pipe; killing a hung worker can only
corrupt its own pipe (discarded on respawn), never a sibling's — the
reason this fabric uses per-worker pipes instead of shared queues.

Fault-injection interplay: the parent ships its current ``REPRO_FAULTS``
spec with every dispatch and the worker re-exports it before running the
cell, so re-arming (or disarming) faults between runs takes effect on a
persistent pool exactly as it would on a fresh one.  Firing *counters*
for worker-side scopes live per worker process and now persist across
waves (fresh per-wave pools used to reset them); parent-fired ``worker``
scope counters are unaffected.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
from collections.abc import Callable
from multiprocessing import connection

from . import faults
from .numerics import NumericsError

__all__ = [
    "WorkerPool", "PoolShutdown", "get_pool", "shutdown_all",
    "register_stats_provider", "collect_worker_stats",
]


class PoolShutdown(RuntimeError):
    """Raised by :meth:`WorkerPool.respawn` when the slot vanished mid-respawn.

    The classic loser's race: a collector thread revives a dead worker
    while the main thread runs :meth:`WorkerPool.shutdown` (or another
    respawn wins the same slot).  The replacement process is already
    killed when this raises — the caller just abandons the revive.
    """

#: pseudo task id marking a worker busy running a run initializer
INIT_SEQ = "__init__"


# ----------------------------------------------------------------------
# warm-state stats providers
#
# Subsystems with per-process warm caches (zoo model memo, kernel LUT
# cache) register a provider returning monotonic counters; workers ship
# the collected dict with every result so the parent can report per-run
# cache effectiveness without a side channel.

_STATS_PROVIDERS: dict[str, Callable[[], dict]] = {}


def register_stats_provider(name: str, provider: Callable[[], dict]) -> None:
    """Register ``provider`` (returns a dict of numeric counters) under ``name``.

    Counters must be cumulative per process; consumers difference them to
    get per-run numbers.  Registering the same name again replaces the
    provider (idempotent module reloads).
    """
    _STATS_PROVIDERS[name] = provider


def collect_worker_stats() -> dict:
    """Merge every registered provider's counters into one flat dict."""
    out: dict = {}
    for provider in _STATS_PROVIDERS.values():
        try:
            counters = provider()
        except Exception:  # lint: allow[broad-except] a broken stats provider must not kill a result message
            continue
        for key, value in counters.items():
            out[key] = out.get(key, 0) + value
    return out


def diff_stats(after: dict, before: dict) -> dict:
    """Per-run delta of two cumulative counter dicts (never negative)."""
    return {k: v - before.get(k, 0) for k, v in after.items()
            if isinstance(v, (int, float))}


def merge_stats(into: dict, extra: dict) -> dict:
    """Sum ``extra``'s counters into ``into`` (in place; returned)."""
    for k, v in extra.items():
        into[k] = into.get(k, 0) + v
    return into


# ----------------------------------------------------------------------
# worker side


def _classify(exc: BaseException) -> tuple[str, str]:
    """(status, message) a worker ships for a failed cell."""
    if isinstance(exc, NumericsError):
        return "numerics", str(exc)
    return "crash", f"{type(exc).__name__}: {exc}"


def _worker_main(conn) -> None:
    """Worker loop: receive tasks over the private pipe, ship results.

    Messages from the parent: ``("task", seq, fn, task, fault_action,
    fault_env)``, ``("init", key, fn, args)``, ``("stop",)``.  Replies:
    ``("done", seq, status, payload, stats)`` and
    ``("init_done", key, error_or_None)``.  SIGINT is ignored — on
    Ctrl-C the parent owns teardown, not a racing signal in each child.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        kind = msg[0]
        if kind == "stop":
            return
        if kind == "init":
            _, key, fn, args = msg
            error = None
            try:
                fn(*args)
            except BaseException as exc:  # lint: allow[broad-except] a failed warm-up must degrade, not kill the worker
                error = f"{type(exc).__name__}: {exc}"
            conn.send(("init_done", key, error))
            continue
        _, seq, fn, task, fault_action, fault_env = msg
        if fault_env is None:
            os.environ.pop(faults.ENV_VAR, None)
        else:
            os.environ[faults.ENV_VAR] = fault_env
        try:
            if fault_action is not None:
                faults.enact(fault_action, "worker", str(seq))
            value = fn(task)
        except BaseException as exc:  # lint: allow[broad-except] failures are shipped to the parent for retry classification
            status, payload = _classify(exc)
        else:
            status, payload = "ok", value
        try:
            conn.send(("done", seq, status, payload, collect_worker_stats()))
        except Exception as exc:  # lint: allow[broad-except] an unpicklable result must surface as a structured crash
            conn.send(("done", seq, "crash",
                       f"result not shippable: {type(exc).__name__}: {exc}",
                       collect_worker_stats()))


# ----------------------------------------------------------------------
# parent side


class _Worker:
    """Parent-side record of one pooled worker process."""

    __slots__ = ("proc", "conn", "inits", "busy_seq", "deadline",
                 "latest_stats", "stats_baseline", "init_key")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.inits: set[str] = set()      # initializer keys already run
        self.busy_seq = None              # int seq, INIT_SEQ, or None (idle)
        self.deadline: float | None = None
        self.latest_stats: dict = {}
        self.stats_baseline: dict = {}
        self.init_key: str | None = None  # key of an in-flight init

    @property
    def pid(self) -> int:
        return self.proc.pid


class WorkerPool:
    """A resizable set of persistent worker processes (one per start method).

    Obtain through :func:`get_pool`; the executor leases workers per run
    and returns them idle.  The pool only ever grows (up to the largest
    ``jobs`` requested) and shrinks through :meth:`shutdown` or selective
    :meth:`respawn` of hung/dead workers.

    ``target`` is the worker loop each spawned process runs (one duplex
    pipe end as its only argument).  The default is the grid fabric's
    task protocol (:func:`_worker_main`); other subsystems lease pools
    speaking their own protocol — the shard router's serve workers
    (:mod:`repro.serve.shard`) host a batching scheduler behind the same
    spawn/respawn/pipe-EOF machinery.
    """

    def __init__(self, ctx, target: Callable | None = None,
                 name_prefix: str = "repro-pool"):
        self.ctx = ctx
        self.target = target if target is not None else _worker_main
        self.name_prefix = name_prefix
        self.workers: list[_Worker] = []
        self.ever_spawned = 0
        self.respawns_total = 0
        self.failed_inits: set[str] = set()
        self._owner_pid = os.getpid()
        # guards the workers list: the shard router's collector thread
        # revives dead workers (respawn) while the main thread leases or
        # shuts down — without this, respawn's index/assign pair can hit
        # a list the other thread just pruned or cleared
        self._lease_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self.ctx.Pipe()
        proc = self.ctx.Process(
            target=self.target, args=(child_conn,), daemon=True,
            name=f"{self.name_prefix}-{self.ever_spawned}")
        proc.start()
        child_conn.close()  # the child holds the only copy of its end now
        self.ever_spawned += 1
        return _Worker(proc, parent_conn)

    def _ensure_locked(self, n: int) -> None:
        # caller holds _lease_lock
        self.workers = [w for w in self.workers if w.proc.is_alive()]
        while len(self.workers) < n:
            self.workers.append(self._spawn())

    def ensure(self, n: int) -> None:
        """Grow the pool to at least ``n`` live workers."""
        with self._lease_lock:
            self._ensure_locked(n)

    def lease(self, n: int) -> list[_Worker]:
        """The first ``n`` workers, spawning as needed; baselines stats."""
        with self._lease_lock:
            self._ensure_locked(n)
            leased = self.workers[:n]
            for w in leased:
                w.stats_baseline = dict(w.latest_stats)
            return leased

    def respawn(self, worker: _Worker) -> _Worker:
        """Kill ``worker`` (hung or dead) and replace it in its slot.

        Raises :class:`PoolShutdown` if ``worker``'s slot disappeared
        while the replacement was spawning (concurrent shutdown, or a
        racing respawn of the same slot won); the replacement process is
        reaped before raising, so nothing leaks.
        """
        self._kill(worker)
        replacement = self._spawn()  # outside the lock: fork + pipe setup
        with self._lease_lock:
            try:
                idx = self.workers.index(worker)
            except ValueError:
                idx = None
            else:
                self.workers[idx] = replacement
                self.respawns_total += 1
        if idx is None:
            self._kill(replacement)
            raise PoolShutdown(
                "worker slot vanished during respawn (pool shut down "
                "or a concurrent respawn won the slot)")
        return replacement

    def _kill(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():  # pragma: no cover - SIGTERM ignored
                worker.proc.kill()
                worker.proc.join(timeout=1.0)

    def shutdown(self) -> None:
        """Stop every worker (graceful, then forceful)."""
        if os.getpid() != self._owner_pid:
            return  # a forked child inherited this record: not ours to stop
        with self._lease_lock:
            doomed = self.workers
            self.workers = []
        # the slow part — pipe sends and joins — runs lock-free; a racing
        # respawn of one of these workers gets PoolShutdown instead
        for w in doomed:
            try:
                w.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for w in doomed:
            w.proc.join(timeout=1.0)
            self._kill(w)

    # -- dispatch ------------------------------------------------------
    @staticmethod
    def init_key(initializer, initargs) -> str:
        """Stable identity of an (initializer, args) warm-up request."""
        return (f"{getattr(initializer, '__module__', '?')}."
                f"{getattr(initializer, '__qualname__', repr(initializer))}"
                f"{initargs!r}")

    def send_init(self, worker: _Worker, key: str, initializer, initargs,
                  timeout: float | None, now: float) -> None:
        """Dispatch a one-time warm-up to ``worker`` (marks it busy)."""
        worker.conn.send(("init", key, initializer, tuple(initargs)))
        worker.busy_seq = INIT_SEQ
        worker.init_key = key
        worker.deadline = None if timeout is None else now + timeout

    def send_task(self, worker: _Worker, seq: int, fn, task,
                  fault_action: str | None, timeout: float | None,
                  now: float) -> None:
        """Dispatch cell ``seq`` to ``worker``; deadline runs from now."""
        fault_env = os.environ.get(faults.ENV_VAR)
        worker.conn.send(("task", seq, fn, task, fault_action, fault_env))
        worker.busy_seq = seq
        worker.init_key = None
        worker.deadline = None if timeout is None else now + timeout


# ----------------------------------------------------------------------
# module-level registry: the pool persists across run_cells calls

_POOLS: dict[tuple[str, str], WorkerPool] = {}
_REGISTRY_LOCK = threading.Lock()


def get_pool(ctx, kind: str = "grid", target: Callable | None = None,
             name_prefix: str | None = None) -> WorkerPool:
    """The process-wide persistent pool for ``ctx``'s start method.

    ``kind`` namespaces independent pools over the same start method:
    the grid executor's task workers (``"grid"``, the default protocol)
    and the shard router's serve workers (``"serve"``) must never share
    processes — they speak different pipe protocols.  ``target`` and
    ``name_prefix`` configure a newly created pool and are ignored on a
    registry hit (a pool's protocol is fixed for its lifetime).
    """
    key = (ctx.get_start_method(), kind)
    with _REGISTRY_LOCK:
        pool = _POOLS.get(key)
        if pool is None or pool._owner_pid != os.getpid():
            pool = _POOLS[key] = WorkerPool(
                ctx, target=target,
                name_prefix=name_prefix if name_prefix is not None
                else f"repro-{kind}" if kind != "grid" else "repro-pool")
    return pool


def shutdown_all() -> None:
    """Tear down every persistent pool (tests, interpreter exit).

    Callers that mutate module state inherited by forked workers — test
    fixtures monkeypatching the zoo, for instance — must call this first
    so the next run forks workers that see the new state.
    """
    with _REGISTRY_LOCK:
        doomed = list(_POOLS.values())
        _POOLS.clear()
    for pool in doomed:
        pool.shutdown()


atexit.register(shutdown_all)

# re-export for the executor's wait loop
wait = connection.wait
