"""Numeric guards: fail loudly and diagnostically on NaN/Inf statistics.

A NaN that sneaks into calibration silently becomes a garbage scale, a
garbage accuracy cell, and — through the incremental artifact cache — a
*pinned* garbage cell that later runs trust forever.  The guards here
turn that into a :class:`NumericsError` carrying the layer, the observer
and the offending statistic, raised at the first non-finite value, so
the grid executor records a structured error instead of a plausible
looking number.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NumericsError", "nonfinite_summary", "ensure_finite"]


class NumericsError(ArithmeticError):
    """A non-finite value reached a numeric decision point.

    Carries enough context to locate the failure without a debugger:
    the layer being calibrated/executed, the observer that computed the
    statistic, and the name of the offending statistic itself.
    """

    def __init__(self, message: str, layer: str | None = None,
                 observer: str | None = None, stat: str | None = None):
        # all-positional args so pool workers can pickle the exception
        # back to the parent (Exception.__reduce__ replays cls(*args))
        super().__init__(message, layer, observer, stat)
        self.message = message
        self.layer = layer
        self.observer = observer
        self.stat = stat

    def with_context(self, layer: str | None = None,
                     observer: str | None = None) -> "NumericsError":
        """A copy with missing layer/observer fields filled in."""
        return NumericsError(self.message,
                             layer=self.layer or layer,
                             observer=self.observer or observer,
                             stat=self.stat)

    def __str__(self) -> str:
        parts = [f"layer={self.layer}" if self.layer else None,
                 f"observer={self.observer}" if self.observer else None,
                 f"stat={self.stat}" if self.stat else None]
        detail = ", ".join(p for p in parts if p)
        return f"{self.message} [{detail}]" if detail else self.message


def nonfinite_summary(arr: np.ndarray) -> str | None:
    """``"2 NaN / 1 Inf of 64 values"`` — or None when all finite."""
    arr = np.asarray(arr, dtype=np.float64)
    finite = np.isfinite(arr)
    if finite.all():
        return None
    n_nan = int(np.isnan(arr).sum())
    n_inf = int(arr.size - finite.sum() - n_nan)
    return f"{n_nan} NaN / {n_inf} Inf of {arr.size} values"


def ensure_finite(arr: np.ndarray, stat: str, layer: str | None = None,
                  observer: str | None = None) -> np.ndarray:
    """Return ``arr`` unchanged, or raise a diagnostic :class:`NumericsError`."""
    summary = nonfinite_summary(arr)
    if summary is not None:
        raise NumericsError(f"non-finite {stat} ({summary})",
                            layer=layer, observer=observer, stat=stat)
    return arr
