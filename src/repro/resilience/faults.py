"""Deterministic fault injection for the experiment runtime.

Every recovery path in :mod:`repro.resilience` is exercised by tests, not
trusted: a ``REPRO_FAULTS`` environment spec arms named injection points
threaded through the experiment drivers, the artifact store, the
calibration observers and the inference engine.  The spec is a
comma-separated list of clauses::

    scope[:key]:action[:count]

* ``scope`` — where the fault fires (see :data:`SCOPES`):
  ``cell`` (a table2 grid cell), ``worker`` (a pool task pickup),
  ``artifact`` (an artifact-store save), ``calib`` (an activation
  calibration batch), ``engine`` (activation encode in the engine),
  ``serve`` (the inference service: batch execution / model load),
  ``shard`` (the sharded router: request dispatch / shm publication),
  ``net`` (the gateway's wire: connection accept, inbound request
  frames, outbound reply frames), ``mixed`` (the mixed-precision
  format allocator).
* ``key`` — which site within the scope; an ``fnmatch`` glob matched
  against the site key (``MODEL/FORMAT`` for cells, the task sequence
  index for workers, the artifact name, the layer name for calibration).
  Omitted key means ``*`` (every site).
* ``action`` — what happens (see :data:`ACTIONS`): ``crash`` raises
  :class:`FaultInjected`, ``kill`` hard-exits the process (a SIGKILL
  analogue), ``hang`` sleeps :data:`HANG_SECONDS`, ``nan`` poisons the
  site's data with a NaN, ``truncate`` cuts an artifact write short.
  The wire actions are enacted by the gateway itself (:func:`fire` +
  local handling, since they mutate byte streams, not exceptions):
  ``drop`` discards the frame or reply silently, ``delay`` stalls it
  for :data:`NET_DELAY_SECONDS`, ``garble`` flips bytes so the peer
  sees a corrupt frame, ``close`` severs the connection mid-exchange.
* ``count`` — fire at most this many times (default: every match).
  Counts are tracked in the process that calls :func:`fire`; the grid
  executor fires ``worker``-scope faults in the parent so their counts
  survive worker respawns, while ``cell``/``calib``/``engine`` faults
  fire inside the worker process.  The executor ships the parent's
  ``$REPRO_FAULTS`` value with every task it dispatches, so persistent
  pool workers always see the *current* spec (arming or disarming
  between runs works without restarting the pool) — but worker-side
  counters live in the worker process and persist across retry waves
  and across ``run_cells`` calls for as long as that worker lives, so
  a counted worker-side clause is consumed at most ``count`` times per
  worker lifetime, not per run.

Examples::

    REPRO_FAULTS=cell:ResNet18/INT8:crash       # that cell always crashes
    REPRO_FAULTS=worker:2:hang:1                # task 2 hangs once
    REPRO_FAULTS=artifact:table2:truncate:1     # one save dies mid-write
    REPRO_FAULTS=calib:nan                      # every calibration batch
                                                # picks up a NaN

Injection is fully deterministic: a fault fires iff its clause matches
and its count is not exhausted — there is no randomness to seed, so a
failing chaos run replays exactly.  ``python -m repro.cli faults`` lists
the registered injection points and whatever the environment has armed.
"""

from __future__ import annotations

import fnmatch
import os
import re
import threading
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ACTIONS", "SCOPES", "HANG_SECONDS", "NET_DELAY_SECONDS", "ENV_VAR",
    "FaultInjected", "FaultSpecError", "FaultSpec",
    "parse_spec", "active_faults", "fire", "maybe_fault", "poison_nan",
    "INJECTION_POINTS", "describe",
]

#: environment variable holding the armed fault spec
ENV_VAR = "REPRO_FAULTS"

#: recognised fault actions
ACTIONS = frozenset({"crash", "kill", "hang", "nan", "truncate",
                     "drop", "delay", "garble", "close"})

#: recognised injection scopes
SCOPES = frozenset({"cell", "worker", "artifact", "calib", "engine", "serve",
                    "shard", "net", "mixed"})

#: how long a ``hang`` action sleeps (long enough that any sane per-cell
#: deadline expires first)
HANG_SECONDS = 3600.0

#: how long a ``delay`` wire action stalls a frame — long enough to eat a
#: visible slice of a request's deadline budget, short enough that chaos
#: suites with tens of delayed frames stay bounded
NET_DELAY_SECONDS = 0.25


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` clause could not be parsed."""


class FaultInjected(RuntimeError):
    """Raised by the ``crash`` action at an armed injection point."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: scope, site-key glob, action and firing budget."""

    scope: str
    key: str
    action: str
    count: int | None  # max firings; None = unlimited

    def render(self) -> str:
        """The canonical clause text for this spec."""
        out = f"{self.scope}:{self.key}:{self.action}"
        return out if self.count is None else f"{out}:{self.count}"


def parse_spec(text: str) -> list[FaultSpec]:
    """Parse a ``REPRO_FAULTS`` spec string into :class:`FaultSpec` list.

    Raises :class:`FaultSpecError` on an unknown scope/action or a
    malformed count so typos fail loudly instead of silently disarming
    a chaos run.  Commas inside parentheses do not split clauses —
    format names like ``Posit(8,1)`` appear verbatim in cell keys.
    """
    specs: list[FaultSpec] = []
    for clause in (c.strip() for c in re.split(r",(?![^()]*\))", text)):
        if not clause:
            continue
        fields = clause.split(":")
        if len(fields) < 2:
            raise FaultSpecError(
                f"clause {clause!r} needs at least scope:action")
        scope = fields[0]
        if scope not in SCOPES:
            raise FaultSpecError(
                f"unknown scope {scope!r} in {clause!r}; known: {sorted(SCOPES)}")
        count: int | None = None
        if len(fields) >= 3 and fields[-1].isdigit() and fields[-2] in ACTIONS:
            count = int(fields[-1])
            if count < 1:
                raise FaultSpecError(f"count must be >= 1 in {clause!r}")
            fields = fields[:-1]
        action = fields[-1]
        if action not in ACTIONS:
            raise FaultSpecError(
                f"unknown action {action!r} in {clause!r}; known: {sorted(ACTIONS)}")
        key = ":".join(fields[1:-1]) or "*"
        specs.append(FaultSpec(scope=scope, key=key, action=action, count=count))
    return specs


# parse cache keyed on the raw env string, plus per-spec firing counters;
# counters reset whenever the spec string changes (e.g. between tests).
# Scheduler threads and the shard collector both call fire(); the lock
# keeps count-limited faults from double-firing across threads.
_STATE_LOCK = threading.Lock()
_cache_text: str | None = None
_cache_specs: list[FaultSpec] = []
_fired: dict[int, int] = {}


def _active_locked() -> list[FaultSpec]:
    # caller holds _STATE_LOCK
    global _cache_text, _cache_specs, _fired
    text = os.environ.get(ENV_VAR, "")
    if text != _cache_text:
        _cache_specs = parse_spec(text)
        _cache_text = text
        _fired = {}
    return _cache_specs


def active_faults() -> list[FaultSpec]:
    """The faults currently armed via ``$REPRO_FAULTS`` (parsed, cached)."""
    with _STATE_LOCK:
        return list(_active_locked())


def fire(scope: str, key: str) -> FaultSpec | None:
    """Consume one firing of the first armed fault matching ``scope:key``.

    Returns the matched spec (its count decremented) or None.  This only
    *accounts* for the fault; enacting the action is the caller's job —
    use :func:`maybe_fault` for the common raise/kill/hang behaviours.
    """
    with _STATE_LOCK:
        for idx, spec in enumerate(_active_locked()):
            if spec.scope != scope or not fnmatch.fnmatchcase(key, spec.key):
                continue
            if spec.count is not None and _fired.get(idx, 0) >= spec.count:
                continue
            _fired[idx] = _fired.get(idx, 0) + 1
            return spec
    return None


def maybe_fault(scope: str, key: str) -> str | None:
    """Fire and *enact* any armed fault at ``scope:key``.

    ``crash`` raises :class:`FaultInjected`; ``kill`` hard-exits the
    process without cleanup (the SIGKILL analogue — exercises the
    hung/dead-worker path); ``hang`` sleeps :data:`HANG_SECONDS`.  Data
    actions (``nan``, ``truncate``) are returned to the caller, which
    knows how to corrupt its own payload.  Returns None when nothing
    fired.
    """
    spec = fire(scope, key)
    if spec is None:
        return None
    return enact(spec.action, scope, key)


def enact(action: str, scope: str, key: str) -> str:
    """Carry out a fired fault ``action`` at site ``scope:key``."""
    if action == "crash":
        raise FaultInjected(f"injected crash at {scope}:{key}")
    if action == "kill":
        os._exit(70)  # pragma: no cover - exits the (worker) process
    if action == "hang":
        time.sleep(HANG_SECONDS)
    return action


def poison_nan(x: np.ndarray) -> np.ndarray:
    """A copy of ``x`` with its first element replaced by NaN."""
    x = np.array(x, dtype=np.float64, copy=True)
    if x.size:
        x.flat[0] = np.nan
    return x


#: registry of injection points: (scope, site, actions, key meaning).
#: ``repro faults`` renders this so chaos specs can be written without
#: reading the source.
INJECTION_POINTS: list[tuple[str, str, str, str]] = [
    ("cell", "experiments.table2._eval_cell_task",
     "crash|kill|hang|nan",
     "MODEL/FORMAT (seeds mode: MODEL/FORMAT/sSEED), e.g. ResNet18/INT8"),
    ("cell", "experiments.frontier._eval_cell_task",
     "crash|kill|hang|nan",
     "frontier/MODEL/KIND/WHICH, e.g. frontier/SST-2/uniform/FP(8,4) "
     "(kinds: sens, uniform, mixed)"),
    ("mixed", "quant.mixed.allocate (the drop table)",
     "nan", "allocate/KEY, e.g. allocate/SST-2"),
    ("worker", "resilience.executor.run_cells (fired in the parent)",
     "crash|kill|hang", "task sequence index, e.g. 2"),
    ("artifact", "resilience.store.save_json",
     "truncate", "artifact name, e.g. table2"),
    ("calib", "quant.fakequant.FakeQuantizer.observe",
     "nan", "layer name (as assigned by quantize_model)"),
    ("engine", "engine.executor.LayerEngine.encode_input",
     "nan", "'encode'"),
    ("serve", "serve.scheduler worker, before executing a batch",
     "crash", "batch/MODELKEY, e.g. batch/cnn|MERSIT(8,2)|engine"),
    ("serve", "serve.repository.ModelRepository.resolve (calibration load)",
     "crash", "load/MODELKEY"),
    ("shard", "serve.shard.ShardRouter.submit (fired in the router parent, "
     "enacted in the shard worker)",
     "crash|kill|hang", "req/MODELKEY, e.g. req/cnn|INT8|fakequant"),
    ("shard", "serve.shm.publish (segment header corruption)",
     "truncate", "segment/KEY, e.g. segment/plane/cnn|INT8|fakequant"),
    ("net", "serve.gateway connection accept",
     "drop|delay|garble|close", "'accept'"),
    ("net", "serve.gateway inbound request frame",
     "drop|delay|garble|close", "frame/OP, e.g. frame/infer "
     "(match every op with net:frame*:ACTION)"),
    ("net", "serve.gateway outbound reply frame",
     "drop|delay|garble|close", "reply/OP, e.g. reply/infer"),
]


def describe(specs: list[FaultSpec] | None = None) -> str:
    """Human listing of the injection points and the armed faults."""
    if specs is None:
        specs = active_faults()
    lines = ["fault-injection points (arm via $REPRO_FAULTS, clause "
             "scope[:key]:action[:count]):"]
    for scope, site, actions, key_doc in INJECTION_POINTS:
        lines.append(f"  {scope:9s} {site}")
        lines.append(f"  {'':9s}   actions: {actions};  key: {key_doc}")
    if specs:
        lines.append("armed:")
        lines.extend(f"  {spec.render()}" for spec in specs)
    else:
        lines.append("armed: (none)")
    return "\n".join(lines)
