"""Crash-safe JSON artifact store: atomic writes, checksums, ``.bak`` fallback.

The experiment layer persists every result incrementally (the Table 2
grid saves after each cell), so a ``SIGKILL`` mid-``json.dump`` used to
leave a truncated file that made every later load raise.  This store
closes that hole:

* **atomic write** — serialise to a temp file in the same directory,
  ``fsync``, then ``os.replace`` onto the target: readers only ever see
  the old or the new complete file;
* **envelope** — the payload is wrapped with a schema-version field and
  a SHA-256 checksum of its canonical JSON, so *semantic* corruption
  (bit rot, concurrent writers, hand edits) is detected, not just
  truncation; legacy bare-JSON artifacts still load;
* **last-good ``.bak``** — each save first rotates the current file (if
  it validates) to ``<name>.json.bak``; a corrupt main file falls back
  to it automatically on load.

Serialisation is deterministic (sorted keys, fixed separators), so the
byte-identical-artifact guarantees of the parallel grid fill carry over
unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from . import faults

__all__ = [
    "SCHEMA_VERSION", "ENVELOPE_KEY",
    "payload_checksum", "bak_path", "atomic_write_bytes",
    "save_json", "load_json",
]

#: bumped when the envelope layout changes incompatibly
SCHEMA_VERSION = 1

#: top-level key marking an enveloped artifact file
ENVELOPE_KEY = "__repro_artifact__"


def payload_checksum(payload: object) -> str:
    """SHA-256 over the canonical (sorted, compact) JSON of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def bak_path(path: Path) -> Path:
    """The last-good backup beside ``path`` (``table2.json.bak``)."""
    path = Path(path)
    return path.with_name(path.name + ".bak")


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmp + fsync + rename.

    The temp file lives in the target directory so the final
    ``os.replace`` is a same-filesystem atomic rename.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def _serialize(payload: object) -> bytes:
    envelope = {
        ENVELOPE_KEY: {"schema": SCHEMA_VERSION,
                       "checksum": payload_checksum(payload)},
        "payload": payload,
    }
    return json.dumps(envelope, indent=2, sort_keys=True).encode("utf-8")


def _read_valid(path: Path) -> object | None:
    """The payload of a structurally valid artifact file, else None.

    Accepts both enveloped files (schema + checksum verified) and legacy
    bare-JSON artifacts from before the envelope existed.
    """
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    try:
        obj = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if isinstance(obj, dict) and ENVELOPE_KEY in obj:
        meta = obj[ENVELOPE_KEY]
        if (not isinstance(meta, dict) or "payload" not in obj
                or meta.get("schema") != SCHEMA_VERSION
                or meta.get("checksum") != payload_checksum(obj["payload"])):
            return None
        return obj["payload"]
    return obj  # legacy bare-JSON artifact


def save_json(path: Path, payload: object, name: str | None = None) -> Path:
    """Crash-safely persist ``payload`` as an enveloped JSON artifact.

    The previous file, when it validates, is rotated to ``.bak`` first —
    so even a fault *between* the rotate and the final rename leaves a
    recoverable last-good copy.  ``name`` keys the ``artifact`` fault
    scope (defaults to the file stem).
    """
    path = Path(path)
    data = _serialize(payload)
    if _read_valid(path) is not None:
        os.replace(path, bak_path(path))
    if faults.maybe_fault("artifact", name or path.stem) == "truncate":
        # simulate dying mid-write: a naive non-atomic write, cut short
        with open(path, "wb") as f:
            f.write(data[: len(data) // 2])
        return path
    atomic_write_bytes(path, data)
    return path


def load_json(path: Path) -> tuple[object | None, str]:
    """Load an artifact with corruption fallback; returns ``(payload, status)``.

    Status is one of:

    * ``"ok"`` — the main file validated;
    * ``"recovered"`` — the main file was corrupt or missing mid-rotation
      and the ``.bak`` validated instead;
    * ``"corrupt"`` — a file exists but nothing validated (payload None);
    * ``"missing"`` — neither file exists (payload None).
    """
    path = Path(path)
    payload = _read_valid(path)
    if payload is not None:
        return payload, "ok"
    backup = _read_valid(bak_path(path))
    if backup is not None:
        return backup, "recovered"
    if path.exists() or bak_path(path).exists():
        return None, "corrupt"
    return None, "missing"
