"""Fault-tolerant experiment runtime: the discipline under the grids.

The Table 2 grid is the most expensive computation in the repo; this
package makes its runtime survive the failures that real long runs hit,
and makes every recovery path testable:

* :mod:`~repro.resilience.store` — crash-safe artifact persistence:
  atomic tmp+fsync+rename writes, checksummed schema-versioned
  envelopes, automatic fallback to the last-good ``.bak`` on corruption;
* :mod:`~repro.resilience.executor` — resilient grid execution:
  per-cell deadlines (hung-worker detection), bounded retry with
  exponential backoff, and structured ``error`` entries for cells that
  cannot be computed, so the rest of the grid still completes and a
  later run re-attempts only the errored/missing cells;
* :mod:`~repro.resilience.pool` — the persistent warm-worker fabric
  under the executor's pool path: long-lived worker processes that
  survive across retry waves and ``run_cells`` calls, one-time
  per-worker warm-up initializers (plus parent-side preloading for
  copy-on-write sharing on fork platforms), work-stealing dispatch with
  completion-order collection, and selective respawn of hung or dead
  workers;
* :mod:`~repro.resilience.numerics` — diagnostic
  :class:`~repro.resilience.numerics.NumericsError` guards that stop
  NaN/Inf calibration statistics from becoming plausible-looking grid
  cells;
* :mod:`~repro.resilience.faults` — the deterministic ``REPRO_FAULTS``
  injection harness (``repro faults`` lists the points) that exercises
  all of the above from tests (``scripts/check.sh --chaos``).
"""

from .executor import error_entry, is_error_entry, run_cells
from .faults import FaultInjected, FaultSpec, FaultSpecError
from .numerics import NumericsError, ensure_finite
from .pool import (
    WorkerPool, collect_worker_stats, get_pool, register_stats_provider,
    shutdown_all,
)
from .store import load_json, save_json

__all__ = [
    "error_entry", "is_error_entry", "run_cells",
    "WorkerPool", "get_pool", "shutdown_all",
    "register_stats_provider", "collect_worker_stats",
    "FaultInjected", "FaultSpec", "FaultSpecError",
    "NumericsError", "ensure_finite",
    "load_json", "save_json",
]
