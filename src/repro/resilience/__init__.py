"""Fault-tolerant experiment runtime: the discipline under the grids.

The Table 2 grid is the most expensive computation in the repo; this
package makes its runtime survive the failures that real long runs hit,
and makes every recovery path testable:

* :mod:`~repro.resilience.store` — crash-safe artifact persistence:
  atomic tmp+fsync+rename writes, checksummed schema-versioned
  envelopes, automatic fallback to the last-good ``.bak`` on corruption;
* :mod:`~repro.resilience.executor` — resilient grid execution:
  per-cell deadlines (hung-worker detection), bounded retry with
  exponential backoff, and structured ``error`` entries for cells that
  cannot be computed, so the rest of the grid still completes and a
  later run re-attempts only the errored/missing cells;
* :mod:`~repro.resilience.numerics` — diagnostic
  :class:`~repro.resilience.numerics.NumericsError` guards that stop
  NaN/Inf calibration statistics from becoming plausible-looking grid
  cells;
* :mod:`~repro.resilience.faults` — the deterministic ``REPRO_FAULTS``
  injection harness (``repro faults`` lists the points) that exercises
  all of the above from tests (``scripts/check.sh --chaos``).
"""

from .executor import error_entry, is_error_entry, run_cells
from .faults import FaultInjected, FaultSpec, FaultSpecError
from .numerics import NumericsError, ensure_finite
from .store import load_json, save_json

__all__ = [
    "error_entry", "is_error_entry", "run_cells",
    "FaultInjected", "FaultSpec", "FaultSpecError",
    "NumericsError", "ensure_finite",
    "load_json", "save_json",
]
