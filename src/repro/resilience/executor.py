"""Resilient grid execution: timeouts, bounded retry, graceful degradation.

:func:`run_cells` is the fault-disciplined replacement for the bare
``pool.imap`` loop the Table 2 grid used to run on.  Guarantees:

* **deterministic commit order** — results are committed in submission
  order regardless of completion order, so a parallel fill produces an
  artifact byte-identical to a serial one;
* **per-cell deadline** — with ``timeout`` set, a cell whose worker
  hangs (or was hard-killed) is detected; the pool is torn down and
  rebuilt so one stuck process cannot wedge the whole grid;
* **bounded retry** — transient failures (a crashed worker, a lost
  result) are retried up to ``retries`` times with exponential backoff;
* **graceful degradation** — a cell that exhausts its retries, or
  raises a deterministic :class:`~repro.resilience.numerics.NumericsError`,
  resolves to a structured :func:`error_entry` instead of killing the
  run; the remaining cells complete and a later run re-attempts only the
  errored/missing cells.

``KeyboardInterrupt`` propagates immediately (after pool teardown): the
caller's incremental commits mean an interrupted run still leaves a
loadable artifact behind.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from . import faults
from .numerics import NumericsError

__all__ = ["error_entry", "is_error_entry", "run_cells"]


def error_entry(kind: str, message: str, attempts: int) -> dict:
    """The structured artifact entry for a cell that could not be computed."""
    return {"error": {"kind": kind, "message": message, "attempts": attempts}}


def is_error_entry(value: object) -> bool:
    """True iff ``value`` is a structured error entry (vs a real score)."""
    return isinstance(value, dict) and "error" in value


def _invoke(worker, seq: int, task, fault_action: str | None):
    """Pool-side shim: enact any parent-fired ``worker`` fault, then run."""
    if fault_action is not None:
        faults.enact(fault_action, "worker", str(seq))
    return worker(task)


@dataclass
class _Cell:
    task: object
    attempts: int = 0
    failure: tuple[str, str] | None = None  # (kind, message) of last failure


def _default_context():
    """Fork when available (shares loaded caches with workers for free)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def run_cells(
    tasks: Sequence,
    worker: Callable,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.5,
    backoff_cap: float = 8.0,
    commit: Callable[[int, object], None] | None = None,
    ctx=None,
    sleep: Callable[[float], None] = time.sleep,
) -> list:
    """Run ``worker(task)`` for every task; never lose the whole grid.

    Returns one result per task, in task order: the worker's return
    value, or an :func:`error_entry` for cells that exhausted ``retries``
    (kind ``"crash"``/``"timeout"``) or failed deterministically (kind
    ``"numerics"``).  ``commit(index, result)`` is called in strict task
    order as results resolve — the incremental-persistence hook.

    ``timeout`` (seconds) bounds the wait for each cell's result and is
    enforced only on the pool path (``jobs > 1``); a timed-out wave
    tears the pool down (freeing hung workers) and resubmits the
    unresolved cells.  ``backoff`` doubles per retry, capped at
    ``backoff_cap``; ``sleep`` is injectable for tests.
    """
    cells = [_Cell(task) for task in tasks]
    results: list = [None] * len(cells)
    if jobs <= 1:
        _run_serial(cells, worker, results, retries, backoff, backoff_cap,
                    commit, sleep)
    else:
        _run_pool(cells, worker, results, jobs, timeout, retries, backoff,
                  backoff_cap, commit, ctx or _default_context(), sleep)
    return results


def _delay(backoff: float, backoff_cap: float, attempt: int) -> float:
    return min(backoff_cap, backoff * (2.0 ** (attempt - 1)))


def _run_serial(cells, worker, results, retries, backoff, backoff_cap,
                commit, sleep) -> None:
    for i, cell in enumerate(cells):
        while True:
            cell.attempts += 1
            fault = faults.fire("worker", str(i))
            try:
                value = _invoke(worker, i, cell.task,
                                fault.action if fault else None)
            except NumericsError as exc:
                # deterministic numeric failure: retrying cannot help
                results[i] = error_entry("numerics", str(exc), cell.attempts)
                break
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # lint: allow[broad-except] retry classification of arbitrary worker failures
                cell.failure = ("crash", f"{type(exc).__name__}: {exc}")
                if cell.attempts > retries:
                    results[i] = error_entry("crash", cell.failure[1],
                                             cell.attempts)
                    break
                sleep(_delay(backoff, backoff_cap, cell.attempts))
            else:
                results[i] = value
                break
        if commit is not None:
            commit(i, results[i])


def _run_pool(cells, worker, results, jobs, timeout, retries, backoff,
              backoff_cap, commit, ctx, sleep) -> None:
    pending = set(range(len(cells)))
    committed = 0

    def flush_commits():
        nonlocal committed
        while committed < len(cells) and committed not in pending:
            if commit is not None:
                commit(committed, results[committed])
            committed += 1

    wave = 0
    while pending:
        if wave:
            sleep(_delay(backoff, backoff_cap, wave))
        wave += 1
        order = sorted(pending)
        pool = ctx.Pool(processes=min(jobs, len(order)))
        try:
            # worker-scope faults fire in the parent so their counts
            # survive pool restarts; the action is enacted in the child
            handles = []
            for i in order:
                fault = faults.fire("worker", str(i))
                handles.append((i, pool.apply_async(
                    _invoke, (worker, i, cells[i].task,
                              fault.action if fault else None))))
            degraded = False  # a worker may be hung/dead: stop blocking
            for i, handle in handles:
                if degraded and not handle.ready():
                    continue  # no attempt charged; fresh pool next wave
                cell = cells[i]
                try:
                    value = handle.get(timeout)
                except multiprocessing.TimeoutError:
                    cell.attempts += 1
                    cell.failure = ("timeout",
                                    f"no result within {timeout}s "
                                    f"(worker hung or killed)")
                    degraded = True
                except NumericsError as exc:
                    results[i] = error_entry("numerics", str(exc),
                                             cell.attempts + 1)
                    pending.discard(i)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:  # lint: allow[broad-except] retry classification of arbitrary worker failures
                    cell.attempts += 1
                    cell.failure = ("crash", f"{type(exc).__name__}: {exc}")
                else:
                    results[i] = value
                    pending.discard(i)
                flush_commits()
        finally:
            pool.terminate()
            pool.join()
        for i in sorted(pending):
            cell = cells[i]
            if cell.failure is not None and cell.attempts > retries:
                results[i] = error_entry(cell.failure[0], cell.failure[1],
                                         cell.attempts)
                pending.discard(i)
        flush_commits()
