"""Resilient grid execution: timeouts, bounded retry, graceful degradation.

:func:`run_cells` is the fault-disciplined replacement for the bare
``pool.imap`` loop the Table 2 grid used to run on.  Guarantees:

* **deterministic commit order** — results are committed in submission
  order regardless of completion order, so a parallel fill produces an
  artifact byte-identical to a serial one;
* **per-cell deadline** — with ``timeout`` set, each cell's deadline is
  measured from the moment it is handed to a worker; a cell whose worker
  hangs (or was hard-killed) is detected when *its own* deadline expires
  and only that worker is killed and respawned — the rest of the pool
  keeps computing;
* **bounded retry** — transient failures (a crashed worker, a lost
  result) are retried up to ``retries`` times with exponential backoff;
* **graceful degradation** — a cell that exhausts its retries, or
  raises a deterministic :class:`~repro.resilience.numerics.NumericsError`,
  resolves to a structured :func:`error_entry` instead of killing the
  run; the remaining cells complete and a later run re-attempts only the
  errored/missing cells.

The pool path runs on the persistent warm-worker fabric
(:mod:`repro.resilience.pool`): worker processes survive across retry
waves *and* across ``run_cells`` calls, cells are dispatched to whichever
worker is idle (work stealing), and results are collected in completion
order — a straggler cannot serialize collection or force a full-pool
teardown.  ``initializer``/``initargs`` prime each worker once with
expensive read-only state, and ``preload`` runs in the parent *before*
the first worker forks so fork children share the warm pages
copy-on-write.  :data:`last_run_stats` reports the run's pool and
warm-cache counters.

``KeyboardInterrupt`` propagates immediately (after the in-flight
workers are respawned so the persistent pool stays clean): the caller's
incremental commits mean an interrupted run still leaves a loadable
artifact behind.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import time
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from . import faults, pool as pool_mod
from .numerics import NumericsError

__all__ = ["error_entry", "is_error_entry", "run_cells", "last_run_stats"]

#: statistics of the most recent :func:`run_cells` call in this process:
#: ``mode`` ("serial"/"pool"), ``jobs``, ``worker_stats`` (per-run deltas
#: of the warm-cache counters, e.g. ``zoo_warm_hits``), and on the pool
#: path ``worker_pids``, ``pool_reused``, ``respawns`` and ``dispatches``.
last_run_stats: dict = {}


def error_entry(kind: str, message: str, attempts: int) -> dict:
    """The structured artifact entry for a cell that could not be computed."""
    return {"error": {"kind": kind, "message": message, "attempts": attempts}}


def is_error_entry(value: object) -> bool:
    """True iff ``value`` is a structured error entry (vs a real score)."""
    return isinstance(value, dict) and "error" in value


def _invoke(worker, seq: int, task, fault_action: str | None):
    """Serial-path shim: enact any parent-fired ``worker`` fault, then run."""
    if fault_action is not None:
        faults.enact(fault_action, "worker", str(seq))
    return worker(task)


@dataclass
class _Cell:
    task: object
    attempts: int = 0
    failure: tuple[str, str] | None = None  # (kind, message) of last failure


def _default_context():
    """Fork when available (shares preloaded caches with workers for free)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def run_cells(
    tasks: Sequence,
    worker: Callable,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.5,
    backoff_cap: float = 8.0,
    commit: Callable[[int, object], None] | None = None,
    ctx=None,
    sleep: Callable[[float], None] = time.sleep,
    initializer: Callable | None = None,
    initargs: Sequence = (),
    preload: Callable[[], None] | None = None,
) -> list:
    """Run ``worker(task)`` for every task; never lose the whole grid.

    Returns one result per task, in task order: the worker's return
    value, or an :func:`error_entry` for cells that exhausted ``retries``
    (kind ``"crash"``/``"timeout"``) or failed deterministically (kind
    ``"numerics"``).  ``commit(index, result)`` is called in strict task
    order as results resolve — the incremental-persistence hook.

    ``timeout`` (seconds) bounds each cell from the moment it is handed
    to a worker and is enforced only on the pool path (``jobs > 1``); a
    timed-out cell gets its worker killed and selectively respawned while
    the rest of the pool keeps computing.  ``backoff`` doubles per retry,
    capped at ``backoff_cap``; ``sleep`` is injectable for tests.

    ``initializer(*initargs)`` runs once per worker process (persistent
    workers remember which initializers they have run); ``preload()``
    runs in the parent before the pool's first worker is created, so on
    fork platforms the children inherit the warmed caches copy-on-write.
    Both are optimizations: a failing warm-up degrades to cold cells
    with a one-line notice, never to a failed run.
    """
    cells = [_Cell(task) for task in tasks]
    results: list = [None] * len(cells)
    if jobs <= 1:
        _run_serial(cells, worker, results, retries, backoff, backoff_cap,
                    commit, sleep)
    else:
        _run_pool(cells, worker, results, jobs, timeout, retries, backoff,
                  backoff_cap, commit, ctx or _default_context(), sleep,
                  initializer, initargs, preload)
    return results


def _delay(backoff: float, backoff_cap: float, attempt: int) -> float:
    return min(backoff_cap, backoff * (2.0 ** (attempt - 1)))


def _set_last_run_stats(stats: dict) -> None:
    global last_run_stats
    last_run_stats = stats


def _run_serial(cells, worker, results, retries, backoff, backoff_cap,
                commit, sleep) -> None:
    stats_before = pool_mod.collect_worker_stats()
    for i, cell in enumerate(cells):
        while True:
            cell.attempts += 1
            fault = faults.fire("worker", str(i))
            try:
                value = _invoke(worker, i, cell.task,
                                fault.action if fault else None)
            except NumericsError as exc:
                # deterministic numeric failure: retrying cannot help
                results[i] = error_entry("numerics", str(exc), cell.attempts)
                break
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # lint: allow[broad-except] retry classification of arbitrary worker failures
                cell.failure = ("crash", f"{type(exc).__name__}: {exc}")
                if cell.attempts > retries:
                    results[i] = error_entry("crash", cell.failure[1],
                                             cell.attempts)
                    break
                sleep(_delay(backoff, backoff_cap, cell.attempts))
            else:
                results[i] = value
                break
        if commit is not None:
            commit(i, results[i])
    _set_last_run_stats({
        "mode": "serial", "jobs": 1,
        "worker_stats": pool_mod.diff_stats(pool_mod.collect_worker_stats(),
                                            stats_before),
    })


def _run_pool(cells, worker, results, jobs, timeout, retries, backoff,
              backoff_cap, commit, ctx, sleep, initializer, initargs,
              preload) -> None:
    if preload is not None:
        try:
            preload()  # warm the parent before the first fork (CoW sharing)
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # lint: allow[broad-except] a failed warm-up degrades to cold workers, never a failed run
            print(f"run_cells: parent preload failed "
                  f"({type(exc).__name__}: {exc}); continuing cold", flush=True)
    pool = pool_mod.get_pool(ctx)
    pool_reused = bool(pool.workers)
    n_workers = min(jobs, max(1, len(cells)))
    leased = pool.lease(n_workers)
    init_key = (pool.init_key(initializer, initargs)
                if initializer is not None else None)

    unresolved = set(range(len(cells)))
    fresh = deque(range(len(cells)))      # never-dispatched cells
    retry_ready: deque[int] = deque()     # retries whose backoff elapsed
    retry_wait: list = []                 # heap of (ready_at, tie, seq)
    tie = itertools.count()
    committed = 0
    respawns = dispatches = 0

    def flush_commits():
        nonlocal committed
        while committed < len(cells) and committed not in unresolved:
            if commit is not None:
                commit(committed, results[committed])
            committed += 1

    def fail(seq: int, kind: str, message: str) -> None:
        cell = cells[seq]
        cell.attempts += 1
        cell.failure = (kind, message)
        if cell.attempts > retries:
            results[seq] = error_entry(kind, message, cell.attempts)
            unresolved.discard(seq)
        else:
            heapq.heappush(retry_wait,
                           (time.monotonic()
                            + _delay(backoff, backoff_cap, cell.attempts),
                            next(tie), seq))

    def init_degraded(key: str | None, how: str) -> None:
        if key is not None and key not in pool.failed_inits:
            pool.failed_inits.add(key)
            print(f"run_cells: worker initializer {how}; "
                  f"continuing with cold workers", flush=True)

    def replace(w, idx: int):
        nonlocal respawns
        new_w = pool.respawn(w)
        leased[idx] = new_w
        respawns += 1
        return new_w

    def next_dispatchable(now: float):
        if fresh:
            return fresh.popleft()
        if retry_ready:
            return retry_ready.popleft()
        while retry_wait and retry_wait[0][0] <= now:
            retry_ready.append(heapq.heappop(retry_wait)[2])
        return retry_ready.popleft() if retry_ready else None

    def handle_message(w, msg) -> None:
        kind = msg[0]
        if kind == "init_done":
            _, key, error = msg
            w.inits.add(key)
            w.busy_seq = w.init_key = None
            if error is not None:
                init_degraded(key, f"failed ({error})")
            return
        _, seq, status, payload, stats = msg
        if seq != w.busy_seq:  # stale result from an aborted dispatch
            return
        w.latest_stats = stats
        w.busy_seq = None
        cell = cells[seq]
        if status == "ok":
            results[seq] = payload
            unresolved.discard(seq)
        elif status == "numerics":
            results[seq] = error_entry("numerics", payload, cell.attempts + 1)
            unresolved.discard(seq)
        else:
            fail(seq, "crash", payload)

    try:
        while unresolved:
            now = time.monotonic()
            # dispatch: fill every idle leased worker (work stealing)
            for w in leased:
                if w.busy_seq is not None:
                    continue
                if (init_key is not None and init_key not in w.inits
                        and init_key not in pool.failed_inits):
                    pool.send_init(w, init_key, initializer, initargs,
                                   timeout, now)
                    continue
                seq = next_dispatchable(now)
                if seq is None:
                    break
                fault = faults.fire("worker", str(seq))
                try:
                    pool.send_task(w, seq, worker, cells[seq].task,
                                   fault.action if fault else None,
                                   timeout, now)
                except (OSError, ValueError):
                    # worker died between runs; respawn and requeue
                    replace(w, leased.index(w))
                    fresh.appendleft(seq)
                    continue
                dispatches += 1

            busy = [w for w in leased if w.busy_seq is not None]
            if not busy:
                if retry_wait:
                    # nothing in flight: honour the earliest backoff, then
                    # treat it as elapsed (sleep is injectable in tests)
                    ready_at, _, seq = heapq.heappop(retry_wait)
                    sleep(max(0.0, ready_at - time.monotonic()))
                    retry_ready.append(seq)
                    continue
                break  # every unresolved cell just resolved via fail()

            # collect in completion order: wait on whichever pipe is ready
            wait_timeout = None
            if timeout is not None:
                wait_timeout = max(
                    0.0, min(w.deadline for w in busy) - time.monotonic())
            ready = pool_mod.wait([w.conn for w in busy], wait_timeout)
            for conn in ready:
                w = next(x for x in busy if x.conn is conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # the worker died mid-cell (hard kill, lost pipe)
                    seq, key = w.busy_seq, w.init_key
                    replace(w, leased.index(w))
                    if seq == pool_mod.INIT_SEQ:
                        init_degraded(key, "died")
                    elif seq is not None:
                        fail(seq, "crash",
                             "worker process died before returning a result")
                    continue
                handle_message(w, msg)

            # deadline sweep: only the genuinely hung worker is respawned
            if timeout is not None:
                now = time.monotonic()
                for idx, w in enumerate(leased):
                    if w.busy_seq is None or now < w.deadline:
                        continue
                    seq, key = w.busy_seq, w.init_key
                    replace(w, idx)
                    if seq == pool_mod.INIT_SEQ:
                        init_degraded(key, "hung")
                    else:
                        fail(seq, "timeout",
                             f"no result within {timeout}s "
                             f"(worker hung or killed)")
            flush_commits()
        flush_commits()
    except BaseException:  # lint: allow[broad-except] re-raised below; pool cleanup must cover KeyboardInterrupt too
        # leave the persistent pool clean: any worker still computing an
        # abandoned cell is replaced so its late result cannot leak into
        # the next run
        for idx, w in enumerate(leased):
            if w.busy_seq is not None:
                replace(w, idx)
        raise
    finally:
        worker_stats: dict = {}
        for w in leased:
            pool_mod.merge_stats(
                worker_stats,
                pool_mod.diff_stats(w.latest_stats, w.stats_baseline))
        _set_last_run_stats({
            "mode": "pool", "jobs": jobs, "pool_reused": pool_reused,
            "respawns": respawns, "dispatches": dispatches,
            "worker_pids": [w.pid for w in leased],
            "worker_stats": worker_stats,
        })
