"""Neural-network operations on :class:`~repro.autograd.tensor.Tensor`.

Convolution and pooling use stride-trick window views with scatter-add
backward passes; everything is batched and vectorised.  Activation
functions cover the zoo's needs: ReLU6 (MobileNetV2), hard-swish/hard-
sigmoid (MobileNetV3), SiLU (EfficientNet) and GELU (BERT).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "linear", "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d",
    "relu", "relu6", "hardsigmoid", "hardswish", "silu", "gelu", "softmax",
    "log_softmax", "cross_entropy", "embedding", "dropout",
]


# ----------------------------------------------------------------------
# dense / conv primitives
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight.T + bias`` with weight of shape (out, in)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def _window_view(x: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """(N,C,H,W) -> (N,C,OH,OW,KH,KW) strided window view (read-only)."""
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    return windows[:, :, ::sh, ::sw]


def _conv_out_size(size: int, k: int, s: int, p: int) -> int:
    return (size + 2 * p - k) // s + 1


def _conv2d_pointwise(x: Tensor, weight: Tensor, bias: Tensor | None,
                      groups: int) -> Tensor:
    """Fast path for 1x1 stride-1 unpadded convolution (a channel matmul)."""
    n, c_in, h, w = x.shape
    c_out = weight.shape[0]
    og = c_out // groups
    c_g = c_in // groups
    p = h * w
    x4 = x.data.reshape(n, groups, c_g, p)
    w3 = weight.data.reshape(groups, og, c_g)
    out_data = (w3 @ x4).reshape(n, c_out, h, w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g):
        g4 = g.reshape(n, groups, og, p)
        if weight.requires_grad:
            dw = np.einsum("ngop,ngcp->goc", g4, x4, optimize=True)
            Tensor._accum(weight, dw.reshape(weight.data.shape))
        if bias is not None and bias.requires_grad:
            Tensor._accum(bias, g.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            dx = (w3.transpose(0, 2, 1) @ g4).reshape(n, c_in, h, w)
            Tensor._accum(x, dx)

    return Tensor._make(out_data, parents, backward)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution (cross-correlation), NCHW layout.

    ``weight`` has shape ``(C_out, C_in // groups, KH, KW)``; ``groups ==
    C_in == C_out`` gives a depthwise convolution (MobileNet/EfficientNet).
    """
    n, c_in, h, w = x.shape
    c_out, c_g, kh, kw = weight.shape
    if c_in % groups or c_out % groups:
        raise ValueError(f"channels ({c_in}->{c_out}) not divisible by groups={groups}")
    if c_g != c_in // groups:
        raise ValueError(f"weight expects {c_g * groups} input channels, got {c_in}")
    if kh == 1 and kw == 1 and stride == 1 and padding == 0:
        return _conv2d_pointwise(x, weight, bias, groups)
    sh = sw = stride
    oh = _conv_out_size(h, kh, sh, padding)
    ow = _conv_out_size(w, kw, sw, padding)
    og = c_out // groups

    x_pad = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))) \
        if padding else x.data
    p = oh * ow
    k = c_g * kh * kw
    # im2col with a single copy: (N,C,OH,OW,KH,KW) view -> (N,G,P,K)
    windows = _window_view(x_pad, kh, kw, sh, sw)
    windows = windows.reshape(n, groups, c_g, oh, ow, kh, kw)  # still a view
    cols = windows.transpose(0, 1, 3, 4, 2, 5, 6).reshape(n, groups, p, k)
    w_mat = weight.data.reshape(groups, og, k).transpose(0, 2, 1)  # (G, K, Og)

    out_data = cols @ w_mat                               # (N, G, P, Og)
    out_data = out_data.transpose(0, 1, 3, 2).reshape(n, c_out, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g):
        g4 = g.reshape(n, groups, og, p)                  # (N, G, Og, P)
        if weight.requires_grad:
            dw = np.einsum("ngop,ngpk->gok", g4, cols, optimize=True)
            Tensor._accum(weight, dw.reshape(c_out, c_g, kh, kw))
        if bias is not None and bias.requires_grad:
            Tensor._accum(bias, g.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            dcols = w_mat @ g4                            # (N, G, K, P)
            # view back to (N, G, Cg, KH, KW, OH, OW) without materialising
            dwin = dcols.reshape(n, groups, c_g, kh, kw, oh, ow)
            dx_pad = np.zeros_like(x_pad)
            dx_view = dx_pad.reshape(n, groups, c_g, *x_pad.shape[2:])
            for u in range(kh):
                for v in range(kw):
                    dx_view[:, :, :, u:u + sh * oh:sh, v:v + sw * ow:sw] += \
                        dwin[:, :, :, u, v]
            if padding:
                dx = dx_pad[:, :, padding:padding + h, padding:padding + w]
            else:
                dx = dx_pad
            Tensor._accum(x, dx)

    return Tensor._make(out_data, parents, backward)


def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling with square window; default stride = kernel."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    windows = _window_view(x.data, kernel, kernel, stride, stride)
    out_data = windows.max(axis=(4, 5))

    def backward(g):
        mask = windows == out_data[..., None, None]
        counts = mask.sum(axis=(4, 5), keepdims=True)
        dwin = g[..., None, None] * mask / counts
        dx = np.zeros_like(x.data)
        for u in range(kernel):
            for v in range(kernel):
                dx[:, :, u:u + stride * oh:stride, v:v + stride * ow:stride] += dwin[..., u, v]
        Tensor._accum(x, dx)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Average pooling with square window; default stride = kernel."""
    stride = kernel if stride is None else stride
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    windows = _window_view(x.data, kernel, kernel, stride, stride)
    out_data = windows.mean(axis=(4, 5))
    inv = 1.0 / (kernel * kernel)

    def backward(g):
        dx = np.zeros_like(x.data)
        gi = g * inv
        for u in range(kernel):
            for v in range(kernel):
                dx[:, :, u:u + stride * oh:stride, v:v + stride * ow:stride] += gi
        Tensor._accum(x, dx)

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """(N,C,H,W) -> (N,C): spatial mean."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# activations
# ----------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    """max(x, 0)."""
    return x.relu()


def relu6(x: Tensor) -> Tensor:
    """min(max(x, 0), 6) — MobileNetV2's bounded activation."""
    return x.clip(0.0, 6.0)


def hardsigmoid(x: Tensor) -> Tensor:
    """piecewise-linear sigmoid: clip(x/6 + 1/2, 0, 1)."""
    return (x * (1.0 / 6.0) + 0.5).clip(0.0, 1.0)


def hardswish(x: Tensor) -> Tensor:
    """x * hardsigmoid(x) — MobileNetV3's activation."""
    return x * hardsigmoid(x)


def silu(x: Tensor) -> Tensor:
    """x * sigmoid(x) (a.k.a. swish) — EfficientNet's activation."""
    return x * x.sigmoid()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation) — BERT's activation."""
    inner = (x + (x * x * x) * 0.044715) * 0.7978845608028654
    return x * (inner.tanh() + 1.0) * 0.5


# ----------------------------------------------------------------------
# softmax / losses
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of (N, K) logits against integer labels (N,)."""
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    n = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(n), labels]
    return -picked.mean()


def embedding(weight: Tensor, ids: np.ndarray) -> Tensor:
    """Row lookup ``weight[ids]`` with scatter-add backward."""
    return weight[np.asarray(ids)]


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * mask
