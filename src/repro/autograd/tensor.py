"""Reverse-mode automatic differentiation over numpy arrays.

This is the training substrate for the model zoo: the paper evaluates PTQ on
*pretrained* networks, so we need to pretrain miniature networks from
scratch, which requires gradients.  The design is a tape-based, define-by-run
graph (micrograd-style) with fully vectorised numpy kernels:

* :class:`Tensor` wraps an ``np.ndarray`` plus an optional gradient.
* Every operation records a backward closure and its parent tensors.
* :meth:`Tensor.backward` topologically sorts the tape and accumulates
  gradients, with correct unbroadcasting for numpy-style broadcasting.

Only the ops the zoo architectures need are implemented, but each is
general (arbitrary shapes/axes) and is covered by finite-difference
gradient checks in ``tests/test_autograd_gradcheck.py``.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled",
    "batch_invariant_matmul", "batch_invariant_enabled",
]

# The grad-enabled flag is thread-local: serving workers run inference
# under ``no_grad`` concurrently, and a process-global flag would let two
# workers interleave enter/exit and leave gradient mode corrupted for
# every other thread (including a training loop).  Each thread starts
# with gradients enabled and toggles only its own view.
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self):
        self._prev = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc):
        _GRAD_STATE.enabled = self._prev
        return False


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd tape (this thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


# ----------------------------------------------------------------------
# batch-invariant matmul mode
# ----------------------------------------------------------------------
# BLAS results are not row-stable across GEMM heights: the row ``x @ W``
# computed inside a (32, k) @ (k, n) product differs in the last ulp from
# the same row computed as (1, k) @ (k, n), because OpenBLAS picks
# different micro-kernels (and accumulation orders) per output height.
# The serving layer (repro.serve) promises batched results bit-identical
# to serial single-sample inference, so under this mode every 2-D matmul
# whose leading axis is a batch axis is evaluated one row at a time —
# each row then goes through exactly the (1, k) @ (k, n) kernel a
# single-sample forward would use.  Broadcast (>= 3-D) matmuls already
# run one fixed-shape GEMM per sample and are left untouched.  The flag
# is thread-local: scheduler workers batch under the mode while the rest
# of the process keeps the fast default.
_BATCH_INVARIANT = threading.local()


def batch_invariant_enabled() -> bool:
    """Whether 2-D matmuls are currently forced row-stable (this thread)."""
    return getattr(_BATCH_INVARIANT, "on", False)


class batch_invariant_matmul:
    """Context manager forcing row-stable 2-D matmuls on this thread."""

    def __enter__(self):
        self._prev = batch_invariant_enabled()
        _BATCH_INVARIANT.on = True
        return self

    def __exit__(self, *exc):
        _BATCH_INVARIANT.on = self._prev
        return False


def _matmul_data(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` honouring the batch-invariant mode for 2-D operands."""
    if (a.ndim == 2 and b.ndim == 2 and a.shape[0] > 1
            and batch_invariant_enabled()):
        return np.concatenate([a[i:i + 1] @ b for i in range(a.shape[0])],
                              axis=0)
    return a @ b


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # sum away leading axes added by broadcasting
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum along axes that were size-1 in the original
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    arr = np.asarray(value)
    if arr.dtype not in (np.float32, np.float64):
        arr = arr.astype(np.float32)
    return arr


class Tensor:
    """A numpy array with an autograd tape entry.

    Arithmetic operators accept Tensors, numpy arrays and python scalars;
    non-Tensor operands are treated as constants.
    """

    __slots__ = ("_data", "_version", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # keep numpy from hijacking ndarray (op) Tensor

    def __init__(self, data, requires_grad: bool = False):
        self._version = 0
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # data versioning
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value) -> None:
        # Rebinding .data (optimizer steps, load_state_dict, augmented
        # assignment like ``p.data += g``) bumps the version, which is the
        # invalidation signal for caches keyed on tensor contents (e.g.
        # FakeQuantizer.quantize_cached).  In-place writes through the array
        # (``t.data[...] = v``) bypass the setter: callers doing that must
        # call bump_version() themselves.
        self._data = _as_array(value)
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic counter incremented on every rebinding of ``data``."""
        return self._version

    def bump_version(self) -> None:
        """Mark the tensor's contents as changed after an in-place array write."""
        self._version += 1

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    @staticmethod
    def as_tensor(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad})\n{self.data!r}"

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without grad is only valid for scalars")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # topological order of the reachable tape
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited:
                    stack.append((p, False))

        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _accum(t: "Tensor", grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad), t.data.shape)
        t.grad = grad if t.grad is None else t.grad + grad

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data + other.data

        def backward(g):
            if self.requires_grad:
                Tensor._accum(self, g)
            if other.requires_grad:
                Tensor._accum(other, g)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g):
            Tensor._accum(self, -g)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor.as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data * other.data

        def backward(g):
            if self.requires_grad:
                Tensor._accum(self, g * other.data)
            if other.requires_grad:
                Tensor._accum(other, g * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data / other.data

        def backward(g):
            if self.requires_grad:
                Tensor._accum(self, g / other.data)
            if other.requires_grad:
                Tensor._accum(other, -g * self.data / (other.data ** 2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(g):
            Tensor._accum(self, g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = _matmul_data(self.data, other.data)

        def backward(g):
            if self.requires_grad:
                if other.data.ndim == 1:
                    Tensor._accum(self, np.expand_dims(g, -1) * other.data)
                else:
                    ga = g @ np.swapaxes(other.data, -1, -2)
                    Tensor._accum(self, _unbroadcast(ga, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    Tensor._accum(other, np.outer(self.data, g))
                else:
                    gb = np.swapaxes(self.data, -1, -2) @ g
                    Tensor._accum(other, _unbroadcast(gb, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g):
            Tensor._accum(self, g * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(g):
            Tensor._accum(self, g / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g):
            Tensor._accum(self, g / (2.0 * out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g):
            Tensor._accum(self, g * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            Tensor._accum(self, g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g):
            Tensor._accum(self, g * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        """Hard clip; gradient passes only inside the open interval."""
        out_data = np.clip(self.data, lo, hi)
        mask = (self.data > lo) & (self.data < hi)

        def backward(g):
            Tensor._accum(self, g * mask)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(g):
            Tensor._accum(self, g * sign)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def maximum(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = np.maximum(self.data, other.data)
        take_self = self.data >= other.data

        def backward(g):
            if self.requires_grad:
                Tensor._accum(self, g * take_self)
            if other.requires_grad:
                Tensor._accum(other, g * ~take_self)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            grad = np.asarray(g)
            if not keepdims and axis is not None:
                grad = np.expand_dims(grad, axis)
            Tensor._accum(self, np.broadcast_to(grad, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else np.prod(
            [self.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))])
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            grad = np.asarray(g)
            expanded = out_data
            if not keepdims and axis is not None:
                grad = np.expand_dims(grad, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = self.data == expanded
            # split gradient across ties, matching the subgradient convention
            counts = mask.sum(axis=axis, keepdims=True)
            Tensor._accum(self, grad * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(g):
            Tensor._accum(self, g.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(g):
            Tensor._accum(self, g.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        shape = self.data.shape
        dtype = self.data.dtype

        def backward(g):
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, key, g)
            Tensor._accum(self, full)

        return Tensor._make(out_data, (self,), backward)

    def pad(self, pad_width) -> "Tensor":
        out_data = np.pad(self.data, pad_width)
        slices = tuple(slice(lo, lo + n) for (lo, _), n in zip(pad_width, self.shape))

        def backward(g):
            Tensor._accum(self, g[slices])

        return Tensor._make(out_data, (self,), backward)

    @staticmethod
    def concat(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(g):
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    idx = [slice(None)] * g.ndim
                    idx[axis] = slice(lo, hi)
                    Tensor._accum(t, g[tuple(idx)])

        return Tensor._make(out_data, tuple(tensors), backward)
