"""Reverse-mode autodiff over numpy: the training substrate for the zoo."""

from . import functional
from .tensor import (
    Tensor, batch_invariant_enabled, batch_invariant_matmul, is_grad_enabled,
    no_grad,
)

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "functional",
    "batch_invariant_matmul", "batch_invariant_enabled",
]
