"""Reverse-mode autodiff over numpy: the training substrate for the zoo."""

from . import functional
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]
