"""Levelized logic-depth report across registered netlist variants.

Gate levels (critical path counted in cells rather than nanoseconds) are
the library-independent way to compare decoder pipelines: the paper's
grouped MERSIT decoding is shallower than the Posit leading-run detector
regardless of cell timing.  :func:`depth_of` levelizes one circuit;
:func:`depth_report` tabulates levels, gate count and critical-path delay
for a set of registered variants so the numbers can sit next to the area
figures in ``repro.hardware.report`` output and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.netlist import Circuit

__all__ = ["DepthRow", "depth_of", "depth_report", "render_depth_report"]


@dataclass(frozen=True)
class DepthRow:
    """One variant's levelized-depth summary."""

    variant: str
    logic_depth: int
    gate_count: int
    critical_path_ns: float
    depth_by_output: dict[str, int]

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {"variant": self.variant, "logic_depth": self.logic_depth,
                "gate_count": self.gate_count,
                "critical_path_ns": round(self.critical_path_ns, 3),
                "depth_by_output": self.depth_by_output}


def depth_of(c: Circuit, name: str = "") -> DepthRow:
    """Levelize one circuit into a :class:`DepthRow`."""
    levels = c.logic_levels()
    by_output = {oname: max((levels.get(net, 0) for net in bus), default=0)
                 for oname, bus in c.outputs.items()}
    return DepthRow(
        variant=name or c.name,
        logic_depth=c.logic_depth(),
        gate_count=len(c.gates),
        critical_path_ns=c.critical_path(),
        depth_by_output=by_output,
    )


def depth_report(names: list[str] | None = None) -> list[DepthRow]:
    """Depth rows for the given registered variants (default: all)."""
    from ..hardware.variants import build_variant, registered_variants
    rows = []
    for name in (names or registered_variants()):
        rows.append(depth_of(build_variant(name), name))
    return rows


def render_depth_report(rows: list[DepthRow]) -> str:
    """Fixed-width human table of a depth report."""
    header = f"{'variant':26s} {'levels':>6s} {'gates':>7s} {'path ns':>8s}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(f"{r.variant:26s} {r.logic_depth:>6d} {r.gate_count:>7d} "
                     f"{r.critical_path_ns:>8.2f}")
    return "\n".join(lines)
