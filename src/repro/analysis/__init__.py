"""Static analysis: netlist structural verification and numerics linting.

Two pass families keep the reproduction's claims checkable:

* the **structural verifier** (:mod:`~repro.analysis.structural`,
  :mod:`~repro.analysis.levelize`) proves every gate-level netlist behind
  the paper's Fig. 7 / Table 3 numbers is a sound DAG — no combinational
  loops, no floating or shorted nets, no dead logic inflating gate counts
  — and reports each variant's levelized logic depth;
* the **numerics linter** (:mod:`~repro.analysis.lint`) walks the Python
  AST for the invariants PTQ correctness rests on: no silent float64
  promotion in quantized paths, no float equality, no unseeded RNGs, no
  ``Tensor.data`` mutation that bypasses the data-version counter.

Run both from the CLI: ``repro analyze netlist --all`` and
``repro analyze lint``; both are also tier-1 pytest gates.
"""

from .diagnostics import AnalysisReport, Diagnostic
from .levelize import DepthRow, depth_of, depth_report, render_depth_report
from .lint import lint_paths, lint_source
from .run import analyze_lint, analyze_netlists
from .structural import verify_circuit

__all__ = [
    "AnalysisReport", "Diagnostic",
    "DepthRow", "depth_of", "depth_report", "render_depth_report",
    "lint_paths", "lint_source",
    "analyze_lint", "analyze_netlists",
    "verify_circuit",
]
