"""Static analysis: netlist structural verification and numerics linting.

Two pass families keep the reproduction's claims checkable:

* the **structural verifier** (:mod:`~repro.analysis.structural`,
  :mod:`~repro.analysis.levelize`) proves every gate-level netlist behind
  the paper's Fig. 7 / Table 3 numbers is a sound DAG — no combinational
  loops, no floating or shorted nets, no dead logic inflating gate counts
  — and reports each variant's levelized logic depth;
* the **numerics linter** (:mod:`~repro.analysis.lint`) walks the Python
  AST for the invariants PTQ correctness rests on: no silent float64
  promotion in quantized paths, no float equality, no unseeded RNGs, no
  ``Tensor.data`` mutation that bypasses the data-version counter;
* the **concurrency analyzer** (:mod:`~repro.analysis.concurrency`)
  models the serve/pool/shm stack's locks, threads and processes across
  the whole package: lock-acquisition-order cycles, blocking calls made
  under a held lock, unlocked module state reachable from thread/worker
  entry points, fork-after-thread hazards, and shared-memory lifecycle
  violations.  Its static lock graph is cross-checked at runtime by
  :mod:`repro.sanitize`.

Run them from the CLI: ``repro analyze netlist --all``,
``repro analyze lint`` and ``repro analyze concurrency``; all are also
tier-1 pytest gates.
"""

from .concurrency import check_paths, static_graph
from .diagnostics import AnalysisReport, Diagnostic
from .levelize import DepthRow, depth_of, depth_report, render_depth_report
from .lint import lint_paths, lint_source
from .run import analyze_concurrency, analyze_lint, analyze_netlists
from .structural import verify_circuit

__all__ = [
    "AnalysisReport", "Diagnostic",
    "DepthRow", "depth_of", "depth_report", "render_depth_report",
    "lint_paths", "lint_source",
    "analyze_lint", "analyze_netlists", "analyze_concurrency",
    "check_paths", "static_graph",
    "verify_circuit",
]
