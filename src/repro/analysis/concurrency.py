"""Concurrency static analyzer for the serve/pool/shm stack.

The serving layers are genuinely concurrent — scheduler worker threads,
a shard-router collector thread, pooled worker processes, duplex pipes
and shared-memory segments — and chaos tests alone cannot cover every
interleaving.  This pass walks the package AST once, builds a whole-repo
model of locks, calls, threads and processes, and emits six rule
families as :class:`~repro.analysis.diagnostics.Diagnostic` records:

``lock-order-cycle``
    The whole-program lock-acquisition-order graph (locks identified by
    owner, e.g. ``ModelRepository._key_locks`` or ``shm._TRACKER_LOCK``)
    contains a cycle — two flows that acquire the same locks in opposite
    orders can deadlock.  Edges are interprocedural: holding lock A
    while *calling* a function that may acquire B counts as A -> B.

``blocking-call-under-lock``
    A potentially unbounded blocking call (``Connection.send/recv``,
    ``Queue.put/get``, ``wait``, ``join``, ``time.sleep``, shm attach)
    is made lexically inside a ``with lock:`` frame.  ``cond.wait()`` on
    the innermost held lock is the condition-variable idiom and exempt.

``unlocked-shared-state``
    A mutable module-level container (dict/list/set/deque) — or a
    ``global`` rebind — is mutated with no lock held, in a function
    reachable from a thread or worker entry point (``Thread(target=)``,
    pool dispatch targets, ``execute_batch``).  Functions whose name
    ends in ``_locked`` are exempt: the suffix is the repo's contract
    that the caller already holds the guarding lock.

``fork-after-thread``
    The same function creates a thread and *later* spawns a process
    (directly or through a call chain).  Forking a multi-threaded
    process clones held locks without the threads that would release
    them.

``attach-side-unlink``
    A function both attaches a shared-memory segment and unlinks one.
    Segment ownership is publisher-side only; attachers unlinking is how
    planes vanish under a live fleet.

``publish-without-unlink``
    A module creates shared-memory segments (``SharedMemory(create=True)``)
    but registers no ``atexit`` hook whose call chain reaches
    ``unlink()`` — a Ctrl-C'd run would leak ``/dev/shm`` entries.

Findings reuse the lint waiver syntax (``lint: allow[rule] reason`` in a
trailing or preceding comment,
multiple rules comma-separated) and the PR 3 report plumbing: run
``repro analyze concurrency [--json]`` or :func:`repro.analysis.analyze_concurrency`.

:func:`static_graph` exports the lock registry (creation sites) and the
acquisition-order edges for the runtime sanitizer
(:mod:`repro.sanitize`), which cross-checks the *observed* graph against
this one — an observed edge missing here is an analyzer gap.

Scope and limits (by design, to keep findings reviewable): calls are
resolved by name — ``self.m()`` to the same class, bare ``f()`` to the
same module, ``x.m()`` only when ``m`` is defined exactly once in the
analyzed set; blocking calls are checked per-frame (a blocking call in a
callee of a locked frame is not flagged — the lock-order graph still
sees the callee's *lock* acquisitions); shared-state tracking covers
module-level bindings, not instance attributes.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .diagnostics import ERROR, Diagnostic

__all__ = ["RULES", "check_paths", "static_graph", "analyze_files"]

#: every rule id this pass can emit (documented in DESIGN.md section 14)
RULES = (
    "lock-order-cycle",
    "blocking-call-under-lock",
    "unlocked-shared-state",
    "fork-after-thread",
    "attach-side-unlink",
    "publish-without-unlink",
)

#: threading factories whose results are treated as locks
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                             "BoundedSemaphore"})

#: callables considered potentially-unbounded blocking operations
_BLOCKING = frozenset({"send", "recv", "send_bytes", "recv_bytes",
                       "join", "sleep", "wait", "put", "get", "attach"})

#: method names never resolved through the unique-name fallback (too
#: generic: stdlib objects define them everywhere)
_GENERIC = frozenset({"start", "run", "result", "join", "send", "recv",
                      "close", "get", "put", "set", "clear", "pop",
                      "update", "append", "add", "items", "keys",
                      "values", "copy", "acquire", "release", "wait",
                      "encode", "decode", "read", "write", "index",
                      "replace", "remove", "insert", "extend"})

#: constructors counted as process spawns
_SPAWN_TAILS = frozenset({"Process", "Pool", "fork"})

#: value expressions registered as mutable module-level containers
_MUTABLE_CALLS = frozenset({"dict", "list", "set", "deque", "defaultdict",
                            "OrderedDict", "Counter"})

#: container methods counted as mutations
_MUTATORS = frozenset({"append", "add", "update", "setdefault", "pop",
                       "popleft", "appendleft", "clear", "discard",
                       "extend", "remove", "insert"})

#: functions that are worker entry points even without a ``target=`` ref
ENTRY_HINTS = ("execute_batch",)


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_lock_factory(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = _dotted(node.func)
    head, _, tail = name.rpartition(".")
    return tail in _LOCK_FACTORIES and head in ("", "threading",
                                                "multiprocessing")


def _lock_calls(node: ast.AST) -> list[ast.Call]:
    """Every lock-factory Call inside ``node`` (value expressions only)."""
    return [n for n in ast.walk(node) if _is_lock_factory(n)]


class _Func:
    """Per-function facts gathered by the collection pass."""

    __slots__ = ("key", "module", "cls", "name", "file", "lineno",
                 "acquires", "edges", "calls", "blocking", "thread_lines",
                 "spawn_lines", "mutations", "attach_lines", "unlink_lines",
                 "create_lines", "may_acquire", "may_spawn", "may_unlink")

    def __init__(self, key, module, cls, name, file, lineno):
        self.key = key
        self.module = module
        self.cls = cls
        self.name = name
        self.file = file
        self.lineno = lineno
        self.acquires: set[str] = set()
        # (held_id, acquired_id, lineno)
        self.edges: list[tuple[str, str, int]] = []
        # (kind, base, name, lineno, held_tuple) kind in self|bare|dotted
        self.calls: list[tuple[str, str, str, int, tuple]] = []
        self.blocking: list[tuple[int, str, tuple]] = []
        self.thread_lines: list[int] = []
        self.spawn_lines: list[int] = []
        self.mutations: list[tuple[int, str, tuple]] = []
        self.attach_lines: list[int] = []
        self.unlink_lines: list[int] = []
        self.create_lines: list[int] = []
        self.may_acquire: set[str] = set()
        self.may_spawn = False
        self.may_unlink = False


class _Program:
    """Whole-analysis-set model: locks, globals, functions, entries."""

    def __init__(self):
        #: lock id -> [(file, line), ...] creation sites
        self.locks: dict[str, list[tuple[str, int]]] = {}
        #: (module, name) of mutable module-level containers
        self.mutable_globals: set[tuple[str, str]] = set()
        self.funcs: dict[str, _Func] = {}
        #: bare name -> [func keys] (unique-name fallback)
        self.by_name: dict[str, list[str]] = {}
        #: (module, name) -> func key (module-scope functions)
        self.module_funcs: dict[tuple[str, str], str] = {}
        #: (module, cls, name) -> func key
        self.methods: dict[tuple[str, str, str], str] = {}
        #: class name -> [(module, cls)] for constructor resolution
        self.classes: dict[str, list[tuple[str, str]]] = {}
        #: names referenced as thread/worker targets: (module, base, name)
        self.entry_refs: list[tuple[str, str, str]] = []
        #: module -> names passed to atexit.register
        self.atexit_regs: dict[str, set[str]] = {}
        self.files: list[str] = []

    def add_lock(self, lock_id: str, file: str, line: int) -> None:
        self.locks.setdefault(lock_id, []).append((file, line))

    def add_func(self, fn: _Func, nested: bool = False) -> None:
        self.funcs[fn.key] = fn
        if not nested:
            # nested helpers are only callable from their enclosing scope;
            # keeping them out of the unique-name fallback stops a nested
            # `def replace(...)` from capturing every `str.replace` call
            self.by_name.setdefault(fn.name, []).append(fn.key)
        if fn.cls is None:
            self.module_funcs.setdefault((fn.module, fn.name), fn.key)
        else:
            self.methods[(fn.module, fn.cls, fn.name)] = fn.key


def _modbase(path: str) -> str:
    return Path(path).stem


# ----------------------------------------------------------------------
# pass A: lock + global discovery
# ----------------------------------------------------------------------


def _discover_file(tree: ast.Module, file: str, prog: _Program) -> None:
    mod = _modbase(file)
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            value = node.value
            if value is None:
                continue
            for tgt in targets:
                if not isinstance(tgt, ast.Name):
                    continue
                calls = _lock_calls(value)
                if calls:
                    for c in calls:
                        prog.add_lock(f"{mod}.{tgt.id}", file, c.lineno)
                elif _is_mutable_container(value):
                    prog.mutable_globals.add((mod, tgt.id))
        elif isinstance(node, ast.ClassDef):
            prog.classes.setdefault(node.name, []).append((mod, node.name))
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _discover_self_locks(item, node.name, file, prog)
    # atexit registrations + self-lock discovery in functions need a full
    # walk; handled in the collection pass (shared traversal)


def _discover_self_locks(fn: ast.AST, cls: str, file: str,
                         prog: _Program) -> None:
    for node in ast.walk(fn):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            value = node.value
            if value is None:
                continue
            for tgt in targets:
                if (isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"):
                    for c in _lock_calls(value):
                        prog.add_lock(f"{cls}.{tgt.attr}", file, c.lineno)
        elif isinstance(node, ast.Call):
            # self.X.setdefault(key, threading.Lock()) — per-key lock maps
            f = node.func
            if (isinstance(f, ast.Attribute) and f.attr == "setdefault"
                    and isinstance(f.value, ast.Attribute)
                    and isinstance(f.value.value, ast.Name)
                    and f.value.value.id == "self"):
                for arg in node.args:
                    for c in _lock_calls(arg):
                        prog.add_lock(f"{cls}.{f.value.attr}", file, c.lineno)


def _is_mutable_container(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return _dotted(value.func).rpartition(".")[2] in _MUTABLE_CALLS
    return False


# ----------------------------------------------------------------------
# pass B: per-function collection
# ----------------------------------------------------------------------


class _FuncWalker:
    """Walk one function body tracking the held-lock frame stack."""

    def __init__(self, fn: _Func, prog: _Program, cls: str | None,
                 outer_bindings: dict[str, str] | None):
        self.fn = fn
        self.prog = prog
        self.cls = cls
        self.bindings: dict[str, str] = dict(outer_bindings or {})
        self.globals_declared: set[str] = set()
        self.local_names: set[str] = set()
        self.held: list[str] = []

    # -- lock expression resolution ------------------------------------
    def resolve_lock(self, expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Name):
            if expr.id in self.bindings:
                return self.bindings[expr.id]
            lock_id = f"{self.fn.module}.{expr.id}"
            return lock_id if lock_id in self.prog.locks else None
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name):
                if base.id == "self" and self.cls is not None:
                    lock_id = f"{self.cls}.{expr.attr}"
                else:
                    lock_id = f"{base.id}.{expr.attr}"
                return lock_id if lock_id in self.prog.locks else None
            return None
        if isinstance(expr, ast.Subscript):
            return self.resolve_lock(expr.value)
        if isinstance(expr, ast.Call):
            f = expr.func
            if isinstance(f, ast.Attribute) and f.attr == "setdefault":
                return self.resolve_lock(f.value)
        return None

    # -- statements ----------------------------------------------------
    def walk(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Global):
            self.globals_declared.update(node.names)
        elif isinstance(node, ast.With):
            self.with_stmt(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _collect_function(node, self.fn.module, None, self.fn.file,
                              self.prog, outer_bindings=self.bindings,
                              nested=True)
            self.local_names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            pass  # classes nested in functions: out of scope
        elif isinstance(node, ast.Assign):
            self.assign(node)
            self.exprs(node.value)
        elif isinstance(node, ast.AugAssign):
            self.mutation_target(node.target, node.lineno, aug=True)
            self.exprs(node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                if isinstance(node.target, ast.Name):
                    self.bind(node.target.id, node.value, node.lineno)
                self.exprs(node.value)
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                self.mutation_target(tgt, node.lineno, aug=True)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self.exprs(node.iter)
            self.collect_names(node.target)
            self.walk(node.body)
            self.walk(node.orelse)
        elif isinstance(node, ast.While):
            self.exprs(node.test)
            self.walk(node.body)
            self.walk(node.orelse)
        elif isinstance(node, ast.If):
            self.exprs(node.test)
            self.walk(node.body)
            self.walk(node.orelse)
        elif isinstance(node, ast.Try):
            self.walk(node.body)
            for h in node.handlers:
                self.walk(h.body)
            self.walk(node.orelse)
            self.walk(node.finalbody)
        elif isinstance(node, (ast.Return, ast.Expr)):
            if node.value is not None:
                self.exprs(node.value)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self.exprs(node.exc)
        elif isinstance(node, ast.Assert):
            self.exprs(node.test)
        # pass/break/continue/import: nothing to track

    def with_stmt(self, node: ast.With) -> None:
        entered: list[str] = []
        for item in node.items:
            ctx = item.context_expr
            lock_id = self.resolve_lock(ctx)
            if lock_id is not None:
                self.acquire(lock_id, ctx.lineno)
                self.held.append(lock_id)
                entered.append(lock_id)
            else:
                self.exprs(ctx)  # e.g. `with _untracked():` — a call
            if item.optional_vars is not None:
                self.collect_names(item.optional_vars)
        self.walk(node.body)
        for _ in entered:
            self.held.pop()

    def acquire(self, lock_id: str, lineno: int) -> None:
        self.fn.acquires.add(lock_id)
        for held in self.held:
            if held != lock_id:
                self.fn.edges.append((held, lock_id, lineno))

    def assign(self, node: ast.Assign) -> None:
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                self.bind(tgt.id, node.value, node.lineno)
            elif isinstance(tgt, (ast.Subscript, ast.Attribute)):
                self.mutation_target(tgt, node.lineno, aug=True)
                # thread/worker entry via `<obj>.target = fn`
                if (isinstance(tgt, ast.Attribute) and tgt.attr == "target"
                        and isinstance(node.value, (ast.Name, ast.Attribute,
                                                    ast.IfExp))):
                    self.entry_candidates(node.value)
            elif isinstance(tgt, (ast.Tuple, ast.List)):
                self.collect_names(tgt)

    def bind(self, name: str, value: ast.AST, lineno: int) -> None:
        self.local_names.add(name)
        if name in self.globals_declared:
            self.mutation(lineno, name)
            return
        lock_id = self.resolve_lock(value)
        if lock_id is None and _is_lock_factory(value):
            lock_id = f"{self.fn.name}.{name}"
            self.prog.add_lock(lock_id, self.fn.file, value.lineno)
        if lock_id is not None:
            self.bindings[name] = lock_id
        else:
            self.bindings.pop(name, None)

    def collect_names(self, target: ast.AST) -> None:
        for n in ast.walk(target):
            if isinstance(n, ast.Name):
                self.local_names.add(n.id)

    # -- mutations -----------------------------------------------------
    def mutation_target(self, tgt: ast.AST, lineno: int, aug: bool) -> None:
        base = tgt
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if isinstance(base, ast.Name):
            self.mutation(lineno, base.id)

    def mutation(self, lineno: int, name: str) -> None:
        if (self.fn.module, name) not in self.prog.mutable_globals \
                and name not in self.globals_declared:
            return
        if name in self.local_names and name not in self.globals_declared:
            return
        held = tuple(self.held)
        if not held and self.fn.name.endswith("_locked"):
            # the `_locked`-suffix contract: such helpers document that
            # their caller already holds the guarding lock
            held = ("<caller-held>",)
        self.fn.mutations.append((lineno, name, held))

    # -- expressions ---------------------------------------------------
    def exprs(self, node: ast.AST) -> None:
        for n in ast.walk(node):
            if isinstance(n, ast.Call):
                self.call(n)
            elif isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                pass

    def entry_candidates(self, value: ast.AST) -> None:
        for n in ast.walk(value):
            if isinstance(n, ast.Name):
                self.prog.entry_refs.append((self.fn.module, "", n.id))
            elif isinstance(n, ast.Attribute):
                base = n.value
                if isinstance(base, ast.Name):
                    self.prog.entry_refs.append(
                        (self.fn.module, base.id, n.attr))

    def call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        head, _, tail = name.rpartition(".")

        # thread / process creation markers
        if tail == "Thread" and head in ("", "threading"):
            self.fn.thread_lines.append(node.lineno)
        if tail in _SPAWN_TAILS and tail != "fork":
            self.fn.spawn_lines.append(node.lineno)
        if name in ("os.fork", "fork") and head in ("os", ""):
            self.fn.spawn_lines.append(node.lineno)

        # `target=` keyword: the referenced callable is an entry point
        for kw in node.keywords:
            if kw.arg == "target":
                self.entry_candidates(kw.value)

        # atexit.register(fn)
        if name == "atexit.register" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Name):
                self.prog.atexit_regs.setdefault(
                    self.fn.module, set()).add(arg.id)

        # shm lifecycle markers
        if tail == "SharedMemory":
            creating = any(kw.arg == "create"
                           and isinstance(kw.value, ast.Constant)
                           and kw.value.value is True
                           for kw in node.keywords)
            if creating:
                self.fn.create_lines.append(node.lineno)
            else:
                self.fn.attach_lines.append(node.lineno)
        if tail in ("attach", "AttachedSegment"):
            self.fn.attach_lines.append(node.lineno)
        if tail in ("unlink", "shm_unlink"):
            self.fn.unlink_lines.append(node.lineno)

        # call-graph record (for interprocedural edges / reachability)
        if isinstance(node.func, ast.Name):
            self.fn.calls.append(("bare", "", node.func.id, node.lineno,
                                  tuple(self.held)))
        elif isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Name) and base.id == "self":
                kind, base_s = "self", "self"
            else:
                kind, base_s = "dotted", _dotted(base)
            self.fn.calls.append((kind, base_s, node.func.attr,
                                  node.lineno, tuple(self.held)))

        # blocking-call-under-lock (direct frame only)
        if self.held:
            self.blocking_check(node, name, head, tail)

    def blocking_check(self, node: ast.Call, name: str, head: str,
                       tail: str) -> None:
        if tail == "AttachedSegment" or (tail == "SharedMemory" and
                                         node.lineno in self.fn.attach_lines):
            self.flag_blocking(node.lineno, f"{name}(...) [shm attach]")
            return
        if tail not in _BLOCKING:
            return
        if tail == "sleep" and head not in ("time", ""):
            return
        if tail == "join":
            # str.join / os.path.join are not blocking
            if isinstance(node.func, ast.Attribute) and isinstance(
                    node.func.value, ast.Constant):
                return
            if head.endswith("path"):
                return
        if tail in ("put", "get"):
            base = head.rpartition(".")[2].lower()
            if not (base in ("q", "queue") or base.endswith("_q")
                    or "queue" in base):
                return
        if tail == "wait" and isinstance(node.func, ast.Attribute):
            receiver = self.resolve_lock(node.func.value)
            if receiver is not None and receiver in self.held:
                return  # condition-variable wait on a held lock: the idiom
        if tail == "attach" and not self.fn.attach_lines:
            return
        self.flag_blocking(node.lineno, f"{name}(...)")

    def flag_blocking(self, lineno: int, desc: str) -> None:
        self.fn.blocking.append((lineno, desc, tuple(self.held)))


def _collect_function(node, module: str, cls: str | None, file: str,
                      prog: _Program,
                      outer_bindings: dict[str, str] | None = None,
                      nested: bool = False) -> None:
    key = f"{module}:{cls + '.' if cls else ''}{node.name}@{node.lineno}"
    fn = _Func(key, module, cls, node.name, file, node.lineno)
    prog.add_func(fn, nested=nested)
    walker = _FuncWalker(fn, prog, cls, outer_bindings)
    args = node.args
    for a in (args.posonlyargs + args.args + args.kwonlyargs
              + ([args.vararg] if args.vararg else [])
              + ([args.kwarg] if args.kwarg else [])):
        walker.local_names.add(a.arg)
    walker.walk(node.body)


def _collect_file(tree: ast.Module, file: str, prog: _Program) -> None:
    mod = _modbase(file)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _collect_function(node, mod, None, file, prog)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _collect_function(item, mod, node.name, file, prog)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            if _dotted(call.func) == "atexit.register" and call.args:
                arg = call.args[0]
                if isinstance(arg, ast.Name):
                    prog.atexit_regs.setdefault(mod, set()).add(arg.id)


# ----------------------------------------------------------------------
# resolution + fixpoint
# ----------------------------------------------------------------------


def _resolve_call(prog: _Program, fn: _Func, kind: str, base: str,
                  name: str) -> str | None:
    if kind == "self" and fn.cls is not None:
        key = prog.methods.get((fn.module, fn.cls, name))
        if key is not None:
            return key
    if kind == "bare":
        key = prog.module_funcs.get((fn.module, name))
        if key is not None:
            return key
        classes = prog.classes.get(name, [])
        if len(classes) == 1:
            mod, cls = classes[0]
            return prog.methods.get((mod, cls, "__init__"))
    # unique-name fallback for dotted (and unresolved self/bare) calls
    if name in _GENERIC:
        return None
    keys = prog.by_name.get(name, [])
    if len(keys) == 1:
        return keys[0]
    return None


def _fixpoint(prog: _Program) -> None:
    resolved: dict[tuple[str, int], str | None] = {}
    for fn in prog.funcs.values():
        fn.may_acquire = set(fn.acquires)
        fn.may_spawn = bool(fn.spawn_lines)
        fn.may_unlink = bool(fn.unlink_lines)
        for i, (kind, base, name, _line, _held) in enumerate(fn.calls):
            resolved[(fn.key, i)] = _resolve_call(prog, fn, kind, base, name)
    for _ in range(60):
        changed = False
        for fn in prog.funcs.values():
            for i in range(len(fn.calls)):
                callee_key = resolved[(fn.key, i)]
                if callee_key is None:
                    continue
                callee = prog.funcs[callee_key]
                if not callee.may_acquire <= fn.may_acquire:
                    fn.may_acquire |= callee.may_acquire
                    changed = True
                if callee.may_spawn and not fn.may_spawn:
                    fn.may_spawn = True
                    changed = True
                if callee.may_unlink and not fn.may_unlink:
                    fn.may_unlink = True
                    changed = True
        if not changed:
            break
    prog._resolved = resolved  # type: ignore[attr-defined]


def _all_edges(prog: _Program) -> dict[tuple[str, str], tuple[str, int]]:
    """Every acquisition-order edge -> one witness (file, line)."""
    edges: dict[tuple[str, str], tuple[str, int]] = {}
    resolved = prog._resolved  # type: ignore[attr-defined]
    for fn in prog.funcs.values():
        for held, acq, line in fn.edges:
            edges.setdefault((held, acq), (fn.file, line))
        for i, (_kind, _base, _name, line, held_stack) in enumerate(fn.calls):
            callee_key = resolved[(fn.key, i)]
            if callee_key is None or not held_stack:
                continue
            for m in prog.funcs[callee_key].may_acquire:
                for h in held_stack:
                    if h != m:
                        edges.setdefault((h, m), (fn.file, line))
    return edges


def _find_cycles(edges: dict[tuple[str, str], tuple[str, int]]
                 ) -> list[list[str]]:
    """Strongly connected components with >1 node (or a self-loop)."""
    graph: dict[str, set[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                if len(comp) > 1 or (v, v) in edges:
                    sccs.append(sorted(comp))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sccs


def _reachable_from_entries(prog: _Program) -> set[str]:
    resolved = prog._resolved  # type: ignore[attr-defined]
    entry_keys: set[str] = set()
    refs = list(prog.entry_refs)
    for hint in ENTRY_HINTS:
        for key in prog.by_name.get(hint, []):
            entry_keys.add(key)
    for module, base, name in refs:
        fake = _Func(f"{module}:<ref>", module, None, "<ref>", "", 0)
        kind = "self" if base == "self" else ("bare" if base == ""
                                              else "dotted")
        if base == "self":
            # target=self._worker style: try every class in the module
            for (mod, cls, meth), key in prog.methods.items():
                if mod == module and meth == name:
                    entry_keys.add(key)
            continue
        key = _resolve_call(prog, fake, kind, base, name)
        if key is not None:
            entry_keys.add(key)
        elif name not in _GENERIC:
            for k in prog.by_name.get(name, []):
                entry_keys.add(k)
    seen = set(entry_keys)
    frontier = list(entry_keys)
    while frontier:
        key = frontier.pop()
        fn = prog.funcs[key]
        for i in range(len(fn.calls)):
            callee = resolved[(fn.key, i)]
            if callee is not None and callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return seen


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------


def analyze_files(files: list[Path]) -> tuple[_Program, list[Diagnostic]]:
    """Build the program model and raw diagnostics (waivers NOT applied)."""
    prog = _Program()
    trees: list[tuple[ast.Module, str]] = []
    diags: list[Diagnostic] = []
    for f in files:
        text = Path(f).read_text()
        try:
            tree = ast.parse(text, filename=str(f))
        except SyntaxError as exc:
            diags.append(Diagnostic(
                rule="syntax-error", severity=ERROR,
                where=f"{f}:{exc.lineno or 0}", message=str(exc.msg)))
            continue
        trees.append((tree, str(f)))
        prog.files.append(str(f))
    for tree, file in trees:
        _discover_file(tree, file, prog)
    for tree, file in trees:
        _collect_file(tree, file, prog)
    _fixpoint(prog)

    edges = _all_edges(prog)

    # rule 1: lock-order cycles
    for comp in _find_cycles(edges):
        pairs = [(a, b) for (a, b) in edges
                 if a in comp and b in comp]
        witness = edges[pairs[0]]
        cycle = " -> ".join(comp + [comp[0]])
        diags.append(Diagnostic(
            rule="lock-order-cycle", severity=ERROR,
            where=f"{witness[0]}:{witness[1]}",
            message=f"lock acquisition order contains a cycle: {cycle}; "
                    f"two flows taking these locks in opposite orders can "
                    f"deadlock",
            data={"locks": comp,
                  "edges": [[a, b, *edges[(a, b)]] for a, b in pairs]}))

    # rule 2: blocking calls under a held lock
    for fn in prog.funcs.values():
        for line, desc, held in sorted(set(fn.blocking)):
            diags.append(Diagnostic(
                rule="blocking-call-under-lock", severity=ERROR,
                where=f"{fn.file}:{line}",
                message=f"{desc} while holding {', '.join(held)}; a stalled "
                        f"peer holds the lock against every other thread",
                data={"held": list(held), "call": desc}))

    # rule 3: unlocked shared state reachable from thread/worker entries
    reachable = _reachable_from_entries(prog)
    for key in sorted(reachable):
        fn = prog.funcs[key]
        for line, name, held in sorted(set(fn.mutations)):
            if held:
                continue
            diags.append(Diagnostic(
                rule="unlocked-shared-state", severity=ERROR,
                where=f"{fn.file}:{line}",
                message=f"module state {fn.module}.{name} mutated without a "
                        f"lock in {fn.name}(), which is reachable from a "
                        f"thread/worker entry point",
                data={"state": f"{fn.module}.{name}", "function": fn.name}))

    # rule 4: process spawn after thread creation in the same flow
    resolved = prog._resolved  # type: ignore[attr-defined]
    for fn in prog.funcs.values():
        if not fn.thread_lines:
            continue
        tmin = min(fn.thread_lines)
        spawn_line = None
        for line in fn.spawn_lines:
            if line > tmin:
                spawn_line = line
                break
        if spawn_line is None:
            for i, (_k, _b, name, line, _h) in enumerate(fn.calls):
                callee = resolved[(fn.key, i)]
                if (line > tmin and callee is not None
                        and prog.funcs[callee].may_spawn):
                    spawn_line = line
                    break
        if spawn_line is not None:
            diags.append(Diagnostic(
                rule="fork-after-thread", severity=ERROR,
                where=f"{fn.file}:{spawn_line}",
                message=f"{fn.name}() starts a thread (line {tmin}) and "
                        f"later spawns a process; forked children inherit "
                        f"locked locks without the threads that release them",
                data={"thread_line": tmin, "spawn_line": spawn_line}))

    # rule 5a: attach paths must never unlink
    for fn in prog.funcs.values():
        if fn.attach_lines and fn.unlink_lines:
            line = min(fn.unlink_lines)
            diags.append(Diagnostic(
                rule="attach-side-unlink", severity=ERROR,
                where=f"{fn.file}:{line}",
                message=f"{fn.name}() attaches a shared-memory segment and "
                        f"also unlinks one; ownership is publisher-side only "
                        f"— attachers must never unlink",
                data={"attach_line": min(fn.attach_lines),
                      "unlink_line": line}))

    # rule 5b: publishing modules must register an unlink path at exit
    creators: dict[str, list[tuple[str, int]]] = {}
    for fn in prog.funcs.values():
        for line in fn.create_lines:
            creators.setdefault(fn.module, []).append((fn.file, line))
    for module, sites in sorted(creators.items()):
        registered = prog.atexit_regs.get(module, set())
        covered = False
        for name in registered:
            key = prog.module_funcs.get((module, name))
            if key is not None and prog.funcs[key].may_unlink:
                covered = True
        if not covered:
            for file, line in sorted(set(sites)):
                diags.append(Diagnostic(
                    rule="publish-without-unlink", severity=ERROR,
                    where=f"{file}:{line}",
                    message=f"module {module} creates shared-memory segments "
                            f"but registers no atexit hook that reaches "
                            f"unlink(); interrupted runs leak /dev/shm "
                            f"entries",
                    data={"module": module}))

    return prog, diags


def _expand_paths(paths: list[Path | str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def check_paths(paths: list[Path | str]) -> tuple[list[Diagnostic], dict]:
    """Run the concurrency pass with waivers applied.

    Returns ``(diagnostics, summary)``; the summary carries the lock
    registry size, edge count and analyzed-file count, plus the graph
    itself (the CLI surfaces it under ``--json``).
    """
    from .lint import RULES as LINT_RULES
    from .lint import _collect_waivers

    files = _expand_paths(paths)
    prog, raw = analyze_files(files)

    known = set(LINT_RULES) | set(RULES) | {"waiver-unknown-rule"}
    waivers: dict[str, tuple[dict, list, list]] = {}
    diags: list[Diagnostic] = []
    for d in raw:
        file, _, line_s = d.where.rpartition(":")
        if file not in waivers:
            try:
                lines = Path(file).read_text().splitlines()
            except OSError:
                lines = []
            waivers[file] = _collect_waivers(lines, known_rules=known)
        waived, _malformed, _unknown = waivers[file]
        if d.rule in waived.get(int(line_s), ()):
            continue
        diags.append(d)

    edges = _all_edges(prog)
    summary = {
        "files": len(files),
        "locks": {k: [[f, ln] for f, ln in v]
                  for k, v in sorted(prog.locks.items())},
        "edges": sorted([a, b] for a, b in edges),
        "entry_points": len(_reachable_from_entries(prog)),
    }
    diags.sort(key=lambda d: (d.where.rpartition(":")[0],
                              int(d.where.rpartition(":")[2] or 0), d.rule))
    return diags, summary


def static_graph(paths: list[Path | str] | None = None) -> dict:
    """The static lock graph for the runtime sanitizer's cross-check.

    Returns ``{"locks": {id: [[abspath, line], ...]},
    "edges": [[a, b], ...]}``; creation sites use resolved absolute
    paths so they can be matched against runtime frame locations.
    """
    if paths is None:
        from .run import default_lint_root
        paths = [default_lint_root()]
    files = _expand_paths(paths)
    prog, _raw = analyze_files(files)
    edges = _all_edges(prog)
    return {
        "locks": {k: [[str(Path(f).resolve()), ln] for f, ln in v]
                  for k, v in sorted(prog.locks.items())},
        "edges": sorted([a, b] for a, b in edges),
    }
