"""Diagnostic records shared by every analysis pass.

A :class:`Diagnostic` is one finding — a planted combinational loop, a
float equality, a dead gate — with a rule id, a severity, a location
string and a human message.  Passes return plain lists of diagnostics;
:class:`AnalysisReport` aggregates them per analysis run and renders both
the machine-readable JSON the CI gate consumes and the human listing the
CLI prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Diagnostic", "AnalysisReport", "ERROR", "WARNING"]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of an analysis pass.

    Attributes
    ----------
    rule:
        Stable kebab-case rule id, e.g. ``"combinational-loop"`` or
        ``"float-equality"``.
    severity:
        ``"error"`` (gates CI) or ``"warning"`` (reported, non-fatal).
    where:
        Location: ``path:line`` for lint findings, the variant name for
        netlist findings.
    message:
        Human-readable description of the finding.
    data:
        Optional structured payload (net ids, cycle members, ...).
    """

    rule: str
    severity: str
    where: str
    message: str
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        out = {"rule": self.rule, "severity": self.severity,
               "where": self.where, "message": self.message}
        if self.data:
            out["data"] = self.data
        return out

    def render(self) -> str:
        """One-line human rendering: ``where: severity[rule] message``."""
        return f"{self.where}: {self.severity}[{self.rule}] {self.message}"


@dataclass
class AnalysisReport:
    """The aggregated outcome of one analysis run.

    ``summary`` carries pass-specific counters (files linted, variants
    verified, logic depths); ``ok`` is the CI gate: true iff no
    error-severity diagnostic was produced.
    """

    kind: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    summary: dict = field(default_factory=dict)

    @property
    def errors(self) -> list[Diagnostic]:
        """The error-severity subset."""
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def ok(self) -> bool:
        """True iff the run produced no error-severity diagnostics."""
        return not self.errors

    def extend(self, diags: list[Diagnostic]) -> None:
        """Append a pass's findings."""
        self.diagnostics.extend(diags)

    def to_json(self, indent: int | None = 2) -> str:
        """Machine-readable report (stable key order)."""
        return json.dumps({
            "kind": self.kind,
            "ok": self.ok,
            "summary": self.summary,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }, indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human listing: one line per diagnostic plus a verdict line."""
        lines = [d.render() for d in self.diagnostics]
        n_err = len(self.errors)
        n_warn = len(self.diagnostics) - n_err
        verdict = "clean" if not self.diagnostics else \
            f"{n_err} error(s), {n_warn} warning(s)"
        lines.append(f"{self.kind}: {verdict}")
        return "\n".join(lines)
