"""Orchestration for ``repro analyze``: assemble reports, pick exit codes.

Two entry points mirror the CLI subcommands:

* :func:`analyze_netlists` — build registered hardware variants, run the
  structural verifier on each, and attach the levelized depth summary;
* :func:`analyze_lint` — run the numerics linter over a source tree.

Both return an :class:`~repro.analysis.diagnostics.AnalysisReport` whose
``ok`` flag is the CI gate; the CLI maps it to the process exit code.
"""

from __future__ import annotations

from pathlib import Path

from .concurrency import check_paths
from .diagnostics import AnalysisReport
from .levelize import depth_of
from .lint import lint_paths
from .structural import verify_circuit

__all__ = ["analyze_netlists", "analyze_lint", "analyze_concurrency",
           "default_lint_root"]


def analyze_netlists(names: list[str] | None = None) -> AnalysisReport:
    """Verify registered netlist variants (default: the full registry)."""
    from ..hardware.variants import build_variant, registered_variants
    names = names or registered_variants()
    report = AnalysisReport(kind="netlist")
    depths = {}
    for name in names:
        circuit = build_variant(name)
        report.extend(verify_circuit(circuit, name))
        depths[name] = depth_of(circuit, name).to_dict()
    report.summary = {"variants": names, "depth": depths}
    return report


def default_lint_root() -> Path:
    """The repo's own package tree (``src/repro``), the default lint target."""
    return Path(__file__).resolve().parents[1]


def analyze_lint(paths: list[str] | None = None) -> AnalysisReport:
    """Lint the given files/directories (default: all of ``src/repro``)."""
    targets = [Path(p) for p in paths] if paths else [default_lint_root()]
    diags, nfiles = lint_paths(targets)
    report = AnalysisReport(kind="lint")
    report.extend(diags)
    report.summary = {"files": nfiles,
                      "targets": [str(t) for t in targets]}
    return report


def analyze_concurrency(paths: list[str] | None = None) -> AnalysisReport:
    """Concurrency pass over files/directories (default: all of ``src/repro``).

    Lock-order cycles, blocking calls under locks, unlocked shared state
    reachable from thread/worker entry points, fork-after-thread hazards
    and shared-memory lifecycle violations — see
    :mod:`repro.analysis.concurrency` for the rule catalog.
    """
    targets = [Path(p) for p in paths] if paths else [default_lint_root()]
    diags, summary = check_paths(targets)
    report = AnalysisReport(kind="concurrency")
    report.extend(diags)
    report.summary = dict(summary,
                          targets=[str(t) for t in targets])
    return report
