"""Netlist structural verifier over :class:`repro.hardware.netlist.Circuit`.

The paper's area/power comparisons (Fig. 7, Table 3) are only as credible
as the gate graphs behind them.  This module checks the structural
invariants a synthesis tool would enforce:

* **combinational-loop** — a cycle through combinational gates (DFF
  outputs legitimately close feedback paths and break the search);
* **undriven-net** — a net read by a gate or exported as an output that
  no gate drives and that is neither a constant nor a primary input;
* **multiply-driven-net** — two or more gates driving one net (a short);
* **arity / width** — gate input counts must match the cell library
  definition, all nets must be in the allocated id range, every declared
  output bus must be non-empty;
* **dead-logic** — gates outside the cone of influence of the declared
  outputs (reported as warnings: dead logic simulates fine but inflates
  the gate counts the paper's Table 3 claims rest on).

``verify_circuit`` runs every pass and returns the combined findings.
"""

from __future__ import annotations

from ..hardware.cells import CELLS
from ..hardware.netlist import Circuit
from .diagnostics import ERROR, WARNING, Diagnostic

__all__ = [
    "find_combinational_loops", "find_undriven_nets", "find_multiply_driven",
    "check_arity", "find_dead_logic", "verify_circuit",
]


def _state_nets(c: Circuit) -> set[int]:
    return {g.output for g in c._dffs}


def find_combinational_loops(c: Circuit, name: str = "") -> list[Diagnostic]:
    """Cycle search on the combinational gate graph (DFFs break paths)."""
    state = _state_nets(c)
    producers = {}
    for g in c.gates:
        producers.setdefault(g.output, g)
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[int, int] = {}
    diags: list[Diagnostic] = []
    reported: set[frozenset] = set()

    for root in c.gates:
        if color.get(id(root), WHITE) != WHITE or root.output in state:
            continue
        # iterative DFS with an explicit path stack for cycle extraction
        stack = [(root, iter(root.inputs))]
        color[id(root)] = GREY
        path = [root]
        while stack:
            node, it = stack[-1]
            advanced = False
            for net in it:
                p = producers.get(net)
                if p is None or p.output in state:
                    continue
                cstat = color.get(id(p), WHITE)
                if cstat == GREY:
                    # found a cycle: slice the current path at p
                    idx = next(i for i, g in enumerate(path) if g is p)
                    cycle = path[idx:]
                    key = frozenset(id(g) for g in cycle)
                    if key not in reported:
                        reported.add(key)
                        nets = [g.output for g in cycle]
                        diags.append(Diagnostic(
                            rule="combinational-loop", severity=ERROR,
                            where=name or c.name,
                            message=(f"combinational cycle through "
                                     f"{len(cycle)} gate(s), nets {nets}"),
                            data={"nets": nets}))
                elif cstat == WHITE:
                    color[id(p)] = GREY
                    stack.append((p, iter(p.inputs)))
                    path.append(p)
                    advanced = True
                    break
            if not advanced:
                color[id(node)] = BLACK
                stack.pop()
                path.pop()
    return diags


def find_undriven_nets(c: Circuit, name: str = "") -> list[Diagnostic]:
    """Nets consumed somewhere but driven by nothing."""
    driven = {0, 1} | set(c.inputs) | {g.output for g in c.gates}
    used: dict[int, str] = {}
    for g in c.gates:
        for net in g.inputs:
            used.setdefault(net, f"input of {g.cell.name} gate")
    for oname, bus in c.outputs.items():
        for net in bus:
            used.setdefault(net, f"bit of output {oname!r}")
    diags = []
    for net in sorted(set(used) - driven):
        diags.append(Diagnostic(
            rule="undriven-net", severity=ERROR, where=name or c.name,
            message=f"net {net} is undriven ({used[net]})",
            data={"net": net}))
    return diags


def find_multiply_driven(c: Circuit, name: str = "") -> list[Diagnostic]:
    """Nets with more than one driver, or drivers shorting inputs/constants."""
    diags = []
    for net, gates in sorted(c.drivers().items()):
        reasons = []
        if len(gates) > 1:
            reasons.append(f"driven by {len(gates)} gates")
        if net in (0, 1):
            reasons.append("drives the constant net")
        if net in set(c.inputs):
            reasons.append("drives a primary input")
        if reasons:
            diags.append(Diagnostic(
                rule="multiply-driven-net", severity=ERROR,
                where=name or c.name,
                message=f"net {net}: {'; '.join(reasons)}",
                data={"net": net, "drivers": len(gates)}))
    return diags


def check_arity(c: Circuit, name: str = "") -> list[Diagnostic]:
    """Cell-library port arity and net-id range checks."""
    diags = []
    nnets = c._nnets
    for i, g in enumerate(c.gates):
        if g.cell.name not in CELLS:
            diags.append(Diagnostic(
                rule="unknown-cell", severity=ERROR, where=name or c.name,
                message=f"gate {i} instantiates unknown cell {g.cell.name!r}"))
            continue
        if len(g.inputs) != g.cell.inputs:
            diags.append(Diagnostic(
                rule="port-arity", severity=ERROR, where=name or c.name,
                message=(f"gate {i} ({g.cell.name}) has {len(g.inputs)} "
                         f"inputs, cell defines {g.cell.inputs}"),
                data={"gate": i, "cell": g.cell.name}))
        for net in (*g.inputs, g.output):
            if not 0 <= net < nnets:
                diags.append(Diagnostic(
                    rule="net-out-of-range", severity=ERROR,
                    where=name or c.name,
                    message=(f"gate {i} ({g.cell.name}) references net {net} "
                             f"outside the allocated range [0, {nnets})"),
                    data={"gate": i, "net": net}))
    for oname, bus in c.outputs.items():
        if len(bus) == 0:
            diags.append(Diagnostic(
                rule="empty-output-bus", severity=ERROR, where=name or c.name,
                message=f"output {oname!r} is an empty bus"))
        for net in bus:
            if not 0 <= net < nnets:
                diags.append(Diagnostic(
                    rule="net-out-of-range", severity=ERROR,
                    where=name or c.name,
                    message=f"output {oname!r} references net {net} "
                            f"outside the allocated range [0, {nnets})",
                    data={"output": oname, "net": net}))
    return diags


def find_dead_logic(c: Circuit, name: str = "") -> list[Diagnostic]:
    """Gates outside the cone of influence of the declared outputs."""
    dead = c.dead_gates()
    if not dead:
        return []
    cells = sorted({g.cell.name for g in dead})
    return [Diagnostic(
        rule="dead-logic", severity=WARNING, where=name or c.name,
        message=(f"{len(dead)} gate(s) outside the output cone of influence "
                 f"(cells: {', '.join(cells)}); prune_dead() removes them"),
        data={"count": len(dead), "nets": [g.output for g in dead]})]


def verify_circuit(c: Circuit, name: str = "") -> list[Diagnostic]:
    """Run every structural pass on one circuit and combine the findings."""
    diags = check_arity(c, name)
    diags += find_multiply_driven(c, name)
    diags += find_undriven_nets(c, name)
    diags += find_combinational_loops(c, name)
    # dead-logic and levelization both assume an acyclic, driven graph;
    # skip them when the graph itself is broken
    if not any(d.severity == ERROR for d in diags):
        diags += find_dead_logic(c, name)
    return diags
