"""Numerics linter: AST checks for the invariants the PTQ stack relies on.

The quantization results are only trustworthy if the Python stack never
silently changes numeric behaviour.  Five rule families guard that:

``implicit-float64``
    Calls to numpy array constructors (``np.zeros``, ``np.full``,
    ``np.arange``, ...) without an explicit ``dtype=`` inside *quantized
    code paths* (``repro.quant``, ``repro.kernels``, ``repro.engine``,
    ``repro.formats``).  Implicit float64 is how dequantized float32
    activations get silently promoted mid-pipeline.

``float-equality``
    ``==`` / ``!=`` comparisons against float literals anywhere in the
    tree.  Exact-zero guards are legitimate but must say so via a waiver,
    so every remaining occurrence is a reviewed decision.

``unseeded-rng``
    RNG construction without a seed (``np.random.default_rng()``,
    ``np.random.RandomState()``, ``random.Random()``) and use of the
    hidden global numpy RNG (``np.random.<fn>(...)``).  Every stochastic
    choice in the repo must be reproducible from an explicit seed.

``tensor-data-mutation``
    In-place writes through ``tensor.data[...]`` in a function that never
    calls ``bump_version()``.  Such writes bypass the data-version counter
    that ``FakeQuantizer.quantize_cached`` keys its cache on, producing
    stale quantized weights.

``broad-except``
    ``except Exception`` / ``except BaseException`` / bare ``except:``
    handlers anywhere in the tree.  Broad handlers swallow
    :class:`~repro.resilience.NumericsError` and friends, turning loud
    numeric failures back into silent accuracy loss; each surviving
    occurrence must be a reviewed, waived decision.

Waivers
-------
A finding is suppressed by an inline waiver on the flagged line or the
line directly above::

    if amax == 0.0:  # lint: allow[float-equality] exact-zero guard

The justification text after the rule id is mandatory; a waiver without
one is itself reported (``waiver-missing-reason``).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from .diagnostics import ERROR, Diagnostic

__all__ = ["lint_source", "lint_paths", "QUANTIZED_PACKAGES", "RULES"]

#: sub-packages of repro treated as quantized code paths for dtype rules
QUANTIZED_PACKAGES = ("quant", "kernels", "engine", "formats")

#: numpy constructors that default to float64 when dtype is omitted
_FLOAT64_CONSTRUCTORS = frozenset({
    "zeros", "ones", "empty", "full", "arange", "linspace",
    "eye", "identity", "array",
})

#: module-level numpy.random functions backed by the hidden global RNG
_GLOBAL_RNG_FNS = frozenset({
    "seed", "random", "rand", "randn", "randint", "integers", "choice",
    "normal", "uniform", "shuffle", "permutation", "standard_normal",
})

#: every rule id the linter can emit (documented in DESIGN.md section 9)
RULES = ("implicit-float64", "float-equality", "unseeded-rng",
         "tensor-data-mutation", "broad-except", "waiver-missing-reason",
         "waiver-unknown-rule", "syntax-error")

_WAIVER_RE = re.compile(r"#\s*lint:\s*allow\[([a-z0-9,\s-]+)\]\s*(.*)")


def _collect_waivers(source_lines: list[str],
                     known_rules: set[str] | frozenset | None = None
                     ) -> tuple[dict, list, list]:
    """Parse ``# lint: allow[rule,...] reason`` waivers.

    Returns ``(waived, malformed, unknown)``:

    * ``waived`` maps line -> set of waived rule ids.  A waiver on a
      comment-only line L covers findings on L and L+1 (comment-above
      style); a trailing waiver covers only its own line — including on
      a decorator line, which does *not* extend to the ``def`` below it.
    * ``malformed`` lists ``(line, rule)`` waivers missing the mandatory
      justification text (the whole waiver is rejected).
    * ``unknown`` lists ``(line, rule)`` entries whose rule id is not in
      ``known_rules`` (checked only when a rule set is given); unknown
      rules never suppress anything — a typo'd waiver must fail loudly,
      not silently leave its finding unwaived *and* unreported.

    One bracket may carry several comma-separated rules
    (``# lint: allow[float-equality,broad-except] reason``); the reason
    applies to all of them.
    """
    waived: dict[int, set[str]] = {}
    malformed: list[tuple[int, str]] = []
    unknown: list[tuple[int, str]] = []
    for i, line in enumerate(source_lines, start=1):
        m = _WAIVER_RE.search(line)
        if not m:
            continue
        rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
        reason = m.group(2).strip()
        if not reason:
            for rule in rules:
                malformed.append((i, rule))
            continue
        covered_lines = ((i, i + 1) if line.lstrip().startswith("#")
                         else (i,))
        for rule in rules:
            if known_rules is not None and rule not in known_rules:
                unknown.append((i, rule))
                continue
            for covered in covered_lines:
                waived.setdefault(covered, set()).add(rule)
    return waived, malformed, unknown


def known_waiver_rules() -> frozenset:
    """Every rule id waivable anywhere in the repo (lint + concurrency)."""
    from .concurrency import RULES as concurrency_rules
    return frozenset(RULES) | frozenset(concurrency_rules) | {
        "waiver-unknown-rule"}


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of a call target (``np.random.default_rng``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    # unary minus on a float literal (-0.5)
    return (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and _is_float_literal(node.operand))


class _Visitor(ast.NodeVisitor):
    """One-file AST walk collecting raw findings (waivers applied later)."""

    def __init__(self, filename: str, quantized_path: bool):
        self.filename = filename
        self.quantized_path = quantized_path
        self.findings: list[tuple[int, str, str]] = []  # (line, rule, msg)
        self._function_stack: list[set[str]] = []

    # -- helpers ---------------------------------------------------------
    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append((node.lineno, rule, message))

    def _enter_function(self, node) -> None:
        calls = {_dotted(n.func).rsplit(".", 1)[-1]
                 for n in ast.walk(node) if isinstance(n, ast.Call)}
        self._function_stack.append(calls)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function

    # -- implicit-float64 --------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        target = _dotted(node.func)
        head, _, fn = target.rpartition(".")

        if (self.quantized_path and head in ("np", "numpy")
                and fn in _FLOAT64_CONSTRUCTORS
                and not any(kw.arg == "dtype" for kw in node.keywords)):
            self._add(node, "implicit-float64",
                      f"{target}(...) without an explicit dtype defaults to "
                      f"float64 in a quantized code path")

        # unseeded-rng: constructors with no positional seed argument
        if (target in ("np.random.default_rng", "numpy.random.default_rng",
                       "np.random.RandomState", "numpy.random.RandomState",
                       "random.Random")
                and not node.args and not node.keywords):
            self._add(node, "unseeded-rng",
                      f"{target}() constructed without a seed")
        # unseeded-rng: hidden global numpy RNG
        elif head in ("np.random", "numpy.random") and fn in _GLOBAL_RNG_FNS:
            self._add(node, "unseeded-rng",
                      f"{target}(...) uses the hidden global RNG; construct "
                      f"a seeded Generator instead")
        self.generic_visit(node)

    # -- float-equality ----------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    _is_float_literal(left) or _is_float_literal(right)):
                sym = "==" if isinstance(op, ast.Eq) else "!="
                self._add(node, "float-equality",
                          f"float literal compared with {sym}; use a "
                          f"tolerance or waive an intentional exact check")
                break
        self.generic_visit(node)

    # -- tensor-data-mutation -----------------------------------------------
    def _check_store(self, target: ast.AST, node: ast.AST) -> None:
        if (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "data"):
            bumps = self._function_stack[-1] if self._function_stack else set()
            if "bump_version" not in bumps:
                self._add(node, "tensor-data-mutation",
                          "in-place write through .data[...] bypasses the "
                          "data-version counter; rebind .data or call "
                          "bump_version() in this function")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    # -- broad-except ------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            caught = "bare `except:`"
        else:
            exprs = (node.type.elts if isinstance(node.type, ast.Tuple)
                     else [node.type])
            names = [_dotted(e).rsplit(".", 1)[-1] for e in exprs]
            broad = [n for n in names if n in ("Exception", "BaseException")]
            caught = f"`except {broad[0]}`" if broad else None
        if caught is not None:
            self._add(node, "broad-except",
                      f"{caught} swallows unrelated failures (NumericsError "
                      f"included); catch specific types or waive with a reason")
        self.generic_visit(node)


def lint_source(source: str, filename: str = "<string>",
                quantized_path: bool | None = None) -> list[Diagnostic]:
    """Lint one source string; returns the surviving diagnostics.

    ``quantized_path`` forces the dtype rule on/off; by default it is
    inferred from the filename (membership in :data:`QUANTIZED_PACKAGES`).
    """
    if quantized_path is None:
        parts = Path(filename).parts
        quantized_path = any(p in QUANTIZED_PACKAGES for p in parts)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Diagnostic(rule="syntax-error", severity=ERROR,
                           where=f"{filename}:{exc.lineno or 0}",
                           message=str(exc.msg))]
    lines = source.splitlines()
    waived, malformed, unknown = _collect_waivers(
        lines, known_rules=known_waiver_rules())
    visitor = _Visitor(filename, quantized_path)
    visitor.visit(tree)

    diags = [Diagnostic(rule="waiver-missing-reason", severity=ERROR,
                        where=f"{filename}:{line}",
                        message=f"waiver for [{rule}] lacks a justification "
                                f"(write `# lint: allow[{rule}] -- why`)")
             for line, rule in malformed]
    diags += [Diagnostic(rule="waiver-unknown-rule", severity=ERROR,
                         where=f"{filename}:{line}",
                         message=f"waiver names unknown rule [{rule}]; "
                                 f"nothing is suppressed — fix the rule id")
              for line, rule in unknown]
    for line, rule, message in sorted(set(visitor.findings)):
        if rule in waived.get(line, ()):
            continue
        diags.append(Diagnostic(rule=rule, severity=ERROR,
                                where=f"{filename}:{line}", message=message))
    return diags


def lint_paths(paths: list[Path | str]) -> tuple[list[Diagnostic], int]:
    """Lint every ``.py`` file under the given paths.

    Returns (diagnostics, number of files linted).  Paths may be files or
    directories; directories are walked recursively.
    """
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    diags: list[Diagnostic] = []
    for f in files:
        diags.extend(lint_source(f.read_text(), filename=str(f)))
    return diags, len(files)
