"""Runtime concurrency sanitizer: observed lock order, leaks, cross-check.

The static pass (:mod:`repro.analysis.concurrency`) proves properties of
the code it can resolve; this module instruments the code that actually
*runs*.  With the sanitizer enabled (``REPRO_SANITIZE=1`` before
importing :mod:`repro`, or :func:`enable` from a test), every
``threading.Lock``/``RLock``/``Condition`` created by repro code is
wrapped so that:

* the **observed acquisition-order graph** is recorded — an edge A -> B
  for every acquire of B while A is held, keyed by each lock's creation
  site (file, line), the same identity the static pass exports;
* an acquire that **inverts** an already-observed edge (B -> A exists,
  a thread now takes A -> B) is recorded as a violation carrying both
  stacks: the one that established B -> A and the one inverting it.
  Violations are *recorded*, not raised — the test-suite canary
  (``tests/conftest.py``) asserts the list is empty after every test, so
  a latent deadlock becomes a deterministic test failure with evidence;
* :func:`snapshot` captures the live threads, ``/dev/shm/repro-*``
  segments and open pipe fds, so teardown hooks can diff before/after
  and localize **leaks** to the test that caused them;
* :func:`cross_check` replays the observed graph against
  :func:`repro.analysis.concurrency.static_graph` — an observed edge
  (or lock) missing from the static graph is an **analyzer gap**,
  reported so the static pass can be taught about it.

Only locks created by modules whose ``__name__`` starts with ``repro``
are wrapped (stdlib internals — ``queue``, ``multiprocessing`` — keep
raw locks), so enabling the sanitizer cannot disturb foreign code.
Results stay bit-identical: wrappers add bookkeeping around acquire and
release, never change blocking semantics or scheduling.

Known limitation: forked worker processes inherit the enabled sanitizer
and record their own graphs, but their violations are not shipped back
to the parent — the serve/shard protocols carry results, not telemetry.
Worker-side locking is covered statically and by the parent-side graph
(every pipe/segment interaction has a parent half).
"""

from __future__ import annotations

import linecache
import os
import re
import sys
import threading
import traceback
from pathlib import Path

__all__ = [
    "enable", "disable", "enabled", "reset",
    "observed_edges", "violations", "snapshot", "cross_check",
]

#: modules whose lock creations are tracked (by ``__name__`` prefix);
#: the sanitizer itself is always excluded
_TRACK_PREFIXES: tuple[str, ...] = ("repro",)

# originals, captured at first enable()
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition

# all sanitizer metadata is guarded by one *raw* reentrant lock (created
# from the original factory: the sanitizer never instruments itself)
_META = _REAL_RLOCK()
_ENABLED = False
#: (site_a, site_b) -> {"stack": str, "thread": str} — first witness
_EDGES: dict[tuple, dict] = {}
_VIOLATIONS: list[dict] = []
_TLS = threading.local()


def _held() -> list:
    stack = getattr(_TLS, "held", None)
    if stack is None:
        stack = _TLS.held = []
    return stack


def _counts() -> dict:
    counts = getattr(_TLS, "counts", None)
    if counts is None:
        counts = _TLS.counts = {}
    return counts


#: a tracked creation line must textually construct a lock — a C
#: extension (numpy's BitGenerator, for one) calling ``threading.Lock()``
#: has no Python frame of its own, so the nearest visible frame is the
#: repro line that *called into* the extension; tracking that would
#: mis-attribute a foreign lock to repro source
_LOCK_SRC_RE = re.compile(r"\b(?:Lock|RLock|Condition)\s*\(")


def _creator_site(depth: int) -> tuple[str, int] | None:
    """(abspath, lineno) of the frame creating a lock, if it is tracked."""
    frame = sys._getframe(depth)
    mod = frame.f_globals.get("__name__", "")
    if mod.startswith("repro.sanitize") or mod == __name__:
        return None
    if not any(mod == p or mod.startswith(p + ".") for p in _TRACK_PREFIXES):
        return None
    if not _LOCK_SRC_RE.search(
            linecache.getline(frame.f_code.co_filename, frame.f_lineno)):
        return None
    return (str(Path(frame.f_code.co_filename).resolve()), frame.f_lineno)


def _record_acquire(tracked) -> None:
    """Record edges held -> tracked and detect inversions (pre-acquire)."""
    site_b = tracked._site
    stack = None
    with _META:
        for entry in _held():
            site_a = entry._site
            if site_a == site_b:
                continue
            key = (site_a, site_b)
            if key not in _EDGES:
                if stack is None:
                    stack = "".join(traceback.format_stack(sys._getframe(2)))
                _EDGES[key] = {"stack": stack,
                               "thread": threading.current_thread().name}
            rev = _EDGES.get((site_b, site_a))
            if rev is not None:
                if stack is None:
                    stack = "".join(traceback.format_stack(sys._getframe(2)))
                _VIOLATIONS.append({
                    "kind": "lock-inversion",
                    "edge": [list(site_a), list(site_b)],
                    "thread": threading.current_thread().name,
                    "stack": stack,
                    "prior_thread": rev["thread"],
                    "prior_stack": rev["stack"],
                })


def _push(tracked) -> None:
    counts = _counts()
    n = counts.get(id(tracked), 0)
    counts[id(tracked)] = n + 1
    if n == 0:
        _held().append(tracked)


def _pop(tracked) -> None:
    counts = _counts()
    n = counts.get(id(tracked), 0)
    if n <= 1:
        counts.pop(id(tracked), None)
        stack = _held()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is tracked:
                del stack[i]
                break
    else:
        counts[id(tracked)] = n - 1


class _TrackedLock:
    """Order/leak-tracking proxy around a real Lock or RLock."""

    def __init__(self, real, site: tuple[str, int]):
        self._real = real
        self._site = site

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _record_acquire(self)
        got = self._real.acquire(blocking, timeout)
        if got:
            _push(self)
        return got

    def release(self) -> None:
        self._real.release()
        _pop(self)

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<sanitized {self._real!r} from {self._site}>"


class _TrackedCondition:
    """Order-tracking proxy around a real Condition.

    ``wait``/``wait_for`` release the underlying lock, so the held entry
    is popped for the duration and re-pushed on return (re-acquisition
    records no new edges: the wakeup path is the scheduler's, not the
    waiter's).
    """

    def __init__(self, real, site: tuple[str, int]):
        self._real = real
        self._site = site

    def acquire(self, *args) -> bool:
        _record_acquire(self)
        got = self._real.acquire(*args)
        if got:
            _push(self)
        return got

    def release(self) -> None:
        self._real.release()
        _pop(self)

    def __enter__(self):
        _record_acquire(self)
        self._real.__enter__()
        _push(self)
        return self

    def __exit__(self, *exc):
        out = self._real.__exit__(*exc)
        _pop(self)
        return out

    def wait(self, timeout: float | None = None) -> bool:
        _pop(self)
        try:
            return self._real.wait(timeout)
        finally:
            _push(self)

    def wait_for(self, predicate, timeout: float | None = None):
        _pop(self)
        try:
            return self._real.wait_for(predicate, timeout)
        finally:
            _push(self)

    def notify(self, n: int = 1) -> None:
        self._real.notify(n)

    def notify_all(self) -> None:
        self._real.notify_all()


def _lock_factory():
    site = _creator_site(2)
    real = _REAL_LOCK()
    return real if site is None else _TrackedLock(real, site)


def _rlock_factory():
    site = _creator_site(2)
    real = _REAL_RLOCK()
    return real if site is None else _TrackedLock(real, site)


def _condition_factory(lock=None):
    site = _creator_site(2)
    if lock is not None and isinstance(lock, _TrackedLock):
        # hand the Condition the raw lock; order tracking stays with the
        # caller-visible wrapper object the code continues to use
        real = _REAL_CONDITION(lock._real)
    else:
        real = _REAL_CONDITION(lock)
    return real if site is None else _TrackedCondition(real, site)


# ----------------------------------------------------------------------
# lifecycle


def enable() -> None:
    """Patch the ``threading`` factories (idempotent, repro-only effect)."""
    global _ENABLED
    with _META:
        if _ENABLED:
            return
        threading.Lock = _lock_factory
        threading.RLock = _rlock_factory
        threading.Condition = _condition_factory
        _ENABLED = True


def disable() -> None:
    """Restore the original factories; recorded data stays until reset()."""
    global _ENABLED
    with _META:
        if not _ENABLED:
            return
        threading.Lock = _REAL_LOCK
        threading.RLock = _REAL_RLOCK
        threading.Condition = _REAL_CONDITION
        _ENABLED = False


def enabled() -> bool:
    """Whether the factories are currently patched."""
    return _ENABLED


def reset() -> None:
    """Drop all recorded edges and violations (patches stay as they are)."""
    with _META:
        _EDGES.clear()
        _VIOLATIONS.clear()


def observed_edges() -> list[tuple[tuple, tuple]]:
    """The recorded acquisition-order edges, as (site_a, site_b) pairs."""
    with _META:
        return sorted(_EDGES)


def violations() -> list[dict]:
    """Recorded lock-inversion violations (copies; see module docstring)."""
    with _META:
        return [dict(v) for v in _VIOLATIONS]


# ----------------------------------------------------------------------
# leak snapshots


def snapshot() -> dict:
    """Live threads, ``/dev/shm/repro-*`` segments and open pipe fds.

    Teardown hooks diff two snapshots to localize leaks; the sets are
    plain facts (names / fd numbers), no judgement is applied here.
    """
    threads = sorted(t.name for t in threading.enumerate() if t.is_alive())
    shm_dir = Path("/dev/shm")
    segments = (sorted(p.name for p in shm_dir.glob("repro-*"))
                if shm_dir.is_dir() else [])
    pipe_fds = []
    fd_dir = "/proc/self/fd"
    if os.path.isdir(fd_dir):  # pragma: no branch - linux CI
        for fd in os.listdir(fd_dir):
            try:
                target = os.readlink(os.path.join(fd_dir, fd))
            except OSError:
                continue
            if target.startswith("pipe:"):
                pipe_fds.append(int(fd))
    return {"threads": threads, "segments": segments,
            "pipe_fds": sorted(pipe_fds)}


# ----------------------------------------------------------------------
# static-vs-observed cross-check


def cross_check(paths=None) -> dict:
    """Compare the observed lock graph against the static one.

    Returns ``{"observed_edges", "static_edges", "gaps"}`` where each
    gap is an observed fact the static pass missed: ``unknown-lock`` (a
    runtime lock whose creation site the analyzer never registered) or
    ``missing-edge`` (an observed A -> B ordering absent from the static
    graph).  Gaps mean the *analyzer* needs teaching — the runtime
    evidence is ground truth.
    """
    from repro.analysis.concurrency import static_graph
    graph = static_graph(paths)
    site_to_id: dict[tuple[str, int], str] = {}
    for lock_id, sites in graph["locks"].items():
        for file, line in sites:
            site_to_id[(file, line)] = lock_id
    static_edges = {tuple(e) for e in graph["edges"]}
    gaps: list[dict] = []
    with _META:
        observed = sorted(_EDGES.items())
    for (site_a, site_b), witness in observed:
        id_a = site_to_id.get(tuple(site_a))
        id_b = site_to_id.get(tuple(site_b))
        if id_a is None or id_b is None:
            gaps.append({"kind": "unknown-lock",
                         "edge": [list(site_a), list(site_b)],
                         "ids": [id_a, id_b],
                         "thread": witness["thread"]})
        elif id_a != id_b and (id_a, id_b) not in static_edges:
            gaps.append({"kind": "missing-edge", "edge": [id_a, id_b],
                         "thread": witness["thread"]})
    return {"observed_edges": len(observed),
            "static_edges": len(static_edges), "gaps": gaps}
