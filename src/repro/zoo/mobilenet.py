"""MiniMobileNetV2/V3: depthwise inverted-residual analogues.

These are the architectures where the paper's Table 2 shows INT8 and the
narrow-range formats (FP(8,2), Posit(8,0)) collapsing: depthwise
convolutions yield per-channel activation statistics with heavy tails, and
V3 adds squeeze-excite gating plus hard-swish, stretching activation ranges
further.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..nn import Flatten, GlobalAvgPool2d, Linear, Module, Sequential
from .blocks import ConvBNAct, InvertedResidual

__all__ = ["MiniMobileNetV2", "MiniMobileNetV3"]


class MiniMobileNetV2(Module):
    """Inverted residual blocks, ReLU6, linear bottlenecks (no SE)."""

    def __init__(self, num_classes: int = 10, width: int = 12, in_channels: int = 3,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        w = width
        self.stem = ConvBNAct(in_channels, w, act="relu6", rng=rng)
        self.blocks = Sequential(
            InvertedResidual(w, w, expand=1, act="relu6", rng=rng),
            InvertedResidual(w, 2 * w, stride=2, expand=4, act="relu6", rng=rng),
            InvertedResidual(2 * w, 2 * w, expand=4, act="relu6", rng=rng),
            InvertedResidual(2 * w, 3 * w, stride=2, expand=4, act="relu6", rng=rng),
            InvertedResidual(3 * w, 3 * w, expand=4, act="relu6", rng=rng),
        )
        self.final = ConvBNAct(3 * w, 6 * w, 1, act="relu6", rng=rng)
        self.head = Sequential(GlobalAvgPool2d(), Flatten(),
                               Linear(6 * w, num_classes, rng=rng))

    def forward(self, x) -> Tensor:
        x = Tensor.as_tensor(x)
        return self.head(self.final(self.blocks(self.stem(x))))


class MiniMobileNetV3(Module):
    """V2 topology plus squeeze-excite and hard-swish (the V3 additions)."""

    def __init__(self, num_classes: int = 10, width: int = 12, in_channels: int = 3,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        w = width
        self.stem = ConvBNAct(in_channels, w, act="hardswish", rng=rng)
        self.blocks = Sequential(
            InvertedResidual(w, w, expand=1, act="relu6", use_se=True, rng=rng),
            InvertedResidual(w, 2 * w, stride=2, expand=4, act="hardswish",
                             use_se=True, rng=rng),
            InvertedResidual(2 * w, 2 * w, expand=4, act="hardswish",
                             use_se=True, rng=rng),
            InvertedResidual(2 * w, 3 * w, stride=2, expand=4, act="hardswish",
                             use_se=True, rng=rng),
            InvertedResidual(3 * w, 3 * w, expand=4, act="hardswish",
                             use_se=True, rng=rng),
        )
        self.final = ConvBNAct(3 * w, 6 * w, 1, act="hardswish", rng=rng)
        self.head = Sequential(GlobalAvgPool2d(), Flatten(),
                               Linear(6 * w, num_classes, rng=rng))

    def forward(self, x) -> Tensor:
        x = Tensor.as_tensor(x)
        return self.head(self.final(self.blocks(self.stem(x))))
