"""Training and evaluation loops for the zoo (vision + text)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, functional as F, no_grad
from ..data.glue import TASK_METRICS, TextBatches
from ..data.images import ImageBatches
from ..nn import Adam, Module, SGD
from ..quant.metrics import accuracy, f1_score, matthews_corrcoef

__all__ = [
    "TrainConfig", "train_vision", "train_text",
    "evaluate_vision", "evaluate_text", "predict_vision", "predict_text",
]


@dataclass
class TrainConfig:
    epochs: int = 12
    batch_size: int = 50
    lr: float = 2e-3
    weight_decay: float = 1e-4
    optimizer: str = "adam"
    seed: int = 0
    verbose: bool = False


def _make_optimizer(model: Module, cfg: TrainConfig):
    if cfg.optimizer == "adam":
        return Adam(model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
    if cfg.optimizer == "sgd":
        return SGD(model.parameters(), lr=cfg.lr, momentum=0.9,
                   weight_decay=cfg.weight_decay)
    raise ValueError(f"unknown optimizer {cfg.optimizer!r}")


def train_vision(model: Module, data: ImageBatches, cfg: TrainConfig) -> list[float]:
    """Minibatch training on an image split; returns per-epoch mean losses."""
    opt = _make_optimizer(model, cfg)
    rng = np.random.default_rng(cfg.seed)
    n = len(data)
    losses = []
    model.train()
    for epoch in range(cfg.epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        nb = 0
        for i in range(0, n, cfg.batch_size):
            idx = order[i:i + cfg.batch_size]
            logits = model(Tensor(data.images[idx]))
            loss = F.cross_entropy(logits, data.labels[idx])
            opt.zero_grad()
            loss.backward()
            opt.step()
            epoch_loss += loss.item()
            nb += 1
        losses.append(epoch_loss / nb)
        if cfg.verbose:  # pragma: no cover - logging
            print(f"  epoch {epoch + 1}/{cfg.epochs} loss {losses[-1]:.4f}")
    model.eval()
    return losses


def train_text(model: Module, data: TextBatches, cfg: TrainConfig) -> list[float]:
    """Minibatch training on a GLUE-style split."""
    opt = _make_optimizer(model, cfg)
    rng = np.random.default_rng(cfg.seed)
    n = len(data)
    losses = []
    model.train()
    for epoch in range(cfg.epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        nb = 0
        for i in range(0, n, cfg.batch_size):
            idx = order[i:i + cfg.batch_size]
            logits = model(data.ids[idx], data.mask[idx])
            loss = F.cross_entropy(logits, data.labels[idx])
            opt.zero_grad()
            loss.backward()
            opt.step()
            epoch_loss += loss.item()
            nb += 1
        losses.append(epoch_loss / nb)
        if cfg.verbose:  # pragma: no cover - logging
            print(f"  epoch {epoch + 1}/{cfg.epochs} loss {losses[-1]:.4f}")
    model.eval()
    return losses


def predict_vision(model: Module, images: np.ndarray, batch_size: int = 100) -> np.ndarray:
    """Argmax class predictions for a stack of images."""
    model.eval()
    preds = []
    with no_grad():
        for i in range(0, len(images), batch_size):
            logits = model(Tensor(images[i:i + batch_size]))
            preds.append(np.argmax(logits.data, axis=-1))
    return np.concatenate(preds)


def predict_text(model: Module, ids: np.ndarray, mask: np.ndarray,
                 batch_size: int = 100) -> np.ndarray:
    """Argmax label predictions for a batch of token sequences."""
    model.eval()
    preds = []
    with no_grad():
        for i in range(0, len(ids), batch_size):
            logits = model(ids[i:i + batch_size], mask[i:i + batch_size])
            preds.append(np.argmax(logits.data, axis=-1))
    return np.concatenate(preds)


def evaluate_vision(model: Module, data: ImageBatches, batch_size: int = 100) -> float:
    """Top-1 accuracy (percent) on an image split."""
    preds = predict_vision(model, data.images, batch_size)
    return accuracy(data.labels, preds)


def evaluate_text(model: Module, data: TextBatches, metric: str = "accuracy",
                  batch_size: int = 100) -> float:
    """Task metric (percent) on a text split: accuracy, f1 or matthews."""
    preds = predict_text(model, data.ids, data.mask, batch_size)
    if metric == "accuracy":
        return accuracy(data.labels, preds)
    if metric == "f1":
        return f1_score(data.labels, preds)
    if metric == "matthews":
        return matthews_corrcoef(data.labels, preds)
    raise ValueError(f"unknown metric {metric!r}; see TASK_METRICS: {TASK_METRICS}")
