"""MiniResNet: ResNet-18/50/101 analogues (basic vs bottleneck, two depths)."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..nn import Flatten, GlobalAvgPool2d, Linear, Module, Sequential
from .blocks import BasicBlock, Bottleneck, ConvBNAct

__all__ = ["MiniResNet", "resnet18_mini", "resnet50_mini", "resnet101_mini"]


class MiniResNet(Module):
    """Three-stage residual network over 24x24 inputs.

    ``block`` selects the ResNet-18 basic block or the ResNet-50/101
    bottleneck; ``blocks_per_stage`` scales depth, mirroring how ResNet-101
    differs from ResNet-50 only by depth.
    """

    def __init__(self, block: str = "basic", blocks_per_stage: tuple[int, ...] = (2, 2, 2),
                 num_classes: int = 10, width: int = 16, in_channels: int = 3, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = ConvBNAct(in_channels, width, rng=rng)
        stages = []
        cin = width
        for stage_idx, n_blocks in enumerate(blocks_per_stage):
            stage_width = width * (2 ** stage_idx)
            for b in range(n_blocks):
                stride = 2 if (b == 0 and stage_idx > 0) else 1
                if block == "basic":
                    layer = BasicBlock(cin, stage_width, stride=stride, rng=rng)
                    cin = stage_width
                elif block == "bottleneck":
                    layer = Bottleneck(cin, stage_width // 2, stride=stride, rng=rng)
                    cin = layer.cout
                else:
                    raise ValueError(f"unknown block type {block!r}")
                stages.append(layer)
        self.stages = Sequential(*stages)
        self.head = Sequential(GlobalAvgPool2d(), Flatten(), Linear(cin, num_classes, rng=rng))

    def forward(self, x) -> Tensor:
        x = Tensor.as_tensor(x)
        return self.head(self.stages(self.stem(x)))


def resnet18_mini(num_classes: int = 10, seed: int = 0) -> MiniResNet:
    """ResNet-18 analogue: basic blocks, shallow."""
    return MiniResNet("basic", (2, 2, 2), num_classes=num_classes, seed=seed)


def resnet50_mini(num_classes: int = 10, seed: int = 0) -> MiniResNet:
    """ResNet-50 analogue: bottleneck blocks."""
    return MiniResNet("bottleneck", (2, 2, 2), num_classes=num_classes, seed=seed)


def resnet101_mini(num_classes: int = 10, seed: int = 0) -> MiniResNet:
    """ResNet-101 analogue: bottleneck blocks, deeper."""
    return MiniResNet("bottleneck", (2, 3, 3), num_classes=num_classes, seed=seed)
