"""Miniaturised model zoo: the paper's eight CNNs and BERT, trained from scratch."""

from .bert import MiniBERT
from .blocks import (
    BasicBlock, Bottleneck, ConvBNAct, FusedMBConv, InvertedResidual, MBConv,
    SqueezeExcite,
)
from .efficientnet import MiniEfficientNetB0, MiniEfficientNetV2
from .mobilenet import MiniMobileNetV2, MiniMobileNetV3
from .registry import (
    ALL_MODELS, GLUE_MODELS, VISION_MODELS, ZooEntry, clear_warm_models,
    dataset, glue_task, is_cached, pretrained, warm_model_stats,
    zoo_cache_dir,
)
from .resnet import MiniResNet, resnet18_mini, resnet50_mini, resnet101_mini
from .trainer import (
    TrainConfig, evaluate_text, evaluate_vision, predict_text, predict_vision,
    train_text, train_vision,
)
from .vgg import MiniVGG

__all__ = [
    "MiniVGG", "MiniResNet", "resnet18_mini", "resnet50_mini", "resnet101_mini",
    "MiniMobileNetV2", "MiniMobileNetV3", "MiniEfficientNetB0", "MiniEfficientNetV2",
    "MiniBERT",
    "ConvBNAct", "BasicBlock", "Bottleneck", "SqueezeExcite", "InvertedResidual",
    "MBConv", "FusedMBConv",
    "TrainConfig", "train_vision", "train_text", "evaluate_vision", "evaluate_text",
    "predict_vision", "predict_text",
    "ZooEntry", "ALL_MODELS", "VISION_MODELS", "GLUE_MODELS",
    "pretrained", "is_cached", "zoo_cache_dir", "dataset", "glue_task",
    "warm_model_stats", "clear_warm_models",
]
