"""MiniEfficientNet-B0/V2: MBConv analogues with SE and SiLU.

EfficientNets are the most quantization-fragile vision models in the
paper's Table 2 (INT8 drops from 77.7 to 50.3 on B0, 84.2 to 25.3 on V2):
SiLU's unbounded positive range combined with squeeze-excite gating
produces the widest activation distributions in the zoo.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..nn import Flatten, GlobalAvgPool2d, Linear, Module, Sequential
from .blocks import ConvBNAct, FusedMBConv, MBConv

__all__ = ["MiniEfficientNetB0", "MiniEfficientNetV2"]


class MiniEfficientNetB0(Module):
    """MBConv (depthwise + SE + SiLU) trunk."""

    def __init__(self, num_classes: int = 10, width: int = 12, in_channels: int = 3,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        w = width
        self.stem = ConvBNAct(in_channels, w, act="silu", rng=rng)
        self.blocks = Sequential(
            MBConv(w, w, expand=1, rng=rng),
            MBConv(w, 2 * w, stride=2, expand=4, rng=rng),
            MBConv(2 * w, 2 * w, expand=4, rng=rng),
            MBConv(2 * w, 3 * w, stride=2, expand=4, rng=rng),
            MBConv(3 * w, 3 * w, expand=4, rng=rng),
        )
        self.final = ConvBNAct(3 * w, 6 * w, 1, act="silu", rng=rng)
        self.head = Sequential(GlobalAvgPool2d(), Flatten(),
                               Linear(6 * w, num_classes, rng=rng))

    def forward(self, x) -> Tensor:
        x = Tensor.as_tensor(x)
        return self.head(self.final(self.blocks(self.stem(x))))


class MiniEfficientNetV2(Module):
    """Fused-MBConv early stages, MBConv late stages (the V2 hybrid)."""

    def __init__(self, num_classes: int = 10, width: int = 12, in_channels: int = 3,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        w = width
        self.stem = ConvBNAct(in_channels, w, act="silu", rng=rng)
        self.blocks = Sequential(
            FusedMBConv(w, w, expand=2, rng=rng),
            FusedMBConv(w, 2 * w, stride=2, expand=4, rng=rng),
            FusedMBConv(2 * w, 2 * w, expand=4, rng=rng),
            MBConv(2 * w, 3 * w, stride=2, expand=4, rng=rng),
            MBConv(3 * w, 3 * w, expand=4, rng=rng),
            MBConv(3 * w, 3 * w, expand=4, rng=rng),
        )
        self.final = ConvBNAct(3 * w, 6 * w, 1, act="silu", rng=rng)
        self.head = Sequential(GlobalAvgPool2d(), Flatten(),
                               Linear(6 * w, num_classes, rng=rng))

    def forward(self, x) -> Tensor:
        x = Tensor.as_tensor(x)
        return self.head(self.final(self.blocks(self.stem(x))))
