"""The pretrained-model zoo: train-once, cache, reload.

``pretrained(name)`` returns the paper's model analogue with trained
weights, training it on first use and caching the state dict (plus its
FP32 reference score) as an ``.npz`` under the cache directory
(``$REPRO_ZOO_CACHE`` or ``.zoo_cache/`` in the working directory).
``pretrained(name, memo=True)`` additionally keeps the built model in a
per-process warm memo, so grid workers pay the ``.npz`` load and module
construction once per model instead of once per cell; hit/miss counters
are exported to the parallel fabric through
:func:`repro.resilience.pool.register_stats_provider` and show up in
``executor.last_run_stats`` as ``zoo_warm_hits``/``zoo_warm_misses``.

Memoized models are shared across cells, which is safe because the PTQ
cycle is exactly reversible: ``quantize_model`` attaches hooks without
touching weights and ``dequantize_model`` strips them (callers wrap the
pair in ``try/finally`` so even a failing cell returns the model clean).

Vision entries share one :class:`~repro.data.images.SynthImageNet`
instance; each GLUE entry owns a task. The registry records, per entry,
everything the Table 2 experiment needs: datasets, eval metric, and a
``forward`` adapter for calibration.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..data.glue import TASK_METRICS, GlueTask, make_task
from ..data.images import SynthImageNet
from ..nn import Module
from ..resilience.pool import register_stats_provider
from .bert import MiniBERT
from .efficientnet import MiniEfficientNetB0, MiniEfficientNetV2
from .mobilenet import MiniMobileNetV2, MiniMobileNetV3
from .resnet import resnet18_mini, resnet50_mini, resnet101_mini
from .trainer import (
    TrainConfig, evaluate_text, evaluate_vision, train_text, train_vision,
)
from .vgg import MiniVGG

__all__ = [
    "ZooEntry", "VISION_MODELS", "GLUE_MODELS", "ALL_MODELS",
    "pretrained", "is_cached", "zoo_cache_dir", "dataset", "glue_task",
    "warm_model_stats", "clear_warm_models",
]

# shared dataset geometry (kept small so from-scratch training is minutes,
# not hours, while leaving quantization-visible headroom; see DESIGN.md)
NUM_CLASSES = 16
IMAGE_SIZE = 24
TRAIN_N = 2000
SEQ_LEN = 24
TEXT_TRAIN_N = 3000

_DATASET: SynthImageNet | None = None
_TASKS: dict[str, GlueTask] = {}


def dataset() -> SynthImageNet:
    """The shared synthetic image-classification dataset."""
    global _DATASET
    if _DATASET is None:
        # lint: allow[unlocked-shared-state] idempotent memo: racers build identical seeded datasets; last GIL-atomic rebind wins
        _DATASET = SynthImageNet(num_classes=NUM_CLASSES, image_size=IMAGE_SIZE)
    return _DATASET


def glue_task(name: str) -> GlueTask:
    """The shared GlueTask instance for a task name."""
    if name not in _TASKS:
        # lint: allow[unlocked-shared-state] idempotent memo: racers build identical seeded tasks; dict insert is GIL-atomic
        _TASKS[name] = make_task(name, seq_len=SEQ_LEN)
    return _TASKS[name]


@dataclass
class ZooEntry:
    """One row of the paper's Table 2."""

    name: str                    # paper's model name
    kind: str                    # "vision" | "glue"
    factory: Callable[[], Module]
    train_cfg: TrainConfig = field(default_factory=TrainConfig)
    task: str | None = None      # GLUE task name for kind == "glue"

    @property
    def metric(self) -> str:
        return TASK_METRICS[self.task] if self.kind == "glue" else "accuracy"


def _bert_factory(task_name: str) -> Callable[[], Module]:
    def make() -> Module:
        t = glue_task(task_name)
        return MiniBERT(vocab_size=t.vocab.size, seq_len=t.seq_len,
                        num_labels=t.num_labels, seed=11)
    return make


_VISION_CFG = TrainConfig(epochs=10, batch_size=64, lr=2e-3, weight_decay=1e-4)
_TEXT_CFG = TrainConfig(epochs=20, batch_size=64, lr=2e-3, weight_decay=1e-5)


def _vision_entry(name: str, factory: Callable[[], Module]) -> ZooEntry:
    return ZooEntry(name, "vision", factory, train_cfg=_VISION_CFG)


def _glue_entry(name: str, task: str) -> ZooEntry:
    return ZooEntry(name, "glue", _bert_factory(task), train_cfg=_TEXT_CFG, task=task)


VISION_MODELS: dict[str, ZooEntry] = {
    "VGG16": _vision_entry(
        "VGG16", lambda: MiniVGG(num_classes=NUM_CLASSES, image_size=IMAGE_SIZE, seed=1)),
    "ResNet18": _vision_entry("ResNet18", lambda: resnet18_mini(NUM_CLASSES, seed=2)),
    "ResNet50": _vision_entry("ResNet50", lambda: resnet50_mini(NUM_CLASSES, seed=3)),
    "ResNet101": _vision_entry("ResNet101", lambda: resnet101_mini(NUM_CLASSES, seed=4)),
    "MobileNet_v2": _vision_entry(
        "MobileNet_v2", lambda: MiniMobileNetV2(NUM_CLASSES, seed=5)),
    "MobileNet_v3": _vision_entry(
        "MobileNet_v3", lambda: MiniMobileNetV3(NUM_CLASSES, seed=6)),
    "EfficientNet_b0": _vision_entry(
        "EfficientNet_b0", lambda: MiniEfficientNetB0(NUM_CLASSES, seed=7)),
    "EfficientNet_v2": _vision_entry(
        "EfficientNet_v2", lambda: MiniEfficientNetV2(NUM_CLASSES, seed=8)),
}

GLUE_MODELS: dict[str, ZooEntry] = {
    "CoLA": _glue_entry("CoLA", "cola"),
    "MNLI-mm": _glue_entry("MNLI-mm", "mnli"),
    "MRPC": _glue_entry("MRPC", "mrpc"),
    "SST-2": _glue_entry("SST-2", "sst2"),
}

ALL_MODELS: dict[str, ZooEntry] = {**VISION_MODELS, **GLUE_MODELS}


def zoo_cache_dir() -> Path:
    """Directory holding trained-model caches (created on demand)."""
    root = os.environ.get("REPRO_ZOO_CACHE", ".zoo_cache")
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cache_path(name: str) -> Path:
    safe = name.replace("/", "_").replace(" ", "_")
    return zoo_cache_dir() / f"{safe}.npz"


def is_cached(name: str) -> bool:
    """True iff ``name`` has a trained state-dict cache on disk.

    Warm-up paths use this to preload without ever *triggering* training:
    an uncached model trains once, in the first cell that needs it.
    """
    return _cache_path(name).exists()


def _train_entry(entry: ZooEntry, model: Module, verbose: bool) -> float:
    cfg = entry.train_cfg
    if verbose:
        cfg = TrainConfig(**{**cfg.__dict__, "verbose": True})
    if entry.kind == "vision":
        train_vision(model, dataset().train_split(TRAIN_N), cfg)
        return evaluate_vision(model, dataset().test_split(1000))
    task = glue_task(entry.task)
    train_text(model, task.train_split(TEXT_TRAIN_N), cfg)
    return evaluate_text(model, task.test_split(1000), entry.metric)


# per-process warm memo: built models shared across grid cells of a run.
# Scheduler threads can resolve models concurrently; the lock keeps the
# memo insert and its hit/miss counters coherent (training itself runs
# outside the lock — only the bookkeeping is guarded).
_WARM_LOCK = threading.Lock()
_WARM_MODELS: dict[str, tuple[Module, float]] = {}
_WARM_STATS = {"zoo_warm_hits": 0, "zoo_warm_misses": 0}


def warm_model_stats() -> dict:
    """Cumulative per-process warm-memo counters (hits/misses)."""
    return dict(_WARM_STATS)


def clear_warm_models() -> None:
    """Drop the warm memo and zero its counters (tests, memory pressure)."""
    with _WARM_LOCK:
        _WARM_MODELS.clear()
        _WARM_STATS["zoo_warm_hits"] = 0
        _WARM_STATS["zoo_warm_misses"] = 0


register_stats_provider("zoo", warm_model_stats)


def pretrained(name: str, retrain: bool = False, verbose: bool = False,
               memo: bool = False) -> tuple[Module, float]:
    """Return ``(model, fp32_reference_score)`` for a Table 2 row.

    The model is trained on first call and cached; subsequent calls load
    the cached state dict.  ``retrain=True`` forces retraining.
    ``memo=True`` serves repeat calls from the per-process warm memo —
    the *same* model object each time, so callers must leave it in its
    FP32 state (quantize/dequantize in pairs).
    """
    if name not in ALL_MODELS:
        raise KeyError(f"unknown model {name!r}; available: {sorted(ALL_MODELS)}")
    if memo and not retrain:
        with _WARM_LOCK:
            warm = _WARM_MODELS.get(name)
            if warm is not None:
                _WARM_STATS["zoo_warm_hits"] += 1
                return warm
            _WARM_STATS["zoo_warm_misses"] += 1
    entry = ALL_MODELS[name]
    model = entry.factory()
    path = _cache_path(name)
    if path.exists() and not retrain:
        try:
            blob = dict(np.load(path))
            score = float(blob.pop("__fp32_score__"))
            model.load_state_dict(blob)
        except Exception as exc:  # lint: allow[broad-except] corrupt/truncated cache: retrain instead
            print(f"zoo: cache {path} unreadable ({exc!r}); retraining {name}",
                  flush=True)
        else:
            model.eval()
            if memo:
                with _WARM_LOCK:
                    _WARM_MODELS[name] = (model, score)
            return model, score
    score = _train_entry(entry, model, verbose)
    state = model.state_dict()
    state["__fp32_score__"] = np.array(score, dtype=np.float64)
    tmp = path.with_suffix(f".tmp{os.getpid()}.npz")
    np.savez(tmp, **state)
    os.replace(tmp, path)  # atomic: concurrent trainers cannot corrupt the cache
    model.eval()
    if memo:
        with _WARM_LOCK:
            _WARM_MODELS[name] = (model, score)
    return model, score
