"""MiniBERT: the BERT-base analogue for the GLUE-style tasks.

Token + learned positional embeddings, a stack of post-LN transformer
encoder layers, and a tanh CLS pooler feeding the classification head —
the standard BERT fine-tuning topology, miniaturised.  All Linear layers
(Q/K/V/out projections, FFN, pooler, classifier) are quantizable; softmax
and LayerNorm stay in full precision.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, functional as F
from ..nn import LayerNorm, Linear, Module, Parameter, TransformerEncoderLayer
from ..nn import init

__all__ = ["MiniBERT"]


class MiniBERT(Module):
    """Tiny BERT encoder for sequence classification.

    ``forward(ids, mask)`` takes integer token ids (N, T) and a float mask
    (N, T) with 1 for real tokens; returns (N, num_labels) logits.
    """

    def __init__(self, vocab_size: int = 64, seq_len: int = 24, dim: int = 64,
                 num_heads: int = 4, num_layers: int = 2, ffn_dim: int = 128,
                 num_labels: int = 2, sep_id: int = 2, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.dim = dim
        self.sep_id = sep_id
        self.tok_emb = Parameter(init.normal((vocab_size, dim), rng, std=0.05))
        self.pos_emb = Parameter(init.normal((seq_len, dim), rng, std=0.05))
        # segment (token-type) embeddings, derived from the [SEP] position
        self.seg_emb = Parameter(init.normal((2, dim), rng, std=0.05))
        self.emb_norm = LayerNorm(dim)
        self.encoder_layers = [
            TransformerEncoderLayer(dim, num_heads, ffn_dim, rng=rng)
            for _ in range(num_layers)
        ]
        for i, layer in enumerate(self.encoder_layers):
            setattr(self, f"encoder{i}", layer)
        self.pooler = Linear(dim, dim, rng=rng)
        self.classifier = Linear(dim, num_labels, rng=rng)

    def forward(self, ids: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
        ids = np.asarray(ids)
        # segment 1 after the first [SEP] (BERT's token-type ids)
        segments = (np.cumsum(ids == self.sep_id, axis=1) > 0).astype(np.int64)
        x = F.embedding(self.tok_emb, ids) + self.pos_emb \
            + F.embedding(self.seg_emb, segments)
        x = self.emb_norm(x)
        for layer in self.encoder_layers:
            x = layer(x, mask)
        cls = x[:, 0, :]                       # CLS token representation
        pooled = self.pooler(cls).tanh()
        return self.classifier(pooled)
