"""MiniVGG: the VGG16 analogue — plain 3x3 conv stacks with an FC head."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..nn import Flatten, Linear, MaxPool2d, Module, ReLU, Sequential
from .blocks import ConvBNAct

__all__ = ["MiniVGG"]


class MiniVGG(Module):
    """VGG-style stacked 3x3 convolutions with max-pool stage transitions.

    Like VGG16, there are no shortcuts, no depthwise convolutions and a
    large fully-connected head; in the paper's Table 2 this family is the
    most quantization-robust.
    """

    def __init__(self, num_classes: int = 10, width: int = 16, in_channels: int = 3,
                 image_size: int = 24, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        w = width
        self.features = Sequential(
            ConvBNAct(in_channels, w, rng=rng),
            ConvBNAct(w, w, rng=rng),
            MaxPool2d(2),
            ConvBNAct(w, 2 * w, rng=rng),
            ConvBNAct(2 * w, 2 * w, rng=rng),
            MaxPool2d(2),
            ConvBNAct(2 * w, 3 * w, rng=rng),
            ConvBNAct(3 * w, 3 * w, rng=rng),
            MaxPool2d(2),
        )
        spatial = image_size // 8
        self.classifier = Sequential(
            Flatten(),
            Linear(3 * w * spatial * spatial, 4 * w, rng=rng),
            ReLU(),
            Linear(4 * w, num_classes, rng=rng),
        )

    def forward(self, x) -> Tensor:
        x = Tensor.as_tensor(x)
        return self.classifier(self.features(x))
