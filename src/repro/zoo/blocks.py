"""Shared building blocks for the miniaturised architecture families.

Each block reproduces the structural trait that drives its family's PTQ
behaviour in the paper's Table 2:

* plain conv stacks (VGG/ResNet) — well-conditioned activations, robust
  to every 8-bit format;
* inverted residuals with depthwise convolutions and linear bottlenecks
  (MobileNetV2) — wider activation ranges;
* squeeze-excite gating and hard-swish/SiLU (MobileNetV3/EfficientNet) —
  heavy-tailed activations that punish narrow-dynamic-range formats.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, functional as F
from ..nn import (
    BatchNorm2d, Conv2d, GlobalAvgPool2d, Hardsigmoid, Hardswish, Identity,
    Linear, Module, ReLU, ReLU6, Sequential, SiLU,
)

__all__ = [
    "ConvBNAct", "BasicBlock", "Bottleneck", "SqueezeExcite",
    "InvertedResidual", "MBConv", "FusedMBConv",
]


def _activation(name: str) -> Module:
    table = {"relu": ReLU, "relu6": ReLU6, "hardswish": Hardswish,
             "silu": SiLU, "none": Identity}
    return table[name]()


class ConvBNAct(Module):
    """Conv -> BatchNorm -> activation, the universal CNN cell."""

    def __init__(self, cin: int, cout: int, kernel: int = 3, stride: int = 1,
                 groups: int = 1, act: str = "relu",
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.conv = Conv2d(cin, cout, kernel, stride=stride,
                           padding=kernel // 2, groups=groups, bias=False, rng=rng)
        self.bn = BatchNorm2d(cout)
        self.act = _activation(act)

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))


class BasicBlock(Module):
    """ResNet-18/34 residual block: two 3x3 convs plus identity shortcut."""

    def __init__(self, cin: int, cout: int, stride: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.conv1 = ConvBNAct(cin, cout, 3, stride=stride, rng=rng)
        self.conv2 = ConvBNAct(cout, cout, 3, act="none", rng=rng)
        if stride != 1 or cin != cout:
            self.shortcut = ConvBNAct(cin, cout, 1, stride=stride, act="none", rng=rng)
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(self.conv2(self.conv1(x)) + self.shortcut(x))


class Bottleneck(Module):
    """ResNet-50/101 bottleneck: 1x1 reduce, 3x3, 1x1 expand (x expansion)."""

    expansion = 4

    def __init__(self, cin: int, width: int, stride: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        cout = width * self.expansion
        self.conv1 = ConvBNAct(cin, width, 1, rng=rng)
        self.conv2 = ConvBNAct(width, width, 3, stride=stride, rng=rng)
        self.conv3 = ConvBNAct(width, cout, 1, act="none", rng=rng)
        if stride != 1 or cin != cout:
            self.shortcut = ConvBNAct(cin, cout, 1, stride=stride, act="none", rng=rng)
        else:
            self.shortcut = Identity()
        self.cout = cout

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(self.conv3(self.conv2(self.conv1(x))) + self.shortcut(x))


class SqueezeExcite(Module):
    """Channel gating: global pool -> FC -> act -> FC -> sigmoid -> scale.

    The multiplicative gate is the main source of activation outliers in
    MobileNetV3/EfficientNet, which is exactly what stresses 8-bit formats
    with narrow dynamic range.
    """

    def __init__(self, channels: int, reduction: int = 4, gate: str = "hardsigmoid",
                 rng: np.random.Generator | None = None):
        super().__init__()
        hidden = max(2, channels // reduction)
        self.pool = GlobalAvgPool2d()
        self.fc1 = Linear(channels, hidden, rng=rng)
        self.fc2 = Linear(hidden, channels, rng=rng)
        self.gate = Hardsigmoid() if gate == "hardsigmoid" else None

    def forward(self, x: Tensor) -> Tensor:
        n, c = x.shape[0], x.shape[1]
        s = self.pool(x)
        s = F.relu(self.fc1(s))
        s = self.fc2(s)
        s = self.gate(s) if self.gate is not None else s.sigmoid()
        return x * s.reshape(n, c, 1, 1)


class InvertedResidual(Module):
    """MobileNetV2 block: 1x1 expand -> depthwise 3x3 -> 1x1 linear project."""

    def __init__(self, cin: int, cout: int, stride: int = 1, expand: int = 4,
                 act: str = "relu6", use_se: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        hidden = cin * expand
        layers = []
        if expand != 1:
            layers.append(ConvBNAct(cin, hidden, 1, act=act, rng=rng))
        layers.append(ConvBNAct(hidden, hidden, 3, stride=stride,
                                groups=hidden, act=act, rng=rng))
        if use_se:
            layers.append(SqueezeExcite(hidden, rng=rng))
        layers.append(ConvBNAct(hidden, cout, 1, act="none", rng=rng))
        self.body = Sequential(*layers)
        self.use_res = stride == 1 and cin == cout

    def forward(self, x: Tensor) -> Tensor:
        out = self.body(x)
        return out + x if self.use_res else out


class MBConv(Module):
    """EfficientNet MBConv: inverted residual with SE and SiLU."""

    def __init__(self, cin: int, cout: int, stride: int = 1, expand: int = 4,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.block = InvertedResidual(cin, cout, stride=stride, expand=expand,
                                      act="silu", use_se=True, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.block(x)


class FusedMBConv(Module):
    """EfficientNetV2 fused block: full 3x3 expand conv instead of depthwise."""

    def __init__(self, cin: int, cout: int, stride: int = 1, expand: int = 4,
                 rng: np.random.Generator | None = None):
        super().__init__()
        hidden = cin * expand
        self.expand_conv = ConvBNAct(cin, hidden, 3, stride=stride, act="silu", rng=rng)
        self.project = ConvBNAct(hidden, cout, 1, act="none", rng=rng)
        self.use_res = stride == 1 and cin == cout

    def forward(self, x: Tensor) -> Tensor:
        out = self.project(self.expand_conv(x))
        return out + x if self.use_res else out
