"""Per-code decode planes: an 8-bit code stream as integer arrays.

The true-quantized engine never works on decoded floats.  Each format is
compiled once into *planes* — length-``2^nbits`` lookup tables mapping a
code to an exact integer decomposition of its value::

    value(code) = msig[code] * 2^(pmin + texp[code])

* ``msig`` — signed odd integer significand, ``|msig| < 2^(msig_bits+1)``
  for nonzero finite codes, 0 for zero and specials (inf/NaN contribute
  nothing to a MAC stream, the convention of
  :class:`repro.hardware.mac.MacUnit`).
* ``texp`` — the value's power-of-two scale relative to ``pmin`` (the
  scale of the smallest nonzero value), always ``>= 0``.

The decomposition is derived from the exact dyadic value of every code
(all finite values of an enumerable format are exactly-represented
float64), not from the format's ``(sign, exponent, fraction)`` decode
fields, so it stays faithful even for formats like INT8 whose fields are
not of the ``(1+f) * 2^e`` form.

For the blocked matmul (:mod:`repro.engine.kulisch`) the exponent is
split as ``texp = h*BLOCK + l``: the plane ``blocked[h][code]`` holds
``msig << l`` when the code's high part is ``h`` and 0 otherwise, so a
product's full shift decomposes into an in-word shift (baked into the
operand planes) plus a whole-limb shift ``BLOCK * (h_a + h_b)``.

The rounding tables (sorted values, their codes, exact integer
midpoints) reuse the bit-LUT kernel's sorted codebook arrays
(:mod:`repro.kernels.lut`) so the engine and the quantize kernels share
one source of truth for the codebook ordering.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

__all__ = ["BLOCK", "CodePlanes", "planes_for", "clear_planes_cache"]

#: whole-limb shift granularity of the blocked matmul.  16 keeps a blocked
#: operand at <= msig_bits+16 bits, so an int64 product sum has >= 14 bits
#: of contraction headroom for every 8-bit format (msig_bits <= 7).
BLOCK = 16


class CodePlanes:
    """Compiled integer decode planes for one :class:`CodebookFormat`.

    Attributes
    ----------
    msig, texp:
        The per-code planes (int64, length ``2^nbits``).
    msig_bits:
        ``|msig|`` of nonzero codes is bounded by ``2^(msig_bits+1)``.
    pmin:
        Power-of-two scale of ``msig`` at ``texp == 0``; a code's value is
        ``msig * 2^(pmin + texp)``.
    tmax:
        Largest ``texp`` over finite codes.
    nblocks:
        Number of ``BLOCK``-wide exponent blocks (``tmax // BLOCK + 1``).
    blocked:
        ``(nblocks, 2^nbits)`` int64 plane: ``msig << (texp % BLOCK)``
        gated to the code's ``texp // BLOCK`` row.
    sorted_values, sorted_codes:
        The kernel's sorted finite codebook and the code of each entry.
    mid_floats:
        Exact float64 midpoints between adjacent codebook values.
    mid_num, mid_den_exp:
        The same midpoints as exact integers: ``mid = mid_num / 2^mid_den_exp``.
    """

    def __init__(self, fmt):
        from ..kernels import kernel_for

        self.fmt = fmt
        self.name = fmt.name
        kernel = kernel_for(fmt)
        self.sorted_values = kernel.values
        self.sorted_codes = kernel.codes
        self.mid_floats = (self.sorted_values[1:] + self.sorted_values[:-1]) / 2.0

        ncodes = fmt.ncodes
        sig = np.zeros(ncodes, dtype=object)
        pexp = np.zeros(ncodes, dtype=np.int64)
        finite = np.zeros(ncodes, dtype=bool)
        for code, d in enumerate(fmt.decoded):
            # lint: allow[float-equality] exact-zero codes carry no plane
            if not d.is_finite or d.value == 0.0:
                continue
            frac = Fraction(d.value)  # exact: finite values are dyadic floats
            num, den = frac.numerator, frac.denominator
            # odd decomposition value = odd * 2^e keeps |msig| at the
            # format's fraction width — pure powers of two stay 1-bit
            # significands instead of inflating msig_bits to the exponent
            # range (which would overflow the int64 limb products)
            twos = (num & -num).bit_length() - 1
            sig[code] = num >> twos
            pexp[code] = twos - (den.bit_length() - 1)
            finite[code] = True
        self.msig_bits = max((abs(int(s)).bit_length() - 1
                              for s in sig[finite]), default=0)
        msig = np.zeros(ncodes, dtype=np.int64)
        for code in np.nonzero(finite)[0]:
            msig[code] = int(sig[code])
        self.msig = msig
        self.pmin = int(pexp[finite].min()) if finite.any() else 0
        texp = np.zeros(ncodes, dtype=np.int64)
        texp[finite] = pexp[finite] - self.pmin
        self.texp = texp
        self.tmax = int(texp.max())

        self.nblocks = self.tmax // BLOCK + 1
        blocked = np.zeros((self.nblocks, ncodes), dtype=np.int64)
        h = texp // BLOCK
        low = texp % BLOCK
        shifted = msig << low
        for hb in range(self.nblocks):
            blocked[hb] = np.where(finite & (h == hb), shifted, 0)
        self.blocked = blocked
        self.block_of = np.where(finite, h, 0).astype(np.int64)

        # exact integer midpoints at a common power-of-two denominator
        mids = [Fraction(a) + Fraction(b)
                for a, b in zip(self.sorted_values, self.sorted_values[1:])]
        den_exp = max((m.denominator.bit_length() for m in mids), default=1)
        # m/2 = num / 2^den_exp  (the +1 from the /2 is folded into den_exp)
        self.mid_den_exp = den_exp
        self.mid_num = [m.numerator << (den_exp - m.denominator.bit_length())
                        for m in mids]

    # ------------------------------------------------------------------
    def decode_exact(self, code: int) -> Fraction:
        """Exact rational value of one code (0 for specials)."""
        return Fraction(int(self.msig[code]), 1) * Fraction(2) ** (
            self.pmin + int(self.texp[code]))

    def max_block(self, codes: np.ndarray) -> int:
        """Highest exponent block actually present in a code array."""
        if codes.size == 0:
            return 0
        return int(self.block_of[codes].max())


_CACHE: dict[str, CodePlanes] = {}


def planes_for(fmt) -> CodePlanes:
    """The (lazily built, cached) decode planes for ``fmt``."""
    planes = _CACHE.get(fmt.name)
    if planes is None:
        planes = _CACHE[fmt.name] = CodePlanes(fmt)
    return planes


def clear_planes_cache() -> None:
    """Drop all compiled planes (tests and memory-sensitive callers)."""
    _CACHE.clear()
