"""Vectorized Kulisch accumulation in code space.

A dot product of two 8-bit code streams is computed *exactly* as an
integer: every operand is ``msig * 2^(pmin + texp)`` (see
:mod:`repro.engine.planes`), so a product is an integer significand
product shifted by the exponent sum, and a dot product is an exact
fixed-point integer in units of ``2^lsb`` with ``lsb = pmin_a + pmin_b``
— the software analogue of the paper's Fig. 2 Kulisch accumulator, with
no intermediate rounding regardless of accumulation length.

The full shift range (up to ``2*span`` binades, ~190 bits for
Posit(8,3)) does not fit an int64, so the accumulation is *blocked*:
with ``texp = h*BLOCK + l``, the in-word shift ``l`` is baked into the
operand planes and each pair of exponent blocks ``(h_a, h_b)``
contributes one plain int64 matmul to the limb ``H = h_a + h_b``.  The
exact accumulator value is ``sum_H limbs[H] << (BLOCK*H)``; blocks with
no operands are skipped, so well-scaled tensors (the PTQ case: data
concentrated around 2^0) cost only a handful of int64 matmuls.

The final re-encode — the MAC's single output rounding — is exact:
accumulator integers are compared against the codebook midpoints as
integers (never through float64), with the repo-wide round-to-nearest,
ties-away-from-zero rule.  When the operand exponent ranges allow it,
the compare is a single vectorized ``searchsorted`` against int64
midpoint units; otherwise a float64 approximation proposes a candidate
index and an exact arbitrary-precision fix-up settles values near a
midpoint.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np

from .planes import BLOCK, CodePlanes, planes_for

__all__ = ["qdot", "qmatmul", "dot_exact", "matmul_exact"]


def _as_code_matrix(codes, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(codes, dtype=np.int64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D (got shape {arr.shape})")
    return arr


def _limb_matmul(pa: CodePlanes, pb: CodePlanes,
                 a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, bool]:
    """Blocked exact matmul: (m,k) @ (k,n) codes -> limbs.

    Returns ``(limbs, is_object)`` where ``limbs[H]`` has shape (m, n) and
    the exact value is ``sum_H limbs[H] * 2^(lsb + BLOCK*H)``.  Limbs are
    int64 when the contraction provably cannot overflow, else Python ints
    (object dtype) accumulated chunk-wise.
    """
    k = a.shape[1]
    ha_max = pa.max_block(a)
    hb_max = pb.max_block(b)
    nlimbs = ha_max + hb_max + 1
    # per-element product < 2^(mbA+mbB+2*BLOCK); limbs with the same H sum
    # k * npairs such terms
    npairs = min(ha_max, hb_max) + 1
    term_bits = pa.msig_bits + pb.msig_bits + 2 * BLOCK
    headroom = 62 - term_bits
    safe_terms = 1 << max(headroom, 0)

    def chunk_limbs(a_chunk: np.ndarray, b_chunk: np.ndarray) -> np.ndarray:
        limbs = np.zeros((nlimbs, a_chunk.shape[0], b_chunk.shape[1]),
                         dtype=np.int64)
        for ha in range(ha_max + 1):
            ablk = pa.blocked[ha][a_chunk]
            if not ablk.any():
                continue
            for hb in range(hb_max + 1):
                bblk = pb.blocked[hb][b_chunk]
                if not bblk.any():
                    continue
                limbs[ha + hb] += ablk @ bblk
        return limbs

    if k * npairs <= safe_terms:
        return chunk_limbs(a, b), False
    # contraction too long for int64 limbs: chunk it and carry the partial
    # sums as exact Python ints
    step = max(safe_terms // max(npairs, 1), 1)
    total = np.zeros((nlimbs, a.shape[0], b.shape[1]), dtype=object)
    for lo in range(0, k, step):
        total += chunk_limbs(a[:, lo:lo + step], b[lo:lo + step, :])
    return total, True


def _combine_int64(limbs: np.ndarray) -> np.ndarray:
    """``sum_H limbs[H] << (BLOCK*H)`` in int64 (caller checked the bound)."""
    total = limbs[0].copy()
    for h in range(1, limbs.shape[0]):
        total += limbs[h] << np.int64(BLOCK * h)
    return total


def _combine_object(limbs: np.ndarray) -> np.ndarray:
    """The same combine with exact Python-int elements."""
    total = limbs[0].astype(object)
    for h in range(1, limbs.shape[0]):
        total = total + (limbs[h].astype(object) << (BLOCK * h))
    return total


def _encode_int64(po: CodePlanes, total: np.ndarray, lsb: int) -> np.ndarray:
    """Exact vectorized re-encode when midpoints fit int64 lsb units.

    ``mid * 2^-lsb`` is an integer whenever ``lsb <= -mid_den_exp`` — the
    accumulator grid is then at least as fine as the midpoint grid — and
    the compare is ordinary integer ``searchsorted``.
    """
    up = -po.mid_den_exp - lsb
    mid_units = np.array([n << up for n in po.mid_num], dtype=np.int64)
    idx = np.searchsorted(mid_units, total, side="left")
    on_mid = (idx < len(mid_units)) & (mid_units[np.minimum(idx, len(mid_units) - 1)] == total)
    idx = idx + (on_mid & (total > 0))
    return po.sorted_codes[idx]


def _above_mid(po: CodePlanes, total: int, lsb: int, i: int) -> bool:
    """Does the exact value ``total * 2^lsb`` round above midpoint ``i``?

    True when the value is strictly greater, or equal with the midpoint
    positive (ties away from zero).
    """
    num = po.mid_num[i]
    shift = lsb + po.mid_den_exp
    if shift >= 0:
        lhs, rhs = total << shift, num
    else:
        lhs, rhs = total, num << (-shift)
    return lhs > rhs or (lhs == rhs and num > 0)


def _encode_object(po: CodePlanes, total: np.ndarray, lsb: int) -> np.ndarray:
    """Exact re-encode for arbitrary-width accumulators.

    A float64 approximation proposes an index (off by at most one step);
    exact integer comparisons against the neighbouring midpoints settle it.
    """
    scale = math.ldexp(1.0, lsb)
    approx = total.astype(np.float64) * scale
    idx = np.searchsorted(po.mid_floats, approx, side="left").ravel()
    flat = total.ravel()
    nmids = len(po.mid_num)
    for j in range(flat.size):
        t = int(flat[j])
        i = int(idx[j])
        while i > 0 and not _above_mid(po, t, lsb, i - 1):
            i -= 1
        while i < nmids and _above_mid(po, t, lsb, i):
            i += 1
        idx[j] = i
    return po.sorted_codes[idx.reshape(total.shape)]


def _matmul_codes(pa: CodePlanes, pb: CodePlanes, po: CodePlanes,
                  a: np.ndarray, b: np.ndarray) -> np.ndarray:
    lsb = pa.pmin + pb.pmin
    limbs, is_object = _limb_matmul(pa, pb, a, b)
    if not is_object:
        # |total| < 2^bound_bits in lsb units, from the blocks actually present
        k = max(a.shape[1], 1)
        bound_bits = (BLOCK * (pa.max_block(a) + pb.max_block(b))
                      + pa.msig_bits + pb.msig_bits + 2 * BLOCK
                      + k.bit_length())
        mid_bits = (max((n.bit_length() for n in po.mid_num), default=1)
                    + max(-po.mid_den_exp - lsb, 0))
        if bound_bits <= 62 and mid_bits <= 62 and lsb <= -po.mid_den_exp:
            return _encode_int64(po, _combine_int64(limbs), lsb)
        total = _combine_object(limbs)
    else:
        total = _combine_object(limbs)
    return _encode_object(po, total, lsb)


def qmatmul(fmt, a_codes, b_codes, fmt_b=None, out_fmt=None) -> np.ndarray:
    """True-quantized matmul: ``(m,k) @ (k,n)`` code arrays -> code array.

    Each output element is the exact Kulisch dot product of a row of
    ``a_codes`` with a column of ``b_codes``, re-encoded to ``out_fmt``
    (default: ``fmt``) with a single rounding.  ``fmt_b`` supports
    mixed-format ablations; the paper's MAC has ``fmt_b == fmt``.
    """
    pa = planes_for(fmt)
    pb = planes_for(fmt_b) if fmt_b is not None else pa
    po = planes_for(out_fmt) if out_fmt is not None else pa
    a = _as_code_matrix(a_codes, "a_codes")
    b = _as_code_matrix(b_codes, "b_codes")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"contraction mismatch: {a.shape} @ {b.shape}")
    return _matmul_codes(pa, pb, po, a, b)


def matmul_exact(fmt, a_codes, b_codes, fmt_b=None) -> tuple[np.ndarray, int]:
    """The unrounded accumulators: ``(totals, lsb)``.

    ``totals`` is an object array of exact Python ints; element values are
    ``totals[i, j] * 2^lsb``.  This is the engine-side twin of the exact
    sum returned by :func:`repro.formats.arithmetic.dot`.
    """
    pa = planes_for(fmt)
    pb = planes_for(fmt_b) if fmt_b is not None else pa
    a = _as_code_matrix(a_codes, "a_codes")
    b = _as_code_matrix(b_codes, "b_codes")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"contraction mismatch: {a.shape} @ {b.shape}")
    limbs, _ = _limb_matmul(pa, pb, a, b)
    return _combine_object(limbs), pa.pmin + pb.pmin


def qdot(fmt, a_codes, b_codes) -> int:
    """True-quantized dot product of two 1-D code vectors -> output code."""
    a = np.asarray(a_codes, dtype=np.int64).reshape(1, -1)
    b = np.asarray(b_codes, dtype=np.int64).reshape(-1, 1)
    if a.shape[1] != b.shape[0]:
        raise ValueError("operand code arrays must have the same length")
    return int(qmatmul(fmt, a, b)[0, 0])


def dot_exact(fmt, a_codes, b_codes) -> tuple[int, Fraction]:
    """Engine dot with the exact sum, signature-compatible with
    :func:`repro.formats.arithmetic.dot` for differential testing."""
    a = np.asarray(a_codes, dtype=np.int64).reshape(1, -1)
    b = np.asarray(b_codes, dtype=np.int64).reshape(-1, 1)
    if a.shape[1] != b.shape[0]:
        raise ValueError("operand code arrays must have the same length")
    total, lsb = matmul_exact(fmt, a, b)
    exact = Fraction(int(total[0, 0])) * Fraction(2) ** lsb
    code = int(qmatmul(fmt, a, b)[0, 0])
    return code, exact
