"""True-quantized layer execution: run Linear/Conv2d through the engine.

A :class:`LayerEngine` replays the paper's datapath for one calibrated
layer (Fig. 2): activations and weights are scaled exactly as in the
fake-quant path, *encoded to 8-bit codes* (through the bit-LUT kernels),
contracted with the exact Kulisch matmul (:func:`repro.engine.kulisch
.qmatmul`), and each output is re-encoded to the format once — the MAC's
single output rounding, which the fake-quant estimator does not model —
then decoded and rescaled back to real units.  The bias is added in full
precision afterwards, matching the fake-quant convention.

Engines are attached by :func:`repro.quant.ptq.quantize_model` when the
config asks for ``mode="engine"`` and are picked up by the layer
``forward`` methods (see :class:`repro.nn.layers.QuantizableMixin`).
Weight codes are computed once at attach time — weights are static after
calibration.
"""

from __future__ import annotations

import numpy as np

from ..resilience import faults
from ..resilience.numerics import NumericsError, nonfinite_summary
from .kulisch import qmatmul

__all__ = ["LayerEngine", "LinearEngine", "Conv2dEngine", "build_layer_engine"]


class LayerEngine:
    """Shared scaling/encode plumbing of the true-quantized layers.

    Parameters mirror the fake-quant transform ``q = fmt.quantize(x*g/s)``:
    inputs are encoded at scale ``g_a/s_a`` (per tensor), weights at
    ``g_w/s_w`` (per output channel when calibrated per-channel), and the
    output is rescaled by the product of the inverse factors.
    """

    def __init__(self, layer, wfmt, afmt, w_scale, a_scale,
                 w_gain: float, a_gain: float):
        self.wfmt = wfmt
        self.afmt = afmt
        self.w_scale = np.asarray(w_scale, dtype=np.float64)
        self.a_scale = float(a_scale)
        self.w_gain = float(w_gain)
        self.a_gain = float(a_gain)
        # degenerate calibrations: the exact clamps of quantize_with_scale,
        # so engine and fake-quant scale factors are bit-identical
        tiny = np.finfo(np.float64).tiny
        self.a_scale = 1.0 if self.a_scale <= 0 else max(self.a_scale, tiny)
        self.w_scale = np.where(self.w_scale <= 0.0, 1.0,
                                np.maximum(self.w_scale, tiny))
        self.bias = None if layer.bias is None else layer.bias.data.astype(np.float64)
        w = layer.weight.data.astype(np.float64)
        wshape = [1] * w.ndim
        if self.w_scale.ndim:
            wshape[0] = self.w_scale.shape[0]
        self._w_rescale = self.w_scale.reshape(wshape) / self.w_gain
        self.w_codes = wfmt.encode_array(w / self._w_rescale).astype(np.int64)
        # per-output-channel factor restoring real units after decode
        self.out_rescale = (self.a_scale / self.a_gain) * \
            (self.w_scale.reshape(-1) / self.w_gain)

    def encode_input(self, x: np.ndarray) -> np.ndarray:
        """Scale a float activation tensor and encode it to codes.

        Non-finite activations would encode to a garbage code and then
        contaminate the exact Kulisch sums invisibly, so they raise a
        diagnostic :class:`~repro.resilience.NumericsError` here instead.
        Hosts the ``engine:encode`` fault-injection point.
        """
        x = np.asarray(x, dtype=np.float64)
        if faults.maybe_fault("engine", "encode") == "nan":
            x = faults.poison_nan(x)
        summary = nonfinite_summary(x)
        if summary is not None:
            raise NumericsError(
                f"non-finite activation entering engine encode ({summary})",
                observer="engine", stat="activation")
        return self.afmt.encode_array(x * (self.a_gain / self.a_scale)).astype(np.int64)

    def _contract(self, x_codes: np.ndarray, w_codes_t: np.ndarray) -> np.ndarray:
        """(rows, k) x (k, cout) code matmul -> decoded float values."""
        out_codes = qmatmul(self.afmt, x_codes, w_codes_t,
                            fmt_b=self.wfmt, out_fmt=self.afmt)
        return self.afmt.decode_array(out_codes)


class LinearEngine(LayerEngine):
    """True-quantized ``y = x W^T + b`` (weight shape (out, in))."""

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        lead = x.shape[:-1]
        rows = self.encode_input(x.reshape(-1, x.shape[-1]))
        vals = self._contract(rows, self.w_codes.T)
        y = vals * self.out_rescale
        if self.bias is not None:
            y = y + self.bias
        return y.reshape(*lead, -1)


class Conv2dEngine(LayerEngine):
    """True-quantized 2-D convolution via im2col over the code tensor.

    Padding inserts the format's canonical zero code, so padded positions
    contribute exactly nothing to the Kulisch sum.
    """

    def __init__(self, layer, wfmt, afmt, w_scale, a_scale, w_gain, a_gain):
        super().__init__(layer, wfmt, afmt, w_scale, a_scale, w_gain, a_gain)
        self.stride = layer.stride
        self.padding = layer.padding
        self.groups = layer.groups
        self.zero_code = int(afmt.encode_array(np.zeros(1, dtype=np.float64))[0])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        n, c_in, h, w = x.shape
        c_out, c_g, kh, kw = self.w_codes.shape
        g = self.groups
        og = c_out // g
        codes = self.encode_input(x)
        if self.padding:
            p = self.padding
            codes = np.pad(codes, ((0, 0), (0, 0), (p, p), (p, p)),
                           constant_values=self.zero_code)
        windows = np.lib.stride_tricks.sliding_window_view(codes, (kh, kw), axis=(2, 3))
        windows = windows[:, :, ::self.stride, ::self.stride]
        oh, ow = windows.shape[2], windows.shape[3]
        p_out = oh * ow
        k = c_g * kh * kw
        cols = (windows.reshape(n, g, c_g, oh, ow, kh, kw)
                .transpose(0, 1, 3, 4, 2, 5, 6).reshape(n, g, p_out, k))
        w_mat = self.w_codes.reshape(g, og, k)
        out = np.empty((n, g, og, p_out), dtype=np.float64)
        for gi in range(g):
            vals = self._contract(cols[:, gi].reshape(n * p_out, k),
                                  w_mat[gi].T)                # (n*p, og)
            out[:, gi] = vals.reshape(n, p_out, og).transpose(0, 2, 1)
        y = out.reshape(n, c_out, oh, ow) * self.out_rescale.reshape(1, c_out, 1, 1)
        if self.bias is not None:
            y = y + self.bias.reshape(1, c_out, 1, 1)
        return y


def build_layer_engine(layer, wfmt, afmt, gain_override=None) -> LayerEngine:
    """Build the engine for a calibrated quantizable layer.

    Reads the scales off the layer's (already calibrated) fake quantizers,
    so the engine evaluates exactly the quantization the fake-quant path
    would — only the arithmetic differs.
    """
    from ..nn.layers import Conv2d, Linear

    if layer.weight_quant is None or not layer.input_quant.calibrated:
        raise RuntimeError("layer must be calibrated before attaching an engine")
    w_gain = wfmt.quantization_gain if gain_override is None else gain_override
    a_gain = afmt.quantization_gain if gain_override is None else gain_override
    args = (layer, wfmt, afmt, layer.weight_quant.scale,
            float(layer.input_quant.scale), w_gain, a_gain)
    if isinstance(layer, Conv2d):
        return Conv2dEngine(*args)
    if isinstance(layer, Linear):
        return LinearEngine(*args)
    raise TypeError(f"no engine for layer type {type(layer).__name__}")
