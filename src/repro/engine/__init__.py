"""True-quantized inference engine: bit-true Kulisch arithmetic, fast.

The fake-quant PTQ path estimates low-precision accuracy while computing
every layer in float.  This package *executes* layers in format-code
space, the way the paper's hardware would:

1. decode 8-bit codes to integer (sign, exponent, significand) planes
   (:mod:`~repro.engine.planes`),
2. accumulate products exactly in blocked int64 fixed point over the full
   Kulisch product range (:mod:`~repro.engine.kulisch`),
3. re-encode each output once — the MAC's single rounding.

It is bit-exact against the ``Fraction`` reference
(:func:`repro.formats.arithmetic.dot`) and the gate-level
:class:`repro.hardware.mac.MacUnit`, but runs whole layers in
milliseconds (``benchmarks/bench_engine.py``).  Layer-level execution and
the ``mode="engine"`` PTQ hook live in :mod:`~repro.engine.executor`.
"""

from .kulisch import dot_exact, matmul_exact, qdot, qmatmul
from .planes import BLOCK, CodePlanes, clear_planes_cache, planes_for
from .executor import (
    Conv2dEngine, LayerEngine, LinearEngine, build_layer_engine,
)

__all__ = [
    "qdot", "qmatmul", "dot_exact", "matmul_exact",
    "BLOCK", "CodePlanes", "planes_for", "clear_planes_cache",
    "LayerEngine", "LinearEngine", "Conv2dEngine", "build_layer_engine",
]
