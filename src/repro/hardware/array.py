"""Accelerator-level roll-up: a PE array of format-specific MAC units.

The paper's conclusion frames MERSIT as enabling "deep learning
acceleration"; this module scales the measured per-MAC costs up to a
weight-stationary PE array so format-level savings can be read at
accelerator scale:

* each PE = one MAC unit + an 8-bit weight register + an 8-bit operand
  pipeline register,
* each column ends in one output encoder (fixed point -> format code),
* utilisation and cycle counts for conv/linear layer shapes follow the
  standard weight-stationary mapping (output channels on columns,
  reduction on rows).

The roll-up composes *measured* netlist numbers — it does not build the
multi-million-gate array netlist, matching how accelerator papers report
array-level area/energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.base import CodebookFormat
from ..formats.mersit import MersitFormat
from .cells import cell
from .mac import MacUnit

__all__ = ["PEArrayModel", "LayerMapping"]


@dataclass(frozen=True)
class LayerMapping:
    """Mapping report for one layer on the array."""

    layer: str
    macs: int                # multiply-accumulates in the layer
    cycles: int              # array cycles under the mapping
    utilization: float       # fraction of PEs doing useful work
    energy_uj: float         # dynamic+leakage energy for the layer


class PEArrayModel:
    """Cost model of a rows x cols weight-stationary array for one format."""

    def __init__(self, fmt: CodebookFormat, rows: int = 16, cols: int = 16,
                 clock_mhz: float = 100.0, overflow_margin: int = 14):
        self.fmt = fmt
        self.rows = rows
        self.cols = cols
        self.clock_mhz = clock_mhz
        self.mac = MacUnit(fmt, overflow_margin=overflow_margin)
        dff = cell("DFF")
        # per-PE registers: weight (nbits) + operand pipeline (nbits)
        self._reg_area_per_pe = 2 * fmt.nbits * dff.area
        self._reg_leak_per_pe = 2 * fmt.nbits * dff.leakage  # nW
        if isinstance(fmt, MersitFormat):
            from .encoders import MersitEncoder
            self._encoder_area = MersitEncoder(fmt).area().total
        else:
            # other formats get an encoder of comparable structure; use the
            # MAC decoder area doubled as a conservative placeholder until a
            # dedicated netlist exists for them.
            self._encoder_area = 2 * self.mac.area().by_group["decoder"]

    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def area_um2(self) -> float:
        """Total array area: PEs + registers + column encoders."""
        per_pe = self.mac.area().total + self._reg_area_per_pe
        return per_pe * self.num_pes + self._encoder_area * self.cols

    def power_uw(self, w_codes: np.ndarray, a_codes: np.ndarray) -> float:
        """Array power while streaming a representative operand trace."""
        mac_power = self.mac.power(w_codes, a_codes, clock_mhz=self.clock_mhz)
        # registers: data activity ~ operand toggle rate, clock always on
        reg_uw_per_pe = self._reg_leak_per_pe * 1e-3 + \
            2 * self.fmt.nbits * cell("DFF").energy * self.clock_mhz * 1e6 * 0.5 * 1e-9
        return (mac_power.total + reg_uw_per_pe) * self.num_pes

    # ------------------------------------------------------------------
    def map_conv(self, name: str, c_in: int, c_out: int, k: int,
                 oh: int, ow: int, w_codes: np.ndarray,
                 a_codes: np.ndarray) -> LayerMapping:
        """Weight-stationary mapping of a conv layer onto the array.

        Columns carry output channels, rows carry the c_in*k*k reduction;
        both are tiled when they exceed the array dimensions.
        """
        reduction = c_in * k * k
        row_tiles = -(-reduction // self.rows)
        col_tiles = -(-c_out // self.cols)
        spatial = oh * ow
        cycles = row_tiles * col_tiles * spatial
        macs = reduction * c_out * spatial
        utilization = macs / (cycles * self.num_pes)
        power = self.power_uw(w_codes, a_codes)  # uW at full activity
        seconds = cycles / (self.clock_mhz * 1e6)
        energy_uj = power * utilization * seconds * 1e-6 * 1e6  # uW*s -> uJ
        return LayerMapping(layer=name, macs=macs, cycles=cycles,
                            utilization=utilization, energy_uj=energy_uj)

    def map_linear(self, name: str, in_features: int, out_features: int,
                   w_codes: np.ndarray, a_codes: np.ndarray) -> LayerMapping:
        """A linear layer is a 1x1 conv with unit spatial extent."""
        return self.map_conv(name, in_features, out_features, 1, 1, 1,
                             w_codes, a_codes)

    def summary(self) -> dict:
        return {
            "format": self.fmt.name,
            "rows": self.rows,
            "cols": self.cols,
            "area_um2": self.area_um2(),
            "mac_area_um2": self.mac.area().total,
            "encoder_area_um2": self._encoder_area,
            "acc_width": self.mac.acc_width,
        }
