"""Registry of every gate-level netlist variant this repo reports numbers for.

The structural verifier (:mod:`repro.analysis`) and the logic-depth report
need an enumerable list of "all the netlists whose gate counts we quote":
the per-format decoders (Table 3 / Fig. 5), the MERSIT encoders, the three
head-to-head MAC units (Fig. 7) and the arithmetic-ablation building
blocks.  Each entry is a zero-argument builder returning a finished
:class:`~repro.hardware.netlist.Circuit` with its outputs declared, so a
cone-of-influence pass has real endpoints to start from.

Builders construct fresh circuits on every call (cheap: pure python gate
allocation); ``build_variant`` is the single entry point used by the CLI
(``repro analyze netlist``), the experiments and the tests.
"""

from __future__ import annotations

from ..formats import available_formats, get_format
from ..formats.mersit import MersitFormat
from .decoders import decoder_for_format
from .encoders import MersitEncoder
from .netlist import Bus, Circuit

__all__ = [
    "registered_variants", "build_variant", "decoder_circuit",
    "PAPER_MACS",
]

#: the three MACs compared head-to-head in Fig. 7 / Table 3
PAPER_MACS = ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)")


def decoder_circuit(fmt_name: str, prune: bool = True) -> Circuit:
    """A standalone decoder netlist with the full pin contract as outputs."""
    fmt = get_format(fmt_name)
    c = Circuit(f"decoder_{fmt.name}")
    code = c.input_bus(fmt.nbits)
    pins = decoder_for_format(c, code, fmt)
    c.set_output("sign", [pins.sign])
    c.set_output("exp_eff", pins.exp_eff)
    c.set_output("frac_eff", pins.frac_eff)
    c.set_output("is_zero", [pins.is_zero])
    c.set_output("is_special", [pins.is_special])
    if prune:
        c.prune_dead()
    return c


def _encoder_circuit(fmt_name: str) -> Circuit:
    fmt = get_format(fmt_name)
    assert isinstance(fmt, MersitFormat)
    return MersitEncoder(fmt).circuit


def _mac_circuit(fmt_name: str) -> Circuit:
    from .mac import MacUnit
    return MacUnit(get_format(fmt_name)).circuit


def _cla_adder_circuit(width: int = 16) -> Circuit:
    from .arith_variants import carry_lookahead_adder
    c = Circuit(f"cla{width}")
    a = c.input_bus(width)
    b = c.input_bus(width)
    s, cout = carry_lookahead_adder(c, a, b)
    c.set_output("sum", Bus(list(s) + [cout]))
    return c


def _wallace_circuit(width: int = 8) -> Circuit:
    from .arith_variants import wallace_multiplier
    c = Circuit(f"wallace{width}x{width}")
    a = c.input_bus(width)
    b = c.input_bus(width)
    c.set_output("product", wallace_multiplier(c, a, b))
    c.prune_dead()
    return c


def _build_registry() -> dict:
    registry: dict = {}
    for name in available_formats():
        if name == "INT8":
            continue  # INT8 needs no decoder: codes are the operands
        registry[f"decoder:{name}"] = (lambda n=name: decoder_circuit(n))
        if isinstance(get_format(name), MersitFormat):
            registry[f"encoder:{name}"] = (lambda n=name: _encoder_circuit(n))
    for name in PAPER_MACS:
        registry[f"mac:{name}"] = (lambda n=name: _mac_circuit(n))
    registry["adder:cla16"] = _cla_adder_circuit
    registry["multiplier:wallace8x8"] = _wallace_circuit
    return registry


_REGISTRY = _build_registry()


def registered_variants() -> list[str]:
    """Names of every registered netlist variant, sorted."""
    return sorted(_REGISTRY)


def build_variant(name: str) -> Circuit:
    """Build one registered variant's circuit by name."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown netlist variant {name!r}; "
                       f"known: {registered_variants()}") from None
    return builder()
