"""The Kulisch-accumulator MAC unit of the paper's Fig. 2.

Structure (one per data format):

* two format decoders (weight and activation operands),
* a sign XOR,
* a signed exponent adder (``P+1`` bits),
* an unsigned fraction multiplier (``(M+1) x (M+1)`` array),
* the aligner: a barrel shifter placing the product in the fixed-point
  accumulation field according to the exponent sum,
* the Kulisch accumulator: a ``W_acc``-bit two's-complement adder plus a
  ``W_acc``-bit register.

Accumulator width
-----------------
The paper's ``W = 2*(|emin| + emax) + 1`` counts the *binades* a product
can span (33/45/35 for FP(8,4)/Posit(8,1)/MERSIT(8,2)).  An exact Kulisch
register additionally keeps the ``2M`` product fraction bits below the
smallest binade and ``V`` overflow-margin bits on top (``V = 14`` supports
16K error-free accumulations), so the implemented register width is
``W + 2M + 1 + V``.  Both figures are exposed (:attr:`MacUnit.paper_w`,
:attr:`MacUnit.acc_width`); the ordering between formats is identical.

The unit is *exact*: accumulating N products through the netlist equals
integer-exact arithmetic, which the tests verify against
:mod:`repro.formats` decoding.  Zero and inf/NaN operands contribute 0
(DNN quantizers saturate, so specials never occur in real streams).
"""

from __future__ import annotations

import numpy as np

from ..formats.analysis import exponent_field_width, kulisch_product_width
from ..formats.base import CodebookFormat
from .components import (
    array_multiplier, barrel_shifter_left, ripple_adder, ripple_addsub,
    sign_extend,
)
from .decoders import decoder_for_format
from .netlist import Bus, Circuit

__all__ = ["MacUnit", "MULTIPLIER_GROUPS", "MAC_GROUPS"]

#: groups reported as "the multiplier" in the paper's Table 3
MULTIPLIER_GROUPS = ("decoder", "exp_adder", "frac_multiplier")
#: all functional groups of the MAC
MAC_GROUPS = MULTIPLIER_GROUPS + ("aligner", "accumulator")


class MacUnit:
    """A gate-level MAC for one 8-bit format.

    The circuit is combinational with the accumulator state as an explicit
    input bus (replay-style simulation); the register cost is modelled by
    DFF cells on the next-state nets.

    Attributes
    ----------
    fmt: the data format.
    paper_w: the paper's W figure (Fig. 2 table).
    acc_width: implemented accumulator register width.
    circuit: the underlying netlist.
    """

    def __init__(self, fmt: CodebookFormat, overflow_margin: int = 14):
        self.fmt = fmt
        self.overflow_margin = overflow_margin
        self.p = exponent_field_width(fmt)
        self.m = fmt.max_fraction_bits()
        self.paper_w = kulisch_product_width(fmt)
        dr = fmt.dynamic_range
        self.emin, self.emax = dr.min_log2, dr.max_log2
        # LSB of the fixed-point field has weight 2^(2*emin - 2M); the top
        # product binade is 2*emax + 1; V margin + 1 sign bit on top.
        self.frac_lsb_exp = 2 * self.emin - 2 * self.m
        self.acc_width = (2 * self.emax + 1) - self.frac_lsb_exp + 1 + overflow_margin + 1
        self.max_shift = 2 * (self.emax - self.emin)

        self.circuit = Circuit(f"mac_{fmt.name}")
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        c = self.circuit
        self.w_code = c.input_bus(self.fmt.nbits)
        self.a_code = c.input_bus(self.fmt.nbits)
        self.acc_state = c.input_bus(self.acc_width)

        w = decoder_for_format(c, self.w_code, self.fmt, group="decoder")
        a = decoder_for_format(c, self.a_code, self.fmt, group="decoder")

        with c.group("exp_adder"):
            sign = c.xor2(w.sign, a.sign)
            exp_w = sign_extend(c, w.exp_eff, self.p + 1)
            exp_a = sign_extend(c, a.exp_eff, self.p + 1)
            exp_sum, _ = ripple_adder(c, exp_w, exp_a)
            # shift = exp_sum - 2*emin  (always >= 0 for finite operands)
            shift_bias = (-2 * self.emin) % (1 << (self.p + 1))
            bias_bus = Bus(c.ONE if (shift_bias >> i) & 1 else c.ZERO
                           for i in range(self.p + 1))
            shamt, _ = ripple_adder(c, exp_sum, bias_bus)
            shamt_bits = (self.max_shift).bit_length()
            shamt = Bus(shamt[:shamt_bits])

        with c.group("frac_multiplier"):
            product = array_multiplier(c, w.frac_eff, a.frac_eff)  # 2M+2 bits

        with c.group("aligner"):
            field = Bus(list(product) + [c.ZERO] * (self.acc_width - len(product)))
            aligned = barrel_shifter_left(c, field, shamt, max_shift=self.max_shift)

        with c.group("accumulator"):
            acc_next, _ = ripple_addsub(c, self.acc_state, aligned, sign)
            for bit in acc_next:
                c.dff(bit)

        c.set_output("acc_next", acc_next)
        c.set_output("product_sign", [sign])
        # exception pins: a surrounding PE array needs these to propagate
        # zero/NaN decisions (they are also what keeps the decoders' flag
        # logic live — the multiplier datapath itself forces frac_eff = 0)
        c.set_output("w_is_zero", [w.is_zero])
        c.set_output("a_is_zero", [a.is_zero])
        c.set_output("w_is_special", [w.is_special])
        c.set_output("a_is_special", [a.is_special])
        # drop logic whose result is discarded (truncated shift-amount sum
        # bits, unused priority-encoder valid flags, ...) so gate counts in
        # Fig. 7 / Table 3 cover live logic only
        c.prune_dead()

    # ------------------------------------------------------------------
    # behavioural reference
    # ------------------------------------------------------------------
    def product_int(self, w_code: int, a_code: int) -> int:
        """Exact signed product of two codes, in accumulator LSB units."""
        dw = self.fmt.decode(w_code)
        da = self.fmt.decode(a_code)
        if not (dw.is_finite and da.is_finite):
            return 0
        # lint: allow[float-equality] exact-zero codes contribute nothing
        if dw.value == 0.0 or da.value == 0.0:
            return 0
        m = self.m
        fw = (1 << m) | (dw.fraction_field << (m - dw.fraction_bits))
        fa = (1 << m) | (da.fraction_field << (m - da.fraction_bits))
        shift = dw.effective_exponent + da.effective_exponent - 2 * self.emin
        mag = (fw * fa) << shift
        return -mag if dw.sign != da.sign else mag

    def accumulate_reference(self, w_codes: np.ndarray, a_codes: np.ndarray) -> list[int]:
        """Exact accumulator trajectory (value after each pair), wrapped to
        the register width like the hardware."""
        mod = 1 << self.acc_width
        acc = 0
        out = []
        for wc, ac in zip(w_codes, a_codes):
            acc = (acc + self.product_int(int(wc), int(ac))) % mod
            out.append(acc)
        return out

    # ------------------------------------------------------------------
    # simulation helpers
    # ------------------------------------------------------------------
    def _stimulus(self, w_codes: np.ndarray, a_codes: np.ndarray) -> np.ndarray:
        """Build the replay stimulus: per-lane codes + previous acc state."""
        w_codes = np.asarray(w_codes, dtype=np.int64)
        a_codes = np.asarray(a_codes, dtype=np.int64)
        n = len(w_codes)
        states = [0] + self.accumulate_reference(w_codes, a_codes)[:-1]
        stim = np.zeros((n, self.fmt.nbits * 2 + self.acc_width), dtype=bool)
        for i in range(self.fmt.nbits):
            stim[:, i] = (w_codes >> i) & 1
            stim[:, self.fmt.nbits + i] = (a_codes >> i) & 1
        st = np.array(states, dtype=object)
        for i in range(self.acc_width):
            stim[:, 2 * self.fmt.nbits + i] = [(int(s) >> i) & 1 for s in st]
        return stim

    def run(self, w_codes: np.ndarray, a_codes: np.ndarray) -> dict:
        """Simulate the netlist over a code stream; returns the sim dict."""
        return self.circuit.simulate(self._stimulus(w_codes, a_codes))

    def accumulate_hw(self, w_codes: np.ndarray, a_codes: np.ndarray) -> list[int]:
        """Accumulator trajectory as computed by the gates."""
        sim = self.run(w_codes, a_codes)
        bits = sim["bits"]["acc_next"]
        return [int(sum(1 << i for i in range(self.acc_width) if row[i]))
                for row in bits]

    def power(self, w_codes: np.ndarray, a_codes: np.ndarray,
              clock_mhz: float = 100.0):
        """Activity-based power while streaming real operand codes."""
        return self.circuit.power(self._stimulus(w_codes, a_codes),
                                  clock_mhz=clock_mhz)

    def area(self):
        return self.circuit.area()
