"""Assemble the paper's hardware-efficiency artefacts (Fig. 7, Table 3).

Given MAC units for the three head-to-head formats, these helpers produce:

* the Fig. 7 area/power bars per functional group (multiplier, aligner,
  accumulator), with power extracted from *actual DNN operand streams*
  exactly as the paper does with PrimeTime PX;
* the Table 3 multiplier breakdown (decoder / exponent-adder /
  fraction-multiplier);
* the headline deltas (MERSIT vs Posit area/power savings, decoder area
  saving, MERSIT vs FP8 area premium).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..formats.base import CodebookFormat
from .mac import MAC_GROUPS, MacUnit

__all__ = [
    "MacCostRow", "MultiplierBreakdown", "mac_cost", "multiplier_breakdown",
    "dnn_operand_stream", "headline_deltas",
]


@dataclass(frozen=True)
class MacCostRow:
    """Fig. 7 bar: one format's MAC area (um^2) and power (uW) by group.

    ``logic_depth`` is the MAC's levelized critical path in gate levels
    (see :mod:`repro.analysis.levelize`) — the library-independent
    companion to the area/power figures.
    """

    format_name: str
    area_total: float
    power_total: float
    area_by_group: dict[str, float] = field(default_factory=dict)
    power_by_group: dict[str, float] = field(default_factory=dict)
    logic_depth: int = 0


@dataclass(frozen=True)
class MultiplierBreakdown:
    """Table 3 column: the multiplier part of one format's MAC."""

    format_name: str
    area_decoder: float
    area_exp_adder: float
    area_frac_multiplier: float
    power_decoder: float
    power_exp_adder: float
    power_frac_multiplier: float

    @property
    def area_total(self) -> float:
        return self.area_decoder + self.area_exp_adder + self.area_frac_multiplier

    @property
    def power_total(self) -> float:
        return self.power_decoder + self.power_exp_adder + self.power_frac_multiplier


def dnn_operand_stream(fmt: CodebookFormat, weights: np.ndarray,
                       activations: np.ndarray, n: int = 512,
                       seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Encode real DNN tensors into format codes for activity simulation.

    Weights and activations are scaled the same way the PTQ quantizer
    scales them (max onto the format's quantization gain) and encoded to
    codes; ``n`` pairs are drawn to form the MAC's operand stream.
    """
    rng = np.random.default_rng(seed)
    w = np.asarray(weights, dtype=np.float64).ravel()
    a = np.asarray(activations, dtype=np.float64).ravel()
    w_scale = np.max(np.abs(w)) or 1.0
    a_scale = np.max(np.abs(a)) or 1.0
    w_codes = fmt.encode_array(w * (fmt.quantization_gain / w_scale))
    a_codes = fmt.encode_array(a * (fmt.quantization_gain / a_scale))
    wi = rng.integers(0, len(w_codes), size=n)
    ai = rng.integers(0, len(a_codes), size=n)
    return w_codes[wi], a_codes[ai]


def mac_cost(mac: MacUnit, w_codes: np.ndarray, a_codes: np.ndarray,
             clock_mhz: float = 100.0) -> MacCostRow:
    """One Fig. 7 bar: synthesise area, simulate activity-based power."""
    area = mac.area()
    power = mac.power(w_codes, a_codes, clock_mhz=clock_mhz)
    groups = {g: area.by_group.get(g, 0.0) for g in MAC_GROUPS}
    pgroups = {g: power.by_group.get(g, 0.0) for g in MAC_GROUPS}
    return MacCostRow(
        format_name=mac.fmt.name,
        area_total=sum(groups.values()),
        power_total=sum(pgroups.values()),
        area_by_group=groups,
        power_by_group=pgroups,
        logic_depth=mac.circuit.logic_depth(),
    )


def multiplier_breakdown(mac: MacUnit, w_codes: np.ndarray, a_codes: np.ndarray,
                         clock_mhz: float = 100.0) -> MultiplierBreakdown:
    """One Table 3 column from the same simulation."""
    row = mac_cost(mac, w_codes, a_codes, clock_mhz)
    return MultiplierBreakdown(
        format_name=mac.fmt.name,
        area_decoder=row.area_by_group["decoder"],
        area_exp_adder=row.area_by_group["exp_adder"],
        area_frac_multiplier=row.area_by_group["frac_multiplier"],
        power_decoder=row.power_by_group["decoder"],
        power_exp_adder=row.power_by_group["exp_adder"],
        power_frac_multiplier=row.power_by_group["frac_multiplier"],
    )


def headline_deltas(rows: dict[str, MacCostRow],
                    breakdowns: dict[str, MultiplierBreakdown] | None = None) -> dict[str, float]:
    """The paper's headline percentages from Fig. 7 / Table 3 rows.

    Expects rows keyed by ``"FP(8,4)"``, ``"Posit(8,1)"``, ``"MERSIT(8,2)"``.
    Returns a dict with:

    * ``area_saving_vs_posit_pct``  (paper: 26.6)
    * ``power_saving_vs_posit_pct`` (paper: 22.2)
    * ``area_premium_vs_fp8_pct``   (paper: 11.0)
    * ``decoder_area_saving_vs_posit_pct`` (paper: 59.2, from Table 3)
    """
    fp, po, me = rows["FP(8,4)"], rows["Posit(8,1)"], rows["MERSIT(8,2)"]
    out = {
        "area_saving_vs_posit_pct": 100.0 * (1 - me.area_total / po.area_total),
        "power_saving_vs_posit_pct": 100.0 * (1 - me.power_total / po.power_total),
        "area_premium_vs_fp8_pct": 100.0 * (me.area_total / fp.area_total - 1),
    }
    if breakdowns is not None:
        pod = breakdowns["Posit(8,1)"].area_decoder
        med = breakdowns["MERSIT(8,2)"].area_decoder
        out["decoder_area_saving_vs_posit_pct"] = 100.0 * (1 - med / pod)
    return out
