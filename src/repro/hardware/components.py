"""Arithmetic building blocks over :class:`~repro.hardware.netlist.Circuit`.

Adders, shifters, multipliers, leading-zero detection and priority
encoding — the "widely used circuits" of the paper's MAC scheme (Fig. 2),
all parameterised in width.  Every builder takes the circuit and
little-endian input buses and returns little-endian output buses.
"""

from __future__ import annotations

from .netlist import Bus, Circuit, Net

__all__ = [
    "full_adder", "ripple_adder", "ripple_addsub", "twos_complement_negate",
    "sign_extend", "array_multiplier", "barrel_shifter_left",
    "priority_encoder_first_one", "equals_const", "mux_bus", "incrementer",
]


def full_adder(c: Circuit, a: Net, b: Net, cin: Net) -> tuple[Net, Net]:
    """(sum, carry) via two XORs and an AOI-style majority."""
    axb = c.xor2(a, b)
    s = c.xor2(axb, cin)
    # carry = (a & b) | (cin & (a ^ b))
    t1 = c.and2(a, b)
    t2 = c.and2(cin, axb)
    cout = c.or2(t1, t2)
    return s, cout


def ripple_adder(c: Circuit, a: Bus, b: Bus, cin: Net | None = None) -> tuple[Bus, Net]:
    """n-bit ripple-carry adder; returns (sum bus, carry out)."""
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    carry = cin if cin is not None else c.ZERO
    out = Bus()
    for ai, bi in zip(a, b):
        s, carry = full_adder(c, ai, bi, carry)
        out.append(s)
    return out, carry


def ripple_addsub(c: Circuit, a: Bus, b: Bus, subtract: Net) -> tuple[Bus, Net]:
    """a + b or a - b (two's complement) selected by ``subtract``."""
    b_x = Bus(c.xor2(bi, subtract) for bi in b)
    return ripple_adder(c, a, b_x, cin=subtract)


def twos_complement_negate(c: Circuit, a: Bus) -> Bus:
    """-a in two's complement: invert and increment."""
    inv = Bus(c.inv(ai) for ai in a)
    return incrementer(c, inv)


def incrementer(c: Circuit, a: Bus) -> Bus:
    """a + 1 with a half-adder chain."""
    out = Bus()
    carry = c.ONE
    for ai in a:
        out.append(c.xor2(ai, carry))
        carry = c.and2(ai, carry)
    return out


def sign_extend(c: Circuit, a: Bus, width: int) -> Bus:
    """Two's complement sign extension to ``width`` bits."""
    if width < len(a):
        raise ValueError("cannot sign-extend to a narrower bus")
    return Bus(list(a) + [a[-1]] * (width - len(a)))


def zero_extend(a: Bus, width: int, c: Circuit) -> Bus:
    if width < len(a):
        raise ValueError("cannot zero-extend to a narrower bus")
    return Bus(list(a) + [c.ZERO] * (width - len(a)))


def array_multiplier(c: Circuit, a: Bus, b: Bus) -> Bus:
    """Unsigned array multiplier: AND partial products + ripple rows."""
    n, m = len(a), len(b)
    # partial product rows
    rows = [[c.and2(ai, bj) for ai in a] for bj in b]
    acc = Bus(rows[0])
    result = Bus([acc[0]])
    acc = Bus(acc[1:])
    for j in range(1, m):
        row = Bus(rows[j])
        padded_acc = Bus(list(acc) + [c.ZERO] * (len(row) - len(acc)))
        summed, carry = ripple_adder(c, padded_acc, row)
        result.append(summed[0])
        acc = Bus(list(summed[1:]) + [carry])
    result.extend(acc)
    if len(result) != n + m:
        raise AssertionError("multiplier width bookkeeping error")
    return result


def barrel_shifter_left(c: Circuit, a: Bus, shamt: Bus, max_shift: int | None = None) -> Bus:
    """Logical left shift of ``a`` by the unsigned ``shamt`` bus.

    Log-depth mux stages; bits shifted past the top are dropped and zeros
    enter at the bottom.  ``max_shift`` caps the honoured shift distance
    (higher shamt bits are still applied unless the bus is truncated by
    the caller).
    """
    bits = Bus(a)
    for stage, sel in enumerate(shamt):
        dist = 1 << stage
        if max_shift is not None and dist > max_shift:
            break
        shifted = Bus([c.ZERO] * min(dist, len(bits)) +
                      list(bits[: max(0, len(bits) - dist)]))
        bits = Bus(c.mux2(orig, shift_bit, sel)
                   for orig, shift_bit in zip(bits, shifted))
    return bits


def priority_encoder_first_one(c: Circuit, bits: list[Net]) -> tuple[Bus, Net]:
    """Index of the first 1 in ``bits`` (position 0 scanned first).

    Returns (index bus of ceil(log2(n)) bits, valid flag).  The index is 0
    when no bit is set (valid = 0).
    """
    n = len(bits)
    if n == 0:
        raise ValueError("empty priority encoder")
    width = max(1, (n - 1).bit_length())
    # one-hot: first_i = bits[i] & ~bits[j<i]
    none_before = c.ONE
    onehot: list[Net] = []
    for i, b in enumerate(bits):
        onehot.append(c.and2(b, none_before) if i else b)
        if i < n - 1:
            none_before = c.and2(none_before, c.inv(b))
    valid = c.or_tree(list(onehot))
    index = Bus()
    for k in range(width):
        contributors = [oh for i, oh in enumerate(onehot) if (i >> k) & 1]
        index.append(c.or_tree(contributors) if contributors else c.ZERO)
    return index, valid


def equals_const(c: Circuit, a: Bus, const: int) -> Net:
    """Single net that is 1 iff bus ``a`` equals the constant."""
    terms = [ai if (const >> i) & 1 else c.inv(ai) for i, ai in enumerate(a)]
    return c.and_tree(terms)


def mux_bus(c: Circuit, a: Bus, b: Bus, sel: Net) -> Bus:
    """Per-bit 2:1 mux over equal-width buses: ``sel ? b : a``."""
    if len(a) != len(b):
        raise ValueError("mux_bus width mismatch")
    return Bus(c.mux2(x, y, sel) for x, y in zip(a, b))
