"""Structural gate-level netlists with vectorised bit-accurate simulation.

A :class:`Circuit` is a flat directed acyclic graph of library gates over
single-bit nets, built through a small builder API.  Gates carry a *group*
label (set via :meth:`Circuit.group`) so area/power can be reported per
functional block — the paper's Table 3 decoder / exponent-adder /
fraction-multiplier breakdown.

Simulation evaluates the netlist in topological order with numpy boolean
arrays, one lane per input vector, so a whole activity trace is simulated
in a handful of vectorised passes.  Dynamic energy is counted per gate
output toggle between consecutive vectors (the PrimeTime-PX-style activity
model), plus DFF clock toggling; leakage is summed per cell.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from .cells import Cell, cell

__all__ = ["Circuit", "Bus", "AreaReport", "PowerReport"]

Net = int  # nets are integer ids; 0 and 1 are the constant nets


class Bus(list):
    """A little-endian list of nets (bit 0 first)."""

    def __getitem__(self, item):
        result = super().__getitem__(item)
        return Bus(result) if isinstance(item, slice) else result


@dataclass(frozen=True)
class AreaReport:
    """Area in um^2, total and per group."""

    total: float
    by_group: dict[str, float]
    gate_count: int
    by_cell: dict[str, int]


@dataclass(frozen=True)
class PowerReport:
    """Power in uW at the given clock, total and per group."""

    total: float
    dynamic: float
    leakage: float
    by_group: dict[str, float]
    toggle_count: int


@dataclass
class _Gate:
    cell: Cell
    inputs: tuple[Net, ...]
    output: Net
    group: str


class Circuit:
    """A flat combinational/sequential netlist under construction."""

    def __init__(self, name: str = "top"):
        self.name = name
        self._nnets = 2            # nets 0/1 are constant low/high
        self.gates: list[_Gate] = []
        self.inputs: list[Net] = []
        self.outputs: dict[str, Bus] = {}
        self._group_stack: list[str] = ["top"]
        self._dffs: list[_Gate] = []
        self._order_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def ZERO(self) -> Net:
        return 0

    @property
    def ONE(self) -> Net:
        return 1

    def new_net(self) -> Net:
        self._nnets += 1
        return self._nnets - 1

    def input_bus(self, width: int) -> Bus:
        """Declare ``width`` primary input bits (little-endian bus)."""
        bus = Bus(self.new_net() for _ in range(width))
        self.inputs.extend(bus)
        return bus

    def set_output(self, name: str, bits: Bus | list[Net] | Net) -> None:
        self.outputs[name] = Bus(bits) if isinstance(bits, (list, tuple)) else Bus([bits])

    @contextmanager
    def group(self, name: str):
        """Attribute gates created inside the block to functional group ``name``."""
        self._group_stack.append(name)
        try:
            yield
        finally:
            self._group_stack.pop()

    def gate(self, cell_name: str, *inputs: Net) -> Net:
        """Instantiate a cell; returns its output net."""
        c = cell(cell_name)
        if len(inputs) != c.inputs:
            raise ValueError(f"{cell_name} expects {c.inputs} inputs, got {len(inputs)}")
        out = self.new_net()
        self.gates.append(_Gate(c, tuple(inputs), out, self._group_stack[-1]))
        self._order_cache = None
        return out

    def dff(self, d: Net) -> Net:
        """A D flip-flop; its output is a state net usable before assignment."""
        c = cell("DFF")
        out = self.new_net()
        g = _Gate(c, (d,), out, self._group_stack[-1])
        self.gates.append(g)
        self._dffs.append(g)
        self._order_cache = None
        return out

    # convenience logic helpers -----------------------------------------
    def inv(self, a: Net) -> Net:
        return self.gate("INV", a)

    def and2(self, a: Net, b: Net) -> Net:
        return self.gate("AND2", a, b)

    def or2(self, a: Net, b: Net) -> Net:
        return self.gate("OR2", a, b)

    def xor2(self, a: Net, b: Net) -> Net:
        return self.gate("XOR2", a, b)

    def xnor2(self, a: Net, b: Net) -> Net:
        return self.gate("XNOR2", a, b)

    def nand2(self, a: Net, b: Net) -> Net:
        return self.gate("NAND2", a, b)

    def nor2(self, a: Net, b: Net) -> Net:
        return self.gate("NOR2", a, b)

    def mux2(self, a: Net, b: Net, sel: Net) -> Net:
        """``sel ? b : a``."""
        return self.gate("MUX2", a, b, sel)

    def and_tree(self, bits: list[Net]) -> Net:
        """AND-reduce a list of nets with AND2/AND3 cells."""
        bits = list(bits)
        if not bits:
            return self.ONE
        while len(bits) > 1:
            nxt = []
            i = 0
            while i < len(bits):
                take = bits[i:i + 3]
                if len(take) == 3:
                    nxt.append(self.gate("AND3", *take))
                    i += 3
                elif len(take) == 2:
                    nxt.append(self.and2(*take))
                    i += 2
                else:
                    nxt.append(take[0])
                    i += 1
            bits = nxt
        return bits[0]

    def or_tree(self, bits: list[Net]) -> Net:
        bits = list(bits)
        if not bits:
            return self.ZERO
        while len(bits) > 1:
            nxt = []
            i = 0
            while i < len(bits):
                take = bits[i:i + 3]
                if len(take) == 3:
                    nxt.append(self.gate("OR3", *take))
                    i += 3
                elif len(take) == 2:
                    nxt.append(self.or2(*take))
                    i += 2
                else:
                    nxt.append(take[0])
                    i += 1
            bits = nxt
        return bits[0]

    # ------------------------------------------------------------------
    # structural introspection (used by repro.analysis)
    # ------------------------------------------------------------------
    def drivers(self) -> dict[Net, list[_Gate]]:
        """Map each gate-driven net to the gate(s) driving it.

        A well-formed circuit has exactly one driver per entry; multiple
        entries indicate a short (detected by the structural verifier).
        """
        out: dict[Net, list[_Gate]] = {}
        for g in self.gates:
            out.setdefault(g.output, []).append(g)
        return out

    def live_gates(self) -> set[int]:
        """Ids of gates in the cone of influence of the declared outputs.

        The backward closure starts from every net in :attr:`outputs` and
        from every DFF data input (state is observable by definition); DFF
        cells themselves are always live — they model register cost even
        when their Q net is driven externally in replay-style simulation.
        """
        producers: dict[Net, _Gate] = {}
        for g in self.gates:
            producers.setdefault(g.output, g)
        frontier: list[Net] = [net for bus in self.outputs.values() for net in bus]
        live: set[int] = set()
        for g in self._dffs:
            live.add(id(g))
            frontier.extend(g.inputs)
        seen_nets: set[Net] = set()
        while frontier:
            net = frontier.pop()
            if net in seen_nets:
                continue
            seen_nets.add(net)
            g = producers.get(net)
            if g is None or id(g) in live:
                continue
            live.add(id(g))
            frontier.extend(g.inputs)
        return live

    def dead_gates(self) -> list[_Gate]:
        """Gates outside the cone of influence of the declared outputs."""
        live = self.live_gates()
        return [g for g in self.gates if id(g) not in live]

    def prune_dead(self) -> int:
        """Remove gates that drive neither an output nor any DFF.

        Returns the number of gates removed.  Pruning never changes the
        simulated output values; it only drops logic whose result is
        discarded, so reported gate counts (Table 3) cover live logic only.
        """
        live = self.live_gates()
        before = len(self.gates)
        self.gates = [g for g in self.gates if id(g) in live]
        self._order_cache = None
        return before - len(self.gates)

    def logic_levels(self) -> dict[Net, int]:
        """Levelize the combinational logic: net -> gate level.

        Primary inputs, constants and DFF outputs sit at level 0; each
        gate's output level is ``1 + max(level of its inputs)``.  The
        maximum over all nets is the circuit's logic depth in gate levels —
        the technology-independent companion to :meth:`critical_path`.
        """
        levels: dict[Net, int] = {}
        for g in self._topo_order():
            levels[g.output] = 1 + max((levels.get(i, 0) for i in g.inputs),
                                       default=0)
        return levels

    def logic_depth(self) -> int:
        """Worst-case combinational depth in gate levels (DFF setup included)."""
        levels = self.logic_levels()
        worst = max(levels.values(), default=0)
        for g in self._dffs:
            worst = max(worst, levels.get(g.inputs[0], 0) + 1)
        return worst

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def area(self) -> AreaReport:
        by_group: dict[str, float] = Counter()
        by_cell: dict[str, int] = Counter()
        total = 0.0
        for g in self.gates:
            total += g.cell.area
            by_group[g.group] += g.cell.area
            by_cell[g.cell.name] += 1
        return AreaReport(total=total, by_group=dict(by_group),
                          gate_count=len(self.gates), by_cell=dict(by_cell))

    def critical_path(self) -> float:
        """Longest combinational path delay in ns (zero-load static timing).

        Primary inputs and DFF outputs start at t=0; each gate adds its
        cell delay; DFF data inputs and primary outputs are endpoints.
        The paper cites the MERSIT decoder's shorter critical path as a
        side benefit of grouped decoding — this reproduces that metric.
        """
        arrival: dict[Net, float] = {}
        worst = 0.0
        for g in self._topo_order():
            t = max((arrival.get(i, 0.0) for i in g.inputs), default=0.0)
            t += g.cell.delay
            arrival[g.output] = t
            worst = max(worst, t)
        # account for setup into DFFs
        for g in self._dffs:
            t = arrival.get(g.inputs[0], 0.0) + g.cell.delay
            worst = max(worst, t)
        return worst

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def _topo_order(self) -> list[_Gate]:
        """Topological order treating DFF outputs as sources."""
        if self._order_cache is not None:
            return self._order_cache
        state_nets = {g.output for g in self._dffs}
        producers: dict[Net, _Gate] = {}
        for g in self.gates:
            producers[g.output] = g
        order: list[_Gate] = []
        seen: set[int] = set()
        # iterative DFS over combinational gates
        for root in self.gates:
            if id(root) in seen:
                continue
            stack: list[tuple[_Gate, bool]] = [(root, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    order.append(node)
                    continue
                if id(node) in seen:
                    continue
                seen.add(id(node))
                stack.append((node, True))
                if node.output in state_nets:
                    continue  # DFF: inputs evaluated next cycle
                for net in node.inputs:
                    p = producers.get(net)
                    if p is not None and id(p) not in seen and p.output not in state_nets:
                        stack.append((p, False))
        # DFS above appends DFFs too (as leaves); keep combinational order,
        # DFFs are updated separately in simulate().
        self._order_cache = [g for g in order if g.output not in state_nets]
        return self._order_cache

    @staticmethod
    def _eval_gate(g: _Gate, vals: list[np.ndarray]) -> np.ndarray:
        name = g.cell.name
        a = vals[g.inputs[0]] if g.inputs else None
        if name == "INV":
            return ~a
        if name == "BUF":
            return a.copy()
        b = vals[g.inputs[1]] if len(g.inputs) > 1 else None
        if name == "NAND2":
            return ~(a & b)
        if name == "NOR2":
            return ~(a | b)
        if name == "AND2":
            return a & b
        if name == "OR2":
            return a | b
        if name == "XOR2":
            return a ^ b
        if name == "XNOR2":
            return ~(a ^ b)
        c = vals[g.inputs[2]] if len(g.inputs) > 2 else None
        if name == "NAND3":
            return ~(a & b & c)
        if name == "NOR3":
            return ~(a | b | c)
        if name == "AND3":
            return a & b & c
        if name == "OR3":
            return a | b | c
        if name == "MUX2":
            return np.where(c, b, a)
        if name == "AOI21":
            return ~((a & b) | c)
        if name == "OAI21":
            return ~((a | b) & c)
        raise ValueError(f"cannot evaluate cell {name}")

    def simulate(
        self,
        stimulus: np.ndarray,
        initial_state: dict[Net, np.ndarray] | None = None,
        cycles: int = 1,
        record_toggles: bool = False,
    ) -> dict:
        """Evaluate the netlist for a batch of input vectors.

        Parameters
        ----------
        stimulus:
            Boolean array (num_vectors, num_inputs), one column per primary
            input in declaration order.
        initial_state:
            Optional DFF output values (each a bool array of num_vectors).
        cycles:
            Number of clock cycles; each cycle evaluates combinational
            logic then latches DFFs.  With cycles > 1 the same stimulus is
            held (used for accumulator convergence tests).
        record_toggles:
            Also count per-gate output toggles between consecutive vectors
            (for power estimation; adds one pass).

        Returns a dict with:
        ``outputs`` — name -> uint64 array of bus values per vector;
        ``bits`` — name -> bool array (num_vectors, width);
        ``toggles`` — per-gate toggle counts array (if requested);
        ``state`` — final DFF values.
        """
        stimulus = np.asarray(stimulus, dtype=bool)
        if stimulus.ndim != 2 or stimulus.shape[1] != len(self.inputs):
            raise ValueError(
                f"stimulus must be (N, {len(self.inputs)}), got {stimulus.shape}")
        nvec = stimulus.shape[0]
        vals: list[np.ndarray | None] = [None] * self._nnets
        vals[0] = np.zeros(nvec, dtype=bool)
        vals[1] = np.ones(nvec, dtype=bool)
        for i, net in enumerate(self.inputs):
            vals[net] = stimulus[:, i]
        for g in self._dffs:
            if initial_state and g.output in initial_state:
                vals[g.output] = np.asarray(initial_state[g.output], dtype=bool)
            else:
                vals[g.output] = np.zeros(nvec, dtype=bool)

        order = self._topo_order()
        toggles = np.zeros(len(self.gates), dtype=np.int64) if record_toggles else None
        gate_index = {id(g): i for i, g in enumerate(self.gates)}

        for _ in range(cycles):
            for g in order:
                vals[g.output] = self._eval_gate(g, vals)
            if record_toggles:
                for g in self.gates:
                    # For DFFs, data activity is the toggling of the D input
                    # (replay-based estimation: state is driven externally).
                    net = g.inputs[0] if g.cell.name == "DFF" else g.output
                    v = vals[net]
                    if v is None:
                        continue
                    toggles[gate_index[id(g)]] += int(np.sum(v[1:] ^ v[:-1]))
            # latch DFFs
            if self._dffs:
                new_state = [vals[g.inputs[0]].copy() for g in self._dffs]
                for g, s in zip(self._dffs, new_state):
                    vals[g.output] = s

        outputs: dict[str, np.ndarray] = {}
        bits: dict[str, np.ndarray] = {}
        for name, bus in self.outputs.items():
            mat = np.stack([vals[net] if vals[net] is not None
                            else np.zeros(nvec, dtype=bool) for net in bus], axis=1)
            bits[name] = mat
            weights = (1 << np.arange(len(bus), dtype=np.uint64))
            outputs[name] = (mat.astype(np.uint64) * weights).sum(axis=1)
        state = {g.output: vals[g.output] for g in self._dffs}
        result = {"outputs": outputs, "bits": bits, "state": state}
        if record_toggles:
            result["toggles"] = toggles
        return result

    def power(self, stimulus: np.ndarray, clock_mhz: float = 100.0,
              cycles: int = 1) -> PowerReport:
        """Average power (uW) while streaming ``stimulus`` at ``clock_mhz``.

        Dynamic power = sum over gates of toggle_rate * energy_per_toggle *
        f_clk; DFFs additionally toggle their internal clock network every
        cycle.  Leakage is activity-independent.
        """
        nvec = len(stimulus)
        if nvec < 2:
            raise ValueError("power estimation needs at least 2 vectors")
        sim = self.simulate(stimulus, record_toggles=True, cycles=cycles)
        toggles = sim["toggles"]
        transitions = (nvec - 1) * cycles

        f_hz = clock_mhz * 1e6
        dynamic_by_group: dict[str, float] = Counter()
        leakage_by_group: dict[str, float] = Counter()
        total_toggles = 0
        for g, t in zip(self.gates, toggles):
            rate = t / transitions
            if g.cell.name == "DFF":
                rate += 0.5  # clock pin activity, PrimeTime-style default
            # energy [fJ] * f [1/s] * rate -> W;  fJ*1e-15 * 1e6(MHz→Hz)
            dynamic_by_group[g.group] += g.cell.energy * rate
            leakage_by_group[g.group] += g.cell.leakage
            total_toggles += int(t)
        # fJ/toggle * toggles/cycle * cycles/s = fJ/s = 1e-15 W -> uW = 1e-9
        dyn_uw = {k: v * f_hz * 1e-9 for k, v in dynamic_by_group.items()}
        leak_uw = {k: v * 1e-3 for k, v in leakage_by_group.items()}  # nW -> uW
        by_group = {k: dyn_uw.get(k, 0.0) + leak_uw.get(k, 0.0)
                    for k in set(dyn_uw) | set(leak_uw)}
        dynamic = sum(dyn_uw.values())
        leakage = sum(leak_uw.values())
        return PowerReport(total=dynamic + leakage, dynamic=dynamic,
                           leakage=leakage, by_group=by_group,
                           toggle_count=total_toggles)
