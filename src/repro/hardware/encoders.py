"""Gate-level MERSIT encoder: fixed point -> MERSIT code.

The paper's MAC accumulates in Kulisch fixed point; a complete
accelerator must re-encode the accumulator (or a post-scaled copy of it)
into the 8-bit format before it becomes the next layer's operand.  The
decoder side is the paper's contribution (Fig. 5); this module provides
the matching *encoder*, built from the same grouped-regime structure:

1. a leading-one detector over the fixed-point magnitude (binade find),
2. a normalising barrel shifter,
3. per-regime-band rounding (round half up) of the tapered fraction,
   with carry into the exponent,
4. the regime/exponent composer: ``g`` all-ones ECs, the exponent EC,
   then the fraction — the exact inverse of Table 1,
5. saturation at the finite extremes and underflow to the zero code.

``encode_reference`` implements the same semantics in plain python and
the netlist is verified against it exhaustively in the tests; a property
test additionally checks every emitted code is a nearest-value code.
"""

from __future__ import annotations

import numpy as np

from ..formats.mersit import MersitFormat
from .components import (
    barrel_shifter_left, incrementer, mux_bus,
    priority_encoder_first_one, ripple_adder,
)
from .netlist import Bus, Circuit, Net

__all__ = ["build_mersit_encoder", "encode_reference", "MersitEncoder"]


def _const_bus(c: Circuit, value: int, width: int) -> Bus:
    return Bus(c.ONE if (value >> i) & 1 else c.ZERO for i in range(width))


def build_mersit_encoder(c: Circuit, sign: Net, mag: Bus, fmt: MersitFormat,
                         lsb_exp: int, group: str = "encoder") -> Bus:
    """Encode an unsigned fixed-point magnitude into a MERSIT code.

    Parameters
    ----------
    sign:
        Sign net of the value (0 positive).
    mag:
        Little-endian unsigned magnitude bus; bit i weighs ``2^(lsb_exp+i)``.
    fmt:
        Target MERSIT format.
    lsb_exp:
        Binade of the magnitude LSB.

    Returns the ``fmt.nbits``-wide code bus (little-endian).
    """
    n, es, g_count = fmt.nbits, fmt.es, fmt.ngroups
    step = fmt.regime_step
    mag_w_fmt = n - 2
    width = len(mag)
    e_min = -step * g_count
    e_max = step * g_count - 1
    max_frac = fmt.max_fraction_bits()

    with c.group(group):
        # 1. leading one: index from the MSB side
        lz_idx, any_one = priority_encoder_first_one(c, list(reversed(mag)))

        # 2. normalise: shift the leading one to the top bit
        norm = barrel_shifter_left(c, mag, lz_idx)
        # significand bits below the leading one, MSB-first
        sig_msb = [norm[width - 2 - i] if width - 2 - i >= 0 else c.ZERO
                   for i in range(max_frac + 1)]  # +1 round bit

        # binade e = lsb_exp + width - 1 - lz; compute e - e_min >= 0
        ew = max((e_max - e_min + 2).bit_length(),
                 (width + 1).bit_length()) + 1
        base = (lsb_exp + width - 1 - e_min) % (1 << ew)
        lz_ext = Bus(list(lz_idx) + [c.ZERO] * (ew - len(lz_idx)))
        neg_lz = Bus(c.inv(b) for b in lz_ext)
        e_rel, _ = ripple_adder(c, _const_bus(c, (base - 0) % (1 << ew), ew),
                                neg_lz, cin=c.ONE)  # base - lz

        # 3. per-band rounding.  For each regime group g the fraction has
        # (g_count-1-g)*es bits; round half up at that width, with carry.
        # Band of e_rel: g = floor(e_rel/step) mapped through k sign.
        # We precompute band membership with constant comparators.
        def ge_const(bus: Bus, const: int) -> Net:
            """bus >= const for an unsigned bus (const within range)."""
            if const <= 0:
                return c.ONE
            if const >= (1 << len(bus)):
                return c.ZERO
            # bus - const carries out iff bus >= const
            neg = (-const) % (1 << len(bus))
            _, carry = ripple_adder(c, bus, _const_bus(c, neg, len(bus)))
            return carry

        # candidate codes per k band, then select
        band_codes: list[tuple[Net, Bus]] = []
        for k in range(-g_count, g_count):
            g = k if k >= 0 else -k - 1
            fbits = (g_count - 1 - g) * es
            lo = k * step - e_min          # e_rel low edge of band
            hi = lo + step                  # exclusive
            in_band = c.and2(ge_const(e_rel, lo),
                             c.inv(ge_const(e_rel, hi)))
            # fraction + round
            frac_bits = Bus(list(reversed(sig_msb[:fbits])))  # little-endian
            round_bit = sig_msb[fbits]
            rounded = incrementer(c, frac_bits) if fbits else Bus()
            frac_sel = mux_bus(c, frac_bits, Bus(rounded[:fbits]), round_bit) \
                if fbits else Bus()
            carry = c.and2(round_bit, c.and_tree(list(frac_bits))) \
                if fbits else round_bit
            # exponent field within band: e_rel - lo (0..step-1), +carry
            exp_val = Bus(e_rel[: max(2, es + 1)])
            sub = (-lo) % (1 << len(exp_val))
            exp_rel, _ = ripple_adder(c, exp_val,
                                      _const_bus(c, sub, len(exp_val)))
            exp_rel = Bus(exp_rel[: es + 1])
            exp_inc = incrementer(c, exp_rel)
            exp_fin = mux_bus(c, exp_rel, exp_inc, carry)
            # carry past exp == step-1 bumps into the next band: the
            # composed magnitude then needs g+1 ones-groups.  Detect it.
            overflowed = ge_const(exp_fin, step)
            # compose magnitude for (k, exp_fin, frac) and for the bumped
            # band (k+1, exp 0, frac 0)
            def compose(g_ones: int, exp_bus: Bus, frac_bus: Bus, fb: int) -> Bus:
                bits = Bus([c.ZERO] * mag_w_fmt)
                for gi in range(g_count):
                    shift = mag_w_fmt - (gi + 1) * es
                    for b in range(es):
                        if gi < g_ones:
                            bits[shift + b] = c.ONE
                        elif gi == g_ones:
                            bits[shift + b] = exp_bus[b] if b < len(exp_bus) else c.ZERO
                for b in range(fb):
                    bits[b] = frac_bus[b]
                return bits
            g_here = g
            normal = compose(g_here, Bus(exp_fin[:es]), frac_sel, fbits)
            if k + 1 < g_count:  # bump stays in range
                g_next = (k + 1) if (k + 1) >= 0 else -(k + 2)
                bumped = compose(g_next, _const_bus(c, 0, es), Bus(), 0)
            else:                # bump saturates at the top finite code
                bumped = compose(g_count - 1, _const_bus(c, step - 1, es), Bus(), 0)
            mag_code = mux_bus(c, normal, bumped, overflowed)
            ks_here = c.ONE if k >= 0 else c.ZERO
            # bump from k=-1 to k=0 flips ks
            ks_net = c.mux2(ks_here, c.ONE if k + 1 >= 0 else c.ZERO, overflowed)
            band_codes.append((in_band, Bus(list(mag_code) + [ks_net])))

        # select the active band
        selected = Bus([c.ZERO] * (mag_w_fmt + 1))
        for in_band, code_bits in band_codes:
            selected = Bus(c.or2(s, c.and2(b, in_band))
                           for s, b in zip(selected, code_bits))

        # saturation / underflow
        above = ge_const(e_rel, e_max - e_min + 1)
        # below range: e_rel < 0 can't happen (unsigned); values smaller
        # than minpos have their leading one below bit weight 2^e_min:
        # they appear as e_rel "wrapped" large OR any_one with small e.
        # We detect underflow as: no one at all, or leading-one binade
        # below e_min, i.e. lz > lsb-relative threshold.
        thresh = lsb_exp + width - 1 - e_min  # lz beyond this -> e < e_min
        if thresh < 0:
            below = c.ONE
        elif thresh >= (1 << len(lz_idx)):
            below = c.ZERO
        else:
            neg = (-(thresh + 1)) % (1 << len(lz_idx))
            _, below_c = ripple_adder(c, lz_idx, _const_bus(c, neg, len(lz_idx)))
            below = below_c  # lz >= thresh+1
        below = c.or2(below, c.inv(any_one))

        max_code = _const_bus(c, (1 << mag_w_fmt) | (((1 << mag_w_fmt) - 1) ^ 1),
                              mag_w_fmt + 1)
        zero_code = _const_bus(c, (1 << mag_w_fmt) - 1, mag_w_fmt + 1)
        out = mux_bus(c, selected, max_code, above)
        out = mux_bus(c, out, zero_code, below)
        return Bus(list(out) + [sign])


def encode_reference(value: float, fmt: MersitFormat) -> int:
    """Round-half-up MERSIT encoding (the encoder netlist's contract)."""
    import math
    if value == 0 or not math.isfinite(value):
        mag_w = fmt.nbits - 2
        if value == 0 or math.isnan(value):
            return (1 << mag_w) - 1  # +zero code
        code = (1 << mag_w) | (((1 << mag_w) - 1) ^ 1)
        return code | (1 << (fmt.nbits - 1)) if value < 0 else code
    sign = 1 if value < 0 else 0
    a = abs(value)
    step = fmt.regime_step
    g_count = fmt.ngroups
    e_min, e_max = -step * g_count, step * g_count - 1
    mag_w = fmt.nbits - 2
    e = math.floor(math.log2(a))
    if e < e_min:
        if a * 2 <= 2.0 ** e_min:  # closer to zero (ties away from zero)
            return ((1 << mag_w) - 1) | (sign << (fmt.nbits - 1))
        e = e_min
        m = 1.0
    else:
        m = a / 2.0 ** e
    if e > e_max:
        code = (1 << mag_w) | (((1 << mag_w) - 1) ^ 1)
        return code | (sign << (fmt.nbits - 1))
    k = e // step
    g = k if k >= 0 else -k - 1
    fbits = (g_count - 1 - g) * es_of(fmt)
    frac = math.floor((m - 1.0) * 2 ** fbits + 0.5)  # round half up
    if frac >= 1 << fbits:
        frac = 0
        e += 1
        if e > e_max:
            code = (1 << mag_w) | (((1 << mag_w) - 1) ^ 1)
            return code | (sign << (fmt.nbits - 1))
        k = e // step
        g = k if k >= 0 else -k - 1
        fbits = (g_count - 1 - g) * es_of(fmt)
    exp = e - k * step
    mag = 0
    for gi in range(g_count):
        shift = mag_w - (gi + 1) * es_of(fmt)
        if gi < g:
            mag |= step << shift
        elif gi == g:
            mag |= exp << shift
    mag |= frac
    ks = 1 if k >= 0 else 0
    return (sign << (fmt.nbits - 1)) | (ks << (fmt.nbits - 2)) | mag


def es_of(fmt: MersitFormat) -> int:
    return fmt.es


class MersitEncoder:
    """A standalone encoder circuit over a fixed-point magnitude input."""

    def __init__(self, fmt: MersitFormat, width: int = 16, lsb_exp: int = -10):
        self.fmt = fmt
        self.width = width
        self.lsb_exp = lsb_exp
        self.circuit = Circuit(f"encode_{fmt.name}")
        c = self.circuit
        sign = c.input_bus(1)
        mag = c.input_bus(width)
        code = build_mersit_encoder(c, sign[0], mag, fmt, lsb_exp)
        c.set_output("code", code)
        # band-composer byproducts that the final band mux discards are
        # dead; prune so the reported encoder cost covers live logic only
        c.prune_dead()

    def encode_values(self, values: np.ndarray) -> np.ndarray:
        """Drive the netlist with real values (fixed-point quantised)."""
        values = np.asarray(values, dtype=np.float64)
        scale = 2.0 ** -self.lsb_exp
        mags = np.clip(np.rint(np.abs(values) * scale), 0,
                       (1 << self.width) - 1).astype(np.int64)
        signs = (values < 0).astype(np.int64)
        stim = np.zeros((len(values), 1 + self.width), dtype=bool)
        stim[:, 0] = signs == 1
        for i in range(self.width):
            stim[:, 1 + i] = (mags >> i) & 1
        sim = self.circuit.simulate(stim)
        return sim["outputs"]["code"].astype(np.int64)

    def area(self):
        return self.circuit.area()
