"""Gate-level decoders for FP8, Posit8 and MERSIT8 (paper Fig. 5, Table 3).

Every decoder maps an 8-bit code to the MAC multiplier's internal contract
(paper Fig. 2):

* ``sign``     — 1 bit,
* ``exp_eff``  — signed effective exponent, two's complement, ``P`` bits,
* ``frac_eff`` — unsigned significand *including the leading 1*, ``M+1``
  bits (the hidden bit is materialised so the unsigned fraction multiplier
  needs no special cases); zero/inf inputs drive ``frac_eff = 0``,
* ``is_zero`` / ``is_special`` — flags for the zero and inf/NaN codes.

The three implementations mirror the paper's design points:

* **FP8**: field extraction is free, but subnormals need an LZD over the
  fraction plus a normalising shifter, and the bias subtraction needs an
  adder — this is why the FP(8,4) decoder is *not* small (Table 3: 434 um^2).
* **Posit8**: two's-complement magnitude negation, a 1-bit-resolution
  leading-run detector over 7 bits, and a full barrel shifter to re-align
  exponent and fraction — the most expensive decoder (830 um^2).
* **MERSIT8**: the proposed grouped scheme — per-EC AND reduction, a
  3-entry first-zero detector, a *group-granular* shifter (one mux stage
  per level instead of per bit), and the minimal-gate ``k x (2^es - 1)``
  unit of Fig. 5b (338 um^2).

Each decoder is verified exhaustively against the behavioural
:mod:`repro.formats` decode in the test suite.
"""

from __future__ import annotations

from ..formats.fp8 import FloatFormat
from ..formats.mersit import MersitFormat
from ..formats.posit import PositFormat
from .components import (
    barrel_shifter_left, equals_const, mux_bus, priority_encoder_first_one,
    ripple_adder, ripple_addsub, twos_complement_negate,
)
from .netlist import Bus, Circuit

__all__ = [
    "DecoderPins", "build_fp8_decoder", "build_posit_decoder",
    "build_mersit_decoder", "decoder_for_format",
]


class DecoderPins:
    """The decoder's output contract inside a larger circuit."""

    def __init__(self, sign, exp_eff: Bus, frac_eff: Bus, is_zero, is_special):
        self.sign = sign
        self.exp_eff = exp_eff
        self.frac_eff = frac_eff
        self.is_zero = is_zero
        self.is_special = is_special


def _const_bus(c: Circuit, value: int, width: int) -> Bus:
    return Bus(c.ONE if (value >> i) & 1 else c.ZERO for i in range(width))


def _add_const(c: Circuit, a: Bus, const: int) -> Bus:
    """a + const (two's complement, width preserved)."""
    s, _ = ripple_adder(c, a, _const_bus(c, const % (1 << len(a)), len(a)))
    return s


# ----------------------------------------------------------------------
# FP8
# ----------------------------------------------------------------------
def build_fp8_decoder(c: Circuit, code: Bus, fmt: FloatFormat,
                      group: str = "decoder") -> DecoderPins:
    """FP(N,E) decoder with subnormal normalisation and bias removal."""
    n, e, f = fmt.nbits, fmt.ebits, fmt.fbits
    p = _exp_width(fmt)
    with c.group(group):
        sign = code[n - 1]
        expf = code[f: f + e]          # exponent field, little-endian
        frac = code[0:f]

        exp_nonzero = c.or_tree(list(expf))
        exp_allones = c.and_tree(list(expf))
        frac_zero = c.inv(c.or_tree(list(frac)))
        is_zero = c.and2(c.inv(exp_nonzero), frac_zero)
        is_special = exp_allones if fmt.reserve_infnan else c.ZERO

        # normal path: frac_eff = 1.frac, exp_eff = expf - bias
        exp_ext = Bus(list(expf) + [c.ZERO] * (p - e))
        exp_normal = _add_const(c, exp_ext, -fmt.bias)

        # subnormal path: find leading 1 of frac, shift it into the hidden
        # position, exp_eff = 1 - bias - shift
        # lz_idx = number of leading zeros of the fraction (MSB-first scan)
        lz_idx, _ = priority_encoder_first_one(c, list(reversed(frac)))
        # exponent = 1 - bias - (lz_idx + 1)  ==  -bias - lz_idx
        lz_ext = Bus(list(lz_idx) + [c.ZERO] * (p - len(lz_idx)))
        exp_sub, _ = ripple_addsub(
            c, _const_bus(c, (-fmt.bias) % (1 << p), p), lz_ext, c.ONE)

        use_sub = c.inv(exp_nonzero)
        exp_eff = mux_bus(c, exp_normal, exp_sub, use_sub)

        # significand: normal = 1.frac; subnormal = frac << (lz_idx + 1)
        # with the shifted-out leading one becoming the hidden bit.
        sub_frac = barrel_shifter_left(c, Bus(frac), lz_idx)
        sub_frac = Bus([c.ZERO] + list(sub_frac[: f - 1]))
        frac_bits = mux_bus(c, Bus(frac), Bus(sub_frac[:f]), use_sub)
        hidden = c.or2(exp_nonzero, c.or_tree(list(frac)))
        alive = c.and2(c.inv(is_zero),
                       c.inv(is_special) if fmt.reserve_infnan else c.ONE)
        frac_eff = Bus([c.and2(b, alive) for b in frac_bits] + [c.and2(hidden, alive)])

        return DecoderPins(sign, exp_eff, frac_eff, is_zero, is_special)


# ----------------------------------------------------------------------
# Posit
# ----------------------------------------------------------------------
def build_posit_decoder(c: Circuit, code: Bus, fmt: PositFormat,
                        group: str = "decoder") -> DecoderPins:
    """Posit(N,es) decoder: negate, leading-run detect, realign."""
    n, es = fmt.nbits, fmt.es
    body_w = n - 1
    p = _exp_width(fmt)
    with c.group(group):
        sign = code[n - 1]
        # two's complement magnitude: body = sign ? -code[0:n-1] : code
        body = Bus(code[0: body_w])
        negated = twos_complement_negate(c, body)
        mag = mux_bus(c, body, negated, sign)

        mag_zero = c.inv(c.or_tree(list(mag)))
        is_zero = c.and2(mag_zero, c.inv(sign))
        nar = c.and2(mag_zero, sign)  # 0x80
        if fmt.inf_maxpos:
            maxpos = equals_const(c, mag, (1 << body_w) - 1)
            is_special = c.or2(nar, maxpos)
        else:
            is_special = nar

        # regime: leading run of bits equal to the MSB
        msb = mag[body_w - 1]
        # diff[i] = mag[top-i] ^ msb for i = 1..body_w-1; first 1 ends run
        diffs = [c.xor2(mag[body_w - 1 - i], msb) for i in range(1, body_w)]
        run_idx, found = priority_encoder_first_one(c, diffs)
        # run length r = run_idx + 1 (clamped to body_w when no terminator)
        rw = len(run_idx)
        run_len = Bus(list(run_idx) + [c.ZERO])      # rw+1 bits, == run_idx
        run_len = _add_const(c, run_len, 1)
        all_run = _const_bus(c, body_w, rw + 1)
        run_len = mux_bus(c, all_run, run_len, found)

        # k = msb ? r-1 : -r  (two's complement, p bits)
        r_ext = Bus(list(run_len) + [c.ZERO] * (p - len(run_len)))
        k_pos = _add_const(c, r_ext, -1)
        k_neg = twos_complement_negate(c, r_ext)
        k = mux_bus(c, k_neg, k_pos, msb)

        # shift out sign+regime+terminator: payload = mag << (run_len + 1),
        # then the top es bits are the exponent, the rest the fraction.
        shamt = _add_const(c, Bus(list(run_len) + [c.ZERO]), 1)
        payload = barrel_shifter_left(c, mag, shamt)
        exp_bits = Bus(list(reversed([payload[body_w - 1 - i] for i in range(es)])))

        frac_w = fmt.max_fraction_bits()
        frac_bits = Bus([payload[body_w - 1 - es - i]
                         for i in range(frac_w)])       # MSB-first gather
        frac_lsb_first = Bus(list(reversed(list(frac_bits))))

        # exp_eff = k * 2^es + exp  (a shift-and-or, then nothing else)
        k_shifted = Bus([c.ZERO] * es + list(k[: p - es]))
        exp_ext = Bus(list(exp_bits) + [c.ZERO] * (p - es)) if es else _const_bus(c, 0, p)
        exp_eff, _ = ripple_adder(c, k_shifted, exp_ext)

        alive = c.and2(c.inv(is_zero), c.inv(is_special))
        frac_eff = Bus([c.and2(b, alive) for b in frac_lsb_first] + [alive])

        return DecoderPins(sign, exp_eff, frac_eff, is_zero, is_special)


# ----------------------------------------------------------------------
# MERSIT
# ----------------------------------------------------------------------
def build_mersit_decoder(c: Circuit, code: Bus, fmt: MersitFormat,
                         group: str = "decoder") -> DecoderPins:
    """The paper's grouped decoding scheme (Fig. 5)."""
    n, es, ngroups = fmt.nbits, fmt.es, fmt.ngroups
    step = fmt.regime_step
    p = _exp_width(fmt)
    mag_w = n - 2
    with c.group(group):
        sign = code[n - 1]
        ks = code[n - 2]
        mag = Bus(code[0:mag_w])

        # EC buses, MSB-first: ec[g][j] = bit j (little-endian) of group g
        ecs = []
        for g in range(ngroups):
            lo = mag_w - (g + 1) * es
            ecs.append(Bus(mag[lo: lo + es]))

        # Fig. 5a: concurrent AND-reduction of each EC, then first zero
        ec_allones = [c.and_tree(list(ec)) for ec in ecs]
        has_zero = [c.inv(a) for a in ec_allones]
        g_idx, found = priority_encoder_first_one(c, has_zero)

        no_exponent = c.inv(found)
        is_zero = c.and2(no_exponent, c.inv(ks))
        is_special = c.and2(no_exponent, ks)

        # k = ks ? g : -(g+1)   (p-bit two's complement)
        g_ext = Bus(list(g_idx) + [c.ZERO] * (p - len(g_idx)))
        k_neg = twos_complement_negate(c, _add_const(c, g_ext, 1))
        k = mux_bus(c, k_neg, g_ext, ks)

        # Fig. 5b: k * (2^es - 1) = (k << es) - k
        k_shifted = Bus([c.ZERO] * es + list(k[: p - es]))
        k_step, _ = ripple_addsub(c, k_shifted, k, c.ONE)
        assert step == (1 << es) - 1

        # group-granular dynamic shift: align the exponent EC to the top.
        # Shifting by g groups = g*es bits, implemented as log2(ngroups)
        # stages of es-bit hops (cheaper than a full barrel shifter).
        bits = Bus(mag)
        for stage, sel in enumerate(g_idx):
            hop = (1 << stage) * es
            if hop >= mag_w:
                break
            shifted = Bus([c.ZERO] * hop + list(bits[: mag_w - hop]))
            bits = mux_bus(c, bits, shifted, sel)
        exp_bits = Bus(list(reversed([bits[mag_w - 1 - i] for i in range(es)])))

        frac_w = fmt.max_fraction_bits()
        frac_msb_first = [bits[mag_w - 1 - es - i] for i in range(frac_w)]
        frac_lsb_first = Bus(list(reversed(frac_msb_first)))

        # exp_eff = k*(2^es - 1) + exp
        exp_ext = Bus(list(exp_bits) + [c.ZERO] * (p - es))
        exp_eff, _ = ripple_adder(c, k_step, exp_ext)

        alive = found
        frac_eff = Bus([c.and2(b, alive) for b in frac_lsb_first] + [alive])

        return DecoderPins(sign, exp_eff, frac_eff, is_zero, is_special)


# ----------------------------------------------------------------------
def _exp_width(fmt) -> int:
    """Signed effective-exponent width P for a format (see Fig. 2 table)."""
    from ..formats.analysis import exponent_field_width
    return exponent_field_width(fmt)


def decoder_for_format(c: Circuit, code: Bus, fmt, group: str = "decoder") -> DecoderPins:
    """Dispatch on format family."""
    if isinstance(fmt, FloatFormat):
        return build_fp8_decoder(c, code, fmt, group)
    if isinstance(fmt, PositFormat):
        return build_posit_decoder(c, code, fmt, group)
    if isinstance(fmt, MersitFormat):
        return build_mersit_decoder(c, code, fmt, group)
    raise TypeError(f"no gate-level decoder for {type(fmt).__name__}")
