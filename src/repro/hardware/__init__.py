"""Gate-level hardware cost model: cells, netlists, decoders, MAC units."""

from .array import LayerMapping, PEArrayModel
from .cells import CELLS, Cell, cell
from .decoders import (
    DecoderPins, build_fp8_decoder, build_mersit_decoder, build_posit_decoder,
    decoder_for_format,
)
from .encoders import MersitEncoder, build_mersit_encoder
from .mac import MAC_GROUPS, MULTIPLIER_GROUPS, MacUnit
from .netlist import AreaReport, Bus, Circuit, PowerReport
from .report import (
    MacCostRow, MultiplierBreakdown, dnn_operand_stream, headline_deltas,
    mac_cost, multiplier_breakdown,
)
from .variants import PAPER_MACS, build_variant, decoder_circuit, registered_variants
from . import arith_variants

__all__ = [
    "PAPER_MACS", "build_variant", "decoder_circuit", "registered_variants",
    "Cell", "CELLS", "cell",
    "Circuit", "Bus", "AreaReport", "PowerReport",
    "DecoderPins", "build_fp8_decoder", "build_posit_decoder",
    "build_mersit_decoder", "decoder_for_format",
    "MersitEncoder", "build_mersit_encoder",
    "MacUnit", "MAC_GROUPS", "MULTIPLIER_GROUPS",
    "PEArrayModel", "LayerMapping",
    "MacCostRow", "MultiplierBreakdown", "mac_cost", "multiplier_breakdown",
    "dnn_operand_stream", "headline_deltas",
    "arith_variants",
]
