"""Alternative arithmetic implementations: carry-lookahead and Wallace tree.

The paper synthesises at a relaxed 100 MHz precisely so the comparison is
about logic volume, not architecture selection — its MAC uses the plain
ripple/array structures of :mod:`repro.hardware.components`.  These
variants exist for the timing-oriented ablation: a carry-lookahead adder
and Wallace-tree multiplier trade area for critical path, letting users
reproduce the classic area/delay curve on this cell library.

All variants are functionally exhaustively equivalent to the plain
structures (see ``tests/test_hardware_arith_variants.py``).
"""

from __future__ import annotations

from .components import full_adder
from .netlist import Bus, Circuit, Net

__all__ = ["carry_lookahead_adder", "wallace_multiplier", "carry_save_reduce"]


def carry_lookahead_adder(c: Circuit, a: Bus, b: Bus,
                          cin: Net | None = None) -> tuple[Bus, Net]:
    """Flat carry-lookahead adder (single-level P/G network).

    ``c_{i+1} = g_i | (p_i & c_i)`` unrolled into an AND-OR tree per carry:
    O(n^2) gates, O(log n) depth — the area/delay opposite of the ripple
    adder.
    """
    if len(a) != len(b):
        raise ValueError("width mismatch")
    n = len(a)
    carry0 = cin if cin is not None else c.ZERO
    p = [c.xor2(x, y) for x, y in zip(a, b)]
    g = [c.and2(x, y) for x, y in zip(a, b)]

    carries = [carry0]
    for i in range(n):
        # c_{i+1} = g_i | p_i g_{i-1} | ... | p_i..p_0 c_0
        terms = [g[i]]
        prefix = None
        for j in range(i, -1, -1):
            prefix = p[j] if prefix is None else c.and2(prefix, p[j])
            src = g[j - 1] if j > 0 else carry0
            terms.append(c.and2(prefix, src))
        carries.append(c.or_tree(terms))
    s = Bus(c.xor2(p[i], carries[i]) for i in range(n))
    return s, carries[n]


def carry_save_reduce(c: Circuit, rows: list[Bus], width: int) -> tuple[Bus, Bus]:
    """Wallace-style 3:2 carry-save reduction of addend rows.

    Rows are little-endian buses already aligned to bit 0 of the result;
    reduction proceeds until two rows remain, which the caller adds.
    """
    cols: list[list[Net]] = [[] for _ in range(width)]
    for row in rows:
        for i, bit in enumerate(row):
            if i < width:
                cols[i].append(bit)
    while max(len(col) for col in cols) > 2:
        nxt: list[list[Net]] = [[] for _ in range(width + 1)]
        for i, col in enumerate(cols):
            j = 0
            while len(col) - j >= 3:
                s, cy = full_adder(c, col[j], col[j + 1], col[j + 2])
                nxt[i].append(s)
                nxt[i + 1].append(cy)
                j += 3
            if len(col) - j == 2:
                s = c.xor2(col[j], col[j + 1])
                cy = c.and2(col[j], col[j + 1])
                nxt[i].append(s)
                nxt[i + 1].append(cy)
                j += 2
            nxt[i].extend(col[j:])
        cols = nxt[:width]
    out_a = Bus(col[0] if len(col) > 0 else c.ZERO for col in cols)
    out_b = Bus(col[1] if len(col) > 1 else c.ZERO for col in cols)
    return out_a, out_b


def wallace_multiplier(c: Circuit, a: Bus, b: Bus) -> Bus:
    """Unsigned Wallace-tree multiplier: CSA reduction + one CLA."""
    n, m = len(a), len(b)
    width = n + m
    rows = []
    for j, bj in enumerate(b):
        row = Bus([c.ZERO] * j + [c.and2(ai, bj) for ai in a])
        rows.append(row)
    sa, sb = carry_save_reduce(c, rows, width)
    out, _ = carry_lookahead_adder(c, sa, sb)
    return Bus(out[:width])
