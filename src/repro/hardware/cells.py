"""Standard-cell library: a 45 nm-class characterisation.

The paper synthesises with Synopsys DC on a commercial 45 nm library at
100 MHz, chosen deliberately slack so that the comparison measures *logic
overhead* rather than timing closure (paper Section 4.1).  Under that
regime, area is the sum of cell areas and dynamic power is dominated by
switching activity — both of which a gate-level netlist reproduces.

Cell areas follow the NanGate 45 nm Open Cell Library X1 drive strengths;
per-toggle switching energies and leakage are scaled to the same process
class.  Absolute numbers therefore differ from the paper's commercial
library by a roughly constant factor; the area/power *ratios* between the
FP8/Posit/MERSIT units are library-independent (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Cell", "CELLS", "cell"]


@dataclass(frozen=True)
class Cell:
    """One combinational cell type.

    Attributes
    ----------
    name:
        Library name, e.g. ``"NAND2"``.
    inputs:
        Number of input pins.
    area:
        Cell area in um^2 (NanGate45 X1).
    energy:
        Internal + output switching energy per *output toggle*, in fJ.
    leakage:
        Static leakage power in nW.
    delay:
        Typical propagation delay in ns (X1 drive, nominal load).
    """

    name: str
    inputs: int
    area: float
    energy: float
    leakage: float
    delay: float = 0.03


# NanGate 45nm OCL X1 footprints; energies in fJ/toggle, leakage in nW.
_LIBRARY = [
    Cell("INV", 1, 0.532, 0.30, 1.5, 0.013),
    Cell("BUF", 1, 0.798, 0.35, 1.7, 0.03),
    Cell("NAND2", 2, 0.798, 0.45, 2.0, 0.02),
    Cell("NOR2", 2, 0.798, 0.45, 2.0, 0.022),
    Cell("AND2", 2, 1.064, 0.55, 2.4, 0.033),
    Cell("OR2", 2, 1.064, 0.55, 2.4, 0.035),
    Cell("NAND3", 3, 1.064, 0.60, 2.8, 0.028),
    Cell("NOR3", 3, 1.064, 0.60, 2.8, 0.032),
    Cell("AND3", 3, 1.330, 0.70, 3.0, 0.042),
    Cell("OR3", 3, 1.330, 0.70, 3.0, 0.044),
    Cell("XOR2", 2, 1.596, 0.95, 3.5, 0.048),
    Cell("XNOR2", 2, 1.596, 0.95, 3.5, 0.048),
    Cell("MUX2", 3, 1.862, 1.00, 3.8, 0.052),   # inputs: a, b, sel
    Cell("AOI21", 3, 1.064, 0.65, 2.6, 0.03),  # ~(a&b | c)
    Cell("OAI21", 3, 1.064, 0.65, 2.6, 0.03),  # ~((a|b) & c)
    Cell("DFF", 1, 4.522, 1.80, 9.0, 0.09),    # sequential: input d, output q
    Cell("TIE", 0, 0.0, 0.0, 0.0, 0.0),       # constant 0/1 driver (free)
]

CELLS: dict[str, Cell] = {c.name: c for c in _LIBRARY}


def cell(name: str) -> Cell:
    """Look up a cell by name, raising a clear error for unknown cells."""
    try:
        return CELLS[name]
    except KeyError:
        raise KeyError(f"unknown cell {name!r}; known: {sorted(CELLS)}") from None
