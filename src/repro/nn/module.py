"""Module system: parameter containers with train/eval modes and state dicts.

A thin torch-like layer over :mod:`repro.autograd`: modules own
:class:`Parameter` tensors, compose into trees, and serialise to flat
``name -> ndarray`` state dicts (used by the zoo's train-once cache).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A trainable tensor (requires_grad=True by default)."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=requires_grad)


class Module:
    """Base class for layers and models."""

    def __init__(self):
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._params: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # attribute plumbing
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_params", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-trainable array (e.g. BN running stats) in the state dict."""
        self._buffers[name] = np.asarray(value, dtype=np.float32)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value, dtype=np.float32)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._params.items():
            yield (f"{prefix}.{name}" if prefix else name), p
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for name, mod in self.named_modules():
            for pname, p in mod._params.items():
                state[f"{name}.{pname}" if name else pname] = p.data.copy()
            for bname, b in mod._buffers.items():
                state[f"{name}.{bname}" if name else bname] = b.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own: dict[str, tuple[Module, str, bool]] = {}
        for name, mod in self.named_modules():
            for pname in mod._params:
                own[f"{name}.{pname}" if name else pname] = (mod, pname, True)
            for bname in mod._buffers:
                own[f"{name}.{bname}" if name else bname] = (mod, bname, False)
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for key, (mod, name, is_param) in own.items():
            value = np.asarray(state[key], dtype=np.float32)
            if is_param:
                param = mod._params[name]
                if param.data.shape != value.shape:
                    raise ValueError(f"shape mismatch for {key}: "
                                     f"{param.data.shape} vs {value.shape}")
                param.data = value.copy()
            else:
                mod.set_buffer(name, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} params={self.num_parameters()}>"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)
