"""Transformer building blocks for the BERT-style GLUE models.

Multi-head self-attention with optional padding masks, and the standard
pre-softmax scaled dot-product.  The Q/K/V/output projections and the FFN
are ordinary :class:`~repro.nn.layers.Linear` layers, so the PTQ driver
quantizes them exactly like CNN layers; softmax and layer-norm stay in
full precision, matching common 8-bit transformer PTQ practice (and the
paper's weight/activation-only quantization).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, functional as F
from .layers import GELU, Dropout, LayerNorm, Linear
from .module import Module

__all__ = ["MultiHeadAttention", "TransformerEncoderLayer"]

_NEG_INF = -1e9


class MultiHeadAttention(Module):
    """Standard multi-head self-attention over (N, T, D) sequences."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator | None = None):
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim={dim} not divisible by num_heads={num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        rng = rng or np.random.default_rng(0)
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def _split_heads(self, x: Tensor, n: int, t: int) -> Tensor:
        # (N, T, D) -> (N, H, T, Dh)
        return x.reshape(n, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """``mask`` is (N, T) with 1 for real tokens, 0 for padding."""
        n, t, _ = x.shape
        q = self._split_heads(self.q_proj(x), n, t)
        k = self._split_heads(self.k_proj(x), n, t)
        v = self._split_heads(self.v_proj(x), n, t)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            bias = np.where(np.asarray(mask)[:, None, None, :] > 0, 0.0, _NEG_INF)
            scores = scores + Tensor(bias.astype(np.float32))
        attn = F.softmax(scores, axis=-1)
        ctx = attn @ v                                    # (N, H, T, Dh)
        ctx = ctx.transpose(0, 2, 1, 3).reshape(n, t, self.dim)
        return self.out_proj(ctx)


class TransformerEncoderLayer(Module):
    """Post-LN transformer encoder block (BERT convention)."""

    def __init__(self, dim: int, num_heads: int, ffn_dim: int,
                 dropout: float = 0.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attn = MultiHeadAttention(dim, num_heads, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.fc1 = Linear(dim, ffn_dim, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(ffn_dim, dim, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.drop = Dropout(dropout)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = self.norm1(x + self.drop(self.attn(x, mask)))
        x = self.norm2(x + self.drop(self.fc2(self.act(self.fc1(x)))))
        return x
