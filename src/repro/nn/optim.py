"""Optimisers for pretraining the zoo: SGD with momentum and Adam."""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["SGD", "Adam"]


class Optimizer:
    def __init__(self, params: list[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.9, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v += g
            p.data = p.data - self.lr * v


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba 2015)."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
