"""Neural-network layer library over :mod:`repro.autograd`."""

from .attention import MultiHeadAttention, TransformerEncoderLayer
from .layers import (
    AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, GELU, GlobalAvgPool2d,
    Hardsigmoid, Hardswish, Identity, LayerNorm, Linear, MaxPool2d,
    QuantizableMixin, ReLU, ReLU6, Sigmoid, SiLU, Tanh,
)
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam

__all__ = [
    "Module", "Parameter", "Sequential",
    "Linear", "Conv2d", "BatchNorm2d", "LayerNorm",
    "ReLU", "ReLU6", "Hardswish", "Hardsigmoid", "SiLU", "GELU", "Tanh", "Sigmoid",
    "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten", "Dropout", "Identity",
    "MultiHeadAttention", "TransformerEncoderLayer",
    "QuantizableMixin", "SGD", "Adam",
]
