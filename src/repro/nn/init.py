"""Weight initialisers (He/Xavier) used by the zoo architectures."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_normal", "xavier_uniform", "normal", "zeros", "ones"]


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator,
                   fan_in: int | None = None) -> np.ndarray:
    """He initialisation for ReLU-family networks."""
    if fan_in is None:
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot initialisation for tanh/linear layers (BERT-style)."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    fan_out = shape[0]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Gaussian init with small std (embedding tables)."""
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros parameter (biases)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-ones parameter (norm scales)."""
    return np.ones(shape, dtype=np.float32)
