"""Core layers: dense/conv/normalisation/activations, with PTQ hooks.

The two compute layers (:class:`Linear`, :class:`Conv2d`) carry optional
quantization hooks used by :mod:`repro.quant.ptq`:

* ``weight_quant`` — a :class:`~repro.quant.fakequant.FakeQuantizer` applied
  to the weight every forward (per-output-channel scales, paper Section 4.1).
* ``input_quant`` — applied to the incoming activation (per-tensor scale).
* ``observing`` — when True the input quantizer only records running maxes
  (calibration pass) and the layer computes in full precision.
* ``engine_exec`` — optional true-quantized executor
  (:mod:`repro.engine`): when attached (PTQ ``mode="engine"``) the layer
  bypasses the fake-quant float path entirely and computes in code space.

Keeping the hooks inside the layer mirrors how fake-quant PTQ frameworks
instrument torch modules, and keeps the zoo architectures quantization-
agnostic.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, functional as F
from . import init
from .module import Module, Parameter

__all__ = [
    "Linear", "Conv2d", "BatchNorm2d", "LayerNorm",
    "ReLU", "ReLU6", "Hardswish", "Hardsigmoid", "SiLU", "GELU", "Tanh", "Sigmoid",
    "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten", "Dropout", "Identity",
    "QuantizableMixin",
]


class QuantizableMixin:
    """Fake-quant hook slots shared by Linear and Conv2d."""

    def _init_quant(self) -> None:
        self.weight_quant = None
        self.input_quant = None
        self.observing = False
        # true-quantized executor (repro.engine); attached by quantize_model
        # when the PTQ config asks for mode="engine"
        self.engine_exec = None

    def _engine_forward(self, x: Tensor) -> Tensor | None:
        """Run through the attached true-quantized engine, if any."""
        if self.engine_exec is None or self.observing:
            return None
        return Tensor(self.engine_exec(x.data).astype(np.float32))

    def _maybe_quant_input(self, x: Tensor) -> Tensor:
        if self.input_quant is None:
            return x
        if self.observing:
            self.input_quant.observe(x.data)
            return x
        if self.input_quant.calibrated:
            return Tensor(self.input_quant(x.data).astype(np.float32))
        return x

    def _effective_weight(self) -> Tensor:
        if self.weight_quant is None or self.observing:
            return self.weight
        # weights are static after calibration, so the quantizer memoizes on
        # the weight tensor's data version (see FakeQuantizer.quantize_cached)
        return Tensor(self.weight_quant.quantize_cached(self.weight))

    def quant_enabled(self) -> bool:
        return self.weight_quant is not None or self.input_quant is not None

    def clear_quant(self) -> None:
        self._init_quant()


class Linear(Module, QuantizableMixin):
    """Affine layer ``y = x W^T + b`` with weight shape (out, in)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self._init_quant()

    def forward(self, x: Tensor) -> Tensor:
        y = self._engine_forward(x)
        if y is not None:
            return y
        x = self._maybe_quant_input(x)
        return F.linear(x, self._effective_weight(), self.bias)


class Conv2d(Module, QuantizableMixin):
    """2-D convolution, NCHW, square kernels; supports grouped/depthwise."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 bias: bool = True, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must divide groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self._init_quant()

    def forward(self, x: Tensor) -> Tensor:
        y = self._engine_forward(x)
        if y is not None:
            return y
        x = self._maybe_quant_input(x)
        return F.conv2d(x, self._effective_weight(), self.bias,
                        stride=self.stride, padding=self.padding, groups=self.groups)


class BatchNorm2d(Module):
    """Batch normalisation over (N,H,W) per channel with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", init.zeros((num_features,)))
        self.register_buffer("running_var", init.ones((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        c = self.num_features
        if self.training:
            mu = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self.set_buffer("running_mean",
                            (1 - m) * self.running_mean + m * mu.data.reshape(c))
            self.set_buffer("running_var",
                            (1 - m) * self.running_var + m * var.data.reshape(c))
        else:
            mu = Tensor(self.running_mean.reshape(1, c, 1, 1))
            var = Tensor(self.running_var.reshape(1, c, 1, 1))
        inv = (var + self.eps) ** -0.5
        w = self.weight.reshape(1, c, 1, 1)
        b = self.bias.reshape(1, c, 1, 1)
        return (x - mu) * inv * w + b


class LayerNorm(Module):
    """Layer normalisation over the last dimension (transformer-style)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones((dim,)))
        self.bias = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mu) * ((var + self.eps) ** -0.5) * self.weight + self.bias


class _Activation(Module):
    _fn = staticmethod(lambda x: x)

    def forward(self, x: Tensor) -> Tensor:
        return self._fn(x)


class ReLU(_Activation):
    _fn = staticmethod(F.relu)


class ReLU6(_Activation):
    _fn = staticmethod(F.relu6)


class Hardswish(_Activation):
    _fn = staticmethod(F.hardswish)


class Hardsigmoid(_Activation):
    _fn = staticmethod(F.hardsigmoid)


class SiLU(_Activation):
    _fn = staticmethod(F.silu)


class GELU(_Activation):
    _fn = staticmethod(F.gelu)


class Tanh(_Activation):
    _fn = staticmethod(lambda x: x.tanh())


class Sigmoid(_Activation):
    _fn = staticmethod(lambda x: x.sigmoid())


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    def __init__(self, p: float = 0.1, seed: int = 0):
        super().__init__()
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)
