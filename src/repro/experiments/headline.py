"""Experiment headline: the paper's abstract/Section 4.3 claims in one place.

* MERSIT MAC saves 26.6 % area and 22.2 % power vs the Posit MAC.
* MERSIT MAC area is ~11 % above FP(8,4) with comparable power.
* The MERSIT decoder saves 59.2 % area vs the Posit decoder.
* Posit multiplier costs ~80 % more area / ~46 % more power than FP8's
  (the Section 1 motivation).
* MERSIT(8,2) PTQ accuracy tracks Posit(8,1) within noise and beats INT8
  on the fragile models (from the Table 2 grid, when available).
"""

from __future__ import annotations

import math

from .common import load_artifact, save_artifact
from . import fig7, table3

__all__ = ["run", "render"]


def _finite_score(row: dict, column: str) -> float | None:
    """A grid cell as a finite float, or None (missing / ``ERR`` entry)."""
    value = row.get(column)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None  # absent, or a structured error entry
    return float(value) if math.isfinite(value) else None


def run(refresh: bool = False) -> dict:
    """Assemble every headline claim from the fig7/table3/table2 artifacts."""
    f7 = fig7.run(refresh=refresh)
    t3 = table3.run(refresh=refresh)
    me = t3["rows"]["MERSIT(8,2)"]
    po = t3["rows"]["Posit(8,1)"]
    fp = t3["rows"]["FP(8,4)"]
    claims = {
        "mac_area_saving_vs_posit_pct": {
            "measured": f7["headlines"]["area_saving_vs_posit_pct"], "paper": 26.6},
        "mac_power_saving_vs_posit_pct": {
            "measured": f7["headlines"]["power_saving_vs_posit_pct"], "paper": 22.2},
        "mac_area_premium_vs_fp8_pct": {
            "measured": f7["headlines"]["area_premium_vs_fp8_pct"], "paper": 11.0},
        "decoder_area_saving_vs_posit_pct": {
            "measured": t3["decoder_area_saving_vs_posit_pct"], "paper": 59.2},
        "posit_multiplier_area_overhead_vs_fp8_pct": {
            "measured": 100 * (po["area"]["total"] / fp["area"]["total"] - 1),
            "paper": 80.0},
        "posit_multiplier_power_overhead_vs_fp8_pct": {
            "measured": 100 * (po["power"]["total"] / fp["power"]["total"] - 1),
            "paper": 46.0},
    }
    table2 = load_artifact("table2")
    if table2 and "grid" in table2:
        grid = table2["grid"]
        # error entries / non-finite cells are excluded rather than
        # silently treated as 0-accuracy rows
        pairs = [(_finite_score(row, "MERSIT(8,2)"),
                  _finite_score(row, "Posit(8,1)")) for row in grid.values()]
        deltas = [abs(me - po) for me, po in pairs
                  if me is not None and po is not None]
        if deltas:
            claims["max_abs_accuracy_gap_mersit_vs_posit"] = {
                "measured": max(deltas), "paper": 1.5}
    result = {"claims": claims}
    save_artifact("headline", result)
    return result


def render(result: dict | None = None) -> str:
    """Plain-text measured-vs-paper listing of the headline claims."""
    result = result or run()
    lines = ["Headline claims - measured vs paper"]
    for name, vals in result["claims"].items():
        lines.append(f"  {name}: {vals['measured']:.1f} (paper: {vals['paper']})")
    return "\n".join(lines)
