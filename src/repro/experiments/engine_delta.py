"""Experiment engine_delta: fake-quant vs true-quantized accuracy.

The fake-quant PTQ path (and the paper's Table 2) estimates low-precision
accuracy while accumulating in float64 without rounding layer outputs.
The hardware (Fig. 2) accumulates exactly in the Kulisch register but
*re-encodes every MAC output to the 8-bit format* — one extra rounding
per output that the estimator does not model.  This experiment quantifies
that modelling gap: it scores one GLUE zoo model under both the
fake-quant path and the true-quantized engine (:mod:`repro.engine`,
``mode="engine"``) and reports the accuracy delta per format.

A small delta is the evidence that fake-quant PTQ numbers transfer to
the real datapath; a large delta would mean Table 2-style evaluations
overstate deployable accuracy for that format.
"""

from __future__ import annotations

from ..quant import PTQConfig, dequantize_model, quantize_model
from ..zoo import ALL_MODELS, evaluate_text, glue_task, pretrained
from .common import format_table, load_artifact, save_artifact

__all__ = ["DELTA_FORMATS", "run", "render"]

#: headline pair: the paper's proposed format and its accuracy peer
DELTA_FORMATS = ("MERSIT(8,2)", "Posit(8,1)")

_ARTIFACT = "engine_delta"


def _eval_pair(model_name: str, fmt_name: str, eval_n: int,
               calib_n: int) -> dict:
    """Score one model/format under fakequant and engine modes."""
    entry = ALL_MODELS[model_name]
    if entry.kind != "glue":
        raise ValueError("engine_delta targets the GLUE zoo models")
    task = glue_task(entry.task)
    calib = task.calibration_split(calib_n)
    test = task.test_split(eval_n)
    scores = {}
    for mode in ("fakequant", "engine"):
        model, _ = pretrained(model_name)
        quantize_model(model, PTQConfig(weight_format=fmt_name, mode=mode),
                       calib.batches(50),
                       forward=lambda m, b: m(b[0], b[1]))
        scores[mode] = float(evaluate_text(model, test, entry.metric))
        dequantize_model(model)
    scores["delta"] = scores["engine"] - scores["fakequant"]
    return scores


def run(model: str = "SST-2", formats: tuple[str, ...] = DELTA_FORMATS,
        eval_n: int = 128, calib_n: int = 32, refresh: bool = False) -> dict:
    """Fill (incrementally) the fakequant-vs-engine delta table.

    Keyed ``rows[format] -> {fakequant, engine, delta}`` on one zoo model
    (default SST-2: the Linear-only MiniBERT, where every compute layer
    runs through the engine).
    """
    art = (load_artifact(_ARTIFACT) or {}) if not refresh else {}
    meta_key = f"{model}/{eval_n}/{calib_n}"
    rows = art.get("rows", {}) if art.get("meta_key") == meta_key else {}
    for fmt_name in formats:
        if fmt_name not in rows:
            rows[fmt_name] = _eval_pair(model, fmt_name, eval_n, calib_n)
            save_artifact(_ARTIFACT, {"model": model, "rows": rows,
                                      "meta_key": meta_key})
    result = {"model": model, "rows": rows, "meta_key": meta_key}
    save_artifact(_ARTIFACT, result)
    return result


def render(result: dict | None = None) -> str:
    """Plain-text delta table.

    With no artifact on disk this renders an explicit pointer to the run
    command instead of silently launching the expensive engine/fakequant
    evaluation pair.
    """
    result = result or load_artifact(_ARTIFACT)
    if result is None:
        return ("Engine delta - no artifact found; run "
                "`python -m repro.cli experiments engine_delta` to compute "
                "the fakequant-vs-engine table")
    headers = ["Format", "fakequant", "engine", "delta"]
    rows = [[name, vals["fakequant"], vals["engine"], vals["delta"]]
            for name, vals in sorted(result["rows"].items())]
    return (f"Fake-quant vs true-quantized accuracy ({result['model']})\n"
            + format_table(headers, rows, floatfmt=".2f"))
