"""Experiment table3: multiplier breakdown analysis (paper Table 3).

Area and power of the multiplier part of each MAC (two decoders, the
exponent adder and the fraction multiplier), per component.  The paper's
key numbers: the MERSIT(8,2) decoder saves 59.2 % area over Posit(8,1)'s,
and the MERSIT multiplier total lands near FP(8,4)'s.
"""

from __future__ import annotations

from ..formats import PAPER_FORMATS, get_format
from ..hardware import MacUnit, dnn_operand_stream, multiplier_breakdown
from ..resilience import run_cells
from .common import format_table, load_artifact, save_artifact
from .fig7 import activity_tensors

__all__ = ["PAPER_TABLE3", "run", "render"]

#: the paper's Table 3 (area um^2 / power uW per component)
PAPER_TABLE3 = {
    "FP(8,4)": {"area": {"decoder": 434, "exp_adder": 46, "frac_multiplier": 128},
                "power": {"decoder": 41.73, "exp_adder": 6.57, "frac_multiplier": 12.60}},
    "Posit(8,1)": {"area": {"decoder": 830, "exp_adder": 54, "frac_multiplier": 216},
                   "power": {"decoder": 63.52, "exp_adder": 3.78, "frac_multiplier": 19.50}},
    "MERSIT(8,2)": {"area": {"decoder": 338, "exp_adder": 54, "frac_multiplier": 216},
                    "power": {"decoder": 33.95, "exp_adder": 6.25, "frac_multiplier": 11.00}},
}


def _breakdown_cell(cell: tuple) -> dict:
    """One format's multiplier breakdown (the pool path's unit of work).

    The operand tensors ride in the task tuple — computed once in the
    parent and shipped to whichever worker picks the cell up, so the
    parallel fill never recomputes the activity capture per format.
    """
    name, weights, activations, stream_len, clock_mhz = cell
    fmt = get_format(name)
    mac = MacUnit(fmt)
    w_codes, a_codes = dnn_operand_stream(fmt, weights, activations, n=stream_len)
    b = multiplier_breakdown(mac, w_codes, a_codes, clock_mhz=clock_mhz)
    return {
        "area": {"decoder": b.area_decoder, "exp_adder": b.area_exp_adder,
                 "frac_multiplier": b.area_frac_multiplier, "total": b.area_total},
        "power": {"decoder": b.power_decoder, "exp_adder": b.power_exp_adder,
                  "frac_multiplier": b.power_frac_multiplier, "total": b.power_total},
    }


def run(stream_len: int = 512, clock_mhz: float = 100.0, refresh: bool = False,
        jobs: int = 1) -> dict:
    """Measure the Table 3 multiplier breakdowns (cached by stream_len).

    ``jobs > 1`` fans the independent per-format breakdowns across the
    persistent worker pool; rows are assembled in ``PAPER_FORMATS`` order
    either way, so the artifact is identical to a serial run.
    """
    cached = load_artifact("table3")
    if cached is not None and not refresh and cached.get("stream_len") == stream_len:
        return cached
    weights, activations = activity_tensors()
    cells = [(name, weights, activations, stream_len, clock_mhz)
             for name in PAPER_FORMATS]
    values = run_cells(cells, _breakdown_cell, jobs=jobs)
    rows = dict(zip(PAPER_FORMATS, values))
    decoder_saving = 100 * (1 - rows["MERSIT(8,2)"]["area"]["decoder"]
                            / rows["Posit(8,1)"]["area"]["decoder"])
    result = {"rows": rows, "paper": PAPER_TABLE3,
              "decoder_area_saving_vs_posit_pct": decoder_saving,
              "paper_decoder_area_saving_pct": 59.2,
              "stream_len": stream_len}
    save_artifact("table3", result)
    return result


def render(result: dict | None = None) -> str:
    """Plain-text measured-vs-paper rendering of Table 3."""
    result = result or run()
    headers = ["Component", "FP(8,4)", "Posit(8,1)", "MERSIT(8,2)",
               "paper FP", "paper Posit", "paper MERSIT"]
    lines = ["Table 3 - multiplier breakdown (measured vs paper)"]
    for kind, unit in (("area", "um^2"), ("power", "uW")):
        rows = []
        for comp in ("decoder", "exp_adder", "frac_multiplier", "total"):
            row = [comp]
            for f in PAPER_FORMATS:
                row.append(round(result["rows"][f][kind][comp], 1))
            for f in PAPER_FORMATS:
                paper = PAPER_TABLE3[f][kind]
                row.append(round(sum(paper.values()), 1) if comp == "total"
                           else paper[comp])
            rows.append(row)
        lines.append(f"\n{kind} ({unit}):")
        lines.append(format_table(headers, rows))
    lines.append(f"\n  MERSIT decoder area saving vs Posit: "
                 f"{result['decoder_area_saving_vs_posit_pct']:.1f}% "
                 f"(paper: {result['paper_decoder_area_saving_pct']}%)")
    return "\n".join(lines)
