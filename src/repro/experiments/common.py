"""Shared plumbing for the experiment drivers: artifact cache and tables.

Artifacts are persisted through the crash-safe store
(:mod:`repro.resilience.store`): atomic writes, a checksummed envelope,
and automatic fallback to the last-good ``.bak`` copy when the main file
is truncated or corrupt.  A corrupt artifact with no recoverable backup
loads as None (with a one-line warning) — exactly like a missing one —
so a damaged cache costs a recompute, never a crash.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..resilience import store

__all__ = ["artifacts_dir", "save_artifact", "load_artifact", "format_table"]


def artifacts_dir() -> Path:
    """Where experiment outputs (JSON) are stored: $REPRO_ARTIFACTS or ./artifacts."""
    root = Path(os.environ.get("REPRO_ARTIFACTS", "artifacts"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def save_artifact(name: str, payload: dict) -> Path:
    """Crash-safely write an experiment result as JSON; returns the path."""
    path = artifacts_dir() / f"{name}.json"
    return store.save_json(path, payload, name=name)


def load_artifact(name: str) -> dict | None:
    """Load a previously saved experiment result, or None if absent.

    Corruption is contained: a truncated/invalid main file falls back to
    the ``.bak`` copy; when neither validates the artifact is treated as
    absent, with a one-line warning naming the damaged file.
    """
    path = artifacts_dir() / f"{name}.json"
    payload, status = store.load_json(path)
    if status == "recovered":
        print(f"artifact {path}: corrupt or missing; recovered last-good "
              f"copy from {store.bak_path(path).name}", flush=True)
    elif status == "corrupt":
        print(f"artifact {path}: corrupt and no valid backup; ignoring it "
              f"(the experiment will recompute)", flush=True)
    return payload


def format_table(headers: list[str], rows: list[list], floatfmt: str = ".2f") -> str:
    """Plain-text table with right-aligned numeric columns."""
    def cell(v):
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    def line(vals):
        return "  ".join(v.rjust(w) for v, w in zip(vals, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
