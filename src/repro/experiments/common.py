"""Shared plumbing for the experiment drivers: artifact cache and tables."""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["artifacts_dir", "save_artifact", "load_artifact", "format_table"]


def artifacts_dir() -> Path:
    """Where experiment outputs (JSON) are stored: $REPRO_ARTIFACTS or ./artifacts."""
    root = Path(os.environ.get("REPRO_ARTIFACTS", "artifacts"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def save_artifact(name: str, payload: dict) -> Path:
    """Write an experiment result as pretty JSON; returns the path."""
    path = artifacts_dir() / f"{name}.json"
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    return path


def load_artifact(name: str) -> dict | None:
    """Load a previously saved experiment result, or None if absent."""
    path = artifacts_dir() / f"{name}.json"
    if not path.exists():
        return None
    with open(path) as f:
        return json.load(f)


def format_table(headers: list[str], rows: list[list], floatfmt: str = ".2f") -> str:
    """Plain-text table with right-aligned numeric columns."""
    def cell(v):
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    def line(vals):
        return "  ".join(v.rjust(w) for v, w in zip(vals, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
