"""Experiment fig4: range and fraction precision of the 8-bit formats.

For every format in the paper's Fig. 4, the binade-by-binade fraction
precision profile as contiguous segments, plus the Section 3.2 claims
(e.g. MERSIT(8,2) sustains 4-bit precision over a wider band than
Posit(8,1)).
"""

from __future__ import annotations

from ..formats import get_format
from ..formats.analysis import precision_segments, range_with_precision
from ..resilience import run_cells
from .common import format_table, save_artifact

__all__ = ["FIG4_FORMATS", "run", "render"]

FIG4_FORMATS = (
    "FP(8,2)", "FP(8,3)", "FP(8,4)", "FP(8,5)",
    "Posit(8,0)", "Posit(8,1)", "Posit(8,2)",
    "MERSIT(8,2)", "MERSIT(8,3)",
)


def _profile_cell(name: str) -> dict:
    """One format's range/precision profile (pure; pool-friendly)."""
    fmt = get_format(name)
    dr = fmt.dynamic_range
    return {
        "range": [dr.min_log2, dr.max_log2],
        "segments": [list(s) for s in precision_segments(fmt)],
        "max_fraction_bits": fmt.max_fraction_bits(),
    }


def run(jobs: int = 1) -> dict:
    """Compute range/precision profiles and the Section 3.2 claims.

    ``jobs > 1`` fans the per-format profiles across the persistent
    worker pool (cells are independent pure functions, so results are
    identical to a serial run).
    """
    values = run_cells(list(FIG4_FORMATS), _profile_cell, jobs=jobs)
    profiles = dict(zip(FIG4_FORMATS, values))
    m4 = range_with_precision(get_format("MERSIT(8,2)"), 4)
    p4 = range_with_precision(get_format("Posit(8,1)"), 4)
    claims = {
        "mersit82_4bit_band": list(m4),
        "posit81_4bit_band": list(p4),
        # Section 3.2: the 4-bit band of MERSIT(8,2) is broader
        "mersit_band_wider": (m4[1] - m4[0]) > (p4[1] - p4[0]),
        # Section 4.3: fraction-bearing range 2^-6..2^5 vs 2^-8..2^7
        "mersit82_fraction_band": list(range_with_precision(get_format("MERSIT(8,2)"), 1)),
        "posit81_fraction_band": list(range_with_precision(get_format("Posit(8,1)"), 1)),
    }
    result = {"profiles": profiles, "claims": claims}
    save_artifact("fig4", result)
    return result


def render(result: dict | None = None) -> str:
    """Plain-text rendering of the Fig. 4 profiles."""
    result = result or run()
    lines = ["Fig. 4 - dynamic range and fraction precision by binade", ""]
    headers = ["Format", "Range", "Precision segments (lo..hi: bits)"]
    rows = []
    for name, prof in result["profiles"].items():
        segs = ", ".join(f"2^{a}..2^{b}:{bits}b" for a, b, bits in prof["segments"])
        lo, hi = prof["range"]
        rows.append([name, f"2^{lo} ~ 2^{hi}", segs])
    lines.append(format_table(headers, rows))
    c = result["claims"]
    lines.append("")
    lines.append(f"4-bit-precision band: MERSIT(8,2) 2^{c['mersit82_4bit_band'][0]}.."
                 f"2^{c['mersit82_4bit_band'][1]}  vs Posit(8,1) "
                 f"2^{c['posit81_4bit_band'][0]}..2^{c['posit81_4bit_band'][1]}"
                 f"  -> wider for MERSIT: {c['mersit_band_wider']} (paper 3.2: True)")
    return "\n".join(lines)
