"""Experiment fig6: RMSE of quantized weights (paper Fig. 6).

The paper computes root-mean-square error between FP32 and quantized
tensors for FP(8,4), Posit(8,1) and MERSIT(8,2) on ResNet50,
MobileNet_v3 and EfficientNet_b0, and finds MERSIT(8,2) slightly better
than or comparable to Posit(8,1), both notably below FP(8,4).

We measure the layer-wise *relative* RMSE (RMSE normalised by the tensor
RMS, so layers are comparable) of every quantizable layer's weights and of
the activations observed on the calibration split, and report the mean.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..formats import get_format
from ..quant import FakeQuantizer, relative_rmse
from ..quant.ptq import quantized_layers
from ..resilience import run_cells
from ..zoo import dataset, pretrained
from .common import format_table, save_artifact

__all__ = ["FIG6_MODELS", "FIG6_FORMATS", "run", "render"]

FIG6_MODELS = ("ResNet50", "MobileNet_v3", "EfficientNet_b0")
FIG6_FORMATS = ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)")


def _weight_rmse(model, fmt) -> float:
    """Mean layer-wise relative RMSE of per-channel-scaled quantized weights."""
    errs = []
    for _, layer in quantized_layers(model):
        w = layer.weight.data
        q = FakeQuantizer(fmt, axis=0).calibrate(w)(w)
        errs.append(relative_rmse(w, q))
    return float(np.mean(errs))


def _activation_rmse(model, fmt, images: np.ndarray) -> float:
    """Mean relative RMSE of per-tensor-scaled quantized activations."""
    captured: list[np.ndarray] = []
    layers = [layer for _, layer in quantized_layers(model)]
    originals = [type(layer).forward for layer in layers]

    def make_hook(layer, orig):
        def hooked(x):
            captured.append(np.asarray(x.data, dtype=np.float64))
            return orig(layer, x)
        return hooked

    for layer, orig in zip(layers, originals):
        layer.forward = make_hook(layer, orig)
    try:
        with no_grad():
            model(Tensor(images))
    finally:
        for layer in layers:
            del layer.forward  # restore the class method
    errs = []
    for act in captured:
        q = FakeQuantizer(fmt, axis=None).calibrate(act)(act)
        errs.append(relative_rmse(act, q))
    return float(np.mean(errs))


def _rmse_cell(cell: tuple) -> dict:
    """One (model, format) RMSE cell; the pool path's unit of work.

    The model comes from the per-process warm memo, so a worker computing
    several cells of one model pays the state-dict load once; the
    calibration images are a pure function of ``n_images``, so parallel
    results are identical to serial ones.
    """
    model_name, fmt_name, n_images = cell
    model, _ = pretrained(model_name, memo=True)
    images = dataset().calibration_split(n_images).images
    fmt = get_format(fmt_name)
    return {
        "weight_rmse": _weight_rmse(model, fmt),
        "activation_rmse": _activation_rmse(model, fmt, images),
    }


def run(n_images: int = 64, jobs: int = 1) -> dict:
    """Measure weight/activation RMSE for the Fig. 6 model-format grid.

    ``jobs > 1`` fans the independent (model, format) cells across the
    persistent worker pool; the grid is assembled in the same model-major
    order either way, so the artifact is identical to a serial run.
    """
    cells = [(m, f, n_images) for m in FIG6_MODELS for f in FIG6_FORMATS]
    values = run_cells(cells, _rmse_cell, jobs=jobs)
    grid: dict[str, dict[str, dict[str, float]]] = {}
    for (model_name, fmt_name, _n), value in zip(cells, values):
        grid.setdefault(model_name, {})[fmt_name] = value
    # the paper's qualitative finding
    checks = {}
    for m in FIG6_MODELS:
        fp = grid[m]["FP(8,4)"]["weight_rmse"]
        po = grid[m]["Posit(8,1)"]["weight_rmse"]
        me = grid[m]["MERSIT(8,2)"]["weight_rmse"]
        checks[m] = {"mersit_leq_fp8": me < fp, "mersit_vs_posit_ratio": me / po}
    result = {"grid": grid, "checks": checks}
    save_artifact("fig6", result)
    return result


def render(result: dict | None = None) -> str:
    """Plain-text rendering of the Fig. 6 RMSE grid."""
    result = result or run()
    headers = ["Model", "Format", "weight rel-RMSE", "activation rel-RMSE"]
    rows = []
    for m, by_fmt in result["grid"].items():
        for f, vals in by_fmt.items():
            rows.append([m, f, round(vals["weight_rmse"], 4),
                         round(vals["activation_rmse"], 4)])
    lines = ["Fig. 6 - relative RMSE of quantized tensors",
             format_table(headers, rows, floatfmt=".4f"), ""]
    for m, chk in result["checks"].items():
        lines.append(f"  {m}: MERSIT < FP(8,4): {chk['mersit_leq_fp8']} "
                     f"(paper: True); MERSIT/Posit ratio "
                     f"{chk['mersit_vs_posit_ratio']:.2f} (paper: ~1 or below)")
    return "\n".join(lines)
