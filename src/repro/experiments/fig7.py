"""Experiment fig7: area and power of the three MAC designs (paper Fig. 7).

Builds gate-level MAC units for FP(8,4), Posit(8,1) and MERSIT(8,2),
reports synthesised area and activity-based power while streaming operand
codes encoded from *actual DNN data* (weights and activations of the
ResNet50 analogue), at the paper's 100 MHz.

Absolute um^2/uW differ from the paper (cell library), the ratios are the
reproduction target: MERSIT well below Posit, comparable to FP8.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..formats import PAPER_FORMATS, get_format
from ..hardware import MacUnit, dnn_operand_stream, mac_cost
from .common import format_table, load_artifact, save_artifact

__all__ = ["PAPER_FIG7_HEADLINES", "activity_tensors", "run", "render"]

#: headline percentages stated in the paper's Section 4.3
PAPER_FIG7_HEADLINES = {
    "area_saving_vs_posit_pct": 26.6,
    "power_saving_vs_posit_pct": 22.2,
    "area_premium_vs_fp8_pct": 11.0,
}


def activity_tensors(model_name: str = "ResNet50", n_images: int = 32) -> tuple[np.ndarray, np.ndarray]:
    """(weights, activations) of a pretrained zoo model for activity sim.

    Falls back to heavy-tailed synthetic tensors when the zoo cache is
    unavailable (keeps the hardware experiment self-contained).  Only
    cache/lookup failures trigger the fallback — and they say so with a
    one-line notice; real dataset or model bugs propagate instead of
    being hidden behind the synthetic RNG.
    """
    try:
        from ..quant.ptq import quantized_layers
        from ..zoo import dataset, pretrained
        model, _ = pretrained(model_name, memo=True)
        weights = np.concatenate([layer.weight.data.ravel()
                                  for _, layer in quantized_layers(model)])
        images = dataset().calibration_split(n_images).images
        acts: list[np.ndarray] = []
        layers = [layer for _, layer in quantized_layers(model)]
        originals = [type(layer).forward for layer in layers]

        def make_hook(layer, orig):
            def hooked(x):
                acts.append(np.asarray(x.data).ravel())
                return orig(layer, x)
            return hooked

        for layer, orig in zip(layers, originals):
            layer.forward = make_hook(layer, orig)
        try:
            with no_grad():
                model(Tensor(images))
        finally:
            for layer in layers:
                del layer.forward
        activations = np.concatenate(acts)
        return weights, activations
    except (OSError, KeyError, ValueError) as exc:
        print(f"fig7: zoo unavailable ({type(exc).__name__}: {exc}); "
              f"using synthetic activity tensors", flush=True)
        rng = np.random.default_rng(7)
        weights = rng.standard_t(df=4, size=200_000) * 0.05
        activations = np.abs(rng.standard_t(df=3, size=200_000)) * 0.5
        return weights, activations


def run(stream_len: int = 512, clock_mhz: float = 100.0, refresh: bool = False) -> dict:
    """Build the three MACs and measure Fig. 7 area/power (cached)."""
    cached = load_artifact("fig7")
    if cached is not None and not refresh and cached.get("stream_len") == stream_len:
        return cached
    weights, activations = activity_tensors()
    rows = {}
    for name in PAPER_FORMATS:
        fmt = get_format(name)
        mac = MacUnit(fmt)
        w_codes, a_codes = dnn_operand_stream(fmt, weights, activations, n=stream_len)
        row = mac_cost(mac, w_codes, a_codes, clock_mhz=clock_mhz)
        rows[name] = {
            "area_total": row.area_total,
            "power_total": row.power_total,
            "area_by_group": row.area_by_group,
            "power_by_group": row.power_by_group,
            "acc_width": mac.acc_width,
            "paper_w": mac.paper_w,
            "logic_depth": row.logic_depth,
        }
    me, po, fp = rows["MERSIT(8,2)"], rows["Posit(8,1)"], rows["FP(8,4)"]
    headlines = {
        "area_saving_vs_posit_pct": 100 * (1 - me["area_total"] / po["area_total"]),
        "power_saving_vs_posit_pct": 100 * (1 - me["power_total"] / po["power_total"]),
        "area_premium_vs_fp8_pct": 100 * (me["area_total"] / fp["area_total"] - 1),
    }
    result = {"rows": rows, "headlines": headlines, "paper": PAPER_FIG7_HEADLINES,
              "stream_len": stream_len, "clock_mhz": clock_mhz}
    save_artifact("fig7", result)
    return result


def render(result: dict | None = None) -> str:
    """Plain-text rendering of the Fig. 7 bars and headline deltas."""
    result = result or run()
    headers = ["Format", "Area um^2", "Power uW", "mult", "aligner", "accum",
               "levels", "W(paper)"]
    rows = []
    for name, r in result["rows"].items():
        mult_area = sum(r["area_by_group"][g]
                        for g in ("decoder", "exp_adder", "frac_multiplier"))
        rows.append([name, round(r["area_total"], 0), round(r["power_total"], 1),
                     round(mult_area, 0), round(r["area_by_group"]["aligner"], 0),
                     round(r["area_by_group"]["accumulator"], 0),
                     r.get("logic_depth", 0), r["paper_w"]])
    lines = ["Fig. 7 - MAC area / power (measured)", format_table(headers, rows), ""]
    for key, val in result["headlines"].items():
        lines.append(f"  {key}: {val:.1f}%  (paper: {result['paper'][key]:.1f}%)")
    return "\n".join(lines)
