"""Experiment frontier: per-model accuracy vs hardware-cost Pareto frontier.

The paper's Table 2 scores whole networks under one format; this
experiment turns that grid into a per-model *frontier* using the
mixed-precision pipeline (:mod:`repro.quant.mixed`):

1. **sensitivity** — per-layer damage of every palette format
   (:func:`~repro.quant.sensitivity.layer_sensitivity` with a
   continuous proxy metric: mean squared error of the model outputs
   against FP32 on the calibration stream, calibration seed 0 so
   assignments are stable across error-bar runs).  The proxy, not the
   test metric, drives allocation: test accuracy moves in coarse
   1/eval_n steps that tie almost everywhere (so the allocator would
   always pick the cheapest format and compound the error), and using
   it would leak the test split into the assignment;
2. **uniform anchors** — the paper's hardware head-to-head trio
   (:data:`~repro.formats.PAPER_FORMATS`) evaluated uniformly; their
   hardware cost is the format's per-MAC area x power
   (:func:`~repro.quant.mixed.format_unit_cost`);
3. **allocation** — one mixed assignment per cost target (each uniform
   anchor's unit cost, plus an unconstrained best-accuracy point),
   solved by :func:`~repro.quant.mixed.allocate` over MAC-weighted
   layer costs (:func:`~repro.quant.mixed.count_macs`), plus a
   HAWQ-style ``topK`` ladder — the paper format on the K layers its
   own sweep damages most, the cheapest palette format elsewhere —
   kept only while it stays under the cheapest anchor's cost;
4. **mixed evaluation** — each assignment is calibrated, scored, then
   DFQ-bias-corrected (:func:`~repro.quant.mixed.bias_correct`) and
   scored again; the corrected score is the pipeline's headline.

The palette spans cheap-to-expensive formats (FP(8,2) costs ~0.6x the
cheapest uniform anchor), which is what lets a mixed point land left
of every uniform anchor on the cost axis; ``dominance`` then records,
per model, whether one also lands strictly *above* them all on
accuracy (on this zoo the anchors are near-lossless, so most mixed
points match rather than beat them — see EXPERIMENTS.md).  INT8 is
absent: it has no gate-level decoder, so it cannot be costed.

Runtime discipline matches table2: results live in an incrementally
updated crash-safe artifact (missing/errored cells recompute on the
next run, ``refresh=True`` recomputes everything), cells fan out over
the resilient executor (``jobs``/``cell_timeout``/``retries``), commits
happen in submission order and every derived section (allocations,
points, dominance) is recomputed deterministically from the cell grid —
so a converged artifact is byte-identical to one from a clean serial
run, even after a fault storm.  ``seeds=[0, 1, ...]`` adds calibration
error bars to the uniform/mixed scores (assignments stay pinned to
seed 0).  Hosts the ``cell`` fault point under ``frontier/...`` keys;
the allocator hosts ``mixed:allocate/MODEL``.
"""

from __future__ import annotations

import math

import numpy as np

from ..autograd import Tensor
from ..formats import PAPER_FORMATS, get_format
from ..kernels import kernel_for
from ..quant import (
    PTQConfig, allocate, bias_correct, build_problem, dequantize_model,
    format_unit_cost, layer_sensitivity, count_macs, parse_format_spec,
    quantize_model, quantized_layers, render_format_spec,
)
from ..resilience import NumericsError, error_entry, is_error_entry, run_cells
from ..resilience import faults
from ..zoo import (
    ALL_MODELS, dataset, evaluate_text, evaluate_vision, glue_task, is_cached,
    pretrained,
)
from .common import format_table, load_artifact, save_artifact

__all__ = ["MODEL_ORDER", "PALETTE", "UNIFORM_FORMATS", "run", "render"]

#: default frontier models: the pretrained GLUE set plus the cached
#: vision model (no training cost)
MODEL_ORDER = ["SST-2", "MRPC", "CoLA", "MNLI-mm", "MobileNet_v3"]

#: allocator palette: hardware-costable formats from cheap to expensive
PALETTE = ("FP(8,2)", "FP(8,3)", "FP(8,4)",
           "Posit(8,1)", "MERSIT(8,2)", "MERSIT(8,3)")

#: uniform comparison anchors: the paper's hardware head-to-head trio
UNIFORM_FORMATS = tuple(PAPER_FORMATS)

#: the unconstrained best-accuracy allocation's label
BEST_LABEL = "best"

_ARTIFACT = "frontier"


# ----------------------------------------------------------------------
# cell evaluation (runs in pool workers)
# ----------------------------------------------------------------------

def _model_env(name: str, eval_n: int, calib_n: int, seed: int):
    """(calib_batches, forward, evaluate) for one zoo model."""
    entry = ALL_MODELS[name]
    if entry.kind == "vision":
        data = dataset()
        calib = data.calibration_split(calib_n, seed)
        test = data.test_split(eval_n)
        forward = lambda m, b: m(Tensor(b[0]))
        evaluate = lambda m: float(evaluate_vision(m, test))
    else:
        task = glue_task(entry.task)
        calib = task.calibration_split(calib_n, seed)
        test = task.test_split(eval_n)
        forward = lambda m, b: m(b[0], b[1])
        evaluate = lambda m: float(evaluate_text(m, test, entry.metric))
    return calib, forward, evaluate


def _sens_cell(name: str, fmt_name: str, eval_n: int, calib_n: int) -> dict:
    """One palette format's per-layer sensitivity sweep (seed 0).

    ``drops`` is the continuous proxy (per-layer output MSE vs FP32 on
    the calibration stream — negated into :func:`layer_sensitivity`'s
    score convention so drop == MSE >= 0); ``baseline`` is the model's
    FP32 *test* metric, carried for display only.
    """
    from ..autograd import no_grad

    model, _ = pretrained(name, memo=True)
    calib, forward, evaluate = _model_env(name, eval_n, calib_n, seed=0)
    batches = list(calib.batches(50))
    with no_grad():
        fp_out = [np.asarray(forward(model, b).data, dtype=np.float64)
                  for b in batches]

    def proxy(m) -> float:
        err, count = 0.0, 0
        with no_grad():
            for b, ref in zip(batches, fp_out):
                out = np.asarray(forward(m, b).data, dtype=np.float64)
                err += float(((out - ref) ** 2).sum())
                count += ref.size
        return -err / count

    try:
        results = layer_sensitivity(model, PTQConfig(weight_format=fmt_name),
                                    batches, proxy, forward=forward)
        baseline = evaluate(model)
    finally:
        dequantize_model(model)
    return {"baseline": float(baseline),
            "drops": {r.layer: r.drop for r in results}}


def _uniform_cell(name: str, fmt_name: str, eval_n: int, calib_n: int,
                  seed: int) -> float:
    """One uniform anchor's accuracy (the table2 recipe)."""
    model, _ = pretrained(name, memo=True)
    calib, forward, evaluate = _model_env(name, eval_n, calib_n, seed)
    try:
        quantize_model(model, PTQConfig(weight_format=fmt_name),
                       calib.batches(50), forward=forward)
        return evaluate(model)
    finally:
        dequantize_model(model)


def _mixed_cell(name: str, spec: str, eval_n: int, calib_n: int,
                seed: int) -> dict:
    """One mixed assignment's accuracy, without and with bias correction.

    The warm-memo model is shared across cells in a worker process, so
    the bias corrections applied here are snapshot-restored afterwards.
    """
    default_name, layer_formats = parse_format_spec(spec)
    model, _ = pretrained(name, memo=True)
    calib, forward, evaluate = _model_env(name, eval_n, calib_n, seed)
    saved = {ln: layer.bias.data.copy()
             for ln, layer in quantized_layers(model) if layer.bias is not None}
    try:
        quantize_model(model, PTQConfig(weight_format=default_name,
                                        layer_formats=layer_formats or None),
                       calib.batches(50), forward=forward)
        acc = evaluate(model)
        bias_correct(model, calib.batches(50), forward=forward)
        acc_bc = evaluate(model)
        return {"spec": spec, "acc": acc, "acc_bc": acc_bc}
    finally:
        for ln, layer in quantized_layers(model):
            if ln in saved:
                layer.bias.data = saved[ln]
        dequantize_model(model)


def _eval_cell_task(cell: tuple):
    """Pool-friendly dispatcher over the three frontier cell kinds.

    Hosts the ``cell`` fault point under ``frontier/MODEL/KIND/WHICH``
    keys (``/sSEED`` appended on the seeds axis) and the final numeric
    guard: non-finite scores raise :class:`NumericsError` instead of
    being pinned into the artifact.
    """
    kind, name, which = cell[0], cell[1], cell[2]
    seed = cell[-1] if kind != "sens" else None
    key = f"frontier/{name}/{kind}/{which}" + (
        f"/s{seed}" if seed not in (None, 0) else "")
    nan = faults.maybe_fault("cell", key) == "nan"
    if kind == "sens":
        _, _, _, eval_n, calib_n = cell
        value = _sens_cell(name, which, eval_n, calib_n)
        scores = [value["baseline"], *value["drops"].values()]
    elif kind == "uniform":
        _, _, _, eval_n, calib_n, seed = cell
        value = _uniform_cell(name, which, eval_n, calib_n, seed or 0)
        scores = [value]
    else:
        _, _, _, spec, eval_n, calib_n, seed = cell
        value = _mixed_cell(name, spec, eval_n, calib_n, seed or 0)
        scores = [value["acc"], value["acc_bc"]]
    if nan:
        scores = [float("nan")]
    if not all(math.isfinite(s) for s in scores):
        raise NumericsError(f"frontier cell {key} produced a non-finite score",
                            stat="score")
    return value


def _warm_worker(models: tuple, formats: tuple) -> None:
    """Per-process warm-up: zoo memo, data splits, kernel LUTs."""
    for name in models:
        entry = ALL_MODELS.get(name)
        if entry is None:
            continue
        if entry.kind == "vision":
            dataset()
        else:
            glue_task(entry.task)
        if is_cached(name):
            pretrained(name, memo=True)
    for fmt_name in formats:
        kernel_for(get_format(fmt_name))


# ----------------------------------------------------------------------
# derived sections (computed in the parent, deterministic)
# ----------------------------------------------------------------------

def _model_macs(name: str, calib_n: int) -> dict[str, int]:
    """Per-layer MAC counts from one calibration batch (deterministic)."""
    model, _ = pretrained(name, memo=True)
    calib, forward, _ = _model_env(name, eval_n=1, calib_n=min(calib_n, 8),
                                   seed=0)
    batch = next(iter(calib.batches(8)))
    return count_macs(model, batch, forward=forward)


def _unit_costs() -> dict[str, float]:
    """Scalar area x power unit cost per palette format (memoized)."""
    return {f: format_unit_cost(f)["cost"] for f in PALETTE}


def _is_seed_cell(value) -> bool:
    return isinstance(value, dict) and "seeds" in value


def _covered(section: dict, which: str, seed: int | None,
             spec: str | None = None) -> bool:
    """Does ``section[which]`` already hold a usable value for ``seed``?

    Mixed cells additionally pin the assignment: a cached cell whose
    ``spec`` no longer matches the current allocation counts as missing
    (a repaired sensitivity sweep may have moved the assignment).
    """
    value = section.get(which)
    if value is None or is_error_entry(value):
        return False
    if spec is not None and isinstance(value, dict) \
            and value.get("spec") != spec:
        return False
    if _is_seed_cell(value):
        entry = value["seeds"].get(str(0 if seed is None else seed))
        return entry is not None and not is_error_entry(entry)
    return seed is None or seed == 0


def _seed_values(value, pick=None) -> list[float]:
    """Usable per-seed scores of a cell (scalar or seeds-axis)."""
    pick = pick or (lambda v: v)
    if _is_seed_cell(value):
        return [pick(v) for v in value["seeds"].values()
                if not is_error_entry(v)]
    return [pick(value)]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def _allocations(state: dict, name: str, macs: dict[str, int],
                 unit_costs: dict[str, float]) -> dict:
    """The per-cost-target allocations for one model (sens must be clean).

    Recomputed from the seed-0 sensitivity grid on every run — cheap,
    deterministic, and self-repairing: once the underlying cells
    converge, so do the allocations.  An allocator fault (the
    ``mixed:allocate`` point) lands as a structured error entry.
    """
    sens = state[name]["sens"]
    drops = {f: sens[f]["drops"] for f in PALETTE}
    layers = sorted(drops[PALETTE[0]])
    problem = build_problem(drops, macs, unit_costs, layers=layers)
    targets = [(BEST_LABEL, math.inf)]
    targets += [(f"le:{f}", unit_costs[f]) for f in UNIFORM_FORMATS]
    out = {}
    for label, budget in targets:
        try:
            alloc = allocate(problem, budget=budget, key=name)
        except NumericsError as exc:
            out[label] = error_entry("NumericsError", str(exc), attempts=1)
            continue
        out[label] = {
            "budget": None if math.isinf(budget) else budget,
            "assignment": dict(sorted(alloc.assignment.items())),
            "spec": alloc.spec(PALETTE[0]),
            "cost": alloc.cost,
            "predicted_drop": alloc.predicted_drop,
            "method": alloc.method,
        }
    if any(is_error_entry(v) for v in out.values()):
        return out  # topk shares the knapsack's (possibly poisoned) table
    # HAWQ-style ladder: the paper format on the k layers its own sweep
    # damages most, the cheapest palette format elsewhere, while the
    # total stays under the cheapest uniform anchor (frontier-eligible)
    base, upgrade = PALETTE[0], UNIFORM_FORMATS[-1]
    cap = min(unit_costs[f] for f in UNIFORM_FORMATS)
    by_damage = sorted(layers, key=lambda l: (-drops[upgrade][l], l))
    for k in (1, 2, 4, 8):
        if k > len(by_damage):
            break
        assignment = {l: upgrade if l in by_damage[:k] else base
                      for l in layers}
        cost = sum(problem.cost[l][assignment[l]] for l in layers)
        if cost > cap:
            break
        out[f"top{k}"] = {
            "budget": None,
            "assignment": dict(sorted(assignment.items())),
            "spec": render_format_spec(base, assignment),
            "cost": cost,
            "predicted_drop": sum(problem.drop[l][assignment[l]]
                                  for l in layers),
            "method": "topk",
        }
    return out


def _points(model_state: dict, unit_costs: dict[str, float]) -> list[dict]:
    """The (cost, accuracy) points of one model, uniform + mixed."""
    points = []
    for f in UNIFORM_FORMATS:
        cell = model_state["uniform"].get(f)
        if cell is None or is_error_entry(cell):
            continue
        accs = _seed_values(cell)
        if accs:
            points.append({"kind": "uniform", "label": f,
                           "cost": unit_costs[f], "acc": _mean(accs)})
    emitted: set[str] = set()
    for label, alloc in model_state.get("alloc", {}).items():
        if is_error_entry(alloc):
            continue
        cell = model_state["mixed"].get(label)
        if cell is None or is_error_entry(cell) \
                or cell.get("spec") != alloc["spec"]:
            continue
        if alloc["spec"] in emitted:  # cost targets often coincide
            continue
        emitted.add(alloc["spec"])
        raw = cell["seeds"].values() if _is_seed_cell(cell) else [cell]
        usable = [v for v in raw if not is_error_entry(v)]
        if usable:
            points.append({
                "kind": "mixed", "label": label, "cost": alloc["cost"],
                "acc": _mean([v["acc_bc"] for v in usable]),
                "acc_raw": _mean([v["acc"] for v in usable]),
                "spec": alloc["spec"]})
    return points


def _pareto(points: list[dict]) -> list[dict]:
    """The non-dominated subset: no other point is >= on both axes."""
    out = []
    for p in points:
        dominated = any(
            q is not p and q["cost"] <= p["cost"] and q["acc"] >= p["acc"]
            and (q["cost"] < p["cost"] or q["acc"] > p["acc"])
            for q in points)
        if not dominated:
            out.append(p)
    return sorted(out, key=lambda p: (p["cost"], -p["acc"]))


def _dominance(points: list[dict]) -> dict | None:
    """The mixed point (if any) strictly dominating every uniform anchor."""
    uniform = [p for p in points if p["kind"] == "uniform"]
    mixed = [p for p in points if p["kind"] == "mixed"]
    if not uniform or not mixed:
        return None
    acc_bar = max(p["acc"] for p in uniform)
    cost_bar = min(p["cost"] for p in uniform)
    winners = [p for p in mixed if p["acc"] > acc_bar and p["cost"] <= cost_bar]
    if not winners:
        return {"dominant": None}
    best = max(winners, key=lambda p: (p["acc"], -p["cost"]))
    return {"dominant": best["label"], "acc": best["acc"],
            "cost": best["cost"],
            "uniform_best_acc": acc_bar, "uniform_min_cost": cost_bar}


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------

def run(models: list[str] | None = None, eval_n: int = 400, calib_n: int = 100,
        refresh: bool = False, verbose: bool = False, jobs: int = 1,
        cell_timeout: float | None = None, retries: int = 1,
        backoff: float = 0.5, seeds: list[int] | None = None) -> dict:
    """Fill (incrementally) the frontier artifact and return it.

    Two resilient-executor phases: the sensitivity sweeps and uniform
    anchors first; then — for every model whose sweeps are clean — the
    allocator runs in the parent and the resulting mixed assignments
    are evaluated.  Cells that crash, hang past ``cell_timeout`` or
    fail numerically become structured error entries and are
    re-attempted (with the allocations re-derived) on the next
    invocation, so the artifact converges to the clean-serial bytes.
    ``seeds`` adds calibration error bars to the uniform/mixed scores;
    sensitivity (and therefore the assignment) stays pinned to seed 0.
    """
    models = list(models or MODEL_ORDER)
    art = (load_artifact(_ARTIFACT) or {}) if not refresh else {}
    state = art.get("models", {})
    superseded = art.get("superseded")
    # the trailing tag names the sensitivity recipe; changing how drops
    # are measured must invalidate cached sweeps like a size change does
    meta_key = f"{eval_n}/{calib_n}/mse-sens"
    if art.get("meta_key") not in (None, meta_key):
        print(f"frontier: meta_key changed {art['meta_key']!r} -> {meta_key!r}; "
              f"discarding cached cells, previous state kept under the "
              f"artifact's 'superseded' key", flush=True)
        superseded = {"meta_key": art["meta_key"], "models": state}
        state = {}
    unit_costs = _unit_costs()
    for name in models:
        section = state.setdefault(
            name, {"sens": {}, "uniform": {}, "alloc": {}, "mixed": {}})
        if seeds is not None:
            for f, value in list(section["uniform"].items()):
                if value is not None and not isinstance(value, dict):
                    section["uniform"][f] = {"seeds": {"0": value}}
            for label, value in list(section["mixed"].items()):
                if isinstance(value, dict) and "acc" in value:
                    section["mixed"][label] = {
                        "spec": value.get("spec"),
                        "seeds": {"0": {k: v for k, v in value.items()
                                        if k != "spec"}}}

    def ordered() -> list[str]:
        prio = [m for m in MODEL_ORDER if m in state]
        return prio + sorted(m for m in state if m not in MODEL_ORDER)

    def artifact() -> dict:
        out_models = {}
        for name in ordered():
            s = state[name]
            sens_clean = all(not is_error_entry(s["sens"].get(f))
                             and s["sens"].get(f) is not None for f in PALETTE)
            fp32 = s["sens"][PALETTE[0]]["baseline"] if sens_clean else None
            points = _points(s, unit_costs)
            out_models[name] = {
                "fp32": fp32,
                "macs": s.get("macs"),
                "sens": {f: s["sens"][f] for f in sorted(s["sens"])},
                "uniform": {f: s["uniform"][f] for f in sorted(s["uniform"])},
                "alloc": {k: s["alloc"][k] for k in sorted(s["alloc"])},
                "mixed": {k: s["mixed"][k] for k in sorted(s["mixed"])},
                "points": points,
                "pareto": _pareto(points),
                "dominance": _dominance(points),
            }
        out = {"meta_key": meta_key, "palette": list(PALETTE),
               "uniform_formats": list(UNIFORM_FORMATS),
               "unit_costs": {f: unit_costs[f] for f in PALETTE},
               "models": out_models}
        if superseded is not None:
            out["superseded"] = superseded
        return out

    def fill(missing: list[tuple], tasks: list[tuple]) -> None:
        def commit(index: int, value) -> None:
            kind, name, which, seed = missing[index]
            section = state[name][kind]
            if seed is None and not _is_seed_cell(section.get(which)):
                section[which] = value
            else:
                cell = section.get(which)
                if not _is_seed_cell(cell):
                    cell = section[which] = {"seeds": {}}
                if kind == "mixed" and not is_error_entry(value):
                    cell["spec"] = value["spec"]
                    value = {k: v for k, v in value.items() if k != "spec"}
                elif kind == "mixed":
                    cell.setdefault("spec", state[name]["alloc"]
                                    .get(which, {}).get("spec"))
                cell["seeds"][str(seed or 0)] = value
            if verbose:  # pragma: no cover - logging
                shown = (f"ERR({value['error']['kind']})"
                         if is_error_entry(value) else "ok")
                print(f"  frontier {name} {kind} {which}"
                      f"{'' if seed is None else f' s{seed}'}: {shown}",
                      flush=True)
            save_artifact(_ARTIFACT, artifact())

        warm_models = tuple(dict.fromkeys(t[1] for t in tasks))
        warm_formats = tuple(dict.fromkeys(PALETTE + UNIFORM_FORMATS))
        run_cells(tasks, _eval_cell_task, jobs=jobs, timeout=cell_timeout,
                  retries=retries, backoff=backoff, commit=commit,
                  initializer=_warm_worker,
                  initargs=(warm_models, warm_formats),
                  preload=lambda: _warm_worker(warm_models, warm_formats))

    # -- phase 1: sensitivity sweeps + uniform anchors -------------------
    missing: list[tuple] = []
    tasks: list[tuple] = []
    point_seeds = seeds if seeds is not None else [None]
    for name in models:
        section = state[name]
        for f in PALETTE:
            if not _covered(section["sens"], f, None):
                missing.append(("sens", name, f, None))
                tasks.append(("sens", name, f, eval_n, calib_n))
        for f in UNIFORM_FORMATS:
            for s in point_seeds:
                if not _covered(section["uniform"], f, s):
                    missing.append(("uniform", name, f, s))
                    tasks.append(("uniform", name, f, eval_n, calib_n, s or 0))
    if missing:
        fill(missing, tasks)

    # -- allocation (parent, deterministic) + phase 2: mixed cells -------
    missing, tasks = [], []
    for name in models:
        section = state[name]
        if any(section["sens"].get(f) is None
               or is_error_entry(section["sens"].get(f)) for f in PALETTE):
            section["alloc"] = {}
            continue
        if section.get("macs") is None:
            section["macs"] = {k: int(v) for k, v
                               in sorted(_model_macs(name, calib_n).items())}
        section["alloc"] = _allocations(state, name, section["macs"],
                                        unit_costs)
        for label, alloc in section["alloc"].items():
            if is_error_entry(alloc):
                continue
            for s in point_seeds:
                if not _covered(section["mixed"], label, s,
                                spec=alloc["spec"]):
                    missing.append(("mixed", name, label, s))
                    tasks.append(("mixed", name, label, alloc["spec"],
                                  eval_n, calib_n, s or 0))
    if missing:
        fill(missing, tasks)

    result = artifact()
    save_artifact(_ARTIFACT, result)
    return result


def render(result: dict | None = None) -> str:
    """Plain-text rendering of the frontier artifact.

    With no artifact on disk this points at the run command instead of
    silently launching the (expensive) fill.  Per model: every
    (cost, accuracy) point with its Pareto membership, then the
    dominance verdict — which mixed assignment (if any) strictly beats
    every uniform anchor on both axes.
    """
    result = result or load_artifact(_ARTIFACT)
    if result is None:
        return ("Frontier - no artifact found; run "
                "`python -m repro.cli experiments frontier` (optionally "
                "--jobs N) to fill it")
    lines = ["Accuracy vs hardware cost (cost: MAC-weighted mean area*power, "
             "10^-3 um^2*uW per MAC)"]
    for name, s in result["models"].items():
        pareto = {(p["kind"], p["label"]) for p in s.get("pareto", [])}
        rows = []
        for p in s.get("points", []):
            tag = "*" if (p["kind"], p["label"]) in pareto else ""
            delta = ("" if s.get("fp32") is None
                     else f"{p['acc'] - s['fp32']:+.2f}")
            rows.append([f"{p['kind']}:{p['label']}{tag}",
                         p["cost"], p["acc"], delta])
        lines.append(f"\n{name} (FP32 {s['fp32']:.2f})" if s.get("fp32")
                     else f"\n{name}")
        lines.append(format_table(
            ["point (* = Pareto)", "cost", "accuracy", "vs FP32"], rows))
        dom = s.get("dominance")
        if dom is None:
            lines.append("dominance: (pending — uniform or mixed points "
                         "missing)")
        elif dom.get("dominant") is None:
            lines.append("dominance: no mixed point strictly beats every "
                         "uniform anchor")
        else:
            lines.append(
                f"dominance: mixed:{dom['dominant']} "
                f"(acc {dom['acc']:.2f} @ cost {dom['cost']:.2f}) strictly "
                f"dominates every uniform anchor (best uniform acc "
                f"{dom['uniform_best_acc']:.2f}, cheapest uniform cost "
                f"{dom['uniform_min_cost']:.2f})")
    return "\n".join(lines)
