"""Run every experiment and print the paper artefacts.

Usage::

    python -m repro.experiments.runner [--jobs N] \
        [all | table1 fig2 fig4 fig6 fig7 table3 headline table2 \
         engine_delta frontier]

Without arguments runs everything except the expensive grids — the full
Table 2 fill, the fakequant-vs-true-quantized ``engine_delta`` table
and the mixed-precision ``frontier`` (run those explicitly or as part
of ``all``).  ``--jobs N`` parallelises every grid whose cells are
independent — the Table 2 and frontier fills plus the fig4/fig6/table3
sweeps — on the persistent warm-worker pool (table1 is a single
deterministic table and stays serial).  ``--seeds K`` adds a K-seed
calibration axis to Table 2 and the frontier points (error bars in the
rendered tables; seed 0 reproduces the single-seed fill byte-for-byte).

The Table 2 and frontier fills run under the resilient executor:
``--cell-timeout`` bounds each cell (hung-worker detection, pool path
only) and ``--retries`` bounds the retry budget for transiently failing
cells; cells that exhaust it are recorded as structured errors (``ERR``
in the rendered table) while the rest of the grid completes.  The expensive
grids are computed *here* — their ``render()`` alone never launches a
run (it points at this command instead).
"""

from __future__ import annotations

import argparse
import sys

from . import (
    engine_delta, fig2, fig4, fig6, fig7, frontier, headline, table1, table2,
    table3,
)

EXPERIMENTS = {
    "table1": table1,
    "fig2": fig2,
    "fig4": fig4,
    "fig6": fig6,
    "fig7": fig7,
    "table3": table3,
    "headline": headline,
    "table2": table2,
    "engine_delta": engine_delta,
    "frontier": frontier,
}

DEFAULT = ["table1", "fig2", "fig4", "fig6", "fig7", "table3", "headline"]

#: the ``all`` pseudo-experiment: the fast set plus the expensive grids
ALL = DEFAULT + ["table2", "engine_delta", "frontier"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="run experiment drivers and print their artefacts")
    parser.add_argument("names", nargs="*", default=[],
                        help="experiment names, or 'all' (default: fast set)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the independent-cell "
                             "grids: table2, frontier, fig4, fig6, table3 "
                             "(default: serial)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="calibration seeds per table2/frontier cell "
                             "(>1 adds the error-bar axis; default: 1, the "
                             "legacy single-seed grid)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        dest="cell_timeout",
                        help="per-cell deadline in seconds for the table2/"
                             "frontier pool (hung-worker detection; "
                             "default: none)")
    parser.add_argument("--retries", type=int, default=1,
                        help="retry budget for transiently failing table2/"
                             "frontier cells (default: 1)")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    names = args.names or DEFAULT
    for name in names:
        if name != "all" and name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
            return 2
    if "all" in names:
        names = ALL
    seeds = list(range(args.seeds)) if args.seeds > 1 else None
    for name in names:
        mod = EXPERIMENTS[name]
        print(f"\n===== {name} =====")
        if name in ("table2", "frontier"):
            # the expensive grids are computed here explicitly — render()
            # alone never launches them
            print(mod.render(mod.run(jobs=args.jobs,
                                     cell_timeout=args.cell_timeout,
                                     retries=args.retries,
                                     seeds=seeds)))
        elif name == "engine_delta":
            print(engine_delta.render(engine_delta.run()))
        elif name in ("fig4", "fig6", "table3") and args.jobs > 1:
            # independent-cell sweeps ride the same worker pool
            print(mod.render(mod.run(jobs=args.jobs)))
        else:
            print(mod.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
