"""Run every experiment and print the paper artefacts.

Usage::

    python -m repro.experiments.runner [table1 fig2 fig4 fig6 fig7 table3 headline table2]

Without arguments runs everything except the full Table 2 grid (which
takes the longest; run it explicitly or via its benchmark).
"""

from __future__ import annotations

import sys

from . import fig2, fig4, fig6, fig7, headline, table1, table2, table3

EXPERIMENTS = {
    "table1": table1,
    "fig2": fig2,
    "fig4": fig4,
    "fig6": fig6,
    "fig7": fig7,
    "table3": table3,
    "headline": headline,
    "table2": table2,
}

DEFAULT = ["table1", "fig2", "fig4", "fig6", "fig7", "table3", "headline"]


def main(argv: list[str] | None = None) -> int:
    names = (argv if argv is not None else sys.argv[1:]) or DEFAULT
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
            return 2
        mod = EXPERIMENTS[name]
        print(f"\n===== {name} =====")
        print(mod.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
