"""Run every experiment and print the paper artefacts.

Usage::

    python -m repro.experiments.runner [--jobs N] \
        [all | table1 fig2 fig4 fig6 fig7 table3 headline table2 engine_delta]

Without arguments runs everything except the two expensive grids — the
full Table 2 fill and the fakequant-vs-true-quantized ``engine_delta``
table (run those explicitly or as part of ``all``).  ``--jobs N`` parallelises the Table 2 grid fill across N
worker processes (the other experiments are cheap and stay serial).
"""

from __future__ import annotations

import argparse
import sys

from . import engine_delta, fig2, fig4, fig6, fig7, headline, table1, table2, table3

EXPERIMENTS = {
    "table1": table1,
    "fig2": fig2,
    "fig4": fig4,
    "fig6": fig6,
    "fig7": fig7,
    "table3": table3,
    "headline": headline,
    "table2": table2,
    "engine_delta": engine_delta,
}

DEFAULT = ["table1", "fig2", "fig4", "fig6", "fig7", "table3", "headline"]

#: the ``all`` pseudo-experiment: the fast set plus the expensive grids
ALL = DEFAULT + ["table2", "engine_delta"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="run experiment drivers and print their artefacts")
    parser.add_argument("names", nargs="*", default=[],
                        help="experiment names, or 'all' (default: fast set)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the table2 grid (default: serial)")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    names = args.names or DEFAULT
    for name in names:
        if name != "all" and name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
            return 2
    if "all" in names:
        names = ALL
    for name in names:
        mod = EXPERIMENTS[name]
        print(f"\n===== {name} =====")
        if name == "table2" and args.jobs > 1:
            # fill missing grid cells in parallel, then render the result
            print(table2.render(table2.run(jobs=args.jobs)))
        else:
            print(mod.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
