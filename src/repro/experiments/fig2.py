"""Experiment fig2: the MAC-width table embedded in the paper's Fig. 2.

Dynamic range, exponent-bus width P, max fraction width M (with hidden
bit), and the Kulisch product width W for FP(8,4), Posit(8,1) and
MERSIT(8,2).
"""

from __future__ import annotations

from ..formats import get_format
from ..formats.analysis import exponent_field_width, kulisch_product_width, summarize
from .common import format_table, save_artifact

__all__ = ["PAPER_FIG2", "run", "render"]

#: the paper's Fig. 2 table: format -> (range_lo, range_hi, P, M, W)
PAPER_FIG2 = {
    "FP(8,4)": (-9, 7, 5, 4, 33),
    "Posit(8,1)": (-12, 10, 5, 5, 45),
    "MERSIT(8,2)": (-9, 8, 5, 5, 35),
}


def run() -> dict:
    """Measure the Fig. 2 widths and diff them against the paper."""
    rows = {}
    for name, paper in PAPER_FIG2.items():
        fmt = get_format(name)
        dr = fmt.dynamic_range
        got = (dr.min_log2, dr.max_log2, exponent_field_width(fmt),
               summarize(fmt).significand_bits, kulisch_product_width(fmt))
        rows[name] = {"measured": list(got), "paper": list(paper),
                      "matches": got == paper}
    result = {"rows": rows, "all_match": all(r["matches"] for r in rows.values())}
    save_artifact("fig2", result)
    return result


def render(result: dict | None = None) -> str:
    """Plain-text rendering of the Fig. 2 comparison."""
    result = result or run()
    headers = ["Format", "Dynamic Range", "P", "M", "W", "paper W", "match"]
    rows = []
    for name, r in result["rows"].items():
        lo, hi, p, m, w = r["measured"]
        rows.append([name, f"2^{lo} ~ 2^{hi}", p, m, w, r["paper"][4],
                     "yes" if r["matches"] else "NO"])
    status = "MATCHES PAPER" if result["all_match"] else "MISMATCH"
    return f"Fig. 2 table - MAC widths [{status}]\n" + format_table(headers, rows)
