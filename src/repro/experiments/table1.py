"""Experiment table1: regenerate the paper's Table 1 (MERSIT(8,2) decode).

The table is generated from the format implementation and compared against
the hardcoded rows of the paper, so this experiment doubles as a bit-exact
reproduction check.
"""

from __future__ import annotations

from ..formats import MERSIT8_2
from .common import format_table, save_artifact

__all__ = ["PAPER_TABLE_1", "run", "render"]

#: The paper's Table 1 rows: (pattern, k, exp, (2^es-1)k + exp, fraction bits).
PAPER_TABLE_1 = [
    ("0111111", None, None, "zero", 0),
    ("0111100", -3, 0, -9, 0), ("0111101", -3, 1, -8, 0), ("0111110", -3, 2, -7, 0),
    ("01100xx", -2, 0, -6, 2), ("01101xx", -2, 1, -5, 2), ("01110xx", -2, 2, -4, 2),
    ("000xxxx", -1, 0, -3, 4), ("001xxxx", -1, 1, -2, 4), ("010xxxx", -1, 2, -1, 4),
    ("100xxxx", 0, 0, 0, 4), ("101xxxx", 0, 1, 1, 4), ("110xxxx", 0, 2, 2, 4),
    ("11100xx", 1, 0, 3, 2), ("11101xx", 1, 1, 4, 2), ("11110xx", 1, 2, 5, 2),
    ("1111100", 2, 0, 6, 0), ("1111101", 2, 1, 7, 0), ("1111110", 2, 2, 8, 0),
    ("1111111", None, None, "inf", 0),
]


def run() -> dict:
    """Generate the table and diff it against the paper row by row."""
    rows = MERSIT8_2.decode_table()
    generated = [(r["pattern"], r["k"], r["exp"], r["eff_exp"], r["fraction_bits"])
                 for r in rows]
    paper = [tuple(r) for r in PAPER_TABLE_1]
    mismatches = [
        {"generated": list(g), "paper": list(p)}
        for g, p in zip(generated, paper) if g != p
    ]
    result = {
        "rows": [list(r) for r in generated],
        "row_count": len(generated),
        "matches_paper": not mismatches and len(generated) == len(paper),
        "mismatches": mismatches,
    }
    save_artifact("table1", result)
    return result


def render(result: dict | None = None) -> str:
    """Plain-text rendering of the regenerated Table 1."""
    result = result or run()
    headers = ["b6..b0", "k", "exp", "(2^es-1)k+exp", "frac bits"]
    rows = [[p, "" if k is None else k, "" if e is None else e, eff, fb]
            for p, k, e, eff, fb in (tuple(r) for r in result["rows"])]
    status = "MATCHES PAPER" if result["matches_paper"] else "MISMATCH vs PAPER"
    return (f"Table 1 - MERSIT(8,2) representation [{status}]\n"
            + format_table(headers, rows))
