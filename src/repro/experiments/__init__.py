"""Experiment drivers, one per paper table/figure (see DESIGN.md index)."""

from . import (
    common, engine_delta, fig2, fig4, fig6, fig7, headline, table1, table2,
    table3,
)

__all__ = ["common", "table1", "fig2", "fig4", "table2", "fig6", "fig7",
           "table3", "headline", "engine_delta"]
