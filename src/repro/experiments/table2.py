"""Experiment table2: the PTQ accuracy grid (paper Table 2).

Every 8-bit format column against every model row (eight vision models,
four GLUE tasks), with the paper's calibration recipe: per-channel weight
maxima, per-layer activation maxima from a small calibration stream, no
advanced PTQ.

Results are cached incrementally in the artifact JSON (grid cells are
expensive), so repeated invocations only compute missing cells; pass
``refresh=True`` to recompute.  Cells are independent, so ``jobs > 1``
fans the missing cells across the persistent warm-worker fabric
(:mod:`repro.resilience.pool`): workers survive across retry waves and
``run`` calls, each worker is primed once with the zoo models, the data
splits and the kernel LUTs (:func:`_warm_worker`; on fork platforms the
parent pre-warms before the first fork so children share the state
copy-on-write), and cells go to whichever worker is idle.  Results are
still committed in submission order, so the artifact is bit-identical
to a serial run.

``run(seeds=[0, 1, 2])`` adds a calibration-seed axis: every non-FP32
cell is evaluated once per seed (seed 0 is byte-identical to the legacy
single-seed stream) and stored as ``{"seeds": {"0": ..., "1": ...}}``;
:func:`render` then shows ``mean±std`` per cell plus a per-format
spread summary — the error bars the paper's single numbers lack.

The fill runs on the resilient executor
(:func:`repro.resilience.run_cells`): a cell that crashes or hangs is
retried with backoff and, when it exhausts its retries — or fails
deterministically with a :class:`~repro.resilience.NumericsError` — is
recorded as a structured ``{"error": ...}`` entry (rendered ``ERR``)
while the rest of the grid completes.  A later run re-attempts only
errored/missing cells, so a converged artifact is byte-identical to one
from a clean serial run.
"""

from __future__ import annotations

import math

from ..autograd import Tensor
from ..formats import TABLE2_FORMATS, get_format
from ..kernels import kernel_for
from ..quant import PTQConfig, dequantize_model, quantize_model
from ..resilience import NumericsError, is_error_entry, run_cells
from ..resilience import faults
from ..zoo import (
    ALL_MODELS, dataset, evaluate_text, evaluate_vision, glue_task, is_cached,
    pretrained,
)
from .common import format_table, load_artifact, save_artifact

__all__ = ["PAPER_TABLE2", "MODEL_ORDER", "run", "render"]

MODEL_ORDER = [
    "VGG16", "ResNet18", "ResNet50", "ResNet101",
    "MobileNet_v2", "MobileNet_v3", "EfficientNet_b0", "EfficientNet_v2",
    "CoLA", "MNLI-mm", "MRPC", "SST-2",
]

#: the paper's Table 2 (FP32 column + the shared format columns)
PAPER_TABLE2 = {
    "VGG16":           {"FP32": 73.38, "INT8": 73.27, "FP(8,2)": 72.38, "FP(8,3)": 73.33, "FP(8,4)": 73.25, "FP(8,5)": 72.80, "Posit(8,0)": 73.29, "Posit(8,1)": 73.37, "Posit(8,2)": 73.35, "Posit(8,3)": 72.86, "MERSIT(8,2)": 73.33, "MERSIT(8,3)": 73.31},
    "ResNet18":        {"FP32": 69.76, "INT8": 69.60, "FP(8,2)": 69.07, "FP(8,3)": 69.71, "FP(8,4)": 69.52, "FP(8,5)": 68.88, "Posit(8,0)": 69.66, "Posit(8,1)": 69.67, "Posit(8,2)": 69.46, "Posit(8,3)": 68.89, "MERSIT(8,2)": 69.70, "MERSIT(8,3)": 69.49},
    "ResNet50":        {"FP32": 80.84, "INT8": 80.69, "FP(8,2)": 79.86, "FP(8,3)": 80.71, "FP(8,4)": 79.90, "FP(8,5)": 77.67, "Posit(8,0)": 80.60, "Posit(8,1)": 80.69, "Posit(8,2)": 79.96, "Posit(8,3)": 77.87, "MERSIT(8,2)": 80.77, "MERSIT(8,3)": 79.93},
    "ResNet101":       {"FP32": 81.89, "INT8": 81.71, "FP(8,2)": 81.23, "FP(8,3)": 81.68, "FP(8,4)": 81.31, "FP(8,5)": 80.48, "Posit(8,0)": 81.62, "Posit(8,1)": 81.75, "Posit(8,2)": 81.38, "Posit(8,3)": 80.47, "MERSIT(8,2)": 81.67, "MERSIT(8,3)": 81.32},
    "MobileNet_v2":    {"FP32": 72.15, "INT8": 71.79, "FP(8,2)": 70.73, "FP(8,3)": 70.78, "FP(8,4)": 66.30, "FP(8,5)": 41.33, "Posit(8,0)": 71.52, "Posit(8,1)": 70.92, "Posit(8,2)": 66.35, "Posit(8,3)": 41.29, "MERSIT(8,2)": 71.12, "MERSIT(8,3)": 66.32},
    "MobileNet_v3":    {"FP32": 75.26, "INT8": 70.55, "FP(8,2)": 0.15, "FP(8,3)": 73.84, "FP(8,4)": 72.72, "FP(8,5)": 50.38, "Posit(8,0)": 47.74, "Posit(8,1)": 74.43, "Posit(8,2)": 72.68, "Posit(8,3)": 50.34, "MERSIT(8,2)": 74.53, "MERSIT(8,3)": 72.63},
    "EfficientNet_b0": {"FP32": 77.68, "INT8": 50.25, "FP(8,2)": 0.02, "FP(8,3)": 72.20, "FP(8,4)": 75.56, "FP(8,5)": 63.13, "Posit(8,0)": 0.12, "Posit(8,1)": 76.89, "Posit(8,2)": 75.51, "Posit(8,3)": 63.13, "MERSIT(8,2)": 76.82, "MERSIT(8,3)": 75.54},
    "EfficientNet_v2": {"FP32": 84.23, "INT8": 25.30, "FP(8,2)": 0.02, "FP(8,3)": 82.36, "FP(8,4)": 83.87, "FP(8,5)": 82.48, "Posit(8,0)": 0.02, "Posit(8,1)": 84.24, "Posit(8,2)": 83.82, "Posit(8,3)": 82.33, "MERSIT(8,2)": 84.12, "MERSIT(8,3)": 83.79},
    "CoLA":            {"FP32": 83.51, "INT8": 75.32, "FP(8,2)": 64.24, "FP(8,3)": 80.92, "FP(8,4)": 83.13, "FP(8,5)": 82.96, "Posit(8,0)": 69.13, "Posit(8,1)": 83.13, "Posit(8,2)": 83.60, "Posit(8,3)": 83.03, "MERSIT(8,2)": 83.43, "MERSIT(8,3)": 83.17},
    "MNLI-mm":         {"FP32": 84.24, "INT8": 82.94, "FP(8,2)": 35.05, "FP(8,3)": 83.96, "FP(8,4)": 84.41, "FP(8,5)": 84.08, "Posit(8,0)": 31.93, "Posit(8,1)": 84.29, "Posit(8,2)": 84.46, "Posit(8,3)": 84.16, "MERSIT(8,2)": 84.27, "MERSIT(8,3)": 84.44},
    "MRPC":            {"FP32": 85.29, "INT8": 83.33, "FP(8,2)": 31.62, "FP(8,3)": 85.05, "FP(8,4)": 85.29, "FP(8,5)": 84.56, "Posit(8,0)": 31.62, "Posit(8,1)": 85.78, "Posit(8,2)": 85.05, "Posit(8,3)": 85.05, "MERSIT(8,2)": 85.54, "MERSIT(8,3)": 85.78},
    "SST-2":           {"FP32": 92.22, "INT8": 91.51, "FP(8,2)": 49.08, "FP(8,3)": 92.20, "FP(8,4)": 92.32, "FP(8,5)": 92.55, "Posit(8,0)": 64.68, "Posit(8,1)": 92.43, "Posit(8,2)": 92.55, "Posit(8,3)": 92.20, "MERSIT(8,2)": 92.25, "MERSIT(8,3)": 92.25},
}

_ARTIFACT = "table2"


def _eval_cell(name: str, fmt_name: str, eval_n: int, calib_n: int,
               seed: int = 0) -> float:
    """Quantize one model with one format and score it.

    The model comes from the per-process warm memo (``pretrained(...,
    memo=True)``), so repeat cells for the same model skip the state-dict
    load; the quantize/score/dequantize cycle runs under ``try/finally``
    so even a failing cell hands the shared model back in its FP32 state.
    ``seed`` selects the calibration draw (0 = the legacy stream).
    """
    entry = ALL_MODELS[name]
    model, _ = pretrained(name, memo=True)
    try:
        if entry.kind == "vision":
            calib = dataset().calibration_split(calib_n, seed)
            test = dataset().test_split(eval_n)
            if fmt_name != "FP32":
                quantize_model(model, PTQConfig(weight_format=fmt_name),
                               calib.batches(50),
                               forward=lambda m, b: m(Tensor(b[0])))
            score = evaluate_vision(model, test)
        else:
            task = glue_task(entry.task)
            calib = task.calibration_split(calib_n, seed)
            test = task.test_split(eval_n)
            if fmt_name != "FP32":
                quantize_model(model, PTQConfig(weight_format=fmt_name),
                               calib.batches(50),
                               forward=lambda m, b: m(b[0], b[1]))
            score = evaluate_text(model, test, entry.metric)
    finally:
        dequantize_model(model)
    return float(score)


def _eval_cell_task(cell: tuple) -> float:
    """Pool-friendly wrapper: one (model, format, eval_n, calib_n[, seed]).

    Hosts the ``cell`` fault-injection point (key ``MODEL/FORMAT``, or
    ``MODEL/FORMAT/sSEED`` on the seeds axis) and the final numeric
    guard: a non-finite score raises :class:`NumericsError` instead of
    being pinned into the artifact cache as a plausible-looking number.
    """
    name, fmt_name, eval_n, calib_n, *seed = cell
    key = f"{name}/{fmt_name}" + (f"/s{seed[0]}" if seed else "")
    if faults.maybe_fault("cell", key) == "nan":
        score = float("nan")
    else:
        score = _eval_cell(name, fmt_name, eval_n, calib_n, *seed)
    if not math.isfinite(score):
        raise NumericsError(f"table2 cell {key} produced a non-finite score",
                            stat="score")
    return score


def _warm_worker(models: tuple, formats: tuple) -> None:
    """One-time per-process warm-up for a grid run.

    Primes exactly the read-only state the run's cells will touch: the
    zoo model memo, the shared dataset / GLUE task singletons, and the
    65,536-entry kernel LUTs.  Runs in the parent before the first fork
    (copy-on-write sharing) and as the pool initializer in each worker
    (no-op hits on fork children, real warm-up on spawned or respawned
    workers).  Only *already-trained* models are loaded — warm-up is an
    optimization and must never trigger first-use training (that happens
    once, in the first cell that needs the model).
    """
    for name in models:
        entry = ALL_MODELS.get(name)
        if entry is None:
            continue
        if entry.kind == "vision":
            dataset()
        else:
            glue_task(entry.task)
        if is_cached(name):
            pretrained(name, memo=True)
    for fmt_name in formats:
        if fmt_name != "FP32":
            kernel_for(get_format(fmt_name))


def _is_seed_cell(value) -> bool:
    """True iff ``value`` is a seeds-axis cell ``{"seeds": {...}}``."""
    return isinstance(value, dict) and "seeds" in value


def _covered(row: dict, fmt_name: str, seed: int | None) -> bool:
    """Does ``row`` already hold a usable score for this cell (and seed)?

    ``seed=None`` asks the legacy single-seed question; a seeds-axis cell
    from an earlier error-bar run satisfies it through its seed-0 entry
    (the two streams are byte-identical), so mixing modes never recomputes
    or destroys data.
    """
    value = row.get(fmt_name)
    if value is None or is_error_entry(value):
        return False
    if _is_seed_cell(value):
        entry = value["seeds"].get(str(0 if seed is None else seed))
        return entry is not None and not is_error_entry(entry)
    return seed is None or seed == 0


def run(models: list[str] | None = None, formats: list[str] | None = None,
        eval_n: int = 400, calib_n: int = 100, refresh: bool = False,
        verbose: bool = False, jobs: int = 1, cell_timeout: float | None = None,
        retries: int = 1, backoff: float = 0.5,
        seeds: list[int] | None = None) -> dict:
    """Fill (incrementally) the Table 2 grid and return it.

    The grid is keyed ``grid[model][format] -> score``; an ``FP32`` column
    is always included.  ``eval_n``/``calib_n`` scale the evaluation and
    calibration splits (the full-paper analogue settings are the defaults).
    ``jobs > 1`` computes missing cells on the persistent warm-worker pool;
    scores are committed in the same submission order as the serial path,
    so the resulting artifact is identical.

    ``cell_timeout`` (seconds, pool path only) bounds each cell so a hung
    worker cannot wedge the run; failed cells are retried ``retries``
    times with exponential ``backoff`` and then recorded as structured
    error entries (see :mod:`repro.resilience`).  Error entries count as
    missing on the next invocation, so re-running repairs them.

    ``seeds`` (e.g. ``[0, 1, 2]``) adds the calibration-seed axis: every
    non-FP32 cell is scored once per seed and stored as
    ``{"seeds": {"0": ..., ...}}`` (FP32 needs no calibration and stays a
    scalar).  Seed 0 reuses the legacy calibration stream, so existing
    scalar cells migrate in place as their own seed-0 entry, and the fill
    is resumable per (cell, seed) exactly like the single-seed grid.

    When the ``eval_n``/``calib_n`` meta-key changes, the stale grid is
    not silently wiped: a one-line notice says what was discarded and the
    old grid is kept under the artifact's ``superseded`` key.
    """
    models = list(models or MODEL_ORDER)
    formats = ["FP32"] + [f for f in (formats or TABLE2_FORMATS) if f != "FP32"]
    art = (load_artifact(_ARTIFACT) or {}) if not refresh else {}
    grid = art.get("grid", {})
    superseded = art.get("superseded")
    meta_key = f"{eval_n}/{calib_n}"
    if art.get("meta_key") not in (None, meta_key):
        n_cells = sum(len(row) for row in grid.values())
        print(f"table2: meta_key changed {art['meta_key']!r} -> {meta_key!r}; "
              f"discarding {n_cells} cached cell(s), previous grid kept "
              f"under the artifact's 'superseded' key", flush=True)
        superseded = {"meta_key": art["meta_key"], "grid": grid}
        grid = {}
    if seeds is not None:
        # migrate legacy scalars in place: the old stream IS seed 0
        for name in models:
            row = grid.get(name, {})
            for fmt_name in formats:
                value = row.get(fmt_name)
                if (fmt_name != "FP32" and value is not None
                        and not isinstance(value, dict)):
                    row[fmt_name] = {"seeds": {"0": value}}

    missing: list[tuple[str, str, int | None]] = []
    for name in models:
        row = grid.setdefault(name, {})
        for fmt_name in formats:
            if seeds is None or fmt_name == "FP32":
                if not _covered(row, fmt_name, None):
                    missing.append((name, fmt_name, None))
            else:
                missing.extend((name, fmt_name, s) for s in seeds
                               if not _covered(row, fmt_name, s))

    def artifact() -> dict:
        out = {"grid": grid, "meta_key": meta_key}
        if superseded is not None:
            out["superseded"] = superseded
        return out

    def commit(index: int, value) -> None:
        name, fmt_name, seed = missing[index]
        row = grid[name]
        if seed is None and not _is_seed_cell(row.get(fmt_name)):
            row[fmt_name] = value
        else:
            cell = row.get(fmt_name)
            if not _is_seed_cell(cell):
                cell = row[fmt_name] = {"seeds": {}}
            cell["seeds"][str(seed or 0)] = value
        if verbose:  # pragma: no cover - logging
            shown = (f"ERR({value['error']['kind']})" if is_error_entry(value)
                     else f"{value:.2f}")
            at = "" if seed is None else f" s{seed}"
            print(f"  table2 {name} {fmt_name}{at}: {shown}", flush=True)
        save_artifact(_ARTIFACT, artifact())

    if missing:
        tasks = [(n, f, eval_n, calib_n) if s is None
                 else (n, f, eval_n, calib_n, s) for n, f, s in missing]
        warm_models = tuple(dict.fromkeys(n for n, _f, _s in missing))
        warm_formats = tuple(dict.fromkeys(f for _n, f, _s in missing))
        run_cells(tasks, _eval_cell_task, jobs=jobs, timeout=cell_timeout,
                  retries=retries, backoff=backoff, commit=commit,
                  initializer=_warm_worker, initargs=(warm_models, warm_formats),
                  preload=lambda: _warm_worker(warm_models, warm_formats))
    result = artifact()
    save_artifact(_ARTIFACT, result)
    return result


def _seed_values(value) -> list[float]:
    """The usable per-seed scores of a seeds-axis cell (errors dropped)."""
    return [v for v in value["seeds"].values() if not is_error_entry(v)]


def _mean_std(values: list[float]) -> tuple[float, float]:
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(var)


def render(result: dict | None = None) -> str:
    """Plain-text rendering of whatever grid cells exist so far.

    With no artifact on disk this renders an explicit pointer to the run
    command instead of silently launching the full (hours-long at paper
    settings) grid fill.  Cells recorded as structured errors render as
    ``ERR``; seeds-axis cells render ``mean±std`` across their seeds,
    with a per-format spread summary (the error bars) appended.
    """
    result = result or load_artifact(_ARTIFACT)
    if result is None:
        return ("Table 2 - no artifact found; run "
                "`python -m repro.cli experiments table2` (optionally "
                "--jobs N) to fill the grid")
    grid = result["grid"]
    formats = ["FP32"] + list(TABLE2_FORMATS)
    headers = ["Model"] + formats
    rows = []
    spread: dict[str, list[float]] = {}   # format -> per-model stds
    n_seeds = 0
    for name in MODEL_ORDER:
        if name not in grid:
            continue
        row = [name]
        for f in formats:
            value = grid[name].get(f, float("nan"))
            if is_error_entry(value):
                row.append("ERR")
            elif _is_seed_cell(value):
                values = _seed_values(value)
                if not values:
                    row.append("ERR")
                elif len(values) == 1:
                    row.append(values[0])
                else:
                    mean, std = _mean_std(values)
                    row.append(f"{mean:.1f}±{std:.2f}")
                    spread.setdefault(f, []).append(std)
                    n_seeds = max(n_seeds, len(values))
            else:
                row.append(value)
        rows.append(row)
    out = ("Table 2 - PTQ accuracy (measured, synthetic-task analogues)\n"
           + format_table(headers, rows, floatfmt=".1f"))
    if spread:
        lines = [f"calibration-seed error bars ({n_seeds} seeds; "
                 f"std averaged over models):"]
        lines.extend(f"  {f}: ±{sum(s) / len(s):.3f}"
                     for f, s in spread.items())
        out += "\n" + "\n".join(lines)
    return out
