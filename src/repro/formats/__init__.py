"""8-bit data formats: INT8, FP8, Posit8 and the paper's MERSIT8.

Every format is a :class:`~repro.formats.base.CodebookFormat` — an
enumerable bit-exact code/value bijection with built-in nearest-value
quantization.  Formats are usually obtained by name::

    from repro.formats import get_format
    mersit = get_format("MERSIT(8,2)")
    mersit.quantize(x)          # round x to representable values
    mersit.dynamic_range        # 2^-9 ~ 2^8
"""

from .adaptivfloat import AdaptivFloatFormat, fit_bias
from .base import CodebookFormat, DecodedValue, DynamicRange, ValueClass
from .fp8 import FP8_E2, FP8_E3, FP8_E4, FP8_E5, FloatFormat
from .int8 import INT8, IntFormat
from .mersit import MERSIT8_2, MERSIT8_3, MersitFormat
from .posit import POSIT8_0, POSIT8_1, POSIT8_2, POSIT8_3, PositFormat
from .registry import (
    PAPER_FORMATS, TABLE2_FORMATS, available_formats, get_format, registered_formats,
)
from . import analysis, arithmetic, bitops, convert

__all__ = [
    "CodebookFormat", "DecodedValue", "DynamicRange", "ValueClass",
    "FloatFormat", "IntFormat", "PositFormat", "MersitFormat",
    "AdaptivFloatFormat", "fit_bias",
    "INT8",
    "FP8_E2", "FP8_E3", "FP8_E4", "FP8_E5",
    "POSIT8_0", "POSIT8_1", "POSIT8_2", "POSIT8_3",
    "MERSIT8_2", "MERSIT8_3",
    "get_format", "available_formats", "registered_formats",
    "PAPER_FORMATS", "TABLE2_FORMATS",
    "analysis", "arithmetic", "bitops", "convert",
]
