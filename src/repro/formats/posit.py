"""Posit(N,es) (Gustafson & Yonemoto 2017), paper Fig. 1b.

Standard posit semantics: two's-complement encoding, a unary regime run
terminated by the opposite bit, ``es`` exponent bits, and the remaining
bits as fraction.  ``value = (-1)^s * useed^k * 2^e * (1 + f)`` with
``useed = 2^(2^es)``.

Paper variant
-------------
The paper treats the extreme-magnitude codes as infinities, mirroring its
MERSIT design where the all-ones magnitude is +/-inf (Table 1): with
``inf_maxpos=True`` (the default, and the configuration used throughout the
paper) the codes for +/-maxpos decode to +/-inf, so the *finite* dynamic
range of Posit(8,1) is ``2^-12 ... 2^10`` — matching the Fig. 2 table
(``W = 2*(12+10)+1 = 45``).  Set ``inf_maxpos=False`` for the standard
posit, where ``0x80`` is NaR and maxpos is finite.
"""

from __future__ import annotations

from .base import CodebookFormat, DecodedValue, ValueClass

__all__ = ["PositFormat", "POSIT8_0", "POSIT8_1", "POSIT8_2", "POSIT8_3"]


class PositFormat(CodebookFormat):
    """Posit with ``nbits`` total bits and ``es`` exponent bits."""

    def __init__(self, nbits: int = 8, es: int = 1, inf_maxpos: bool = True):
        if nbits < 3:
            raise ValueError("PositFormat needs at least 3 bits")
        if es < 0:
            raise ValueError("es must be non-negative")
        self.nbits = nbits
        self.es = es
        self.useed_log2 = 1 << es  # log2(useed) = 2^es
        self.inf_maxpos = inf_maxpos
        self.name = f"Posit({nbits},{es})"
        if not inf_maxpos:
            self.name += "std"

    # ------------------------------------------------------------------
    def decode(self, code: int) -> DecodedValue:
        if not 0 <= code < self.ncodes:
            raise ValueError(f"code {code} out of range for {self.name}")
        n = self.nbits
        if code == 0:
            return DecodedValue(code=code, value=0.0, value_class=ValueClass.ZERO)
        if code == 1 << (n - 1):
            # 0x80: NaR in the standard; the paper folds it with the inf pole.
            cls = ValueClass.INF if self.inf_maxpos else ValueClass.NAN
            value = float("-inf") if self.inf_maxpos else float("nan")
            return DecodedValue(code=code, value=value, value_class=cls, sign=1)

        sign = (code >> (n - 1)) & 1
        mag = code if sign == 0 else ((-code) & (self.ncodes - 1))

        if self.inf_maxpos and mag == self.ncodes // 2 - 1:
            # +/-maxpos codes (0x7F / 0x81 for N=8) are the paper's +/-inf.
            value = float("-inf") if sign else float("inf")
            return DecodedValue(code=code, value=value, value_class=ValueClass.INF, sign=sign)

        # regime: run of identical bits after the sign bit
        body = mag & ((1 << (n - 1)) - 1)  # n-1 bits below the sign
        bits = [(body >> i) & 1 for i in range(n - 2, -1, -1)]
        lead = bits[0]
        run = 1
        while run < len(bits) and bits[run] == lead:
            run += 1
        k = (run - 1) if lead == 1 else -run

        # bits after the terminating (opposite) bit: exponent then fraction
        rest = bits[run + 1:] if run < len(bits) else []
        ebits = rest[: self.es]
        exp = 0
        for b in ebits:
            exp = (exp << 1) | b
        # a truncated exponent field is padded with zeros on the right
        exp <<= self.es - len(ebits)
        fbits_list = rest[self.es:]
        frac = 0
        for b in fbits_list:
            frac = (frac << 1) | b
        fbits = len(fbits_list)

        eff_exp = self.useed_log2 * k + exp
        value = (1.0 + (frac / (1 << fbits) if fbits else 0.0)) * 2.0 ** eff_exp
        if sign:
            value = -value
        return DecodedValue(
            code=code, value=value, sign=sign,
            effective_exponent=eff_exp,
            fraction_field=frac,
            fraction_bits=fbits,
            regime=k,
        )

    @property
    def quantization_gain(self) -> float:
        """Tapered format: scale the tensor max to 1.0 (see CodebookFormat)."""
        return 1.0


#: The four Posit8 configurations evaluated in the paper.
POSIT8_0 = PositFormat(8, 0)
POSIT8_1 = PositFormat(8, 1)
POSIT8_2 = PositFormat(8, 2)
POSIT8_3 = PositFormat(8, 3)
