"""Name-based lookup of the formats evaluated in the paper.

The experiment drivers and benchmarks refer to formats by the paper's
spelling — ``"INT8"``, ``"FP(8,4)"``, ``"Posit(8,1)"``, ``"MERSIT(8,2)"`` —
and this module resolves those names (case-insensitively, with or without
punctuation) to singleton format objects.
"""

from __future__ import annotations

import re

from .base import CodebookFormat
from .fp8 import FloatFormat
from .int8 import IntFormat
from .mersit import MersitFormat
from .posit import PositFormat

__all__ = ["get_format", "available_formats", "registered_formats",
           "PAPER_FORMATS", "TABLE2_FORMATS"]

_CACHE: dict[str, CodebookFormat] = {}

_PATTERNS = [
    (re.compile(r"^int(\d+)$"), lambda m: IntFormat(int(m.group(1)))),
    (re.compile(r"^fp\((\d+),(\d+)\)$"), lambda m: FloatFormat(int(m.group(1)), int(m.group(2)))),
    (re.compile(r"^fp(\d+)e(\d+)$"), lambda m: FloatFormat(int(m.group(1)), int(m.group(2)))),
    (re.compile(r"^posit\((\d+),(\d+)\)$"), lambda m: PositFormat(int(m.group(1)), int(m.group(2)))),
    (re.compile(r"^posit(\d+)_(\d+)$"), lambda m: PositFormat(int(m.group(1)), int(m.group(2)))),
    (re.compile(r"^mersit\((\d+),(\d+)\)$"), lambda m: MersitFormat(int(m.group(1)), int(m.group(2)))),
    (re.compile(r"^mersit(\d+)_(\d+)$"), lambda m: MersitFormat(int(m.group(1)), int(m.group(2)))),
]


def get_format(name: str) -> CodebookFormat:
    """Resolve a format name like ``"MERSIT(8,2)"`` to a (cached) format.

    Accepted spellings per family (case-insensitive, spaces ignored):
    ``INT8``; ``FP(8,4)`` / ``fp8e4``; ``Posit(8,1)`` / ``posit8_1``;
    ``MERSIT(8,2)`` / ``mersit8_2``.
    """
    key = name.strip().lower().replace(" ", "")
    if key in _CACHE:
        return _CACHE[key]
    for pattern, factory in _PATTERNS:
        m = pattern.match(key)
        if m:
            fmt = factory(m)
            # lint: allow[unlocked-shared-state] idempotent memo: formats are pure values keyed by name; GIL-atomic insert, racers build equal objects
            _CACHE[key] = fmt
            return fmt
    raise KeyError(f"unknown format name: {name!r}")


#: Every 8-bit format column of the paper's Table 2 (quantized columns only).
TABLE2_FORMATS = (
    "INT8",
    "FP(8,2)", "FP(8,3)", "FP(8,4)", "FP(8,5)",
    "Posit(8,0)", "Posit(8,1)", "Posit(8,2)", "Posit(8,3)",
    "MERSIT(8,2)", "MERSIT(8,3)",
)

#: The three head-to-head formats of the hardware study (Fig. 7, Table 3).
PAPER_FORMATS = ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)")


def available_formats() -> list[str]:
    """Names of the paper's evaluated formats, in Table 2 column order."""
    return list(TABLE2_FORMATS)


def registered_formats() -> list[CodebookFormat]:
    """The Table 2 format objects, resolved, in column order.

    The set the kernel tests and benchmarks iterate: every entry is 8-bit
    and therefore eligible for the bit-LUT kernel (``nbits <= 12``).
    """
    return [get_format(name) for name in TABLE2_FORMATS]
