"""AdaptivFloat (Tambe et al., DAC'20) — a related format from paper §2.1.

A simplified float: no subnormals, no inf/NaN, and a per-tensor integer
exponent bias acting as the scaling parameter.  The paper argues that
under its channel/layer max-scaling methodology AdaptivFloat "aligns with
FP8"; implementing it lets the ablation benchmark *verify* that claim
instead of assuming it.

``AdaptivFloatFormat`` fixes the bias at construction; the companion
:func:`fit_bias` picks the bias the AdaptivFloat paper prescribes — the
largest representable value covers the tensor max.
"""

from __future__ import annotations

import math

import numpy as np

from .base import CodebookFormat, DecodedValue, ValueClass

__all__ = ["AdaptivFloatFormat", "fit_bias"]


class AdaptivFloatFormat(CodebookFormat):
    """AdaptivFloat(N,E) with a fixed integer exponent bias.

    value = (-1)^s * 2^(expfield - bias) * (1 + frac/2^fbits), with
    ``expfield = 0, frac = 0`` reserved for zero (the format drops
    subnormals entirely).
    """

    def __init__(self, nbits: int = 8, ebits: int = 4, bias: int | None = None):
        if ebits < 1 or ebits > nbits - 2:
            raise ValueError(f"need 1 <= ebits <= nbits-2, got {ebits}")
        self.nbits = nbits
        self.ebits = ebits
        self.fbits = nbits - 1 - ebits
        self.bias = (1 << (ebits - 1)) - 1 if bias is None else bias
        self.name = f"AdaptivFloat({nbits},{ebits},bias={self.bias})"

    def decode(self, code: int) -> DecodedValue:
        if not 0 <= code < self.ncodes:
            raise ValueError(f"code {code} out of range for {self.name}")
        sign = (code >> (self.nbits - 1)) & 1
        expf = (code >> self.fbits) & ((1 << self.ebits) - 1)
        frac = code & ((1 << self.fbits) - 1)
        if expf == 0 and frac == 0:
            return DecodedValue(code=code, value=-0.0 if sign else 0.0,
                                value_class=ValueClass.ZERO, sign=sign)
        eff = expf - self.bias
        value = (-1.0) ** sign * (1.0 + frac / (1 << self.fbits)) * 2.0 ** eff
        return DecodedValue(code=code, value=value, sign=sign,
                            effective_exponent=eff, fraction_field=frac,
                            fraction_bits=self.fbits)


def fit_bias(x: np.ndarray, nbits: int = 8, ebits: int = 4) -> AdaptivFloatFormat:
    """AdaptivFloat with the bias fitted to a tensor (Tambe et al. §III).

    Chooses the bias so the largest representable binade matches the
    tensor's max-magnitude binade.
    """
    amax = float(np.max(np.abs(x)))
    if amax == 0.0:  # lint: allow[float-equality] exact all-zero tensor guard
        return AdaptivFloatFormat(nbits, ebits)
    top_binade = math.floor(math.log2(amax))
    # largest expfield is 2^E - 1; align its binade with the data's
    bias = ((1 << ebits) - 1) - top_binade
    return AdaptivFloatFormat(nbits, ebits, bias=bias)
