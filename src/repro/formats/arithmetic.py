"""Exact software arithmetic in format space (softposit-style reference).

Operations take and return *codes* of a format: multiply/add decode the
operands, compute exactly over rationals, and re-round to the nearest
representable value; :func:`dot` accumulates the whole product list
exactly before the single final rounding — the software model of the
paper's Kulisch accumulator, and the reference the gate-level MAC +
encoder chain is compared against.

Exactness is guaranteed by ``fractions.Fraction``: every finite format
value is a dyadic rational, so sums and products are representable
without error.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from .base import CodebookFormat

__all__ = ["fmt_mul", "fmt_add", "dot", "exact_value"]


def exact_value(fmt: CodebookFormat, code: int) -> Fraction:
    """The exact rational value of a finite code (0 for specials)."""
    d = fmt.decode(int(code))
    if not d.is_finite:
        return Fraction(0)
    m = d.fraction_bits or 0
    sig = Fraction((1 << m) + (d.fraction_field or 0), 1 << m)
    e = d.effective_exponent
    scale = Fraction(1 << e, 1) if e >= 0 else Fraction(1, 1 << (-e))
    return (-1 if d.sign else 1) * sig * scale


def _round_to_code(fmt: CodebookFormat, value: Fraction) -> int:
    """Nearest-value code for an exact rational (ties to the lower code)."""
    return int(fmt.encode(float(value)))


def fmt_mul(fmt: CodebookFormat, a: int, b: int) -> int:
    """Correctly rounded product of two codes."""
    return _round_to_code(fmt, exact_value(fmt, a) * exact_value(fmt, b))


def fmt_add(fmt: CodebookFormat, a: int, b: int) -> int:
    """Correctly rounded sum of two codes."""
    return _round_to_code(fmt, exact_value(fmt, a) + exact_value(fmt, b))


def dot(fmt: CodebookFormat, a_codes, b_codes) -> tuple[int, Fraction]:
    """Exact (Kulisch) dot product with one final rounding.

    Returns ``(code, exact_sum)`` so callers can quantify the single
    rounding step.  This is the software contract of the paper's MAC:
    no intermediate rounding regardless of accumulation length.
    """
    a_codes = np.asarray(a_codes, dtype=np.int64)
    b_codes = np.asarray(b_codes, dtype=np.int64)
    if a_codes.shape != b_codes.shape:
        raise ValueError("operand code arrays must have the same shape")
    total = Fraction(0)
    for x, y in zip(a_codes.ravel(), b_codes.ravel()):
        total += exact_value(fmt, int(x)) * exact_value(fmt, int(y))
    return _round_to_code(fmt, total), total
