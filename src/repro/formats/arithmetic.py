"""Exact software arithmetic in format space (softposit-style reference).

Operations take and return *codes* of a format: multiply/add decode the
operands, compute exactly over rationals, and re-round to the nearest
representable value; :func:`dot` accumulates the whole product list
exactly before the single final rounding — the software model of the
paper's Kulisch accumulator, and the reference the gate-level MAC +
encoder chain and the vectorized :mod:`repro.engine` are compared
against.

Exactness is guaranteed by ``fractions.Fraction``: every finite format
value is a dyadic rational, so sums and products are representable
without error.

Rounding rule
-------------
One rule everywhere: **round to nearest, ties away from zero**, the same
convention as :meth:`CodebookFormat.quantize_reference` and the bit-LUT
kernels (:mod:`repro.kernels.lut`).  :func:`_round_to_code` implements it
with exact rational midpoint comparisons — it never converts the
accumulated value to a float first, because a ``Fraction -> float64``
cast rounds to 53 bits and that double rounding can push a value across
a codebook midpoint (wide-format sums span hundreds of bits).
"""

from __future__ import annotations

from bisect import bisect_left
from fractions import Fraction

import numpy as np

from .base import CodebookFormat

__all__ = ["fmt_mul", "fmt_add", "dot", "exact_value"]


def exact_value(fmt: CodebookFormat, code: int) -> Fraction:
    """The exact rational value of a finite code (0 for specials).

    Every finite value of an enumerable format is an exactly-represented
    float64, so ``Fraction(value)`` is exact.  Going through the float
    (rather than re-assembling sign/exponent/fraction fields) also stays
    faithful for formats whose decomposition fields are not of the
    ``(1 + f) * 2^e`` form — INT8 reports ``fraction_bits=0`` yet
    represents non-powers-of-two.
    """
    d = fmt.decode(int(code))
    if not d.is_finite:
        return Fraction(0)
    return Fraction(d.value)


#: per-format exact rounding tables: (codebook values as Fractions,
#: midpoints as Fractions, code of each value)
_ROUND_TABLES: dict[str, tuple] = {}


def _round_tables(fmt: CodebookFormat) -> tuple:
    tables = _ROUND_TABLES.get(fmt.name)
    if tables is None:
        values, codes = fmt._sorted_codes
        vals = [Fraction(v) for v in values]
        mids = [(a + b) / 2 for a, b in zip(vals, vals[1:])]
        tables = _ROUND_TABLES[fmt.name] = (mids, codes)
    return tables


def _round_to_code(fmt: CodebookFormat, value: Fraction) -> int:
    """Nearest-value code for an exact rational.

    Ties round **half away from zero** (the repo-wide rule, pinned
    together with the kernel paths in ``tests/test_engine_roundtrip.py``);
    out-of-range magnitudes saturate to the format maximum.  All
    comparisons are exact rational comparisons.
    """
    value = Fraction(value)
    mids, codes = _round_tables(fmt)
    idx = bisect_left(mids, value)
    if idx < len(mids) and mids[idx] == value and value > 0:
        idx += 1
    return int(codes[idx])


def fmt_mul(fmt: CodebookFormat, a: int, b: int) -> int:
    """Correctly rounded product of two codes."""
    return _round_to_code(fmt, exact_value(fmt, a) * exact_value(fmt, b))


def fmt_add(fmt: CodebookFormat, a: int, b: int) -> int:
    """Correctly rounded sum of two codes."""
    return _round_to_code(fmt, exact_value(fmt, a) + exact_value(fmt, b))


def dot(fmt: CodebookFormat, a_codes, b_codes) -> tuple[int, Fraction]:
    """Exact (Kulisch) dot product with one final rounding.

    Returns ``(code, exact_sum)`` so callers can quantify the single
    rounding step.  This is the software contract of the paper's MAC:
    no intermediate rounding regardless of accumulation length.
    """
    a_codes = np.asarray(a_codes, dtype=np.int64)
    b_codes = np.asarray(b_codes, dtype=np.int64)
    if a_codes.shape != b_codes.shape:
        raise ValueError("operand code arrays must have the same shape")
    total = Fraction(0)
    for x, y in zip(a_codes.ravel(), b_codes.ravel()):
        total += exact_value(fmt, int(x)) * exact_value(fmt, int(y))
    return _round_to_code(fmt, total), total
