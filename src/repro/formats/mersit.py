"""MERSIT(N,E): the paper's contribution (Fig. 3, Table 1).

A MERSIT word is ``[sign | ks | EC_0 | EC_1 | ... | EC_{G-1}]`` where each
*exponent candidate* (EC) is an ``es``-bit group and ``G = (N-2)/es``.

Decoding (paper Section 3.1):

* Every EC is AND-reduced; the first EC (MSB side) whose AND is 0 — i.e.
  the first EC containing a zero bit — is designated the exponent.  Its
  group index ``g`` determines the regime ``k``:

  ``k = g`` if ``ks = 1`` (non-negative regime), else ``k = -(g+1)``.

* The exponent value ``exp`` is the EC's own bits (0 .. 2^es - 2; the
  all-ones pattern cannot be the exponent by construction).

* The ECs *after* the exponent hold the fraction, so the fraction width is
  ``(G - 1 - g) * es`` bits: precision shrinks as ``|k|`` grows, exactly as
  in Posit.

* If no EC contains a zero (all-ones magnitude): ``ks = 0`` encodes zero,
  ``ks = 1`` encodes +/-inf (Table 1's last rows).

The represented value merges regime and exponent:

    value = (-1)^sign * 2^((2^es - 1) * k) * 2^exp * (1 + .frac)

Because ``exp`` ranges over ``0 .. 2^es-2`` and the regime step is
``2^es - 1``, consecutive (k, exp) pairs tile a contiguous effective
exponent range — MERSIT(8,2) covers -9 .. 8 (Table 1), giving the Fig. 2
dynamic range ``2^-9 ... 2^8``.
"""

from __future__ import annotations

from .base import CodebookFormat, DecodedValue, ValueClass

__all__ = ["MersitFormat", "MERSIT8_2", "MERSIT8_3"]


class MersitFormat(CodebookFormat):
    """MERSIT with ``nbits`` total bits and ``es``-bit exponent candidates."""

    def __init__(self, nbits: int = 8, es: int = 2):
        if nbits < 4:
            raise ValueError("MersitFormat needs at least 4 bits")
        if es < 1:
            raise ValueError("es must be >= 1")
        if (nbits - 2) % es != 0:
            raise ValueError(
                f"MERSIT({nbits},{es}) is ill-formed: nbits-2 = {nbits - 2} "
                f"must be divisible by es = {es}"
            )
        self.nbits = nbits
        self.es = es
        self.ngroups = (nbits - 2) // es
        self.regime_step = (1 << es) - 1  # the (2^es - 1) factor
        self.name = f"MERSIT({nbits},{es})"

    # ------------------------------------------------------------------
    def split_groups(self, magnitude: int) -> list[int]:
        """Split the ``nbits-2`` magnitude bits into MSB-first ECs."""
        groups = []
        width = self.nbits - 2
        for g in range(self.ngroups):
            shift = width - (g + 1) * self.es
            groups.append((magnitude >> shift) & self.regime_step)
        return groups

    def decode(self, code: int) -> DecodedValue:
        if not 0 <= code < self.ncodes:
            raise ValueError(f"code {code} out of range for {self.name}")
        sign = (code >> (self.nbits - 1)) & 1
        ks = (code >> (self.nbits - 2)) & 1
        magnitude = code & ((1 << (self.nbits - 2)) - 1)
        groups = self.split_groups(magnitude)

        all_ones = self.regime_step
        g = next((i for i, ec in enumerate(groups) if ec != all_ones), None)
        if g is None:
            # no EC contains a zero: zero (ks=0) or +/-inf (ks=1)
            if ks == 0:
                return DecodedValue(code=code, value=-0.0 if sign else 0.0,
                                    value_class=ValueClass.ZERO, sign=sign)
            value = float("-inf") if sign else float("inf")
            return DecodedValue(code=code, value=value,
                                value_class=ValueClass.INF, sign=sign)

        k = g if ks else -(g + 1)
        exp = groups[g]
        fbits = (self.ngroups - 1 - g) * self.es
        frac = magnitude & ((1 << fbits) - 1) if fbits else 0
        eff_exp = self.regime_step * k + exp
        value = (1.0 + (frac / (1 << fbits) if fbits else 0.0)) * 2.0 ** eff_exp
        if sign:
            value = -value
        return DecodedValue(
            code=code, value=value, sign=sign,
            effective_exponent=eff_exp,
            fraction_field=frac,
            fraction_bits=fbits,
            regime=k,
        )

    # ------------------------------------------------------------------
    def decode_table(self) -> list[dict]:
        """Rows of the paper's Table 1: one entry per magnitude pattern class.

        Returns a list of dicts with keys ``pattern`` (the ks+EC bits with
        fraction positions shown as ``x``), ``k``, ``exp``, ``eff_exp``
        (``(2^es-1)*k + exp``; the strings ``"zero"``/``"inf"`` for the
        special rows) and ``fraction_bits``.
        """
        rows = []
        seen: set[str] = set()
        for code in range(self.ncodes // 2):  # sign = 0 is enough
            d = self.decode(code)
            ks = (code >> (self.nbits - 2)) & 1
            magnitude = code & ((1 << (self.nbits - 2)) - 1)
            if d.value_class == ValueClass.ZERO and magnitude != (1 << (self.nbits - 2)) - 1:
                continue  # only the canonical all-ones zero pattern
            width = self.nbits - 2
            bits = format((ks << width) | magnitude, f"0{width + 1}b")
            if d.is_finite and d.fraction_bits:
                bits = bits[: len(bits) - d.fraction_bits] + "x" * d.fraction_bits
            if bits in seen:
                continue
            seen.add(bits)
            if d.value_class == ValueClass.ZERO:
                rows.append({"pattern": bits, "k": None, "exp": None,
                             "eff_exp": "zero", "fraction_bits": 0})
            elif d.value_class == ValueClass.INF:
                rows.append({"pattern": bits, "k": None, "exp": None,
                             "eff_exp": "inf", "fraction_bits": 0})
            else:
                exp = d.effective_exponent - self.regime_step * d.regime
                rows.append({"pattern": bits, "k": d.regime, "exp": exp,
                             "eff_exp": d.effective_exponent,
                             "fraction_bits": d.fraction_bits})
        rows.sort(key=_table_order)
        return rows

    @property
    def quantization_gain(self) -> float:
        """Tapered format: scale the tensor max to 1.0 (see CodebookFormat)."""
        return 1.0


def _table_order(row: dict) -> tuple:
    """Sort rows in Table 1's order: zero first, ascending eff exp, inf last."""
    e = row["eff_exp"]
    if e == "zero":
        return (0, 0)
    if e == "inf":
        return (2, 0)
    return (1, e)


#: The two MERSIT configurations evaluated in the paper.
MERSIT8_2 = MersitFormat(8, 2)
MERSIT8_3 = MersitFormat(8, 3)
