"""Range/precision analysis of codebook formats (paper Fig. 2 table, Fig. 4).

These helpers turn a :class:`~repro.formats.base.CodebookFormat` into the
summary statistics the paper tabulates: dynamic range, maximum exponent /
fraction field widths (the ``P`` and ``M`` columns of Fig. 2), the Kulisch
product width ``W``, and the binade-by-binade fraction-precision profile
plotted in Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import CodebookFormat

__all__ = [
    "FormatSummary",
    "summarize",
    "kulisch_product_width",
    "precision_segments",
    "range_with_precision",
]


@dataclass(frozen=True)
class FormatSummary:
    """One row of the Fig. 2 comparison table."""

    name: str
    min_log2: int          # smallest positive value is 2^min_log2
    max_log2: int          # binade of the largest finite value
    exponent_width: int    # P: bits to carry the signed effective exponent
    significand_bits: int  # M: widest significand incl. the hidden bit
    product_width: int     # W: Kulisch fixed-point width for a*b

    @property
    def dynamic_range(self) -> str:
        return f"2^{self.min_log2} ~ 2^{self.max_log2}"


def _signed_width(lo: int, hi: int) -> int:
    """Bits of a two's-complement field covering the integers [lo, hi]."""
    width = 1
    while not (-(1 << (width - 1)) <= lo and hi <= (1 << (width - 1)) - 1):
        width += 1
    return width


def exponent_field_width(fmt: CodebookFormat) -> int:
    """Width P of the signed effective-exponent bus out of the decoder."""
    exps = [d.effective_exponent for d in fmt.decoded
            if d.is_finite and d.effective_exponent is not None]
    return _signed_width(min(exps), max(exps))


def kulisch_product_width(fmt: CodebookFormat) -> int:
    """The paper's ``W``: fixed-point bits covering every product ``a*b``.

    Fig. 2 gives ``W = 2*(|min_log2| + max_log2) + 1``: a product of two
    format values spans effective exponents ``2*min_log2 .. 2*max_log2``;
    with one bit per binade across that span plus a sign bit,
    ``W = 2*span + 1`` (e.g. 33 for FP(8,4), 45 for Posit(8,1), 35 for
    MERSIT(8,2)).
    """
    return 2 * fmt.dynamic_range.span + 1


def summarize(fmt: CodebookFormat) -> FormatSummary:
    """Compute the Fig. 2 table row for ``fmt``."""
    dr = fmt.dynamic_range
    return FormatSummary(
        name=fmt.name,
        min_log2=dr.min_log2,
        max_log2=dr.max_log2,
        exponent_width=exponent_field_width(fmt),
        significand_bits=fmt.max_fraction_bits() + 1,
        product_width=kulisch_product_width(fmt),
    )


def precision_segments(fmt: CodebookFormat) -> list[tuple[int, int, int]]:
    """Fig. 4 data: contiguous binade runs with constant fraction precision.

    Returns ``(start_exponent, end_exponent, fraction_bits)`` triples, with
    inclusive binade bounds, sorted by start exponent.
    """
    profile = fmt.precision_profile()
    if not profile:
        return []
    segments: list[tuple[int, int, int]] = []
    start_e, cur_bits = profile[0][0], profile[0][1]
    prev_e = start_e
    for e, bits in profile[1:]:
        if bits != cur_bits or e != prev_e + 1:
            segments.append((start_e, prev_e, cur_bits))
            start_e, cur_bits = e, bits
        prev_e = e
    segments.append((start_e, prev_e, cur_bits))
    return segments


def range_with_precision(fmt: CodebookFormat, min_bits: int) -> tuple[int, int] | None:
    """Binade range over which ``fmt`` sustains >= ``min_bits`` of fraction.

    The paper's Section 3.2 argument: MERSIT(8,2) holds 4-bit precision over
    a broader range than Posit(8,1).  Returns inclusive (lo, hi) binades or
    ``None`` if the precision is never reached.
    """
    binades = [e for e, bits in fmt.precision_profile() if bits >= min_bits]
    if not binades:
        return None
    return min(binades), max(binades)
