"""Vectorised bit-level codecs for the 8-bit format families.

The :class:`~repro.formats.base.CodebookFormat` machinery decodes through
an enumerated codebook, which is the clearest *reference semantics* but
not how a software library would ship.  This module provides direct
bit-manipulation codecs over numpy integer arrays:

* ``decode_*`` — field extraction with integer ops, no enumeration;
* ``encode_*`` — true round-to-nearest-even encoding in format space,
  including fraction rounding with carry propagation into the exponent
  and regime, saturation at the finite extremes and underflow to zero.

They are cross-validated against the codebook reference in
``tests/test_formats_bitops.py`` (decode: exact equality on all codes;
encode: the returned code is always one of the nearest-value codes).
"""

from __future__ import annotations

import numpy as np

from .fp8 import FloatFormat
from .mersit import MersitFormat
from .posit import PositFormat

__all__ = [
    "decode_fp8", "decode_posit", "decode_mersit",
    "encode_fp8", "encode_posit", "encode_mersit",
    "decode_array_fast", "encode_array_fast",
]


# ----------------------------------------------------------------------
# decode
# ----------------------------------------------------------------------
def decode_fp8(codes: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Vectorised FP(N,E) decode; inf -> +/-inf, NaN -> nan."""
    codes = np.asarray(codes, dtype=np.int64)
    n, e, f = fmt.nbits, fmt.ebits, fmt.fbits
    sign = (codes >> (n - 1)) & 1
    expf = (codes >> f) & ((1 << e) - 1)
    frac = codes & ((1 << f) - 1)
    sgn = np.where(sign == 1, -1.0, 1.0)

    normal = sgn * (1.0 + frac / (1 << f)) * np.exp2(expf - fmt.bias)
    subnormal = sgn * (frac / (1 << f)) * np.exp2(1 - fmt.bias)
    out = np.where(expf == 0, subnormal, normal)
    if fmt.reserve_infnan:
        special = expf == (1 << e) - 1
        out = np.where(special & (frac == 0), sgn * np.inf, out)
        out = np.where(special & (frac != 0), np.nan, out)
    return out


def decode_posit(codes: np.ndarray, fmt: PositFormat) -> np.ndarray:
    """Vectorised Posit(N,es) decode (paper +/-inf variant respected)."""
    codes = np.asarray(codes, dtype=np.int64)
    n, es = fmt.nbits, fmt.es
    body_w = n - 1
    mask_body = (1 << body_w) - 1

    sign = (codes >> (n - 1)) & 1
    mag = np.where(sign == 1, (-codes) & ((1 << n) - 1), codes) & mask_body

    # leading-run length of the MSB value, vectorised over the 7 body bits
    msb = (mag >> (body_w - 1)) & 1
    run = np.ones_like(mag)
    cont = np.ones_like(mag, dtype=bool)
    for i in range(1, body_w):
        bit = (mag >> (body_w - 1 - i)) & 1
        cont = cont & (bit == msb)
        run = run + cont.astype(np.int64)
    k = np.where(msb == 1, run - 1, -run)

    # shift out sign/regime/terminator, then exponent and fraction
    shift = run + 1
    payload = (mag << shift) & mask_body
    exp = (payload >> (body_w - es)) & ((1 << es) - 1) if es else np.zeros_like(mag)
    frac_w = body_w - 1 - es - 1  # max stored fraction bits
    frac_field = (payload >> (body_w - es - fmt.max_fraction_bits())) \
        & ((1 << fmt.max_fraction_bits()) - 1)

    eff = (k << es) + exp if es else k
    value = np.where(sign == 1, -1.0, 1.0) * \
        (1.0 + frac_field / (1 << fmt.max_fraction_bits())) * np.exp2(eff)

    value = np.where(codes == 0, 0.0, value)
    nar = codes == (1 << (n - 1))
    if fmt.inf_maxpos:
        pos_inf = mag == mask_body
        value = np.where(pos_inf & (sign == 0), np.inf, value)
        value = np.where((pos_inf & (sign == 1)) | nar, -np.inf, value)
    else:
        value = np.where(nar, np.nan, value)
    del frac_w
    return value


def decode_mersit(codes: np.ndarray, fmt: MersitFormat) -> np.ndarray:
    """Vectorised MERSIT(N,E) decode."""
    codes = np.asarray(codes, dtype=np.int64)
    n, es, g_count = fmt.nbits, fmt.es, fmt.ngroups
    step = fmt.regime_step
    mag_w = n - 2

    sign = (codes >> (n - 1)) & 1
    ks = (codes >> (n - 2)) & 1
    mag = codes & ((1 << mag_w) - 1)

    # first EC containing a zero, vectorised
    g = np.full_like(mag, g_count)       # g_count == "no exponent found"
    exp = np.zeros_like(mag)
    found = np.zeros_like(mag, dtype=bool)
    for gi in range(g_count):
        shift = mag_w - (gi + 1) * es
        ec = (mag >> shift) & step
        hit = (~found) & (ec != step)
        g = np.where(hit, gi, g)
        exp = np.where(hit, ec, exp)
        found |= hit

    k = np.where(ks == 1, g, -(g + 1))
    fbits = (g_count - 1 - np.minimum(g, g_count - 1)) * es
    frac = mag & ((1 << fbits) - 1)
    eff = step * k + exp
    value = np.where(sign == 1, -1.0, 1.0) * (1.0 + frac / np.exp2(fbits)) * np.exp2(eff)

    value = np.where(~found & (ks == 0), np.where(sign == 1, -0.0, 0.0), value)
    value = np.where(~found & (ks == 1),
                     np.where(sign == 1, -np.inf, np.inf), value)
    return value


# ----------------------------------------------------------------------
# encode (round-to-nearest-even in format space)
# ----------------------------------------------------------------------
def _split_float(x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(sign, binade exponent e, significand in [1,2)) for finite nonzero x."""
    sign = (np.signbit(x)).astype(np.int64)
    ax = np.abs(x)
    with np.errstate(divide="ignore"):
        e = np.floor(np.log2(ax))
    # guard against log2 rounding at binade boundaries
    e = np.where(np.exp2(e + 1) <= ax, e + 1, e)
    e = np.where(np.exp2(e) > ax, e - 1, e)
    m = ax / np.exp2(e)
    return sign, e.astype(np.int64), m


def _round_sig(m: np.ndarray, e: np.ndarray, fbits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Round significand m in [1,2) to fbits fractional bits, RNE.

    Returns (fraction_field, exponent_carry) where carry is 1 when the
    rounding overflowed to 2.0.
    """
    scaled = (m - 1.0) * np.exp2(fbits)
    frac = np.rint(scaled)  # numpy rint = round-half-to-even
    carry = (frac >= np.exp2(fbits)).astype(np.int64)
    frac = np.where(carry == 1, 0, frac)
    return frac.astype(np.int64), carry


def encode_fp8(x: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Round-to-nearest-even FP(N,E) encoding with saturation."""
    x = np.asarray(x, dtype=np.float64)
    n, e_bits, f = fmt.nbits, fmt.ebits, fmt.fbits
    out = np.zeros(x.shape, dtype=np.int64)
    finite = np.isfinite(x) & (x != 0)
    sign_all = (np.signbit(x) & (x != 0)).astype(np.int64)

    sign, e, m = _split_float(np.where(finite, x, 1.0))
    e_min = 1 - fmt.bias

    # normal path
    frac, carry = _round_sig(m, e, np.full_like(e, f, dtype=np.float64))
    e_n = e + carry
    # subnormal path: fewer effective fraction bits
    sub = e < e_min
    sub_bits = f - (e_min - e)
    scaled = np.abs(np.where(finite, x, 0.0)) / np.exp2(1 - fmt.bias - f)
    sub_field = np.rint(scaled).astype(np.int64)  # in subnormal LSBs
    sub_overflow = sub_field >= (1 << f)          # rounded up into normals

    expf = np.where(sub & ~sub_overflow, 0, e_n + fmt.bias)
    frac_out = np.where(sub & ~sub_overflow, sub_field, frac)
    expf = np.where(sub & sub_overflow, 1, expf)
    frac_out = np.where(sub & sub_overflow, 0, frac_out)

    # saturate at the largest finite code
    max_expf = ((1 << e_bits) - 2) if fmt.reserve_infnan else ((1 << e_bits) - 1)
    too_big = expf > max_expf
    expf = np.where(too_big, max_expf, expf)
    frac_out = np.where(too_big, (1 << f) - 1, frac_out)
    # underflow to zero
    zero = sub_field == 0
    code = (sign << (n - 1)) | (expf << f) | frac_out
    code = np.where(sub & zero & ~sub_overflow, sign << (n - 1), code)
    out = np.where(finite, code, sign_all << (n - 1))
    # overflow inputs (inf) saturate too
    out = np.where(np.isinf(x), (sign_all << (n - 1)) | (max_expf << f) | ((1 << f) - 1), out)
    del sub_bits
    return out


def encode_mersit(x: np.ndarray, fmt: MersitFormat) -> np.ndarray:
    """Round-to-nearest-even MERSIT(N,E) encoding with saturation."""
    x = np.asarray(x, dtype=np.float64)
    n, es, g_count = fmt.nbits, fmt.es, fmt.ngroups
    step = fmt.regime_step
    mag_w = n - 2
    e_min = -step * g_count            # smallest effective exponent
    e_max = step * g_count - 1         # largest

    finite = np.isfinite(x) & (x != 0)
    sign_all = (np.signbit(x) & (x != 0)).astype(np.int64)
    sign, e, m = _split_float(np.where(finite, x, 1.0))

    e = np.clip(e, e_min - 1, e_max + 1)
    # fraction bits depend on the regime group of the (possibly carried) exp
    for _ in range(2):  # carry can bump e into the next group once
        e_cl = np.clip(e, e_min, e_max)
        k = np.floor_divide(e_cl, step)
        g = np.where(k >= 0, k, -k - 1)
        fbits = (g_count - 1 - g) * es
        frac, carry = _round_sig(m, e, fbits.astype(np.float64))
        bumped = carry == 1
        if not np.any(bumped):
            break
        e = e + carry
        m = np.where(bumped, 1.0, m)

    # saturate / underflow after rounding
    e_cl = np.clip(e, e_min, e_max)
    sat_hi = e > e_max
    sat_lo = e < e_min
    k = np.floor_divide(e_cl, step)
    g = np.where(k >= 0, k, -k - 1)
    fbits = (g_count - 1 - g) * es
    exp_field = e_cl - k * step
    frac = np.where(sat_hi, 0, frac)
    exp_field = np.where(sat_hi, step - 1, exp_field)
    frac = np.where(sat_lo, 0, frac)
    exp_field = np.where(sat_lo, 0, exp_field)

    ks = (k >= 0).astype(np.int64)
    # magnitude: g leading all-ones groups, the exponent EC, then fraction
    mag = np.zeros_like(e)
    for gi in range(g_count):
        shift = mag_w - (gi + 1) * es
        here_ones = gi < g
        here_exp = gi == g
        field = np.where(here_ones, step, np.where(here_exp, exp_field, 0))
        mag = mag | (field << shift)
    mag = mag | frac

    code = (sign << (n - 1)) | (ks << (n - 2)) | mag
    zero_code = sign_all << (n - 1) | ((1 << mag_w) - 1)  # ks=0, all-ones
    out = np.where(finite, code, zero_code)
    # underflow: closer to zero than to minpos
    underflow = np.abs(x) < np.exp2(e_min) / 2
    out = np.where(finite & underflow, zero_code, out)
    # infinities saturate to the largest finite code
    max_code = (1 << (n - 2)) | (((1 << mag_w) - 1) ^ 1)  # ks=1, mag=111..10
    out = np.where(np.isinf(x), (sign_all << (n - 1)) | max_code, out)
    out = np.where(x == 0, zero_code & ~(1 << (n - 1)), out)
    return out


def encode_posit(x: np.ndarray, fmt: PositFormat) -> np.ndarray:
    """Round-to-nearest Posit(N,es) encoding (via the codebook; posit
    rounding interacts with two's complement in ways that the shared
    codebook path already handles exactly)."""
    return fmt.encode_array(np.asarray(x, dtype=np.float64))


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def decode_array_fast(codes: np.ndarray, fmt) -> np.ndarray:
    """Bit-level decode dispatch (falls back to the codebook for INT8)."""
    if isinstance(fmt, FloatFormat):
        return decode_fp8(codes, fmt)
    if isinstance(fmt, PositFormat):
        return decode_posit(codes, fmt)
    if isinstance(fmt, MersitFormat):
        return decode_mersit(codes, fmt)
    return fmt.decode_array(codes)


def encode_array_fast(x: np.ndarray, fmt) -> np.ndarray:
    """Bit-level encode dispatch (falls back to the codebook path)."""
    if isinstance(fmt, FloatFormat):
        return encode_fp8(x, fmt)
    if isinstance(fmt, MersitFormat):
        return encode_mersit(x, fmt)
    return fmt.encode_array(np.asarray(x, dtype=np.float64))
