"""Symmetric signed integer formats (the paper's INT8 baseline).

The paper's INT8 PTQ baseline uses symmetric quantization: codes are two's
complement integers and the represented value is simply the integer itself
(the scaling parameter lives in the quantizer, not the format).  We exclude
the most negative code so the codebook is symmetric (-127..127 for INT8),
the standard convention for symmetric DNN quantization.
"""

from __future__ import annotations

from .base import CodebookFormat, DecodedValue, ValueClass

__all__ = ["IntFormat", "INT8"]


class IntFormat(CodebookFormat):
    """Symmetric two's-complement integer format with ``nbits`` bits."""

    def __init__(self, nbits: int = 8, symmetric: bool = True):
        if nbits < 2:
            raise ValueError("IntFormat needs at least 2 bits")
        self.nbits = nbits
        self.symmetric = symmetric
        self.name = f"INT{nbits}"

    def decode(self, code: int) -> DecodedValue:
        if not 0 <= code < self.ncodes:
            raise ValueError(f"code {code} out of range for {self.name}")
        half = self.ncodes // 2
        signed = code - self.ncodes if code >= half else code
        if self.symmetric and signed == -half:
            # -128 aliases to -127: keep the codebook symmetric.
            signed = -(half - 1)
        if signed == 0:
            return DecodedValue(code=code, value=0.0, value_class=ValueClass.ZERO)
        return DecodedValue(
            code=code,
            value=float(signed),
            sign=1 if signed < 0 else 0,
            effective_exponent=abs(signed).bit_length() - 1,
            fraction_field=0,
            fraction_bits=0,
        )


#: The paper's INT8 baseline format.
INT8 = IntFormat(8)
