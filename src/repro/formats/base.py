"""Common machinery shared by every 8-bit (and general N-bit) data format.

Every format in this package is a *codebook format*: a bijection between an
N-bit code and a representable value (possibly zero, +/-inf or NaN).  For
N <= 12 the whole codebook fits comfortably in memory, so quantization is
implemented once here as nearest-value rounding against the sorted set of
finite representable values, and each concrete format only has to provide
``decode(code)`` and, optionally, a specialised ``encode(value)``.

The decode/encode pair is the *reference semantics* of a format; the
gate-level decoders in :mod:`repro.hardware.decoders` are verified
exhaustively against it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = [
    "DecodedValue",
    "ValueClass",
    "CodebookFormat",
    "DynamicRange",
]


class ValueClass:
    """Enumeration of the classes a decoded code can fall into."""

    FINITE = "finite"
    ZERO = "zero"
    INF = "inf"
    NAN = "nan"


@dataclass(frozen=True)
class DecodedValue:
    """The full decomposition of one code of a format.

    Attributes
    ----------
    code:
        The raw integer code, ``0 <= code < 2**nbits``.
    value:
        The represented real value (``0.0``, ``+/-inf`` or ``nan`` for the
        special classes).
    value_class:
        One of the :class:`ValueClass` constants.
    sign:
        0 for non-negative, 1 for negative.
    effective_exponent:
        The power-of-two scale of the value, i.e. the ``e`` in
        ``(-1)^s * 2^e * (1 + frac)``.  ``None`` for specials.
    fraction_field:
        The raw fraction bits as an integer.  ``None`` for specials.
    fraction_bits:
        Number of fraction bits carried by this particular code (dynamic for
        Posit/MERSIT, static for FP within the normal range).
    regime:
        The regime value ``k`` for regime-bearing formats, else ``None``.
    """

    code: int
    value: float
    value_class: str = ValueClass.FINITE
    sign: int = 0
    effective_exponent: int | None = None
    fraction_field: int | None = None
    fraction_bits: int | None = None
    regime: int | None = None

    @property
    def is_finite(self) -> bool:
        return self.value_class == ValueClass.FINITE

    @property
    def significand(self) -> float:
        """``1 + frac`` scaled significand, or 0.0 for specials."""
        if not self.is_finite:
            return 0.0
        if self.fraction_bits in (None, 0):
            return 1.0
        return 1.0 + self.fraction_field / (1 << self.fraction_bits)


@dataclass(frozen=True)
class DynamicRange:
    """Finite dynamic range of a format, expressed in powers of two.

    ``min_log2``/``max_log2`` bound the *binade* of the smallest and largest
    positive finite representable values: ``2^min_log2`` is the smallest
    positive value and ``2^max_log2`` the binade of the largest (the paper's
    Fig. 2 convention, e.g. FP(8,4): ``2^-9 ... 2^7``).
    """

    min_log2: int
    max_log2: int

    @property
    def span(self) -> int:
        """Width of the dynamic range in octaves: ``|min| + max``."""
        return -self.min_log2 + self.max_log2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"2^{self.min_log2} ~ 2^{self.max_log2}"


class CodebookFormat:
    """Base class for enumerable bit-exact numeric formats.

    Subclasses implement :meth:`decode` and set ``nbits`` and ``name``.
    Everything else (codebooks, quantization, range analysis) is derived.
    """

    #: total number of bits in a code word
    nbits: int
    #: short human-readable name, e.g. ``"MERSIT(8,2)"``
    name: str

    # ------------------------------------------------------------------
    # interface to implement
    # ------------------------------------------------------------------
    def decode(self, code: int) -> DecodedValue:
        """Decode an integer code into its :class:`DecodedValue`."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # derived machinery
    # ------------------------------------------------------------------
    @property
    def ncodes(self) -> int:
        return 1 << self.nbits

    @cached_property
    def decoded(self) -> tuple[DecodedValue, ...]:
        """All codes decoded, indexed by code."""
        return tuple(self.decode(c) for c in range(self.ncodes))

    @cached_property
    def values(self) -> np.ndarray:
        """Represented value of every code (float64), indexed by code."""
        return np.array([d.value for d in self.decoded], dtype=np.float64)

    @cached_property
    def finite_values(self) -> np.ndarray:
        """Sorted, deduplicated array of finite representable values.

        Zero is included exactly once even when the format has signed zero.
        """
        vals = [d.value for d in self.decoded if d.is_finite or d.value_class == ValueClass.ZERO]
        return np.unique(np.array(vals, dtype=np.float64))

    @cached_property
    def positive_finite_values(self) -> np.ndarray:
        vals = self.finite_values
        return vals[vals > 0.0]

    @cached_property
    def _sorted_codes(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted finite values incl. zero, code achieving each value)."""
        pairs: dict[float, int] = {}
        for d in self.decoded:
            if d.is_finite or d.value_class == ValueClass.ZERO:
                # prefer the positive-sign representation when duplicated
                if d.value not in pairs or d.sign == 0:
                    pairs[d.value] = d.code
        values = np.array(sorted(pairs), dtype=np.float64)
        codes = np.array([pairs[v] for v in values], dtype=np.int64)
        return values, codes

    @property
    def max_value(self) -> float:
        """Largest finite representable magnitude."""
        return float(self.finite_values[-1])

    @property
    def quantization_gain(self) -> float:
        """Value the observed tensor max is mapped onto when quantizing.

        For uniform-precision formats (INT8, FP8) the whole range is usable,
        so the max maps onto ``max_value`` — the familiar ``x * 127 / s``
        for INT8.  Tapered formats (Posit, MERSIT) override this with 1.0:
        mapping the max onto maxpos would park all data in the zero-
        fraction-bit regime tail, so they instead scale data into the
        high-precision band around 2^0 (the convention of the posit DNN
        literature the paper builds on [2, 8]).
        """
        return self.max_value

    @property
    def min_positive(self) -> float:
        """Smallest positive representable value."""
        return float(self.positive_finite_values[0])

    @cached_property
    def dynamic_range(self) -> DynamicRange:
        """Finite dynamic range in the paper's Fig. 2 convention."""
        lo = int(round(math.log2(self.min_positive)))
        hi = int(math.floor(math.log2(self.max_value)))
        return DynamicRange(lo, hi)

    # ------------------------------------------------------------------
    # quantization
    # ------------------------------------------------------------------
    @cached_property
    def _midpoints(self) -> np.ndarray:
        vals = self.finite_values
        return (vals[1:] + vals[:-1]) / 2.0

    @cached_property
    def _midpoints_ext(self) -> np.ndarray:
        # NaN-padded so the tie fix-up below can index one-past-the-end
        # (NaN never compares equal, so the pad entry never bumps)
        return np.concatenate([self._midpoints, [np.nan]])

    def _reference_index(self, x: np.ndarray) -> np.ndarray:
        """Index into ``finite_values`` of the nearest value to each element.

        Tie-breaking convention: **round half away from zero**.  With
        ``side="left"`` an input exactly on a midpoint resolves to the lower
        value, which is away-from-zero for negative midpoints but toward-zero
        for positive ones, so positive exact-midpoint hits are bumped up one
        index.  The LUT kernel (:mod:`repro.kernels.lut`) folds the same rule
        into its thresholds; ``tests/test_kernels_lut.py`` pins both.
        """
        clean = np.nan_to_num(x, nan=0.0, posinf=self.max_value, neginf=-self.max_value)
        clipped = np.clip(clean, -self.max_value, self.max_value)
        idx = np.searchsorted(self._midpoints, clipped, side="left")
        m = self._midpoints_ext[idx]
        return idx + ((m == clipped) & (clipped > 0))

    def quantize_reference(self, x: np.ndarray) -> np.ndarray:
        """The reference ``searchsorted`` implementation of :meth:`quantize`.

        Always available regardless of the active kernel backend; the LUT
        kernel is validated bit-exact against this path.
        """
        x = np.asarray(x, dtype=np.float64)
        return self.finite_values[self._reference_index(x)]

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round every element of ``x`` to the nearest representable value.

        Values beyond the finite range saturate to ``+/-max_value``;
        non-finite inputs are saturated likewise (NaN maps to 0); ties round
        half away from zero.  Dispatches to the bit-LUT kernel
        (:mod:`repro.kernels`) unless ``REPRO_KERNELS=reference`` selects the
        ``searchsorted`` path; both are bit-exact with each other.
        """
        from ..kernels import LUT_MAX_BITS, get_backend, kernel_for

        if self.nbits <= LUT_MAX_BITS and get_backend() == "lut":
            return kernel_for(self).quantize(x)
        return self.quantize_reference(x)

    def encode(self, value: float) -> int:
        """Code of the representable value nearest to ``value``."""
        _, codes = self._sorted_codes
        idx = self._reference_index(np.asarray(float(value)))
        return int(codes[idx])

    def encode_array(self, x: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`encode`: nearest-value codes for an array.

        Dispatches through the same kernel switch as :meth:`quantize`.
        """
        from ..kernels import LUT_MAX_BITS, get_backend, kernel_for

        if self.nbits <= LUT_MAX_BITS and get_backend() == "lut":
            return kernel_for(self).encode(x)
        _, codes = self._sorted_codes
        return codes[self._reference_index(np.asarray(x, dtype=np.float64))]

    def decode_array(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised decode of an integer code array to values."""
        return self.values[np.asarray(codes, dtype=np.int64)]

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def fraction_bits_at(self, value: float) -> int:
        """Fraction precision (bits) of the representable value nearest ``value``."""
        code = self.encode(value)
        d = self.decoded[code]
        return 0 if d.fraction_bits is None else d.fraction_bits

    def max_fraction_bits(self) -> int:
        return max((d.fraction_bits or 0) for d in self.decoded if d.is_finite)

    def precision_profile(self) -> list[tuple[int, int]]:
        """(effective_exponent, fraction_bits) for every positive finite binade.

        Used by the Fig. 4 reproduction: for each power-of-two binade the
        format covers, how many fraction bits are available there.
        """
        prof: dict[int, int] = {}
        for d in self.decoded:
            if d.is_finite and d.sign == 0 and d.effective_exponent is not None:
                bits = d.fraction_bits or 0
                prof[d.effective_exponent] = max(prof.get(d.effective_exponent, 0), bits)
        return sorted(prof.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CodebookFormat) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)
