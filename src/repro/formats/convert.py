"""Cross-format code conversion and requantization-error analysis.

Accelerators mixing formats (e.g. MERSIT weights with FP8 activations, or
migrating a deployed INT8 model to MERSIT) need code-to-code conversion.
Conversion goes through the exact real value of each source code and
re-rounds into the destination codebook, so it is the best possible
(nearest-value) static conversion; :func:`conversion_error` quantifies
the double-rounding loss relative to quantizing the original data
directly.
"""

from __future__ import annotations

import numpy as np

from .base import CodebookFormat

__all__ = ["convert_codes", "conversion_table", "conversion_error"]


def conversion_table(src: CodebookFormat, dst: CodebookFormat) -> np.ndarray:
    """The full src-code -> dst-code lookup table (length ``src.ncodes``).

    Special codes map through their saturated/zeroed values: inf saturates
    to the destination's max finite code, NaN maps to zero.
    """
    values = np.nan_to_num(src.values, nan=0.0,
                           posinf=dst.max_value, neginf=-dst.max_value)
    return dst.encode_array(values)


def convert_codes(codes: np.ndarray, src: CodebookFormat,
                  dst: CodebookFormat) -> np.ndarray:
    """Convert an array of ``src`` codes to nearest-value ``dst`` codes."""
    table = conversion_table(src, dst)
    return table[np.asarray(codes, dtype=np.int64)]


def conversion_error(x: np.ndarray, src: CodebookFormat,
                     dst: CodebookFormat) -> dict[str, float]:
    """Double-rounding analysis for requantizing data already in ``src``.

    Returns RMS errors of: quantizing ``x`` directly to ``dst``
    (``direct``), going through ``src`` first (``chained``), and the
    excess of chained over direct (``excess``, >= 0 up to rounding ties).
    """
    x = np.asarray(x, dtype=np.float64)
    direct = dst.quantize(x)
    through = dst.quantize(src.quantize(x))
    rms = lambda e: float(np.sqrt(np.mean(e ** 2)))
    direct_err = rms(x - direct)
    chained_err = rms(x - through)
    return {
        "direct": direct_err,
        "chained": chained_err,
        "excess": chained_err - direct_err,
    }
