"""FP(N,E): low-bit floating point with subnormals (paper Fig. 1a).

The paper's FP8 family is an IEEE-like miniature float: 1 sign bit, ``E``
exponent bits, ``N-1-E`` fraction bits, exponent bias ``2^(E-1)-1``,
subnormal representation when the exponent field is zero, and the all-ones
exponent reserved for inf/NaN.  With this convention FP(8,4) has dynamic
range ``2^-9 ... 2^7``, exactly as the table in Fig. 2 states.

The class is parameterised over both N and E so the same code also provides
FP16-style references for tests.
"""

from __future__ import annotations

from .base import CodebookFormat, DecodedValue, ValueClass

__all__ = ["FloatFormat", "FP8_E2", "FP8_E3", "FP8_E4", "FP8_E5"]


class FloatFormat(CodebookFormat):
    """IEEE-like float with ``nbits`` total bits and ``ebits`` exponent bits.

    Parameters
    ----------
    nbits, ebits:
        Word width and exponent field width. Fraction width is
        ``nbits - 1 - ebits``.
    reserve_infnan:
        When True (paper convention) the all-ones exponent encodes
        inf (fraction == 0) and NaN (fraction != 0).  When False every
        exponent value encodes normal numbers, extending the range by one
        binade (the "FN" convention of some FP8 proposals).
    """

    def __init__(self, nbits: int = 8, ebits: int = 4, reserve_infnan: bool = True):
        if ebits < 1 or ebits > nbits - 2:
            raise ValueError(f"need 1 <= ebits <= nbits-2, got ebits={ebits}, nbits={nbits}")
        self.nbits = nbits
        self.ebits = ebits
        self.fbits = nbits - 1 - ebits
        self.bias = (1 << (ebits - 1)) - 1
        self.reserve_infnan = reserve_infnan
        self.name = f"FP({nbits},{ebits})"
        if not reserve_infnan:
            self.name += "fn"

    # ------------------------------------------------------------------
    def decode(self, code: int) -> DecodedValue:
        if not 0 <= code < self.ncodes:
            raise ValueError(f"code {code} out of range for {self.name}")
        sign = (code >> (self.nbits - 1)) & 1
        expfield = (code >> self.fbits) & ((1 << self.ebits) - 1)
        frac = code & ((1 << self.fbits) - 1)
        sgn = -1.0 if sign else 1.0

        if self.reserve_infnan and expfield == (1 << self.ebits) - 1:
            if frac == 0:
                return DecodedValue(code=code, value=sgn * float("inf"),
                                    value_class=ValueClass.INF, sign=sign)
            return DecodedValue(code=code, value=float("nan"),
                                value_class=ValueClass.NAN, sign=sign)

        if expfield == 0:
            if frac == 0:
                return DecodedValue(code=code, value=sgn * 0.0,
                                    value_class=ValueClass.ZERO, sign=sign)
            # subnormal: value = (-1)^s * 2^(1-bias) * (frac / 2^fbits)
            # expressed in normalised (1+f) form for the decoder contract:
            # the leading 1 of frac becomes the hidden bit and the bits
            # below it form the (shortened) effective fraction.
            shift = self.fbits - frac.bit_length() + 1
            eff_bits = self.fbits - shift
            norm_frac = frac - (1 << (frac.bit_length() - 1))
            eff_exp = 1 - self.bias - shift
            value = sgn * (frac / (1 << self.fbits)) * 2.0 ** (1 - self.bias)
            return DecodedValue(
                code=code, value=value, sign=sign,
                effective_exponent=eff_exp,
                fraction_field=norm_frac,
                # effective precision shrinks as the subnormal gets smaller
                fraction_bits=eff_bits,
            )

        eff_exp = expfield - self.bias
        value = sgn * (1.0 + frac / (1 << self.fbits)) * 2.0 ** eff_exp
        return DecodedValue(
            code=code, value=value, sign=sign,
            effective_exponent=eff_exp,
            fraction_field=frac,
            fraction_bits=self.fbits,
        )


#: The four FP8 configurations evaluated in the paper.
FP8_E2 = FloatFormat(8, 2)
FP8_E3 = FloatFormat(8, 3)
FP8_E4 = FloatFormat(8, 4)
FP8_E5 = FloatFormat(8, 5)
