"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
formats
    List the supported formats with ranges and precision.
inspect FORMAT [VALUE|CODE]
    Decode a code (``0x..``/``0b..``/int) or encode a value.
ptq MODEL [--formats F1,F2] [--eval N] [--mode fakequant|engine]
    Run the paper's PTQ recipe on one zoo model (optionally through the
    bit-true quantized inference engine).
hardware [--formats F1,F2] [--stream N]
    Build the MAC units, verify exactness and report area/power.
experiments [NAMES...] [--jobs N] [--seeds K] [--cell-timeout S] [--retries N]
    Run experiment drivers (table1 fig2 fig4 fig6 fig7 table3 headline
    table2 engine_delta frontier, or ``all``); defaults to the fast
    set.  ``frontier`` fills the mixed-precision accuracy-vs-hardware-
    cost Pareto frontier (per-layer format allocation + DFQ bias
    correction).  ``--jobs`` fans the independent-cell grids (table2,
    frontier, fig4, fig6, table3) across the persistent worker pool;
    ``--seeds K`` adds a K-seed calibration axis to table2/frontier
    (error bars); ``--cell-timeout``/``--retries`` configure the
    resilient executor (hung-worker deadline, retry budget).
serve MODEL [--format F] [--mode fakequant|engine] [--requests N]
      [--concurrency C] [--open --rate R] [--shards N] [--stats]
      [--host H --port P [--drain-timeout S]]
    Run the dynamic-batching inference service and drive it with the
    deterministic load generator; ``--shards N`` fans requests across N
    worker processes sharing calibrated state through shared memory;
    ``--stats`` prints the latency/queue/batch metrics afterwards
    (fleet-wide exact percentiles when sharded).  With ``--host``/
    ``--port`` the service is exposed through the TCP gateway instead of
    the load generator: the process prints ``gateway listening on H:P``
    and serves until SIGTERM/SIGINT triggers a graceful drain (in-flight
    requests finish, new ones get a structured ``draining`` error) and
    the process exits 0.
faults
    List the fault-injection points of the resilience harness and
    whatever ``$REPRO_FAULTS`` currently arms.
analyze netlist [NAMES...|--all] [--json]
    Structural verification + levelized depth report over the registered
    gate-level netlists (decoders, encoders, MACs).
analyze lint [PATHS...] [--json]
    Numerics linter over a source tree (default: ``src/repro``).
analyze concurrency [PATHS...] [--json]
    Concurrency analyzer (lock order, blocking-under-lock, shared state,
    fork-after-thread, shm lifecycle) over a source tree.
"""

from __future__ import annotations

import argparse
import re

import numpy as np

__all__ = ["main", "build_parser"]


def _split_formats(spec: str) -> list[str]:
    """Split a comma-separated format list, ignoring commas inside parens."""
    return [tok.strip() for tok in re.split(r",(?![^()]*\))", spec) if tok.strip()]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro", description="MERSIT (DAC'24) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("formats", help="list supported formats")

    p_inspect = sub.add_parser("inspect", help="inspect one format")
    p_inspect.add_argument("format")
    p_inspect.add_argument("token", nargs="?", default=None,
                           help="a code (0x.., 0b.., int) or a float value")

    p_ptq = sub.add_parser("ptq", help="PTQ one zoo model")
    p_ptq.add_argument("model")
    p_ptq.add_argument("--formats", default="INT8,FP(8,4),Posit(8,1),MERSIT(8,2)")
    p_ptq.add_argument("--eval", type=int, default=300, dest="eval_n")
    p_ptq.add_argument("--calib", type=int, default=100, dest="calib_n")
    p_ptq.add_argument("--mode", default="fakequant",
                       choices=("fakequant", "engine"),
                       help="fakequant estimate or bit-true engine inference")

    p_hw = sub.add_parser("hardware", help="MAC area/power report")
    p_hw.add_argument("--formats", default="FP(8,4),Posit(8,1),MERSIT(8,2)")
    p_hw.add_argument("--stream", type=int, default=256)

    p_exp = sub.add_parser("experiments", help="run experiment drivers")
    p_exp.add_argument("names", nargs="*", default=[],
                       help="experiment names, or 'all' (default: fast set)")
    p_exp.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the independent-cell "
                            "grids (table2, frontier, fig4, fig6, table3)")
    p_exp.add_argument("--seeds", type=int, default=1,
                       help="calibration seeds per table2/frontier cell "
                            "(>1 adds the error-bar axis)")
    p_exp.add_argument("--cell-timeout", type=float, default=None,
                       dest="cell_timeout",
                       help="per-cell deadline (s) for the table2/frontier "
                            "pool")
    p_exp.add_argument("--retries", type=int, default=None,
                       help="retry budget for failing table2/frontier cells")

    p_serve = sub.add_parser(
        "serve", help="run the dynamic-batching inference service")
    p_serve.add_argument("model", help="zoo model name, or micro-cnn/"
                         "micro-mlp/micro-attn (no training cost)")
    p_serve.add_argument("--format", default="MERSIT(8,2)", dest="fmt")
    p_serve.add_argument("--mode", default="fakequant",
                         choices=("fakequant", "engine"))
    p_serve.add_argument("--requests", type=int, default=64)
    p_serve.add_argument("--concurrency", type=int, default=8,
                         help="closed-loop client threads")
    p_serve.add_argument("--open", action="store_true", dest="open_loop",
                         help="open-loop arrivals instead of closed-loop")
    p_serve.add_argument("--rate", type=float, default=200.0,
                         help="open-loop arrival rate (req/s)")
    p_serve.add_argument("--max-batch", type=int, default=8)
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0)
    p_serve.add_argument("--queue-depth", type=int, default=64)
    p_serve.add_argument("--workers", type=int, default=2)
    p_serve.add_argument("--deadline-ms", type=float, default=None,
                         help="per-request deadline")
    p_serve.add_argument("--calib", type=int, default=64, dest="calib_n")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--shards", type=int, default=0,
                         help="fan out across N shard worker processes "
                         "(0 = in-process service)")
    p_serve.add_argument("--stats", action="store_true",
                         help="print service metrics after the run "
                         "(fleet-wide percentiles with --shards)")
    p_serve.add_argument("--host", default=None,
                         help="expose the service over TCP on this "
                         "address (gateway mode; implies no loadgen)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="gateway port (0 picks a free port; "
                         "the bound port is printed on stdout)")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         dest="drain_timeout",
                         help="seconds a graceful drain waits for "
                         "in-flight requests (gateway mode)")

    p_faults = sub.add_parser(
        "faults", help="list fault-injection points and armed faults")
    p_faults.add_argument("--spec", default=None,
                          help="parse this spec instead of $REPRO_FAULTS")

    p_an = sub.add_parser("analyze", help="static analysis passes")
    an_sub = p_an.add_subparsers(dest="analyze_command", required=True)
    p_nl = an_sub.add_parser("netlist", help="verify gate-level netlists")
    p_nl.add_argument("names", nargs="*", default=[],
                      help="registered variant names (see --all)")
    p_nl.add_argument("--all", action="store_true", dest="all_variants",
                      help="verify every registered variant")
    _add_report_args(p_nl, paths=False)
    _add_report_args(an_sub.add_parser("lint", help="numerics linter"))
    _add_report_args(an_sub.add_parser(
        "concurrency", help="lock-order / shared-state / shm analyzer"))
    return parser


def _add_report_args(sub: argparse.ArgumentParser,
                     paths: bool = True) -> argparse.ArgumentParser:
    """The shared ``[PATHS...] --json`` tail of every ``analyze`` subcommand.

    ``netlist`` takes variant names instead of paths but shares the
    ``--json`` switch (and with it the exit-code contract: 0 clean,
    1 findings, 2 usage error from argparse).
    """
    if paths:
        sub.add_argument("paths", nargs="*", default=[],
                         help="files or directories (default: src/repro)")
    sub.add_argument("--json", action="store_true",
                     help="machine-readable report on stdout")
    return sub


def _cmd_formats() -> int:
    from .formats import available_formats, get_format
    from .formats.analysis import summarize
    print(f"{'name':14s} {'range':>14s}  P  M   W  max frac")
    for name in available_formats():
        s = summarize(get_format(name))
        print(f"{name:14s} {s.dynamic_range:>14s} {s.exponent_width:>2d} "
              f"{s.significand_bits:>2d} {s.product_width:>3d} "
              f"{s.significand_bits - 1:>8d}")
    return 0


def _cmd_inspect(args) -> int:
    from .formats import get_format
    fmt = get_format(args.format)
    if args.token is None:
        from .formats.analysis import precision_segments
        print(f"{fmt.name}: range {fmt.dynamic_range}, "
              f"{len(fmt.finite_values)} finite values")
        for lo, hi, bits in precision_segments(fmt):
            print(f"  2^{lo:>4d} .. 2^{hi:>4d}: {bits} fraction bits")
        return 0
    token = args.token
    if token.lower().startswith(("0x", "0b")) or token.isdigit():
        code = int(token, 0)
        d = fmt.decode(code)
        print(f"code 0b{code:0{fmt.nbits}b}: {d.value} ({d.value_class})")
        if d.is_finite:
            print(f"  sign={d.sign} regime={d.regime} "
                  f"eff_exp={d.effective_exponent} "
                  f"frac={d.fraction_field}/{1 << (d.fraction_bits or 0)}")
    else:
        value = float(token)
        code = fmt.encode(value)
        print(f"{value} -> code 0x{code:02X} = {fmt.decode(code).value}")
    return 0


def _cmd_ptq(args) -> int:
    from .autograd import Tensor
    from .quant import (PTQConfig, dequantize_model, parse_format_spec,
                        quantize_model)
    from .zoo import ALL_MODELS, dataset, evaluate_text, evaluate_vision, glue_task, pretrained
    if args.model not in ALL_MODELS:
        print(f"unknown model {args.model!r}; available: {sorted(ALL_MODELS)}")
        return 2
    entry = ALL_MODELS[args.model]
    model, ref = pretrained(args.model)
    if entry.kind == "vision":
        calib = dataset().calibration_split(args.calib_n)
        test = dataset().test_split(args.eval_n)
        fwd = lambda m, b: m(Tensor(b[0]))
        score = lambda: evaluate_vision(model, test)
    else:
        task = glue_task(entry.task)
        calib = task.calibration_split(args.calib_n)
        test = task.test_split(args.eval_n)
        fwd = lambda m, b: m(b[0], b[1])
        score = lambda: evaluate_text(model, test, entry.metric)
    fp32 = score()
    print(f"{args.model} FP32 {entry.metric}: {fp32:.2f} (train-time ref {ref:.2f})")
    for name in _split_formats(args.formats):
        default, layer_formats = parse_format_spec(name.strip())
        quantize_model(model,
                       PTQConfig(weight_format=default,
                                 layer_formats=layer_formats or None,
                                 mode=args.mode),
                       calib.batches(50), forward=fwd)
        s = score()
        dequantize_model(model)
        print(f"  {name.strip():12s} {s:7.2f}  (drop {fp32 - s:+.2f})")
    return 0


def _cmd_hardware(args) -> int:
    from .formats import get_format
    from .hardware import MacUnit
    rng = np.random.default_rng(0)
    w = rng.integers(0, 256, args.stream)
    a = rng.integers(0, 256, args.stream)
    print(f"{'format':12s} {'exact':>6s} {'area um^2':>10s} {'power uW':>9s} "
          f"{'path ns':>8s} {'levels':>7s} {'acc bits':>9s}")
    for name in _split_formats(args.formats):
        fmt = get_format(name)
        mac = MacUnit(fmt)
        exact = mac.accumulate_hw(w[:48], a[:48]) == mac.accumulate_reference(w[:48], a[:48])
        area = mac.area().total
        power = mac.power(w, a).total
        path = mac.circuit.critical_path()
        depth = mac.circuit.logic_depth()
        print(f"{fmt.name:12s} {'yes' if exact else 'NO':>6s} {area:10.0f} "
              f"{power:9.1f} {path:8.2f} {depth:7d} {mac.acc_width:9d}")
    return 0


def _cmd_analyze(args) -> int:
    from .analysis import (
        analyze_concurrency, analyze_lint, analyze_netlists,
        render_depth_report,
    )
    from .analysis.levelize import DepthRow
    if args.analyze_command == "netlist":
        names = None if (args.all_variants or not args.names) else args.names
        report = analyze_netlists(names)
        if args.json:
            print(report.to_json())
        else:
            rows = [DepthRow(variant=n, logic_depth=d["logic_depth"],
                             gate_count=d["gate_count"],
                             critical_path_ns=d["critical_path_ns"],
                             depth_by_output=d["depth_by_output"])
                    for n, d in report.summary["depth"].items()]
            print(render_depth_report(rows))
            print()
            print(report.render())
    else:
        run = (analyze_concurrency if args.analyze_command == "concurrency"
               else analyze_lint)
        report = run(args.paths or None)
        if args.json:
            print(report.to_json())
        else:
            print(report.render())
    return 0 if report.ok else 1


def _cmd_experiments(args) -> int:
    from .experiments.runner import main as run_experiments
    # always pass an explicit argv: None would make the runner re-parse
    # this process's sys.argv (and swallow this CLI's own arguments)
    argv = list(args.names)
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.seeds != 1:
        argv += ["--seeds", str(args.seeds)]
    if args.cell_timeout is not None:
        argv += ["--cell-timeout", str(args.cell_timeout)]
    if args.retries is not None:
        argv += ["--retries", str(args.retries)]
    return run_experiments(argv)


def _cmd_serve(args) -> int:
    from .serve import (
        BatchPolicy, InferenceService, ModelRepository, ShardRouter,
        micro_specs, run_closed_loop, run_open_loop, zoo_specs,
    )
    micro = micro_specs()
    if args.model in micro:
        specs, specs_kind, zoo_names = micro, "micro", None
    else:
        try:
            specs = zoo_specs([args.model])
            specs_kind, zoo_names = "zoo", [args.model]
        except KeyError:
            from .zoo import ALL_MODELS
            print(f"unknown model {args.model!r}; available: "
                  f"{sorted(ALL_MODELS) + sorted(micro)}")
            return 2
    policy = BatchPolicy(max_batch=args.max_batch,
                         max_wait_ms=args.max_wait_ms,
                         queue_depth=args.queue_depth, workers=args.workers)
    if args.shards > 0:
        service = ShardRouter(
            shards=args.shards, specs=specs_kind, zoo_names=zoo_names,
            preheat=[(args.model, args.fmt, args.mode)],
            policy=policy, calib_n=args.calib_n)
    else:
        repository = ModelRepository(specs, calib_n=args.calib_n)
        service = InferenceService(repository, policy)
    if args.host is not None or args.port is not None:
        return _serve_gateway(service, args)
    with service:
        if args.open_loop:
            report = run_open_loop(
                service, args.model, args.fmt, args.mode,
                requests=args.requests, rate_rps=args.rate,
                seed=args.seed, deadline_ms=args.deadline_ms)
        else:
            report = run_closed_loop(
                service, args.model, args.fmt, args.mode,
                requests=args.requests, concurrency=args.concurrency,
                seed=args.seed, deadline_ms=args.deadline_ms)
        print(report.render())
        if args.stats:
            print(service.render_stats())
    return 0 if report.ok == report.requests else 1


def _serve_gateway(service, args) -> int:
    """Gateway mode: serve over TCP until a signal triggers drain."""
    import signal
    from .serve.gateway import Gateway

    gateway = Gateway(service,
                      host=args.host if args.host is not None
                      else "127.0.0.1",
                      port=args.port if args.port is not None else 0,
                      drain_timeout_s=args.drain_timeout,
                      own_service=True)
    try:
        gateway.start()
    except RuntimeError as exc:
        service.close(drain=False)
        print(f"gateway failed to start: {exc}")
        return 1

    def _drain_handler(signum, frame):
        print(f"gateway: received signal {signum}; draining", flush=True)
        gateway.request_drain()

    signal.signal(signal.SIGTERM, _drain_handler)
    signal.signal(signal.SIGINT, _drain_handler)
    print(f"gateway listening on {gateway.host}:{gateway.port}",
          flush=True)
    while not gateway.wait_closed(timeout=0.5):
        pass
    if args.stats:
        print(gateway.render_stats())
    print("gateway drained; exiting", flush=True)
    return 0


def _cmd_faults(args) -> int:
    from .resilience import faults
    try:
        specs = (faults.parse_spec(args.spec) if args.spec is not None
                 else faults.active_faults())
    except faults.FaultSpecError as exc:
        print(f"invalid fault spec: {exc}")
        return 2
    print(faults.describe(specs))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "formats":
        return _cmd_formats()
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "ptq":
        return _cmd_ptq(args)
    if args.command == "hardware":
        return _cmd_hardware(args)
    if args.command == "experiments":
        return _cmd_experiments(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "faults":
        return _cmd_faults(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
