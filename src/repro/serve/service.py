"""The inference service: repository + batching scheduler + invariant math.

:class:`InferenceService` is the front door of :mod:`repro.serve`.  A
request names a model, a format and a PTQ mode and carries one sample;
the scheduler coalesces concurrent requests per ``model|format|mode``
key and a worker runs one batched forward for the whole group.

**The differential guarantee.**  Batched execution is *bit-identical* to
serial single-sample inference — a request's result never depends on
which other requests it happened to share a batch with.  Two mechanisms
make that true:

* engine mode is invariant by construction: the Kulisch accumulator is
  exact integer arithmetic, so per-sample results cannot depend on batch
  shape;
* fakequant mode computes in float through BLAS, whose GEMM kernels pick
  different micro-kernels (and thus different FP summation orders) for
  different batch heights.  Every batched forward therefore runs under
  :class:`repro.autograd.batch_invariant_matmul`, which forces 2-D
  matmuls to be row-stable; all other ops in the layer library are
  elementwise, reductions over non-batch axes, or per-sample broadcast
  matmuls, and are invariant already.

:meth:`infer_serial` is the reference path used by the differential
tests: same collate/run code, batch of one, no scheduler involved.
"""

from __future__ import annotations

import numpy as np

from ..autograd import batch_invariant_matmul, no_grad
from .metrics import ServeMetrics
from .repository import ModelRepository
from .scheduler import BatchPolicy, BatchingScheduler, ServeFuture

__all__ = ["InferenceService", "execute_batch"]


def execute_batch(repository: ModelRepository, key: str,
                  inputs_list: list) -> list[np.ndarray]:
    """Run one batched forward for ``key`` over a repository.

    This is *the* data path of the differential guarantee — the
    in-process service's scheduler workers, the shard workers'
    schedulers and the serial reference all call this one function, so
    any two deployments serving the same repository state produce
    byte-identical outputs.
    """
    model_name, fmt, mode = key.split("|")
    net, spec = repository.resolve(model_name, fmt, mode)
    batch = spec.collate(inputs_list)
    with no_grad(), batch_invariant_matmul():
        out = np.asarray(spec.run(net, batch))
    if out.shape[0] != len(inputs_list):
        raise RuntimeError(
            f"spec {spec.name!r} returned {out.shape[0]} outputs "
            f"for {len(inputs_list)} requests")
    return [out[i] for i in range(out.shape[0])]


class InferenceService:
    """Dynamic-batching inference over a :class:`ModelRepository`."""

    def __init__(self, repository: ModelRepository | None = None,
                 policy: BatchPolicy | None = None,
                 metrics: ServeMetrics | None = None):
        self.repository = repository or ModelRepository()
        self.metrics = metrics or ServeMetrics()
        self.scheduler = BatchingScheduler(self._execute, policy, self.metrics)
        self.policy = self.scheduler.policy

    # ------------------------------------------------------------------
    # batched execution (scheduler worker side)
    # ------------------------------------------------------------------
    def _execute(self, key: str, inputs_list: list) -> list[np.ndarray]:
        return execute_batch(self.repository, key, inputs_list)

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(self, model: str, inputs, fmt: str = "MERSIT(8,2)",
               mode: str = "fakequant",
               deadline_ms: float | None = None) -> ServeFuture:
        """Enqueue one request; raises structured errors on backpressure."""
        key = self.repository.model_key(model, fmt, mode)
        return self.scheduler.submit(key, inputs, deadline_ms=deadline_ms)

    def infer(self, model: str, inputs, fmt: str = "MERSIT(8,2)",
              mode: str = "fakequant", deadline_ms: float | None = None,
              timeout: float | None = 60.0) -> np.ndarray:
        """Submit and block for the result (convenience wrapper)."""
        return self.submit(model, inputs, fmt, mode,
                           deadline_ms=deadline_ms).result(timeout)

    def infer_serial(self, model: str, inputs, fmt: str = "MERSIT(8,2)",
                     mode: str = "fakequant") -> np.ndarray:
        """Serial single-sample reference: same data path, batch of one.

        This is the ground truth of the differential guarantee — batched
        results must equal it bit-for-bit.
        """
        key = self.repository.model_key(model, fmt, mode)
        return self._execute(key, [inputs])[0]

    # ------------------------------------------------------------------
    # lifecycle / observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Scheduler metrics plus repository counters, JSON-ready."""
        return {"metrics": self.metrics.snapshot(),
                "repository": self.repository.stats(),
                "policy": {"max_batch": self.policy.max_batch,
                           "max_wait_ms": self.policy.max_wait_ms,
                           "queue_depth": self.policy.queue_depth,
                           "workers": self.policy.workers,
                           "retries": self.policy.retries}}

    def render_stats(self) -> str:
        rep = self.repository.stats()
        lines = [self.metrics.render(),
                 f"  repository  resident {len(rep['resident'])}"
                 f"  calibrations {rep['calibrations']}"
                 f"  artifact hits {rep['artifact_hits']}"]
        return "\n".join(lines)

    def close(self, drain: bool = True) -> None:
        self.scheduler.close(drain=drain)

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
