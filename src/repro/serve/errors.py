"""Structured request-level errors of the inference service.

A production serving frontend maps failures to HTTP-style status codes;
this in-process service keeps the same discipline so callers (and the
chaos tests) can dispatch on *kind*, not on exception string matching.
Every error renders to a structured entry ``{"error": {"kind", "code",
"message"}}`` — the serving twin of the resilience layer's grid error
entries (:func:`repro.resilience.error_entry`).
"""

from __future__ import annotations

__all__ = [
    "ServeError", "QueueFullError", "DeadlineExceededError",
    "ModelLoadError", "WorkerCrashError", "ServiceClosedError",
    "OverloadedError", "CircuitOpenError", "DrainingError",
    "BadRequestError", "GatewayTimeoutError",
    "error_from_entry",
]


class ServeError(RuntimeError):
    """Base class: a request that could not be served.

    Attributes
    ----------
    kind:
        Short machine-readable failure class (``queue-full``,
        ``deadline``, ``model-load``, ``worker-crash``, ``closed``).
    code:
        The HTTP status a fronting gateway would emit (503/504/500).
    """

    kind = "serve-error"
    code = 500

    def to_entry(self) -> dict:
        """The structured error entry for this failure."""
        return {"error": {"kind": self.kind, "code": self.code,
                          "message": str(self)}}


class QueueFullError(ServeError):
    """Backpressure: the bounded request queue is at capacity (503)."""

    kind = "queue-full"
    code = 503


class DeadlineExceededError(ServeError):
    """The request's deadline expired before a worker picked it up (504)."""

    kind = "deadline"
    code = 504


class ModelLoadError(ServeError):
    """Loading or calibrating the requested model failed (500)."""

    kind = "model-load"
    code = 500


class WorkerCrashError(ServeError):
    """Batch execution kept failing after the retry budget (500)."""

    kind = "worker-crash"
    code = 500


class ServiceClosedError(ServeError):
    """The service is shut down and no longer accepts requests (503)."""

    kind = "closed"
    code = 503


class OverloadedError(ServeError):
    """The gateway's bounded in-flight admission window is full (503).

    The network-facing twin of :class:`QueueFullError`: the gateway sheds
    load *before* the scheduler queue ever sees the request, converting
    overload into a structured reply instead of unbounded buffering.
    """

    kind = "overloaded"
    code = 503


class CircuitOpenError(ServeError):
    """The circuit breaker for this (model|format|mode) key is open (503).

    Repeated worker-crash/timeout failures opened the breaker; requests
    fast-fail here until a half-open probe succeeds and re-closes it.
    """

    kind = "circuit-open"
    code = 503


class DrainingError(ServeError):
    """The gateway is draining and no longer admits new work (503)."""

    kind = "draining"
    code = 503


class BadRequestError(ServeError):
    """A wire frame was malformed or named an unknown op/model (400)."""

    kind = "bad-request"
    code = 400


class GatewayTimeoutError(ServeError):
    """The gateway's backstop timer expired with no service reply (504).

    Distinct from :class:`DeadlineExceededError` (the *request's* budget
    expired): this is the gateway protecting itself against a wedged
    backend, and it counts as a breaker failure.
    """

    kind = "gateway-timeout"
    code = 504


#: kind -> class, for rebuilding typed errors after pipe transit
_BY_KIND = {cls.kind: cls for cls in (
    QueueFullError, DeadlineExceededError, ModelLoadError,
    WorkerCrashError, ServiceClosedError, OverloadedError,
    CircuitOpenError, DrainingError, BadRequestError, GatewayTimeoutError,
    ServeError)}


def error_from_entry(entry: dict | None) -> ServeError:
    """The typed :class:`ServeError` a structured entry describes.

    The inverse of :meth:`ServeError.to_entry`, used where an error
    crosses a process boundary (a shard worker ships the entry over its
    result pipe; the router rebuilds the exception so local and sharded
    callers observe identical error types).  Unknown kinds degrade to
    the base :class:`ServeError`.
    """
    info = entry.get("error", {}) if isinstance(entry, dict) else {}
    cls = _BY_KIND.get(info.get("kind"), ServeError)
    return cls(info.get("message", "unstructured serve failure"))
