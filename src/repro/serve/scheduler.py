"""Dynamic request batching: bounded queue, deadlines, worker pool.

The scheduler coalesces concurrent single-sample requests into batched
executions under a ``max_batch`` / ``max_wait_ms`` policy:

* a worker picks the oldest pending request, then gathers further
  requests *for the same model key* until the batch is full or
  ``max_wait_ms`` has passed since pickup (so a lone request never waits
  longer than the policy allows);
* admission is bounded: once ``queue_depth`` requests are pending,
  :meth:`BatchingScheduler.submit` rejects with a structured
  :class:`~repro.serve.errors.QueueFullError` (the 503 analogue) instead
  of queueing unbounded work — the backpressure contract;
* each request may carry a deadline; requests whose deadline passes
  before execution complete with
  :class:`~repro.serve.errors.DeadlineExceededError` (504) and are never
  run;
* a failing batch execution is retried up to ``retries`` times
  (transient failures: injected crashes, racy resource errors), then
  every request in it fails with a structured
  :class:`~repro.serve.errors.WorkerCrashError`.  Deterministic failures
  (:class:`~repro.resilience.NumericsError`, any
  :class:`~repro.serve.errors.ServeError` from the executor) are not
  retried, mirroring the grid executor's failure classification.

The scheduler is model-agnostic: it batches opaque ``inputs`` payloads
per key and hands them to an ``execute(key, inputs_list)`` callable (the
service's batched forward).  Batching changes *when* work runs, never
its values: the executor runs under the batch-invariant matmul mode (see
:mod:`repro.serve.service`), so outputs are bit-identical to serial
single-sample inference regardless of how requests happened to coalesce.

Hosts the ``serve:batch/KEY`` fault-injection point (fired in the worker
just before a batch executes).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..resilience import NumericsError, faults
from .errors import (
    DeadlineExceededError, QueueFullError, ServeError, ServiceClosedError,
    WorkerCrashError,
)
from .metrics import ServeMetrics

__all__ = ["BatchPolicy", "ServeFuture", "BatchingScheduler"]


@dataclass(frozen=True)
class BatchPolicy:
    """The knobs of the batching scheduler.

    Attributes
    ----------
    max_batch:
        Largest coalesced batch per execution.
    max_wait_ms:
        How long a worker holds a partial batch open for stragglers.
    queue_depth:
        Pending-request bound; submissions beyond it are rejected.
    workers:
        Worker threads executing batches.
    retries:
        Re-executions of a batch whose run raised a transient error.
    """

    max_batch: int = 8
    max_wait_ms: float = 2.0
    queue_depth: int = 64
    workers: int = 2
    retries: int = 1

    def __post_init__(self):
        if self.max_batch < 1 or self.queue_depth < 1 or self.workers < 1:
            raise ValueError("max_batch, queue_depth and workers must be >= 1")
        if self.max_wait_ms < 0 or self.retries < 0:
            raise ValueError("max_wait_ms and retries must be >= 0")


class ServeFuture:
    """Completion handle for one submitted request."""

    def __init__(self):
        self._event = threading.Event()
        self._value = None
        self._error: ServeError | None = None

    def done(self) -> bool:
        """Whether the request has completed (successfully or not)."""
        return self._event.is_set()

    @property
    def error(self) -> ServeError | None:
        """The structured failure, or None (only meaningful once done)."""
        return self._error

    def entry(self) -> dict | None:
        """The structured error entry of a failed request, else None."""
        return self._error.to_entry() if self._error is not None else None

    def result(self, timeout: float | None = 30.0):
        """Block for the outcome; returns the output or raises the error."""
        if not self._event.wait(timeout):
            raise TimeoutError("request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value

    # scheduler-side completion -----------------------------------------
    def _complete(self, value) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: ServeError) -> None:
        self._error = error
        self._event.set()


@dataclass
class _Request:
    key: str
    inputs: object
    deadline: float | None        # absolute time.monotonic(), or None
    t_enqueue: float
    future: ServeFuture = field(default_factory=ServeFuture)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class BatchingScheduler:
    """Bounded-queue batching over an ``execute(key, inputs_list)`` callable."""

    def __init__(self, execute, policy: BatchPolicy | None = None,
                 metrics: ServeMetrics | None = None):
        self.policy = policy or BatchPolicy()
        self.metrics = metrics or ServeMetrics()
        self._execute = execute
        self._pending: deque[_Request] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"serve-worker-{i}",
                             daemon=True)
            for i in range(self.policy.workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, key: str, inputs, deadline_ms: float | None = None) -> ServeFuture:
        """Enqueue one request; raises :class:`QueueFullError` at capacity."""
        now = time.monotonic()
        req = _Request(key=key, inputs=inputs, t_enqueue=now,
                       deadline=None if deadline_ms is None
                       else now + deadline_ms / 1000.0)
        with self._cond:
            if self._closed:
                raise ServiceClosedError("scheduler is closed")
            if len(self._pending) >= self.policy.queue_depth:
                self.metrics.on_reject()
                raise QueueFullError(
                    f"request queue at capacity ({self.policy.queue_depth})")
            self._pending.append(req)
            self.metrics.on_submit(len(self._pending))
            self._cond.notify_all()
        return req.future

    def queue_depth(self) -> int:
        """Number of currently pending (not yet picked up) requests."""
        with self._cond:
            return len(self._pending)

    def close(self, drain: bool = True) -> None:
        """Stop accepting work; ``drain`` lets queued requests finish first."""
        with self._cond:
            self._closed = True
            if not drain:
                while self._pending:
                    req = self._pending.popleft()
                    req.future._fail(ServiceClosedError("scheduler closed"))
                    self.metrics.on_fail()
            self._cond.notify_all()
        for t in self._threads:
            t.join()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _expire(self, req: _Request) -> None:
        req.future._fail(DeadlineExceededError(
            "deadline expired before execution"))
        self.metrics.on_expire()

    def _pop_live_locked(self) -> _Request | None:
        now = time.monotonic()
        while self._pending:
            req = self._pending.popleft()
            if req.expired(now):
                self._expire(req)
            else:
                return req
        return None

    def _gather_locked(self, batch: list[_Request]) -> None:
        """Move same-key live requests from the queue into ``batch``."""
        key = batch[0].key
        now = time.monotonic()
        kept: list[_Request] = []
        while self._pending and len(batch) < self.policy.max_batch:
            req = self._pending.popleft()
            if req.key != key:
                kept.append(req)
            elif req.expired(now):
                self._expire(req)
            else:
                batch.append(req)
        # other-key requests go back in arrival order, ahead of anything
        # submitted while we scanned
        for req in reversed(kept):
            self._pending.appendleft(req)

    def _take_batch(self) -> list[_Request] | None:
        """Block for the next batch; None when closed and drained."""
        with self._cond:
            while True:
                first = self._pop_live_locked()
                if first is not None:
                    break
                if self._closed:
                    return None
                self._cond.wait()
            batch = [first]
            self._gather_locked(batch)
            wait_end = time.monotonic() + self.policy.max_wait_ms / 1000.0
            while len(batch) < self.policy.max_batch and not self._closed:
                remaining = wait_end - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
                self._gather_locked(batch)
        return batch

    def _retryable(self, exc: Exception) -> bool:
        """Transient failures are retried; deterministic ones are not."""
        return not isinstance(exc, (NumericsError, ServeError))

    def _run_batch(self, batch: list[_Request]) -> None:
        now = time.monotonic()
        live = []
        for req in batch:
            if req.expired(now):
                self._expire(req)
            else:
                live.append(req)
        if not live:
            return
        key = live[0].key
        self.metrics.on_batch(
            len(live), [(now - r.t_enqueue) * 1e3 for r in live])
        attempts = 0
        while True:
            try:
                faults.maybe_fault("serve", f"batch/{key}")
                outputs = self._execute(key, [r.inputs for r in live])
                break
            except Exception as exc:  # lint: allow[broad-except] retry classifier: transient vs deterministic
                if self._retryable(exc) and attempts < self.policy.retries:
                    attempts += 1
                    self.metrics.on_retry()
                    continue
                if isinstance(exc, ServeError):
                    err = exc
                else:
                    err = WorkerCrashError(
                        f"batch execution failed after {attempts + 1} "
                        f"attempt(s): {type(exc).__name__}: {exc}")
                for req in live:
                    req.future._fail(err)
                    self.metrics.on_fail()
                return
        done = time.monotonic()
        for req, out in zip(live, outputs):
            req.future._complete(out)
            self.metrics.on_complete((done - req.t_enqueue) * 1e3)

    def _worker(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._run_batch(batch)
