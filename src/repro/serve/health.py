"""Background health supervision for the serving gateway.

A hung shard worker fails *silently* from a client's point of view: its
requests just never come back (until the router's deadline sweep expires
them one by one).  The supervisor makes that failure mode active: a
probe loop pings every shard through the stats channel on a fixed
interval, tracks consecutive missed probes per slot, and — once a slot
has been unreachable ``escalate_after`` times in a row — escalates to a
forced respawn (:meth:`ShardRouter.force_respawn` SIGKILLs the worker,
whose pipe-EOF the router's collector already knows how to revive).
Recovery reuses the proven crash path instead of inventing a second one.

The supervisor is service-shape-agnostic: a :class:`ShardRouter` exposes
``ping()`` (per-slot liveness) and ``force_respawn(slot)``; an
in-process :class:`InferenceService` has neither, so its probe degrades
to checking the scheduler is still answering ``queue_depth()`` —
trivially true unless the process itself is wedged, in which case no
supervisor thread would run either.

:meth:`HealthSupervisor.state` summarises to ``ready`` (every probe
healthy) or ``degraded`` (at least one slot failing probes); the gateway
overlays ``draining`` during shutdown.  This is what the wire ``health``
op returns to clients, so an external balancer can stop routing to a
degraded gateway before requests start dying.
"""

from __future__ import annotations

import threading

__all__ = ["HealthSupervisor"]


class HealthSupervisor:
    """Probe loop + escalation policy over one service or shard router."""

    def __init__(self, service, *, interval_s: float = 0.5,
                 probe_timeout_s: float = 2.0, escalate_after: int = 3):
        if escalate_after < 1:
            raise ValueError("escalate_after must be >= 1")
        self.service = service
        self.interval_s = interval_s
        self.probe_timeout_s = probe_timeout_s
        self.escalate_after = escalate_after
        self._lock = threading.Lock()
        self._misses: dict[int, int] = {}
        self._forced: dict[int, int] = {}
        self._probes = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="gateway-health", daemon=True)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Start the background probe thread."""
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop probing and join the thread."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout)

    # -- probe loop ------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.probe_once()

    def probe_once(self) -> list[bool]:
        """Ping every slot once; escalate persistent failures.

        Exposed for deterministic tests (drive the loop by hand instead
        of sleeping through intervals).
        """
        ping = getattr(self.service, "ping", None)
        if ping is None:
            # in-process service: alive iff the scheduler still answers
            try:
                self.service.scheduler.queue_depth()
                healthy = [True]
            except Exception:  # lint: allow[broad-except] any probe failure means unhealthy, whatever its type
                healthy = [False]
        else:
            healthy = ping(timeout=self.probe_timeout_s)
        force = getattr(self.service, "force_respawn", None)
        escalate: list[int] = []
        with self._lock:
            self._probes += 1
            for slot, ok in enumerate(healthy):
                if ok:
                    self._misses[slot] = 0
                    continue
                self._misses[slot] = self._misses.get(slot, 0) + 1
                if force is not None and \
                        self._misses[slot] >= self.escalate_after:
                    self._misses[slot] = 0
                    self._forced[slot] = self._forced.get(slot, 0) + 1
                    escalate.append(slot)
        for slot in escalate:
            print(f"gateway health: shard {slot} missed "
                  f"{self.escalate_after} probes; forcing respawn",
                  flush=True)
            force(slot)
        return healthy

    # -- reporting -------------------------------------------------------
    def state(self) -> dict:
        """JSON-ready health summary for the wire ``health`` op."""
        with self._lock:
            misses = dict(self._misses)
            forced = dict(self._forced)
            probes = self._probes
        degraded = [slot for slot, n in misses.items() if n > 0]
        return {
            "state": "degraded" if degraded else "ready",
            "probes": probes,
            "degraded_slots": sorted(degraded),
            "consecutive_misses": {str(k): v for k, v in sorted(misses.items())
                                   if v},
            "forced_respawns": {str(k): v for k, v in sorted(forced.items())},
        }
