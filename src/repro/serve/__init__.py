"""Dynamic-batching quantized inference service.

The serving layer of the repo: a :class:`~repro.serve.ModelRepository`
that calibrates each (model, format, mode) once — memoized in process
and persisted crash-safely on disk — a
:class:`~repro.serve.BatchingScheduler` that coalesces concurrent
single-sample requests into batched forwards under a
``max_batch``/``max_wait_ms`` policy with bounded queues, backpressure
and per-request deadlines, and an :class:`~repro.serve.InferenceService`
front door driving both ``fakequant`` and true-quantized ``engine``
inference.

The headline correctness property: batched results are **bit-identical**
to serial single-sample inference, under both kernel backends and both
PTQ modes (see :mod:`repro.serve.service` for the mechanism and
``tests/test_serve_differential.py`` for the proof).

Scaling out, :class:`~repro.serve.ShardRouter` fans requests across N
worker *processes* by consistent hashing on the request key, with the
expensive read-only state (quantized weight planes, per-layer scales,
decode-LUT tables) published once by the parent into checksummed
shared-memory segments (:mod:`repro.serve.shm`) that workers attach
instead of recalibrating.  The bit-identity guarantee extends across the
process boundary — ``tests/test_shard_differential.py`` proves sharded
results byte-equal to serial inference under every mode × backend ×
shard-count combination.

Over the network, :class:`~repro.serve.Gateway` is the hardened TCP
front door (length-prefixed JSON frames, :mod:`repro.serve.wire`):
deadline propagation, bounded admission, per-key circuit breakers
(:class:`~repro.serve.CircuitBreaker`), background health supervision
with forced shard respawn (:class:`~repro.serve.HealthSupervisor`) and
graceful drain.  :class:`~repro.serve.GatewayClient` is the matching
retrying client; ``tests/test_gateway_chaos.py`` extends the bit-identity
guarantee across the wire under a deterministic ``net``-scope fault
storm.
"""

from .breaker import BreakerBoard, CircuitBreaker
from .client import GatewayClient
from .errors import (
    BadRequestError, CircuitOpenError, DeadlineExceededError, DrainingError,
    GatewayTimeoutError, ModelLoadError, OverloadedError, QueueFullError,
    ServeError, ServiceClosedError, WorkerCrashError, error_from_entry,
)
from .gateway import Gateway
from .health import HealthSupervisor
from .loadgen import LoadReport, run_closed_loop, run_open_loop
from .metrics import ServeMetrics, merge_snapshots, percentile
from .repository import ModelRepository, ServableSpec, micro_specs, zoo_specs
from .scheduler import BatchPolicy, BatchingScheduler, ServeFuture
from .service import InferenceService, execute_batch
from .shard import HashRing, ShardRouter

__all__ = [
    "ServeError", "QueueFullError", "DeadlineExceededError",
    "ModelLoadError", "WorkerCrashError", "ServiceClosedError",
    "OverloadedError", "CircuitOpenError", "DrainingError",
    "BadRequestError", "GatewayTimeoutError",
    "error_from_entry",
    "ServeMetrics", "percentile", "merge_snapshots",
    "ModelRepository", "ServableSpec", "zoo_specs", "micro_specs",
    "BatchPolicy", "BatchingScheduler", "ServeFuture",
    "InferenceService", "execute_batch",
    "HashRing", "ShardRouter",
    "Gateway", "GatewayClient", "CircuitBreaker", "BreakerBoard",
    "HealthSupervisor",
    "LoadReport", "run_closed_loop", "run_open_loop",
]
