"""Dynamic-batching quantized inference service.

The serving layer of the repo: a :class:`~repro.serve.ModelRepository`
that calibrates each (model, format, mode) once — memoized in process
and persisted crash-safely on disk — a
:class:`~repro.serve.BatchingScheduler` that coalesces concurrent
single-sample requests into batched forwards under a
``max_batch``/``max_wait_ms`` policy with bounded queues, backpressure
and per-request deadlines, and an :class:`~repro.serve.InferenceService`
front door driving both ``fakequant`` and true-quantized ``engine``
inference.

The headline correctness property: batched results are **bit-identical**
to serial single-sample inference, under both kernel backends and both
PTQ modes (see :mod:`repro.serve.service` for the mechanism and
``tests/test_serve_differential.py`` for the proof).
"""

from .errors import (
    DeadlineExceededError, ModelLoadError, QueueFullError, ServeError,
    ServiceClosedError, WorkerCrashError,
)
from .loadgen import LoadReport, run_closed_loop, run_open_loop
from .metrics import ServeMetrics, percentile
from .repository import ModelRepository, ServableSpec, micro_specs, zoo_specs
from .scheduler import BatchPolicy, BatchingScheduler, ServeFuture
from .service import InferenceService

__all__ = [
    "ServeError", "QueueFullError", "DeadlineExceededError",
    "ModelLoadError", "WorkerCrashError", "ServiceClosedError",
    "ServeMetrics", "percentile",
    "ModelRepository", "ServableSpec", "zoo_specs", "micro_specs",
    "BatchPolicy", "BatchingScheduler", "ServeFuture",
    "InferenceService",
    "LoadReport", "run_closed_loop", "run_open_loop",
]
