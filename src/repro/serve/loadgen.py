"""Deterministic load generation against an in-process service.

Two standard shapes:

* **closed loop** — ``concurrency`` client threads each keep exactly one
  request in flight (submit, wait, repeat).  Offered load adapts to
  service speed; this is the shape that measures *throughput capacity*
  and is what ``BENCH_serve.json`` records.
* **open loop** — requests are dispatched at a fixed ``rate_rps``
  regardless of completions (the arrival process of a public endpoint).
  Offered load does not adapt, so this is the shape that exercises
  backpressure: queue-full rejections and deadline expiries show up here.

Request payloads come from the spec's deterministic ``requests(n, seed)``
stream, so a load run is replayable.  Client-side latencies are measured
per request in the closed loop; the open loop reports the service's own
metrics (its dispatch thread cannot block on individual completions).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .errors import DeadlineExceededError, QueueFullError, ServeError
from .metrics import percentile
from .service import InferenceService

__all__ = ["LoadReport", "run_closed_loop", "run_open_loop"]


@dataclass
class LoadReport:
    """Outcome counts and client-side latency of one load run."""

    shape: str                    # "closed" | "open"
    model: str
    fmt: str
    mode: str
    requests: int
    ok: int = 0
    rejected: int = 0             # queue-full backpressure
    deadline: int = 0             # deadline expiries
    failed: int = 0               # other structured failures
    elapsed_s: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-ready summary (latency reservoir reduced to percentiles).

        The open loop records no client-side latencies (its dispatch
        thread never blocks per request), so it reports the service's
        own enqueue-to-completion percentiles instead.
        """
        if self.latencies_ms:
            lat = {"p50": percentile(self.latencies_ms, 50),
                   "p95": percentile(self.latencies_ms, 95),
                   "p99": percentile(self.latencies_ms, 99)}
        else:
            served = self.metrics.get("latency_ms", {})
            lat = {q: served.get(q, 0.0) for q in ("p50", "p95", "p99")}
        return {
            "shape": self.shape, "model": self.model, "format": self.fmt,
            "mode": self.mode, "requests": self.requests,
            "ok": self.ok, "rejected": self.rejected,
            "deadline": self.deadline, "failed": self.failed,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": lat,
            "metrics": self.metrics,
        }

    def render(self) -> str:
        d = self.to_dict()
        return (f"{self.shape}-loop {self.model} {self.fmt} {self.mode}: "
                f"{self.ok}/{self.requests} ok "
                f"({self.rejected} rejected, {self.deadline} deadline, "
                f"{self.failed} failed) in {self.elapsed_s:.2f}s "
                f"-> {self.throughput_rps:.1f} req/s, "
                f"p50 {d['latency_ms']['p50']:.2f} ms "
                f"p95 {d['latency_ms']['p95']:.2f} ms")


def _record(report: LoadReport, lock: threading.Lock, outcome: str,
            latency_ms: float | None = None) -> None:
    with lock:
        setattr(report, outcome, getattr(report, outcome) + 1)
        if latency_ms is not None:
            report.latencies_ms.append(latency_ms)


def run_closed_loop(service: InferenceService, model: str,
                    fmt: str = "MERSIT(8,2)", mode: str = "fakequant", *,
                    requests: int = 64, concurrency: int = 8, seed: int = 0,
                    deadline_ms: float | None = None) -> LoadReport:
    """``concurrency`` threads each keep one request in flight."""
    spec = service.repository.specs[model]
    payloads = spec.requests(requests, seed)
    report = LoadReport("closed", model, fmt, mode, requests)
    lock = threading.Lock()
    cursor = iter(range(requests))

    def client() -> None:
        while True:
            with lock:
                i = next(cursor, None)
            if i is None:
                return
            t0 = time.perf_counter()
            try:
                service.infer(model, payloads[i], fmt, mode,
                              deadline_ms=deadline_ms)
            except QueueFullError:
                _record(report, lock, "rejected")
            except DeadlineExceededError:
                _record(report, lock, "deadline")
            except ServeError:
                _record(report, lock, "failed")
            else:
                _record(report, lock, "ok",
                        (time.perf_counter() - t0) * 1e3)

    t_start = time.perf_counter()
    threads = [threading.Thread(target=client, daemon=True)
               for _ in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.elapsed_s = time.perf_counter() - t_start
    report.metrics = service.metrics.snapshot()
    return report


def run_open_loop(service: InferenceService, model: str,
                  fmt: str = "MERSIT(8,2)", mode: str = "fakequant", *,
                  requests: int = 64, rate_rps: float = 200.0, seed: int = 0,
                  deadline_ms: float | None = None,
                  timeout: float = 60.0) -> LoadReport:
    """Dispatch at a fixed rate; completions are collected at the end."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    spec = service.repository.specs[model]
    payloads = spec.requests(requests, seed)
    report = LoadReport("open", model, fmt, mode, requests)
    lock = threading.Lock()
    interval = 1.0 / rate_rps

    futures = []
    t_start = time.perf_counter()
    for i in range(requests):
        target = t_start + i * interval
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            futures.append((i, service.submit(model, payloads[i], fmt, mode,
                                              deadline_ms=deadline_ms)))
        except QueueFullError:
            _record(report, lock, "rejected")
    for _i, fut in futures:
        try:
            fut.result(timeout)
        except DeadlineExceededError:
            _record(report, lock, "deadline")
        except ServeError:
            _record(report, lock, "failed")
        else:
            _record(report, lock, "ok")
    report.elapsed_s = time.perf_counter() - t_start
    report.metrics = service.metrics.snapshot()
    return report
