"""Retrying blocking client for the serving gateway.

:class:`GatewayClient` speaks the :mod:`repro.serve.wire` protocol over
one plain TCP socket and turns the gateway's structured failure modes
back into the same exceptions an in-process caller would see
(:mod:`repro.serve.errors`).  Its retry policy is deliberately narrow:

* **Retry** transport failures (connection reset, EOF mid-frame, socket
  timeout, garbled frames) and explicitly-retryable server kinds —
  ``overloaded``, ``queue-full`` and ``circuit-open`` are all "try again
  shortly" by construction.  ``infer`` is idempotent (pure function of
  its inputs; the differential tests prove replies are bit-identical
  across retries), so retrying after an ambiguous transport failure can
  at worst waste work, never corrupt state.
* **Never retry** outcomes that a retry cannot fix or that the caller
  must see: ``deadline`` (the budget is gone), ``draining`` /
  ``service-closed`` (the fleet is going away), ``bad-request`` /
  ``model-load`` (the request itself is wrong), ``worker-crash`` and
  ``gateway-timeout`` (surfaced so callers and chaos tests observe
  backend failures; the gateway's breaker — not the client — owns
  recovery pacing for those).

Backoff between attempts is capped-exponential with *deterministic*
jitter (``random.Random(seed)``), so a chaos run with N client threads
is reproducible seed-for-seed while still decorrelating their retry
storms.

A total deadline rides the wire: ``infer(deadline_ms=...)`` fixes one
budget at call time, each attempt sends only the *remaining* budget as
its wire ``deadline_ms``, and when the budget runs out the client raises
:class:`DeadlineExceededError` itself — a slow network eats the budget
instead of resetting it per attempt.
"""

from __future__ import annotations

import random
import socket
import time

from . import wire
from .errors import DeadlineExceededError, ServeError, error_from_entry

__all__ = ["GatewayClient", "RETRYABLE_KINDS"]

#: server error kinds that mean "try again shortly"
RETRYABLE_KINDS = frozenset({"overloaded", "queue-full", "circuit-open"})

_TRANSPORT_ERRORS = (ConnectionError, socket.timeout, OSError,
                     wire.FrameError)


class GatewayClient:
    """Blocking gateway client with bounded, deterministic retries.

    Parameters
    ----------
    host / port:
        The gateway's bound address.
    retries:
        Extra attempts after the first (``retries=4`` → up to 5 sends).
    backoff_base_ms / backoff_cap_ms:
        Capped exponential backoff: attempt ``k`` sleeps
        ``min(cap, base * 2**k)`` scaled by jitter in ``[0.5, 1.0)``.
    seed:
        Seed for the jitter stream — distinct per client thread in chaos
        runs, making every storm replayable.
    connect_timeout_s / io_timeout_s:
        Socket-level bounds; an attempt that exceeds ``io_timeout_s``
        counts as a transport failure and is retried (idempotent ops
        only).
    """

    def __init__(self, host: str, port: int, *, retries: int = 4,
                 backoff_base_ms: float = 10.0,
                 backoff_cap_ms: float = 500.0, seed: int = 0,
                 connect_timeout_s: float = 5.0,
                 io_timeout_s: float = 30.0):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff_base_ms = backoff_base_ms
        self.backoff_cap_ms = backoff_cap_ms
        self.connect_timeout_s = connect_timeout_s
        self.io_timeout_s = io_timeout_s
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None
        self._next_id = 0
        self.attempts = 0       # total frames sent (observability)
        self.retried = 0        # attempts beyond each call's first

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s)
            sock.settimeout(self.io_timeout_s)
            self._sock = sock
        return self._sock

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        self._drop_socket()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # request/reply core
    # ------------------------------------------------------------------
    def _roundtrip(self, msg: dict) -> dict:
        """One attempt: send a frame, read replies until ours arrives."""
        sock = self._connect()
        wire.send_frame(sock, msg)
        self.attempts += 1
        while True:
            reply = wire.recv_frame(sock)
            if reply.get("id") == msg["id"]:
                return reply
            # a reply for a request this client no longer waits on
            # (e.g. one whose attempt timed out earlier): ignore it

    def _backoff(self, attempt: int, budget_s: float | None) -> None:
        delay_ms = min(self.backoff_cap_ms,
                       self.backoff_base_ms * (2 ** attempt))
        delay_s = delay_ms / 1e3 * (0.5 + 0.5 * self._rng.random())
        if budget_s is not None:
            delay_s = min(delay_s, max(0.0, budget_s))
        time.sleep(delay_s)

    def _call(self, msg: dict, *, retryable: bool,
              t_end: float | None = None) -> dict:
        last_exc: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.retried += 1
            if t_end is not None:
                remaining = t_end - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExceededError(
                        "deadline budget exhausted across retries") \
                        from last_exc
                msg["deadline_ms"] = remaining * 1e3
            msg["id"] = self._next_id
            self._next_id += 1
            try:
                reply = self._roundtrip(msg)
            except _TRANSPORT_ERRORS as exc:
                self._drop_socket()
                last_exc = exc
                if not retryable or attempt == self.retries:
                    raise ServeError(
                        f"gateway transport failure: {exc}") from exc
                self._backoff(attempt, None if t_end is None
                              else t_end - time.monotonic())
                continue
            if reply.get("ok"):
                return reply
            entry = reply.get("error") or {}
            kind = entry.get("kind", "serve-error")
            if retryable and kind in RETRYABLE_KINDS \
                    and attempt < self.retries:
                last_exc = error_from_entry({"error": entry})
                self._backoff(attempt, None if t_end is None
                              else t_end - time.monotonic())
                continue
            raise error_from_entry({"error": entry})
        raise ServeError("retries exhausted") from last_exc   # unreachable

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def infer(self, model: str, inputs, fmt: str = "MERSIT(8,2)",
              mode: str = "fakequant", deadline_ms: float | None = None):
        """Run one inference through the gateway; returns the ndarray.

        ``deadline_ms`` is a *total* budget covering every retry and all
        wire time; each attempt carries only the remaining budget.
        """
        t_end = None if deadline_ms is None \
            else time.monotonic() + deadline_ms / 1e3
        msg = {"op": "infer", "model": model,
               "inputs": inputs, "fmt": fmt, "mode": mode}
        if deadline_ms is not None:
            msg["deadline_ms"] = deadline_ms
        reply = self._call(msg, retryable=True, t_end=t_end)
        return reply["result"]

    def stats(self) -> dict:
        """Fetch the gateway's merged stats block."""
        return self._call({"op": "stats"}, retryable=True)["stats"]

    def health(self) -> dict:
        """Fetch the gateway's health summary (ready/degraded/draining)."""
        return self._call({"op": "health"}, retryable=True)["health"]

    def drain(self) -> dict:
        """Ask the gateway to begin a graceful drain (not retried)."""
        return self._call({"op": "drain"}, retryable=False)
