"""Calibrated-model repository: PTQ once, memoize, persist, reuse.

Serving must not re-run PTQ calibration per request — calibration walks a
whole data stream through the model.  The repository closes that gap at
two levels:

* **in-process memo** — ``resolve(model, fmt, mode)`` calibrates at most
  once per key; concurrent resolvers of the *same* key wait on a per-key
  lock while different keys calibrate in parallel;
* **on-disk artifact** — the calibration result (per-layer weight /
  activation scales) is persisted through the crash-safe resilience
  store (:mod:`repro.resilience.store`: atomic writes, checksums,
  ``.bak`` fallback), so a restarted process rebuilds the quantized
  model from the artifact *bit-identically* instead of recalibrating.
  JSON floats round-trip exactly (``repr`` serialisation), so restored
  scales equal calibrated scales to the last bit.

The artifact is only honoured when its embedded cache key matches
exactly.  The key captures everything that changes the served numbers:
formats, PTQ mode, calibration size/seed, the activation observer
config, per-channel policy, gain override — and the engine's Kulisch
accumulator block width (:data:`repro.engine.planes.BLOCK`), which
changes engine-mode packing.  The block width is read at key-build time,
so a rebuilt engine never silently reuses an artifact produced under a
different accumulator configuration.

A :class:`ServableSpec` tells the repository *how* to serve a model:
build it, feed its calibration stream, collate single-sample requests
into a batch, and run the batched forward.  ``zoo_specs()`` wraps every
pretrained zoo entry; ``micro_specs()`` provides tiny seeded models
(CNN / MLP / attention) for tests and benchmarks that must not pay zoo
training time.

Hosts the ``serve:load/KEY`` fault-injection point (fired on a cache
miss before building/calibrating).
"""

from __future__ import annotations

import gc
import os
import re
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn import (
    Conv2d, Flatten, GlobalAvgPool2d, Linear, MaxPool2d, Module, ReLU,
    Sequential, TransformerEncoderLayer,
)
from ..quant.fakequant import FakeQuantizer
from ..quant.mixed import canonical_format_spec, parse_format_spec
from ..quant.ptq import PTQConfig, quantize_model, quantized_layers
from ..resilience import faults
from ..resilience.store import load_json, save_json
from .errors import ModelLoadError, ServeError

__all__ = [
    "ServableSpec", "ModelRepository", "zoo_specs", "micro_specs",
    "SCALES_SCHEMA",
]

#: bumped when the persisted calibration-artifact layout changes
#: (2: the cache key grew the mixed-precision ``layer_formats`` field)
SCALES_SCHEMA = 2

#: canonical calibration-stream seed (matches ``calibration_split``);
#: a repository ``calib_seed`` offsets from it
CALIB_STREAM_SEED = 2


@dataclass(frozen=True)
class ServableSpec:
    """How to build, calibrate and batch-execute one servable model.

    ``collate``/``run`` define the batched data path; ``requests`` draws
    deterministic single-request inputs for tests and the load
    generator.  ``run`` returns a plain array whose leading axis indexes
    the collated requests, so the service can split outputs back out.
    """

    name: str
    build: Callable[[], Module]
    calibration: Callable[[int, int], object]       # (n, seed) -> batches
    calib_forward: Callable[[Module, object], object]
    collate: Callable[[list], object]               # [inputs] -> batch
    run: Callable[[Module, object], np.ndarray]     # (model, batch) -> (N, ...)
    requests: Callable[[int, int], list]            # (n, seed) -> [inputs]


# ----------------------------------------------------------------------
# specs: zoo models
# ----------------------------------------------------------------------

def _vision_spec(name: str) -> ServableSpec:
    from ..zoo import registry as zoo

    return ServableSpec(
        name=name,
        build=lambda: zoo.pretrained(name)[0],
        calibration=lambda n, seed: zoo.dataset().sample(n, seed=seed).batches(32),
        calib_forward=lambda m, b: m(Tensor(b[0])),
        collate=lambda xs: np.stack(xs).astype(np.float32),
        run=lambda m, x: m(Tensor(x)).data,
        requests=lambda n, seed: list(zoo.dataset().sample(n, seed=seed).images),
    )


def _glue_spec(name: str, task: str) -> ServableSpec:
    from ..zoo import registry as zoo

    def requests(n: int, seed: int) -> list:
        split = zoo.glue_task(task).sample(n, seed=seed)
        return [(split.ids[i], split.mask[i]) for i in range(n)]

    return ServableSpec(
        name=name,
        build=lambda: zoo.pretrained(name)[0],
        calibration=lambda n, seed: zoo.glue_task(task).sample(n, seed=seed).batches(32),
        calib_forward=lambda m, b: m(b[0], b[1]),
        collate=lambda xs: (np.stack([x[0] for x in xs]),
                            np.stack([x[1] for x in xs])),
        run=lambda m, x: m(x[0], x[1]).data,
        requests=requests,
    )


def zoo_specs(names: list[str] | None = None) -> dict[str, ServableSpec]:
    """Servable specs for (a subset of) the pretrained model zoo."""
    from ..zoo import registry as zoo

    specs: dict[str, ServableSpec] = {}
    for name, entry in zoo.ALL_MODELS.items():
        if names is not None and name not in names:
            continue
        specs[name] = (_vision_spec(name) if entry.kind == "vision"
                       else _glue_spec(name, entry.task))
    if names is not None:
        missing = set(names) - set(specs)
        if missing:
            raise KeyError(f"unknown zoo models: {sorted(missing)}")
    return specs


# ----------------------------------------------------------------------
# specs: micro models (tests / benchmarks; no zoo training cost)
# ----------------------------------------------------------------------

class _MicroAttn(Module):
    """One transformer block plus a mean-pooled classification head."""

    def __init__(self, dim: int = 16, num_heads: int = 2, ffn: int = 32,
                 classes: int = 8, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.block = TransformerEncoderLayer(dim, num_heads, ffn, rng=rng)
        self.head = Linear(dim, classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.block(x).mean(axis=1))


def _array_spec(name: str, build: Callable[[], Module],
                shape: tuple[int, ...]) -> ServableSpec:
    """A spec over seeded gaussian inputs of a fixed per-request shape."""

    def draw(n: int, seed: int) -> np.ndarray:
        # zlib.crc32, not hash(): str hashing is salted per process and
        # these streams must be reproducible across runs
        rng = np.random.default_rng((zlib.crc32(name.encode()) & 0xFFFF, seed))
        return rng.normal(size=(n, *shape)).astype(np.float32)

    def built() -> Module:
        model = build()
        model.eval()
        return model

    return ServableSpec(
        name=name,
        build=built,
        calibration=lambda n, seed: [draw(n, seed)],
        calib_forward=lambda m, b: m(Tensor(b)),
        collate=lambda xs: np.stack(xs).astype(np.float32),
        run=lambda m, x: m(Tensor(x)).data,
        requests=lambda n, seed: list(draw(n, seed + 1)),
    )


def micro_specs() -> dict[str, ServableSpec]:
    """Tiny deterministic servable models: CNN, MLP, attention block."""
    return {
        "micro-cnn": _array_spec(
            "micro-cnn",
            lambda: Sequential(
                Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(10)),
                ReLU(), MaxPool2d(2),
                Conv2d(8, 16, 3, padding=1, rng=np.random.default_rng(11)),
                ReLU(), GlobalAvgPool2d(), Flatten(),
                Linear(16, 10, rng=np.random.default_rng(12))),
            shape=(3, 8, 8)),
        "micro-mlp": _array_spec(
            "micro-mlp",
            lambda: Sequential(
                Linear(32, 48, rng=np.random.default_rng(20)), ReLU(),
                Linear(48, 32, rng=np.random.default_rng(21)), ReLU(),
                Linear(32, 10, rng=np.random.default_rng(22))),
            shape=(32,)),
        "micro-attn": _array_spec(
            "micro-attn",
            lambda: _MicroAttn(rng=np.random.default_rng(30)),
            shape=(6, 16)),
    }


# ----------------------------------------------------------------------
# scale persistence
# ----------------------------------------------------------------------

def _extract_scales(model: Module) -> dict:
    """Per-layer calibration scales of a quantized model, JSON-ready."""
    scales: dict[str, dict] = {}
    for name, layer in quantized_layers(model):
        if layer.weight_quant is None:
            continue
        w = layer.weight_quant.scale
        scales[name] = {
            "weight": w.tolist() if w.ndim else float(w),
            "input": float(layer.input_quant.scale),
        }
    return scales


def _apply_scales(model: Module, config: PTQConfig, scales: dict,
                  planes: dict[str, np.ndarray] | None = None) -> Module:
    """Rebuild quantizers (and engines) from persisted scales, bit-identically.

    Mirrors the attach loop of :func:`repro.quant.ptq.quantize_model`;
    raises ``KeyError`` when the artifact's layer set does not match the
    model (the caller treats that as a stale artifact and recalibrates).
    ``planes`` optionally carries precomputed quantized weight planes
    (shared-memory views published by a calibrate-once parent); a layer
    with a plane installs it into the quantize cache instead of paying
    the quantization — the plane was produced by this same code in the
    publisher, so the installed bytes equal the computed ones.
    """
    model.eval()
    names = [name for name, _ in quantized_layers(model)]
    if set(names) != set(scales):
        raise KeyError("artifact layer set does not match model")
    axis = 0 if config.per_channel_weights else None
    for name, layer in quantized_layers(model):
        entry = scales[name]
        layer.weight_quant = FakeQuantizer(
            config.layer_wfmt(name), axis=axis, scale=np.asarray(entry["weight"]),
            gain=config.gain_override, name=name)
        layer.input_quant = FakeQuantizer(
            config.layer_afmt(name), axis=None, scale=np.asarray(entry["input"]),
            gain=config.gain_override, name=name)
        layer.observing = False
        if planes is not None and name in planes:
            layer.weight_quant.install_cached(layer.weight, planes[name])
        else:
            layer.weight_quant.quantize_cached(layer.weight)
        if config.mode == "engine":
            from ..engine import build_layer_engine
            layer.engine_exec = build_layer_engine(
                layer, config.layer_wfmt(name), config.layer_afmt(name),
                config.gain_override)
    return model


# ----------------------------------------------------------------------
# the repository
# ----------------------------------------------------------------------

class ModelRepository:
    """Thread-safe memo of calibrated PTQ models, persisted across runs.

    Parameters
    ----------
    specs:
        Name -> :class:`ServableSpec`; defaults to the full zoo.
    calib_n / calib_seed:
        Calibration stream size and seed offset (both part of the key).
    observer:
        Activation observer config (``max`` / ``percentile`` / ``mse``).
    per_channel / gain_override:
        PTQ policy knobs, forwarded to :class:`~repro.quant.ptq.PTQConfig`.
    cache_dir:
        Where calibration artifacts live (default ``$REPRO_SERVE_CACHE``
        or ``.serve_cache/``); ``persist=False`` disables the disk layer.
    plane_manifest:
        ``model_key -> shared-memory segment name`` published by a
        calibrate-once parent (see :mod:`repro.serve.shm`).  A cache
        miss first tries to *attach*: validate the segment, restore the
        scales and install the published quantized weight planes — at
        attach cost, not calibration cost.  A missing, corrupt or stale
        segment falls back to the disk artifact / recalibration path
        with a one-line warning (attach-or-recalibrate, never crash).
    """

    def __init__(self, specs: dict[str, ServableSpec] | None = None, *,
                 calib_n: int = 64, calib_seed: int = 0,
                 observer: str = "max", per_channel: bool = True,
                 gain_override: float | None = None,
                 cache_dir: Path | str | None = None, persist: bool = True,
                 plane_manifest: dict[str, str] | None = None):
        self.specs = specs if specs is not None else zoo_specs()
        self.calib_n = calib_n
        self.calib_seed = calib_seed
        self.observer = observer
        self.per_channel = per_channel
        self.gain_override = gain_override
        self.persist = persist
        self.cache_dir = Path(
            cache_dir if cache_dir is not None
            else os.environ.get("REPRO_SERVE_CACHE", ".serve_cache"))
        self.plane_manifest = dict(plane_manifest or {})
        self.calibrations = 0     # cold calibration runs (test observability)
        self.artifact_hits = 0    # models rebuilt from a persisted artifact
        self.shm_attaches = 0     # models rebuilt from a shared-memory plane
        self.shm_rejects = 0      # plane attaches that failed validation
        self._models: dict[str, tuple[Module, ServableSpec]] = {}
        self._segments: list = []     # attached segments kept alive for views
        self._lock = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}

    # -- keys -----------------------------------------------------------
    def model_key(self, model: str, fmt: str, mode: str = "fakequant") -> str:
        """The scheduler/batching key: ``model|format|mode`` (canonical).

        ``fmt`` is either a registry format name or a mixed-precision
        spec ``mixed(DEFAULT;layer=FMT;...)`` (see
        :mod:`repro.quant.mixed`); both canonicalise, so two spellings
        of the same assignment share one key — and a mixed map that
        assigns the default everywhere shares the uniform key outright
        (it serves identical numbers).  Specs contain no ``|``, so the
        key still splits into exactly three parts everywhere.
        """
        return f"{model}|{canonical_format_spec(fmt)}|{mode}"

    def cache_key(self, model: str, fmt: str, mode: str = "fakequant") -> dict:
        """Everything that changes the served numbers, as a flat dict.

        Reads the engine accumulator block width at call time so a
        reconfigured engine invalidates persisted engine-mode artifacts.
        Mixed-precision specs contribute their per-layer override map
        (canonical: sorted, default-equal entries dropped), so two maps
        differing in a single layer never share an artifact.
        """
        from ..engine import planes

        default_name, layer_formats = parse_format_spec(fmt)
        overrides = {l: f for l, f in sorted(layer_formats.items())
                     if f != default_name}
        return {
            "schema": SCALES_SCHEMA,
            "model": model,
            "weight_format": default_name,
            "activation_format": default_name,
            "layer_formats": overrides or None,
            "mode": mode,
            "calib_n": self.calib_n,
            "calib_seed": self.calib_seed,
            "observer": self.observer,
            "per_channel": self.per_channel,
            "gain_override": self.gain_override,
            "accumulator_block": int(planes.BLOCK),
        }

    def artifact_path(self, model: str, fmt: str, mode: str = "fakequant") -> Path:
        key = self.model_key(model, fmt, mode)
        safe = re.sub(r"[^A-Za-z0-9._-]+", "_", key)
        return self.cache_dir / f"calib-{safe}.json"

    # -- resolution -----------------------------------------------------
    def resolve(self, model: str, fmt: str,
                mode: str = "fakequant") -> tuple[Module, ServableSpec]:
        """The calibrated ``(model, spec)`` for a key, building it at most once."""
        key = self.model_key(model, fmt, mode)
        with self._lock:
            hit = self._models.get(key)
            if hit is not None:
                return hit
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                hit = self._models.get(key)
                if hit is not None:
                    return hit
            try:
                built = self._load(key, model, fmt, mode)
            except ServeError:
                raise
            except Exception as exc:  # lint: allow[broad-except] wrap any load/calibration failure as a structured serve error
                raise ModelLoadError(
                    f"loading {key} failed: {type(exc).__name__}: {exc}") from exc
            with self._lock:
                self._models[key] = built
            return built

    def _ptq_config(self, fmt: str, mode: str) -> PTQConfig:
        default_name, layer_formats = parse_format_spec(fmt)
        return PTQConfig(weight_format=default_name, mode=mode,
                         per_channel_weights=self.per_channel,
                         gain_override=self.gain_override,
                         activation_observer=self.observer,
                         layer_formats=layer_formats or None)

    def _load(self, key: str, model: str, fmt: str,
              mode: str) -> tuple[Module, ServableSpec]:
        spec = self.specs.get(model)
        if spec is None:
            raise ModelLoadError(
                f"unknown model {model!r}; available: {sorted(self.specs)}")
        faults.maybe_fault("serve", f"load/{key}")
        net = spec.build()
        config = self._ptq_config(fmt, mode)
        cache_key = self.cache_key(model, fmt, mode)
        attached = self._attach_plane(net, key, config, cache_key)
        if attached is not None:
            return attached, spec
        path = self.artifact_path(model, fmt, mode)
        if self.persist:
            payload, _status = load_json(path)
            if (isinstance(payload, dict) and payload.get("key") == cache_key):
                try:
                    with no_grad():
                        _apply_scales(net, config, payload["scales"])
                except KeyError:
                    pass  # stale layer set: fall through to recalibration
                else:
                    self.artifact_hits += 1
                    return net, spec
        with no_grad():
            quantize_model(net, config,
                           spec.calibration(self.calib_n,
                                            CALIB_STREAM_SEED + self.calib_seed),
                           forward=spec.calib_forward)
        self.calibrations += 1
        if self.persist:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            save_json(path, {"key": cache_key, "scales": _extract_scales(net)},
                      name=f"serve-{model}")
        return net, spec

    def _attach_plane(self, net: Module, key: str, config: PTQConfig,
                      cache_key: dict) -> Module | None:
        """Rebuild ``net`` from a published shared-memory plane, or None.

        Any failure — missing segment, corrupt header, checksum or
        schema mismatch, stale cache key, wrong layer set — prints one
        warning line and returns None so the caller recalibrates.
        """
        seg_name = self.plane_manifest.get(key)
        if seg_name is None:
            return None
        from . import shm
        try:
            seg = shm.attach(seg_name)
        except shm.ShmIntegrityError as exc:
            self.shm_rejects += 1
            print(f"serve: plane segment for {key} rejected ({exc}); "
                  f"recalibrating locally", flush=True)
            return None
        if seg.meta.get("key") != cache_key:
            self.shm_rejects += 1
            print(f"serve: plane segment for {key} has a stale cache key; "
                  f"recalibrating locally", flush=True)
            seg.close()
            return None
        planes = {name[len("plane/"):]: seg.array(name)
                  for name in seg.array_names() if name.startswith("plane/")}
        try:
            with no_grad():
                _apply_scales(net, config, seg.meta["scales"], planes=planes)
        except KeyError:
            self.shm_rejects += 1
            print(f"serve: plane segment for {key} does not match the model "
                  f"layer set; recalibrating locally", flush=True)
            seg.close()
            return None
        self.shm_attaches += 1
        self._segments.append(seg)   # keep the mapping alive for the views
        return net

    def export_plane(self, model: str, fmt: str,
                     mode: str = "fakequant") -> tuple[dict, dict]:
        """The ``(meta, arrays)`` shared-memory payload for one key.

        Resolves (calibrating if needed) the model, then packages its
        cache key, per-layer scales and quantized weight planes for
        :func:`repro.serve.shm.publish`.  A worker repository attaches
        the published segment through ``plane_manifest`` and serves
        byte-identically without recalibrating.
        """
        net, _spec = self.resolve(model, fmt, mode)
        meta = {"key": self.cache_key(model, fmt, mode),
                "scales": _extract_scales(net)}
        arrays: dict[str, np.ndarray] = {}
        with no_grad():
            for name, layer in quantized_layers(net):
                if layer.weight_quant is None:
                    continue
                arrays[f"plane/{name}"] = layer.weight_quant.quantize_cached(
                    layer.weight)
        return meta, arrays

    def release(self) -> None:
        """Drop resident models and detach attached plane segments.

        Quantizer caches hold zero-copy views into the attached
        segments, so the models must go first (and a collection pass
        runs to free any cyclic object graphs) for the segment close to
        be clean — otherwise the interpreter prints exported-pointer
        noise when the mappings are finalised.
        """
        with self._lock:
            self._models.clear()
        gc.collect()
        for seg in self._segments:
            seg.close()
        self._segments.clear()

    def stats(self) -> dict:
        """Observability counters (resident models, cold/warm loads)."""
        with self._lock:
            resident = sorted(self._models)
        return {"resident": resident, "calibrations": self.calibrations,
                "artifact_hits": self.artifact_hits,
                "shm_attaches": self.shm_attaches,
                "shm_rejects": self.shm_rejects}
