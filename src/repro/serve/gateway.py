"""Asyncio TCP front door: the shard fleet made reachable from outside.

Everything below :mod:`repro.serve` so far is library-only — a client
had to import the router to reach it.  :class:`Gateway` owns a service
(an in-process :class:`~repro.serve.InferenceService` or a
:class:`~repro.serve.ShardRouter` fleet) and serves it over a TCP socket
speaking length-prefixed JSON frames (:mod:`repro.serve.wire`) with four
ops: ``infer``, ``stats``, ``health`` and ``drain``.  The wire is
treated as a first-class failure domain, and every robustness layer is
structured, bounded and testable:

* **Deadline propagation** — an ``infer`` frame carries the client's
  *remaining* deadline budget; the gateway further subtracts its own
  receipt-to-submit time before handing the rest to
  ``service.submit(deadline_ms=...)``.  A slow or stalled wire eats the
  budget; it never resets it.
* **Admission control** — a bounded in-flight window
  (``max_inflight``); overload converts to a structured ``overloaded``
  reply, and the scheduler's own backpressure (``queue-full``,
  ``deadline``) maps onto wire error kinds unchanged.  Nothing buffers
  unboundedly.
* **Circuit breakers** — per ``model|format|mode`` key
  (:mod:`repro.serve.breaker`): consecutive worker-crash/timeout
  failures open the breaker, requests fast-fail with ``circuit-open``,
  and a half-open probe re-closes it once the backend answers again
  (e.g. after the shard router's ``_revive`` respawned the worker).
* **Health supervision** — a background probe loop
  (:mod:`repro.serve.health`) pings each shard via the stats channel,
  reports ``ready``/``degraded``/``draining`` through the ``health``
  op, and escalates a persistently unreachable shard to a forced
  respawn.
* **Graceful drain** — the ``drain`` op (or SIGTERM via the CLI) stops
  admissions, finishes in-flight requests, rejects new work with a
  structured ``draining`` error, closes the service with
  ``close(drain=True)`` and lets the process exit 0.

Fault injection: the ``net`` scope (:mod:`repro.resilience.faults`)
deterministically attacks the wire at three points — connection accept
(``net:accept:*``), inbound request frames (``net:frame/OP:*``) and
outbound replies (``net:reply/OP:*``) — with ``drop`` / ``delay`` /
``garble`` / ``close`` actions.  The gateway chaos suite
(``tests/test_gateway_chaos.py``) combines a net storm with
``shard:*:kill`` worker murder and proves the headline invariant: every
request a client gets a success for is byte-identical to
``infer_serial``, every shed request carries a structured error kind,
and nothing ever hangs or double-completes.

The asyncio event loop runs in a dedicated thread (``start()``), so the
gateway embeds in tests, the CLI and benchmarks without owning the
process's main thread.  Blocking service calls (``submit`` + future
wait, ``stats``) run on a bounded executor sized to the admission
window, so the loop thread itself never blocks on the fleet.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..resilience import faults
from .breaker import BreakerBoard
from .errors import (
    BadRequestError, CircuitOpenError, DeadlineExceededError, DrainingError,
    GatewayTimeoutError, OverloadedError, ServeError,
)
from .health import HealthSupervisor
from . import wire

__all__ = ["Gateway"]

#: extra seconds past the propagated deadline the gateway waits for the
#: service's own structured deadline reply before its backstop timer
#: declares a gateway-timeout (must exceed the router's sweep grace)
DEADLINE_GRACE_S = 5.0


class Gateway:
    """TCP front door over one service or shard router.

    Parameters
    ----------
    service:
        An :class:`~repro.serve.InferenceService` or
        :class:`~repro.serve.ShardRouter` (anything exposing
        ``submit``/``stats``/``close``; ``ping``/``force_respawn``
        unlock shard-level health escalation).
    host / port:
        Bind address; port 0 picks a free port (read it back from
        ``gateway.port`` after ``start()``).
    max_inflight:
        Admission window: concurrently executing ``infer`` requests
        beyond this are shed with a structured ``overloaded`` reply.
    request_timeout_s:
        Backstop ceiling on one request's service-side wait (a
        deadline-less request against a wedged backend must still
        resolve).
    breaker_threshold / breaker_cooldown_s:
        Circuit-breaker policy per request key.
    probe_interval_s / probe_timeout_s / escalate_after:
        Health-supervision policy (see :class:`HealthSupervisor`).
    drain_timeout_s:
        How long a drain waits for in-flight requests before failing
        the stragglers structurally.
    own_service:
        When true (the default), draining also closes the service
        itself with ``close(drain=True)``.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0, *,
                 max_inflight: int = 64, request_timeout_s: float = 120.0,
                 breaker_threshold: int = 5, breaker_cooldown_s: float = 1.0,
                 probe_interval_s: float = 0.5, probe_timeout_s: float = 2.0,
                 escalate_after: int = 3, drain_timeout_s: float = 30.0,
                 own_service: bool = True):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.service = service
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.request_timeout_s = request_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.own_service = own_service
        self.breakers = BreakerBoard(breaker_threshold, breaker_cooldown_s)
        self.supervisor = HealthSupervisor(
            service, interval_s=probe_interval_s,
            probe_timeout_s=probe_timeout_s, escalate_after=escalate_after)
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight + 2,
            thread_name_prefix="gateway-exec")
        self._lock = threading.Lock()
        self._inflight = 0
        self._counters: dict[str, int] = {}
        self._error_kinds: dict[str, int] = {}
        self._net_enacted: dict[str, int] = {}
        self._draining = False
        self._drained = threading.Event()   # drain sequence finished
        self._ready = threading.Event()     # server bound, port known
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._tasks: set[asyncio.Task] = set()
        self._start_error: BaseException | None = None
        # post-drain observability: snapshotted before the service closes
        self._final_stats: dict | None = None
        self._final_render: str | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, timeout: float = 30.0) -> "Gateway":
        """Bind the socket and start serving in a background thread."""
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._thread = threading.Thread(target=self._thread_main,
                                        name="gateway-loop", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("gateway did not bind in time")
        if self._start_error is not None:
            self._thread.join(timeout=5.0)
            raise RuntimeError(
                f"gateway failed to start: {self._start_error}")
        self.supervisor.start()
        return self

    def request_drain(self) -> None:
        """Begin graceful drain (signal-handler and ``drain``-op safe)."""
        loop = self._loop
        if loop is None or not loop.is_running():
            self._drained.set()
            return
        loop.call_soon_threadsafe(self._begin_drain)

    def wait_closed(self, timeout: float | None = None) -> bool:
        """Block until the drain sequence has fully finished."""
        if not self._drained.wait(timeout):
            return False
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        return True

    def close(self, timeout: float | None = None) -> None:
        """Drain and shut down (the context-manager exit path)."""
        self.request_drain()
        if not self.wait_closed(timeout if timeout is not None
                                else self.drain_timeout_s + 30.0):
            raise RuntimeError("gateway did not drain in time")

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # event-loop thread
    # ------------------------------------------------------------------
    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # lint: allow[broad-except] a dead loop must still release waiters
            if not self._ready.is_set():
                self._start_error = exc
                self._ready.set()
        finally:
            # teardown runs outside the loop: these joins/blocking closes
            # must not run on the loop thread's coroutines
            self.supervisor.stop()
            self._executor.shutdown(wait=True)
            if self.own_service:
                try:
                    self._final_stats = self.service.stats()
                    self._final_render = self.service.render_stats()
                except Exception:  # lint: allow[broad-except] stats are best-effort on a service that may already be broken
                    pass
                try:
                    self.service.close(drain=True)
                except Exception as exc:  # lint: allow[broad-except] teardown must complete even if the service is already broken
                    print(f"gateway: service close failed: {exc}", flush=True)
            self._drained.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        async with self._server:
            await self._server.start_serving()
            while not self._draining:
                await asyncio.sleep(0.05)
            # drain: the listener stays open so late arrivals get a
            # structured 'draining' reply (not a refused connection)
            # while in-flight requests run to completion
            deadline = self._loop.time() + self.drain_timeout_s
            while self._tasks and self._loop.time() < deadline:
                await asyncio.sleep(0.02)
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            self._close_writer(writer)
        await asyncio.sleep(0)   # let close callbacks run

    def _begin_drain(self) -> None:
        # loop thread only
        self._draining = True

    @property
    def draining(self) -> bool:
        """Whether the gateway has begun (or finished) draining."""
        return self._draining

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def _bump(self, name: str, table: str = "counters") -> None:
        with self._lock:
            d = {"counters": self._counters, "errors": self._error_kinds,
                 "net": self._net_enacted}[table]
            d[name] = d.get(name, 0) + 1

    def _net_fault(self, site: str) -> str | None:
        """Fire an armed ``net`` fault at ``site``; returns the action."""
        spec = faults.fire("net", site)
        if spec is None:
            return None
        self._bump(f"{site}:{spec.action}", "net")
        return spec.action

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _close_writer(self, writer: asyncio.StreamWriter) -> None:
        self._writers.discard(writer)
        try:
            writer.close()
        except Exception:  # lint: allow[broad-except] closing an already-dead transport must not kill the handler
            pass

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._bump("connections")
        self._writers.add(writer)
        wlock = asyncio.Lock()
        try:
            action = self._net_fault("accept")
            if action == "close":
                return
            if action == "garble":
                writer.write(wire.garble(wire.pack_frame({"op": "noise"})))
                await writer.drain()
                return
            if action == "drop":
                # blackhole: swallow everything, never answer
                while await reader.read(1 << 16):
                    pass
                return
            if action == "delay":
                await asyncio.sleep(faults.NET_DELAY_SECONDS)
            if self._draining:
                await self._send_reply(
                    writer, wlock, "reject",
                    {"id": None, "ok": False,
                     "error": DrainingError(
                         "gateway is draining").to_entry()["error"]})
                return
            await self._conn_loop(reader, writer, wlock)
        finally:
            self._close_writer(writer)

    async def _conn_loop(self, reader, writer, wlock) -> None:
        while True:
            try:
                header = await reader.readexactly(4)
                payload = await reader.readexactly(
                    wire.frame_length(header))
                msg = wire.unpack_frame(payload)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return   # peer went away between frames: normal close
            except wire.FrameError as exc:
                await self._send_reply(
                    writer, wlock, "reject",
                    {"id": None, "ok": False,
                     "error": BadRequestError(str(exc)).to_entry()["error"]})
                return   # stream may be desynchronised: drop the conn
            self._bump("frames")
            op = msg.get("op")
            action = self._net_fault(f"frame/{op}")
            if action == "drop":
                continue        # the network ate the request silently
            if action == "close":
                return
            if action == "garble":
                # a corrupt inbound frame cannot be matched to a request
                await self._send_reply(
                    writer, wlock, "reject",
                    {"id": None, "ok": False,
                     "error": BadRequestError(
                         "garbled frame").to_entry()["error"]})
                return
            t_recv = time.monotonic()
            if action == "delay":
                await asyncio.sleep(faults.NET_DELAY_SECONDS)
            task = asyncio.ensure_future(
                self._serve_frame(writer, wlock, msg, op, t_recv))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------------
    # frame dispatch
    # ------------------------------------------------------------------
    async def _serve_frame(self, writer, wlock, msg: dict, op,
                           t_recv: float) -> None:
        req_id = msg.get("id")
        try:
            if op == "infer":
                result, latency_ms = await self._op_infer(msg, t_recv)
                reply = {"id": req_id, "ok": True, "result": result,
                         "latency_ms": latency_ms}
            elif op == "stats":
                loop = asyncio.get_running_loop()
                stats = await loop.run_in_executor(self._executor,
                                                   self.stats)
                reply = {"id": req_id, "ok": True, "stats": stats}
            elif op == "health":
                reply = {"id": req_id, "ok": True, "health": self.health()}
            elif op == "drain":
                self._begin_drain()
                reply = {"id": req_id, "ok": True, "draining": True}
            else:
                raise BadRequestError(f"unknown op {op!r}")
        except ServeError as exc:
            self._bump(exc.kind, "errors")
            reply = {"id": req_id, "ok": False,
                     "error": exc.to_entry()["error"]}
        except Exception as exc:  # lint: allow[broad-except] an internal bug must surface as one structured reply, never a silent drop
            self._bump("serve-error", "errors")
            reply = {"id": req_id, "ok": False,
                     "error": ServeError(
                         f"{type(exc).__name__}: {exc}").to_entry()["error"]}
        else:
            if op == "infer":
                self._bump("infer_ok")
        await self._send_reply(writer, wlock, op, reply)

    async def _op_infer(self, msg: dict, t_recv: float):
        model = msg.get("model")
        inputs = msg.get("inputs")
        fmt = msg.get("fmt", "MERSIT(8,2)")
        mode = msg.get("mode", "fakequant")
        if not isinstance(model, str) or inputs is None:
            raise BadRequestError("infer frame needs 'model' and 'inputs'")
        if model not in self.service.repository.specs:
            raise BadRequestError(f"unknown model {model!r}")
        if self._draining:
            raise DrainingError("gateway is draining; request rejected")
        try:
            # canonical breaker key — same spelling the shard ring hashes
            key = self.service.repository.model_key(model, fmt, mode)
        except (KeyError, ValueError, TypeError) as exc:
            raise BadRequestError(f"bad format {fmt!r}: {exc}") from None
        # admission window first: a shed request must not consume the
        # breaker's half-open probe slot
        with self._lock:
            if self._inflight >= self.max_inflight:
                shed = True
            else:
                shed = False
                self._inflight += 1
        if shed:
            raise OverloadedError(
                f"gateway at capacity ({self.max_inflight} in flight)")
        try:
            breaker = self.breakers.get(key)
            if not breaker.admit():
                raise CircuitOpenError(
                    f"circuit breaker open for {key}; fast-failing")
            # from here, every outcome must reach breakers.record: a
            # half-open probe slot that is never released wedges the key
            try:
                # deadline propagation: the budget on the wire minus the
                # time this frame already spent inside the gateway
                deadline_ms = msg.get("deadline_ms")
                if deadline_ms is not None:
                    deadline_ms = float(deadline_ms) - \
                        (time.monotonic() - t_recv) * 1e3
                    if deadline_ms <= 0:
                        raise DeadlineExceededError(
                            "deadline budget exhausted in transit")
                timeout_s = self.request_timeout_s
                if deadline_ms is not None:
                    timeout_s = min(timeout_s,
                                    deadline_ms / 1e3 + DEADLINE_GRACE_S)
                loop = asyncio.get_running_loop()
                t0 = time.monotonic()
                try:
                    result = await loop.run_in_executor(
                        self._executor, self._submit_and_wait,
                        model, inputs, fmt, mode, deadline_ms, timeout_s)
                except TimeoutError:
                    raise GatewayTimeoutError(
                        f"no service reply within {timeout_s:.1f}s "
                        f"backstop") from None
            except ServeError as exc:
                self.breakers.record(key, exc.kind)
                raise
            self.breakers.record(key, None)
            return result, (time.monotonic() - t0) * 1e3
        finally:
            with self._lock:
                self._inflight -= 1

    def _submit_and_wait(self, model, inputs, fmt, mode, deadline_ms,
                         timeout_s):
        # executor thread: the blocking half of one request
        fut = self.service.submit(model, inputs, fmt, mode,
                                  deadline_ms=deadline_ms)
        return fut.result(timeout_s)

    # ------------------------------------------------------------------
    # replies
    # ------------------------------------------------------------------
    async def _send_reply(self, writer, wlock, op, reply: dict) -> None:
        try:
            frame = wire.pack_frame(reply)
        except wire.FrameError as exc:   # oversized result: degrade structurally
            frame = wire.pack_frame(
                {"id": reply.get("id"), "ok": False,
                 "error": ServeError(str(exc)).to_entry()["error"]})
        action = self._net_fault(f"reply/{op}")
        if action == "drop":
            return              # the network ate the reply
        if action == "close":
            self._close_writer(writer)
            return
        if action == "delay":
            await asyncio.sleep(faults.NET_DELAY_SECONDS)
        if action == "garble":
            frame = frame[:4] + wire.garble(frame[4:])
        try:
            async with wlock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            pass                # peer vanished: nothing left to tell it

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Health summary (wire ``health`` op): supervisor + drain state."""
        state = self.supervisor.state()
        if self._draining:
            state["state"] = "draining"
        with self._lock:
            state["inflight"] = self._inflight
        return state

    def stats(self) -> dict:
        """Gateway counters + breaker states + the service's own stats."""
        with self._lock:
            gateway = {"host": self.host, "port": self.port,
                       "inflight": self._inflight,
                       "draining": self._draining,
                       "counters": dict(self._counters),
                       "errors": dict(self._error_kinds),
                       "net_faults_enacted": dict(self._net_enacted)}
        service = (self._final_stats if self._final_stats is not None
                   else self.service.stats())
        return {"gateway": gateway,
                "breakers": self.breakers.snapshot(),
                "health": self.health(),
                "service": service}

    def render_stats(self) -> str:
        """Human-readable block: gateway counters over the service block."""
        s = self.stats()
        g = s["gateway"]
        err = "  ".join(f"{k}:{v}" for k, v in sorted(g["errors"].items()))
        lines = [
            f"gateway {g['host']}:{g['port']}"
            f"  connections {g['counters'].get('connections', 0)}"
            f"  frames {g['counters'].get('frames', 0)}"
            f"  ok {g['counters'].get('infer_ok', 0)}"
            f"  inflight {g['inflight']}"
            + ("  DRAINING" if g["draining"] else ""),
            f"  errors      {err or '(none)'}",
            f"  health      {s['health']['state']}"
            f"  (probes {s['health']['probes']})",
        ]
        for key, b in sorted(s["breakers"].items()):
            lines.append(f"  breaker     {key}  {b['state']}"
                         f"  opens {b['opens']}"
                         f"  fast-fails {b['fast_fails']}")
        if g["net_faults_enacted"]:
            net = "  ".join(f"{k}:{v}" for k, v
                            in sorted(g["net_faults_enacted"].items()))
            lines.append(f"  net faults  {net}")
        lines.append(self._final_render if self._final_render is not None
                     else self.service.render_stats())
        return "\n".join(lines)
