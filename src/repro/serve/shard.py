"""Multi-process sharded serving: a consistent-hash router over warm workers.

:class:`ShardRouter` fans requests out to N worker *processes*, each
hosting a full :class:`~repro.serve.InferenceService` (batching
scheduler included) behind one duplex pipe.  The pieces:

* **Consistent hashing** — requests are routed by their canonical
  ``model|format|mode`` key through a :class:`HashRing` (SHA-256 virtual
  nodes), so every request for one key lands on one shard.  That keeps
  the per-key batching win intact across the fan-out and makes routing
  stable: adding a shard remaps only the keys of the ring arcs it takes
  over.
* **Warm processes** — shard workers are leased from the resilience
  layer's persistent pool (:func:`repro.resilience.pool.get_pool`,
  ``kind="serve"``) with a dedicated pipe protocol
  (:func:`_shard_worker_main`).  The pool's spawn/respawn/pipe-EOF
  machinery is reused verbatim: a dead worker is detected by its pipe
  raising ``EOFError`` and is respawned *in its slot*, re-initialised,
  and handed back its in-flight requests.
* **Calibrate once, attach everywhere** — the router's parent repository
  calibrates each preheated key once, then publishes the per-layer
  scales and quantized weight planes (plus per-format decode-LUT
  tables) into checksummed shared-memory segments
  (:mod:`repro.serve.shm`).  Workers attach instead of recalibrating; a
  corrupt or stale segment demotes to local recalibration with a
  one-line warning, never a crash.
* **Exactly-once replies** — every request holds a router-side pending
  record keyed by a sequence number.  A reply retires the record;
  replies for unknown sequence numbers (a duplicate after respawn
  redispatch, a straggler after deadline expiry) are dropped.  On
  worker death the router redispatches only the still-pending,
  still-live requests for that slot — a request whose reply was already
  collected is never re-executed, and a redispatched request's injected
  fault action is *not* re-shipped (parent-fired fault budgets are
  consumed once).

**The differential guarantee, sharded.**  A sharded result is
byte-identical to serial single-sample inference in the parent process,
under both PTQ modes and both kernel backends.  The argument composes
from proven pieces: workers run the same :func:`repro.serve.service.execute_batch`
data path under the batch-invariant matmul mode (batched == serial,
proven by ``tests/test_serve_differential.py``); attached scale/plane
segments round-trip floats exactly (JSON ``repr`` serialisation, SHA-256
verified) and the planes were computed by the publisher running the very
same quantization code; LUT tables are pure functions of the format; and
the active kernel backend is shipped with every request, so a worker
never serves under a different backend than its caller.
``tests/test_shard_differential.py`` checks the composition end to end.

Fault injection: the router fires ``shard:req/KEY`` faults in the
*parent* (so counted clauses survive worker respawns) and ships the
action for the worker to enact — ``kill`` exercises the respawn +
redispatch path, ``crash`` surfaces as a structured worker-crash reply.
Segment corruption is injected at publish time (``shard:segment/KEY``,
see :mod:`repro.serve.shm`).
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import json
import multiprocessing
import os
import queue
import signal
import threading
import time

from .. import kernels
from ..formats import get_format
from ..resilience import faults
from ..resilience import pool as pool_mod
from . import shm
from .errors import (
    DeadlineExceededError, ModelLoadError, QueueFullError, ServeError,
    ServiceClosedError, WorkerCrashError, error_from_entry,
)
from .metrics import ServeMetrics, merge_snapshots
from .repository import ModelRepository, micro_specs, zoo_specs
from .scheduler import BatchPolicy, ServeFuture
from .service import InferenceService, execute_batch

__all__ = ["HashRing", "ShardRouter"]

#: how long past a request's deadline the router waits for a (possibly
#: hung) worker before expiring the pending record itself
SWEEP_GRACE_S = 1.0

#: how long a worker's shipper thread waits on one scheduler future
#: before declaring the request lost inside the worker
WORKER_RESULT_TIMEOUT_S = 300.0


class HashRing:
    """Consistent hashing of string keys onto ``slots`` shard indices.

    Each slot contributes ``vnodes`` virtual points (SHA-256 of
    ``shard-{slot}-vnode-{v}``) on a 64-bit ring; a key maps to the
    owner of the first point at or after its own hash.  Virtual nodes
    smooth the load split, and the construction is deterministic — every
    process computes the identical ring, so tests can predict placement.
    """

    def __init__(self, slots: int, vnodes: int = 64):
        if slots < 1 or vnodes < 1:
            raise ValueError("slots and vnodes must be >= 1")
        self.slots = slots
        self.vnodes = vnodes
        points = sorted(
            (self._hash(f"shard-{slot}-vnode-{v}"), slot)
            for slot in range(slots) for v in range(vnodes))
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    @staticmethod
    def _hash(token: str) -> int:
        return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8],
                              "big")

    def lookup(self, key: str) -> int:
        """The shard slot owning ``key``."""
        idx = bisect.bisect_right(self._points, self._hash(key))
        return self._owners[idx % len(self._points)]


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------


def _build_specs(desc: dict) -> dict:
    """Rebuild a servable-spec map from its plain-data descriptor.

    Specs hold closures and cannot cross the pipe; the router ships
    ``{"kind": "micro"}`` or ``{"kind": "zoo", "names": [...]}`` and the
    worker reconstructs the identical map locally.
    """
    kind = desc.get("kind", "micro")
    if kind == "micro":
        return micro_specs()
    if kind == "zoo":
        return zoo_specs(desc.get("names"))
    raise ValueError(f"unknown spec source kind {kind!r}")


def _release_state(state: dict) -> None:
    """Tear down a worker's service and its shared-memory attachments.

    Order matters for clean finalisation: stop the service, drop the
    kernel cache (its LUT tables are views into attached segments),
    release the repository (plane views), then close the segments.
    """
    service, state["service"] = state["service"], None
    state["token"] = None
    if service is not None:
        service.close(drain=False)
    kernels.clear_kernel_cache()
    from ..engine import clear_planes_cache
    clear_planes_cache()   # decode planes can hold views of attached LUTs
    if service is not None:
        service.repository.release()
    for seg in state["segments"]:
        seg.close()
    state["segments"] = []


def _init_service(state: dict, cfg: dict) -> tuple[str | None, dict]:
    """(Re)build the worker's service from a router config; returns
    ``(error_or_None, info)`` for the ``ready`` reply.

    An unchanged config reuses the live service — the warm-pool win: a
    second router run with identical state pays zero rebuild cost.
    """
    token = json.dumps(cfg, sort_keys=True, default=repr)
    if state["service"] is not None and token == state["token"]:
        repo = state["service"].repository
        return None, {"pid": os.getpid(), "reused": True,
                      "shm_attaches": repo.shm_attaches}
    if state["service"] is not None:
        _release_state(state)
    try:
        for fmt_name, seg_name in cfg.get("lut_manifest", {}).items():
            try:
                seg = shm.attach(seg_name)
            except shm.ShmIntegrityError as exc:
                print(f"shard worker: LUT segment for {fmt_name} rejected "
                      f"({exc}); building locally", flush=True)
                continue
            kernels.install_tables(seg.meta, seg.arrays())
            state["segments"].append(seg)
        repository = ModelRepository(
            _build_specs(cfg.get("specs", {"kind": "micro"})),
            plane_manifest=cfg.get("plane_manifest"),
            **cfg.get("repository", {}))
        state["service"] = InferenceService(
            repository, BatchPolicy(**cfg.get("policy", {})))
        state["token"] = token
    except Exception as exc:  # lint: allow[broad-except] init failures ship to the router as a structured ready error
        return f"{type(exc).__name__}: {exc}", {"pid": os.getpid()}
    return None, {"pid": os.getpid(), "reused": False}


def _shard_worker_main(conn) -> None:
    """Shard worker loop: one batching service behind one duplex pipe.

    Messages from the router: ``("init", cfg)``, ``("req", seq, model,
    fmt, mode, inputs, deadline_ms, backend, fault_action, fault_env)``,
    ``("stats", seq)``, ``("stop",)``.  Replies: ``("ready", error,
    info)`` and ``("res", seq, status, payload, extra)`` with status
    ``ok`` / ``err`` / ``stats``.  Every ``req`` produces exactly one
    ``res`` (admission errors reply immediately; accepted requests reply
    from the shipper thread when their future completes).  SIGINT is
    ignored — on Ctrl-C the router's process owns teardown.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    state: dict = {"service": None, "token": None, "segments": []}
    send_lock = threading.Lock()
    ship_q: queue.Queue = queue.Queue()

    def _send(msg) -> None:
        with send_lock:
            try:
                # lint: allow[blocking-call-under-lock] pipe writes must be serialized per connection; the router drains its end continuously
                conn.send(msg)
            except (OSError, ValueError):  # router gone; nothing to do
                pass

    def _shipper() -> None:
        # FIFO over accepted requests: replies leave in submission order,
        # matched router-side by sequence number regardless
        while True:
            item = ship_q.get()
            if item is None:
                return
            seq, fut, t0 = item
            try:
                value = fut.result(timeout=WORKER_RESULT_TIMEOUT_S)
            except ServeError as exc:
                _send(("res", seq, "err", exc.to_entry(), {}))
            except Exception as exc:  # lint: allow[broad-except] any scheduler failure must still produce the one reply
                err = WorkerCrashError(
                    f"shard worker lost the request: "
                    f"{type(exc).__name__}: {exc}")
                _send(("res", seq, "err", err.to_entry(), {}))
            else:
                _send(("res", seq, "ok", value,
                       {"latency_ms": (time.monotonic() - t0) * 1e3}))

    threading.Thread(target=_shipper, name="shard-shipper",
                     daemon=True).start()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "init":
            error, info = _init_service(state, msg[1])
            _send(("ready", error, info))
            continue
        if kind == "stats":
            service = state["service"]
            payload = None if service is None else {
                "pid": os.getpid(),
                "metrics": service.metrics.snapshot(samples=True),
                "repository": service.repository.stats(),
                "queue_depth": service.scheduler.queue_depth(),
            }
            _send(("res", msg[1], "stats", payload, {}))
            continue
        (_, seq, model, fmt, mode, inputs, deadline_ms, backend,
         fault_action, fault_env) = msg
        if fault_env is None:
            os.environ.pop(faults.ENV_VAR, None)
        else:
            os.environ[faults.ENV_VAR] = fault_env
        service = state["service"]
        try:
            if fault_action is not None:
                # parent-fired (counts survive respawns), worker-enacted
                faults.enact(fault_action, "shard",
                             f"req/{model}|{fmt}|{mode}")
            if service is None:
                raise ModelLoadError("shard worker has no initialised service")
            kernels.set_backend(backend)
            fut = service.submit(model, inputs, fmt=fmt, mode=mode,
                                 deadline_ms=deadline_ms)
        except ServeError as exc:
            _send(("res", seq, "err", exc.to_entry(), {}))
        except Exception as exc:  # lint: allow[broad-except] injected crashes and submit failures become structured replies
            err = WorkerCrashError(
                f"shard submit failed: {type(exc).__name__}: {exc}")
            _send(("res", seq, "err", err.to_entry(), {}))
        else:
            ship_q.put((seq, fut, time.monotonic()))
    ship_q.put(None)
    _release_state(state)


# ----------------------------------------------------------------------
# router side
# ----------------------------------------------------------------------


class _Pending:
    """Router-side record of one in-flight request (or stats ask)."""

    __slots__ = ("seq", "slot", "kind", "key", "payload", "future",
                 "t_submit", "deadline")

    def __init__(self, seq: int, slot: int, kind: str, key: str, payload,
                 deadline: float | None):
        self.seq = seq
        self.slot = slot
        self.kind = kind              # "req" | "stats"
        self.key = key
        self.payload = payload        # (model, fmt, mode, inputs, backend)
        self.future = ServeFuture()
        self.t_submit = time.monotonic()
        self.deadline = deadline      # absolute monotonic, or None


class ShardRouter:
    """Consistent-hash fan-out over N shard worker processes.

    Exposes the same client surface as
    :class:`~repro.serve.InferenceService` (``submit`` / ``infer`` /
    ``infer_serial`` / ``metrics`` / ``repository`` / ``stats``), so the
    load generator and the differential tests drive either
    interchangeably.

    Parameters
    ----------
    shards:
        Worker process count (ring slots).
    specs:
        ``"micro"`` (seeded micro models) or ``"zoo"`` (pretrained zoo;
        restrict with ``zoo_names``) — shipped as a plain descriptor and
        rebuilt inside each worker, since specs hold closures.
    preheat:
        ``(model, fmt, mode)`` keys to calibrate in the parent and
        publish as shared-memory plane segments (plus one decode-LUT
        segment per distinct format); non-preheated keys calibrate
        inside whichever worker first serves them (deterministically —
        calibration streams are seeded, so results stay bit-identical).
    policy:
        Per-worker :class:`BatchPolicy`; ``policy.queue_depth`` also
        bounds the router's per-shard in-flight window (admission
        backpressure raises :class:`QueueFullError`).
    persist / cache_dir / calib_n / calib_seed / observer / per_channel /
    gain_override:
        Forwarded to every :class:`ModelRepository` (parent and workers)
        so all of them resolve identical state.
    """

    def __init__(self, shards: int = 2, specs: str = "micro", *,
                 zoo_names: list[str] | None = None,
                 preheat: list[tuple] | tuple = (),
                 policy: BatchPolicy | None = None,
                 calib_n: int = 64, calib_seed: int = 0,
                 observer: str = "max", per_channel: bool = True,
                 gain_override: float | None = None,
                 persist: bool = False, cache_dir=None,
                 start_method: str | None = None, vnodes: int = 64,
                 init_timeout: float = 120.0):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if specs not in ("micro", "zoo"):
            raise ValueError(f"specs must be 'micro' or 'zoo', got {specs!r}")
        self.policy = policy or BatchPolicy()
        self.metrics = ServeMetrics()
        self.ring = HashRing(shards, vnodes)
        self._specs_desc = (
            {"kind": "micro"} if specs == "micro"
            else {"kind": "zoo",
                  "names": None if zoo_names is None else list(zoo_names)})
        self._repo_cfg: dict = {
            "calib_n": calib_n, "calib_seed": calib_seed,
            "observer": observer, "per_channel": per_channel,
            "gain_override": gain_override, "persist": persist}
        if cache_dir is not None:
            self._repo_cfg["cache_dir"] = str(cache_dir)
        self.repository = ModelRepository(_build_specs(self._specs_desc),
                                          plane_manifest=None,
                                          **self._repo_cfg)
        self.plane_manifest: dict[str, str] = {}
        self.lut_manifest: dict[str, str] = {}
        self._published: list[shm.PublishedSegment] = []
        for entry in preheat:
            model, fmt, mode = entry if len(entry) == 3 else (*entry,
                                                             "fakequant")
            self._publish_key(model, fmt, mode)

        ctx = (multiprocessing.get_context(start_method) if start_method
               else multiprocessing.get_context())
        self._pool = pool_mod.get_pool(ctx, kind="serve",
                                       target=_shard_worker_main,
                                       name_prefix="repro-shard")
        self._workers = self._pool.lease(shards)
        self._slot_locks = [threading.Lock() for _ in range(shards)]
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._pending: dict[int, _Pending] = {}
        self._closed = False
        self._stop = threading.Event()
        self.respawns = 0

        cfg = self.worker_config()
        for worker in self._workers:
            worker.conn.send(("init", cfg))
        for slot, worker in enumerate(self._workers):
            if not worker.conn.poll(init_timeout):
                raise ModelLoadError(f"shard {slot} did not initialise "
                                     f"within {init_timeout}s")
            msg = worker.conn.recv()
            if msg[0] != "ready" or msg[1] is not None:
                raise ModelLoadError(
                    f"shard {slot} failed to initialise: {msg[1]}")
        self._collector = threading.Thread(
            target=self._collect, name="shard-collector", daemon=True)
        self._collector.start()

    # -- shared-memory publication --------------------------------------
    def _publish_key(self, model: str, fmt: str, mode: str) -> None:
        key = self.repository.model_key(model, fmt, mode)
        if key not in self.plane_manifest:
            meta, arrays = self.repository.export_plane(model, fmt, mode)
            seg = shm.publish(f"plane/{key}", meta, arrays)
            self.plane_manifest[key] = seg.name
            self._published.append(seg)
        fmt_name = get_format(fmt).name
        if fmt_name not in self.lut_manifest:
            lmeta, larrays = kernels.export_tables(get_format(fmt))
            lseg = shm.publish(f"lut/{fmt_name}", lmeta, larrays)
            self.lut_manifest[fmt_name] = lseg.name
            self._published.append(lseg)

    def worker_config(self) -> dict:
        """The plain-data init config every shard worker receives."""
        return {"specs": dict(self._specs_desc),
                "repository": dict(self._repo_cfg),
                "plane_manifest": dict(self.plane_manifest),
                "lut_manifest": dict(self.lut_manifest),
                "policy": {"max_batch": self.policy.max_batch,
                           "max_wait_ms": self.policy.max_wait_ms,
                           "queue_depth": self.policy.queue_depth,
                           "workers": self.policy.workers,
                           "retries": self.policy.retries}}

    # -- client API ------------------------------------------------------
    def submit(self, model: str, inputs, fmt: str = "MERSIT(8,2)",
               mode: str = "fakequant",
               deadline_ms: float | None = None) -> ServeFuture:
        """Route one request to its shard; returns a completion future."""
        key = self.repository.model_key(model, fmt, mode)
        slot = self.ring.lookup(key)
        spec = faults.fire("shard", f"req/{key}")
        fault_action = None if spec is None else spec.action
        backend = kernels.get_backend()
        now = time.monotonic()
        with self._lock:
            if self._closed:
                raise ServiceClosedError("shard router is closed")
            depth = sum(1 for p in self._pending.values()
                        if p.slot == slot and p.kind == "req")
            if depth >= self.policy.queue_depth:
                self.metrics.on_reject()
                raise QueueFullError(
                    f"shard {slot} at capacity ({self.policy.queue_depth} "
                    f"requests in flight)")
            pending = _Pending(
                seq=next(self._seq), slot=slot, kind="req", key=key,
                payload=(model, fmt, mode, inputs, backend),
                deadline=None if deadline_ms is None
                else now + deadline_ms / 1000.0)
            self._pending[pending.seq] = pending
            self.metrics.on_submit(depth + 1)
        self._dispatch(pending, fault_action)
        return pending.future

    def infer(self, model: str, inputs, fmt: str = "MERSIT(8,2)",
              mode: str = "fakequant", deadline_ms: float | None = None,
              timeout: float | None = 60.0):
        """Submit and block for the result (convenience wrapper)."""
        return self.submit(model, inputs, fmt, mode,
                           deadline_ms=deadline_ms).result(timeout)

    def infer_serial(self, model: str, inputs, fmt: str = "MERSIT(8,2)",
                     mode: str = "fakequant"):
        """Serial single-sample reference in the router's own process.

        Runs the same :func:`execute_batch` data path over the parent
        repository — the ground truth every sharded result must equal
        byte-for-byte.
        """
        key = self.repository.model_key(model, fmt, mode)
        return execute_batch(self.repository, key, [inputs])[0]

    # -- dispatch / collection -------------------------------------------
    def _dispatch(self, pending: _Pending,
                  fault_action: str | None = None) -> None:
        model, fmt, mode, inputs, backend = pending.payload
        deadline_ms = (None if pending.deadline is None else
                       max((pending.deadline - time.monotonic()) * 1e3, 0.0))
        msg = ("req", pending.seq, model, fmt, mode, inputs, deadline_ms,
               backend, fault_action, os.environ.get(faults.ENV_VAR))
        with self._slot_locks[pending.slot]:
            try:
                # lint: allow[blocking-call-under-lock] per-slot lock serializes pipe writes; in-flight bounded by queue_depth admission so the buffer never fills
                self._workers[pending.slot].conn.send(msg)
            except (OSError, ValueError):
                pass  # dead pipe: the collector's EOF path revives the
                #       slot and redispatches everything still pending

    def _collect(self) -> None:
        while not self._stop.is_set():
            conn_slots = {w.conn: slot
                          for slot, w in enumerate(self._workers)}
            for conn in pool_mod.wait(list(conn_slots), 0.2):
                slot = conn_slots[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self._revive(slot, conn)
                    continue
                self._handle(msg)
            self._sweep()

    def _handle(self, msg) -> None:
        kind = msg[0]
        if kind == "ready":
            if msg[1] is not None:
                print(f"shard worker re-init failed: {msg[1]}", flush=True)
            return
        if kind != "res":  # pragma: no cover - unknown message
            return
        _, seq, status, payload, _extra = msg
        with self._lock:
            pending = self._pending.pop(seq, None)
        if pending is None:
            return  # late reply for a retired request: dropped (exactly-once)
        if status == "ok":
            pending.future._complete(payload)
            self.metrics.on_complete(
                (time.monotonic() - pending.t_submit) * 1e3)
        elif status == "stats":
            pending.future._complete(payload)
        else:
            err = error_from_entry(payload)
            pending.future._fail(err)
            if isinstance(err, DeadlineExceededError):
                self.metrics.on_expire()
            else:
                self.metrics.on_fail()

    def _sweep(self) -> None:
        """Expire pendings a hung worker never answered (deadline + grace)."""
        now = time.monotonic()
        with self._lock:
            expired = [p for p in self._pending.values()
                       if p.kind == "req" and p.deadline is not None
                       and now > p.deadline + SWEEP_GRACE_S]
            for p in expired:
                del self._pending[p.seq]
        for p in expired:
            p.future._fail(DeadlineExceededError(
                "deadline expired with no reply from the shard worker"))
            self.metrics.on_expire()

    def _revive(self, slot: int, dead_conn) -> None:
        """Respawn a dead shard in its slot and redispatch its pendings."""
        with self._slot_locks[slot]:
            worker = self._workers[slot]
            if worker.conn is not dead_conn:
                return  # already revived
            try:
                replacement = self._pool.respawn(worker)
            except pool_mod.PoolShutdown:
                return  # pool torn down under us: the router is closing
            self._workers[slot] = replacement
            self.respawns += 1
            try:
                # lint: allow[blocking-call-under-lock] init must reach the fresh pipe before any redispatch on this slot; buffer is empty at this point
                replacement.conn.send(("init", self.worker_config()))
            except (OSError, ValueError):  # pragma: no cover - died instantly
                return
        with self._lock:
            todo = sorted((p for p in self._pending.values()
                           if p.slot == slot), key=lambda p: p.seq)
        now = time.monotonic()
        for p in todo:
            if p.kind != "req":
                with self._lock:
                    self._pending.pop(p.seq, None)
                p.future._complete(None)   # stats ask died with the worker
            elif p.deadline is not None and now >= p.deadline:
                with self._lock:
                    self._pending.pop(p.seq, None)
                p.future._fail(DeadlineExceededError(
                    "deadline expired during shard respawn"))
                self.metrics.on_expire()
            else:
                # the pipe delivers the init before these, and the fault
                # action is deliberately not re-shipped
                self._dispatch(p)

    # -- observability ---------------------------------------------------
    def _ask_stats(self, slot: int) -> _Pending:
        with self._lock:
            pending = _Pending(seq=next(self._seq), slot=slot, kind="stats",
                               key="", payload=None, deadline=None)
            self._pending[pending.seq] = pending
        with self._slot_locks[slot]:
            try:
                # lint: allow[blocking-call-under-lock] per-slot lock serializes pipe writes; a stats tuple never fills the pipe buffer
                self._workers[slot].conn.send(("stats", pending.seq))
            except (OSError, ValueError):
                pass
        return pending

    def ping(self, timeout: float = 2.0) -> list[bool]:
        """Per-slot liveness: does each shard still answer its stats pipe?

        A slot is healthy iff it ships a stats payload within
        ``timeout`` — a worker whose main loop is wedged (an enacted
        ``hang`` fault, a stuck syscall) fails the ping even though its
        process is alive, which is exactly the state the health
        supervisor must escalate.  Unanswered asks are retired so a hung
        worker cannot leak pending records probe after probe.
        """
        pendings = [self._ask_stats(slot)
                    for slot in range(len(self._workers))]
        healthy = []
        for pending in pendings:
            try:
                healthy.append(pending.future.result(timeout) is not None)
            except Exception:  # lint: allow[broad-except] an unresponsive or dead shard is simply unhealthy
                healthy.append(False)
        with self._lock:
            for pending in pendings:
                self._pending.pop(pending.seq, None)
        return healthy

    def force_respawn(self, slot: int) -> None:
        """Hard-kill one shard worker (health-supervision escalation).

        SIGKILL makes the worker's pipe EOF, which the collector's
        existing :meth:`_revive` path turns into an in-slot respawn,
        re-init and redispatch — escalation reuses the proven crash
        recovery machinery rather than a parallel teardown path.
        """
        if not 0 <= slot < len(self._workers):
            raise ValueError(f"no shard slot {slot}")
        try:
            os.kill(self._workers[slot].pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass  # already dead: the collector is reviving it

    def stats(self, timeout: float = 30.0) -> dict:
        """Fleet-wide stats: exact merged percentiles + per-shard detail.

        Each worker ships its metrics snapshot *with raw samples* over
        the result pipe; :func:`merge_snapshots` pools them, so the
        fleet p50/p95/p99 equal what a single process observing every
        request would report.  Per-shard entries keep their queue depth
        and counters (samples are stripped after merging).
        """
        futures = [self._ask_stats(slot).future
                   for slot in range(len(self._workers))]
        per_shard = []
        for slot, fut in enumerate(futures):
            try:
                snap = fut.result(timeout)
            except Exception:  # lint: allow[broad-except] a dead shard reports as missing, not a stats crash
                snap = None
            per_shard.append({"slot": slot, "pid": self._workers[slot].pid,
                              "stats": snap})
        fleet = merge_snapshots([e["stats"]["metrics"] for e in per_shard
                                 if e["stats"]])
        for e in per_shard:   # samples served their purpose; keep output lean
            if e["stats"]:
                e["stats"]["metrics"].pop("samples", None)
        return {"shards": len(self._workers),
                "respawns": self.respawns,
                "router": self.metrics.snapshot(),
                "fleet": fleet,
                "per_shard": per_shard,
                "repository": self.repository.stats(),
                "published_segments": shm.owned_segments()}

    def render_stats(self) -> str:
        """Human-readable fleet block (``repro serve --stats --shards N``)."""
        s = self.stats()
        fleet = s["fleet"]
        exact = "exact" if fleet.get("percentiles_exact") else "upper-bound"
        lines = [
            f"shard fleet  {s['shards']} shards  {s['respawns']} respawns",
            f"  requests    submitted {fleet['submitted']}"
            f"  completed {fleet['completed']}  rejected {fleet['rejected']}"
            f"  expired {fleet['expired']}  failed {fleet['failed']}",
            f"  latency ms  p50 {fleet['latency_ms']['p50']:.2f}"
            f"  p95 {fleet['latency_ms']['p95']:.2f}"
            f"  p99 {fleet['latency_ms']['p99']:.2f}  ({exact})",
            f"  batches     mean size {fleet['mean_batch_size']:.2f}",
        ]
        for e in s["per_shard"]:
            st = e["stats"]
            if st is None:
                lines.append(f"  shard {e['slot']}  pid {e['pid']}  (no reply)")
                continue
            m = st["metrics"]
            rep = st["repository"]
            lines.append(
                f"  shard {e['slot']}  pid {e['pid']}"
                f"  queue {st['queue_depth']}"
                f"  completed {m['completed']}"
                f"  shm attaches {rep['shm_attaches']}"
                f"  calibrations {rep['calibrations']}")
        return "\n".join(lines)

    # -- lifecycle -------------------------------------------------------
    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop routing and unlink published segments (workers stay warm).

        ``drain`` waits for in-flight requests before teardown; anything
        still pending afterwards fails with a structured
        :class:`ServiceClosedError`.  The leased worker processes are
        *not* killed — they stay in the persistent pool for the next
        router (an unchanged config reuses their services outright).
        """
        with self._lock:
            self._closed = True
        if drain:
            end = time.monotonic() + timeout
            while time.monotonic() < end:
                with self._lock:
                    if not self._pending:
                        break
                time.sleep(0.01)
        self._stop.set()
        self._collector.join(timeout=5.0)
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for p in leftovers:
            p.future._fail(ServiceClosedError(
                "shard router closed with the request in flight"))
            self.metrics.on_fail()
        for seg in self._published:
            seg.unlink()
        self._published.clear()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
