"""Thread-safe serving metrics: latency percentiles, queue depth, batches.

One :class:`ServeMetrics` instance is shared by the scheduler, its
workers and the load generator.  Everything is recorded under a single
lock (the recorded quantities are tiny compared to a forward pass), and
:meth:`snapshot` returns a plain-JSON dict so the numbers flow straight
into ``BENCH_serve.json`` and ``repro serve --stats``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

__all__ = ["ServeMetrics", "percentile", "merge_snapshots"]


def percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (nearest-rank on sorted samples); 0.0 if empty."""
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


class ServeMetrics:
    """Counters and reservoirs for one service lifetime."""

    def __init__(self):
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Zero every counter (keeps the instance shared references valid)."""
        with getattr(self, "_lock", threading.Lock()):
            self.started = time.monotonic()
            self.submitted = 0
            self.completed = 0
            self.rejected = 0       # queue-full at admission
            self.expired = 0        # deadline passed before execution
            self.failed = 0         # structured execution failures
            self.retried_batches = 0
            self.latencies_ms: list[float] = []   # enqueue -> completion
            self.wait_ms: list[float] = []        # enqueue -> batch pickup
            self.batch_sizes: dict[int, int] = {}
            self.queue_depths: list[int] = []

    # ------------------------------------------------------------------
    # recording (called by scheduler / workers)
    # ------------------------------------------------------------------
    def on_submit(self, queue_depth: int) -> None:
        with self._lock:
            self.submitted += 1
            self.queue_depths.append(queue_depth)

    def on_reject(self) -> None:
        with self._lock:
            self.rejected += 1

    def on_expire(self) -> None:
        with self._lock:
            self.expired += 1

    def on_batch(self, size: int, wait_ms: list[float]) -> None:
        with self._lock:
            self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1
            self.wait_ms.extend(wait_ms)

    def on_retry(self) -> None:
        with self._lock:
            self.retried_batches += 1

    def on_complete(self, latency_ms: float) -> None:
        with self._lock:
            self.completed += 1
            self.latencies_ms.append(latency_ms)

    def on_fail(self) -> None:
        with self._lock:
            self.failed += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self, samples: bool = False) -> dict:
        """A plain-JSON summary of everything recorded so far.

        With ``samples=True`` the raw latency/wait/depth reservoirs ride
        along under a ``"samples"`` key, so a remote aggregator
        (:func:`merge_snapshots`) can pool them and compute *exact*
        fleet-wide percentiles — percentiles of a union cannot be
        derived from per-process percentiles.
        """
        with self._lock:
            elapsed = max(time.monotonic() - self.started, 1e-9)
            lat = list(self.latencies_ms)
            depths = list(self.queue_depths)
            out = {
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "expired": self.expired,
                "failed": self.failed,
                "retried_batches": self.retried_batches,
                "throughput_rps": self.completed / elapsed,
                "latency_ms": {
                    "p50": percentile(lat, 50),
                    "p95": percentile(lat, 95),
                    "p99": percentile(lat, 99),
                    "max": max(lat, default=0.0),
                },
                "wait_ms": {"p50": percentile(self.wait_ms, 50),
                            "p95": percentile(self.wait_ms, 95)},
                "queue_depth": {"mean": (sum(depths) / len(depths)) if depths else 0.0,
                                "max": max(depths, default=0)},
                "batch_size_histogram": {str(k): v for k, v
                                         in sorted(self.batch_sizes.items())},
                "mean_batch_size": (
                    sum(k * v for k, v in self.batch_sizes.items())
                    / max(sum(self.batch_sizes.values()), 1)),
            }
            if samples:
                out["samples"] = {"latencies_ms": lat,
                                  "wait_ms": list(self.wait_ms),
                                  "queue_depths": depths}
            return out

    def render(self) -> str:
        """Human-readable stats block (``repro serve --stats``)."""
        s = self.snapshot()
        lines = [
            "serve metrics",
            f"  requests    submitted {s['submitted']}  completed {s['completed']}"
            f"  rejected {s['rejected']}  expired {s['expired']}  failed {s['failed']}",
            f"  throughput  {s['throughput_rps']:.1f} req/s",
            f"  latency ms  p50 {s['latency_ms']['p50']:.2f}"
            f"  p95 {s['latency_ms']['p95']:.2f}"
            f"  p99 {s['latency_ms']['p99']:.2f}"
            f"  max {s['latency_ms']['max']:.2f}",
            f"  queue wait  p50 {s['wait_ms']['p50']:.2f} ms"
            f"  p95 {s['wait_ms']['p95']:.2f} ms",
            f"  queue depth mean {s['queue_depth']['mean']:.1f}"
            f"  max {s['queue_depth']['max']}",
            f"  batches     mean size {s['mean_batch_size']:.2f}"
            f"  retried {s['retried_batches']}",
        ]
        hist = s["batch_size_histogram"]
        if hist:
            bars = "  ".join(f"{k}:{v}" for k, v in hist.items())
            lines.append(f"  batch histo {bars}")
        return "\n".join(lines)


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fleet-wide aggregate of per-process :meth:`ServeMetrics.snapshot` dicts.

    Counter fields (submitted/completed/rejected/expired/failed/retried
    batches, throughput) sum exactly; batch-size histograms merge by
    summing buckets.  Latency/wait percentiles are recomputed from the
    pooled raw samples when every snapshot carries them
    (``snapshot(samples=True)`` — the shard workers ship theirs over the
    result pipe), which makes the fleet p50/p95/p99 *exact*, identical
    to what one process recording every request would report.  When any
    snapshot lacks samples the percentiles degrade to the max over
    processes — an upper bound — and the result is flagged with
    ``"percentiles_exact": False`` rather than silently pretending.
    """
    snapshots = [s for s in snapshots if s]
    counters = ["submitted", "completed", "rejected", "expired", "failed",
                "retried_batches"]
    out: dict = {k: sum(int(s.get(k, 0)) for s in snapshots) for k in counters}
    out["shards"] = len(snapshots)
    out["throughput_rps"] = sum(float(s.get("throughput_rps", 0.0))
                                for s in snapshots)
    exact = bool(snapshots) and all("samples" in s for s in snapshots)
    out["percentiles_exact"] = exact
    if exact:
        lat = [x for s in snapshots for x in s["samples"]["latencies_ms"]]
        wait = [x for s in snapshots for x in s["samples"]["wait_ms"]]
        depths = [x for s in snapshots for x in s["samples"]["queue_depths"]]
        out["latency_ms"] = {"p50": percentile(lat, 50),
                             "p95": percentile(lat, 95),
                             "p99": percentile(lat, 99),
                             "max": max(lat, default=0.0)}
        out["wait_ms"] = {"p50": percentile(wait, 50),
                          "p95": percentile(wait, 95)}
        out["queue_depth"] = {
            "mean": (sum(depths) / len(depths)) if depths else 0.0,
            "max": max(depths, default=0)}
    else:
        def _bound(section: str, field: str) -> float:
            return max((float(s.get(section, {}).get(field, 0.0))
                        for s in snapshots), default=0.0)
        out["latency_ms"] = {f: _bound("latency_ms", f)
                             for f in ("p50", "p95", "p99", "max")}
        out["wait_ms"] = {f: _bound("wait_ms", f) for f in ("p50", "p95")}
        out["queue_depth"] = {"mean": _bound("queue_depth", "mean"),
                              "max": int(_bound("queue_depth", "max"))}
    hist: dict[str, int] = {}
    for s in snapshots:
        for k, v in s.get("batch_size_histogram", {}).items():
            hist[k] = hist.get(k, 0) + int(v)
    out["batch_size_histogram"] = {k: hist[k]
                                   for k in sorted(hist, key=int)}
    total = sum(hist.values())
    out["mean_batch_size"] = (sum(int(k) * v for k, v in hist.items()) / total
                              if total else 0.0)
    return out
