"""Shared-memory plane: calibrate once, attach everywhere.

Sharded serving runs many worker *processes*; re-paying PTQ calibration,
weight-plane quantization and decode-LUT construction per process would
swamp the fan-out win.  This module moves that expensive read-only state
into ``multiprocessing.shared_memory`` segments published by the
calibrate-once parent:

* :func:`publish` lays a ``{meta, arrays}`` payload into one named
  segment — a fixed 48-byte header (magic, schema version, payload
  length, SHA-256 digest) followed by a JSON block (small exact-float
  metadata such as per-layer scales) and the raw array bytes;
* :func:`attach` maps the segment read-only in another process and
  returns zero-copy NumPy views over the array region.  *Every* attach
  re-verifies the header: a wrong magic, a stale schema version, a
  length out of bounds or a digest mismatch raises
  :class:`ShmIntegrityError` — the caller's contract is
  **attach-or-recalibrate**, never trust-and-crash;
* the module tracks every segment it created and unlinks them all at
  interpreter exit (:func:`unlink_all`), so a Ctrl-C'd run leaves no
  ``/dev/shm`` litter.  Attaching processes never unlink — ownership
  stays with the publisher.

Segment names carry the publisher PID plus a monotonic counter, so a
re-published plane never collides with a stale segment from a previous
run.  Hosts the ``shard:segment/KEY`` fault-injection point: a
``truncate`` action corrupts the freshly written digest, which every
later attach must reject (the chaos suite's recalibration-fallback
storm).
"""

from __future__ import annotations

import atexit
import contextlib
import hashlib
import itertools
import json
import os
import struct
import threading
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..resilience import faults

__all__ = [
    "SHM_MAGIC", "SHM_VERSION", "ShmIntegrityError",
    "PublishedSegment", "AttachedSegment",
    "publish", "attach", "unlink_all", "owned_segments",
]

#: header magic marking a repro shared-memory plane
SHM_MAGIC = b"RSHM"

#: bumped whenever the segment layout changes; attach rejects mismatches
SHM_VERSION = 1

#: header: magic, version, payload length, SHA-256 digest of the payload
_HEADER = struct.Struct("<4sIQ32s")


class ShmIntegrityError(RuntimeError):
    """A shared-memory segment failed validation (missing, corrupt, stale)."""


#: serialises attach-time resource-tracker suppression (see _untracked)
_TRACKER_LOCK = threading.Lock()


@contextlib.contextmanager
def _untracked():
    """Suppress resource-tracker registration while attaching a segment.

    Python 3.11's ``SharedMemory`` registers *attachers* with the
    resource tracker as if they owned the segment (the opt-out
    ``track=`` flag only exists from 3.13).  Parent and forked workers
    share one tracker process, so a spurious attach registration — or an
    unregister compensating for it — corrupts the publisher's own
    bookkeeping (tracker ``KeyError`` spew, double-unlink attempts).
    Ownership here is strictly publisher-side, so attaches simply skip
    registration.  The patch window is held under a lock and kept as
    narrow as the constructor call.
    """
    with _TRACKER_LOCK:
        original = resource_tracker.register

        def _skip_shm(name, rtype):
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _skip_shm
        try:
            yield
        finally:
            resource_tracker.register = original


def _json_default(obj):
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


#: alignment of every stored array, measured from the mmap base.  The
#: mmap is page-aligned, so a 64-byte-aligned in-segment offset yields a
#: 64-byte-aligned pointer — matching a fresh NumPy allocation.  This is
#: load-bearing for bit-identity, not a micro-optimisation: NumPy routes
#: itemsize-misaligned operands through a different (buffered) matmul
#: path whose float32 summation order differs by an ULP from the BLAS
#: path an aligned array takes, which would break the byte-equality of
#: plane-attached workers against the calibrating parent.
_ALIGN = 64


def _encode_payload(meta: dict, arrays: dict[str, np.ndarray]) -> bytes:
    """``meta`` + array table as JSON, then the 64-byte-aligned array bytes."""
    blobs: list[bytes] = []
    table: list[dict] = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        raw = arr.tobytes()
        pad = (-offset) % _ALIGN
        if pad:
            blobs.append(bytes(pad))
            offset += pad
        table.append({"name": name, "dtype": arr.dtype.str,
                      "shape": list(arr.shape), "offset": offset,
                      "nbytes": len(raw)})
        blobs.append(raw)
        offset += len(raw)
    # repr-style float serialisation: json round-trips doubles exactly,
    # so scales read back in a worker equal the calibrated scales bit-
    # for-bit (same property the disk artifact store relies on)
    head = json.dumps({"meta": meta, "arrays": table},
                      default=_json_default).encode()
    # trailing spaces are valid JSON padding: they place the data region
    # (header + length prefix + head) on an _ALIGN boundary
    head += b" " * ((-(_HEADER.size + 8 + len(head))) % _ALIGN)
    return struct.pack("<Q", len(head)) + head + b"".join(blobs)


#: (name -> (owner pid, SharedMemory)) of every segment this process
#: published.  The pid guards forked children (shard workers inherit the
#: parent's dict): only the publishing process may unlink.
_OWNED: dict[str, tuple[int, shared_memory.SharedMemory]] = {}

#: publisher-unique suffix source for segment names
_COUNTER = itertools.count()


def _safe(token: str) -> str:
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in token)


class PublishedSegment:
    """Parent-side handle of one published plane segment."""

    def __init__(self, name: str, shm: shared_memory.SharedMemory):
        self.name = name
        self._shm = shm

    def unlink(self) -> None:
        """Remove the segment (idempotent); attached readers keep their maps."""
        with _TRACKER_LOCK:
            entry = _OWNED.get(self.name)
            if entry is None:
                return
            owner_pid, shm = entry
            if owner_pid != os.getpid():
                return  # a forked child inherited the record: not ours to unlink
            del _OWNED[self.name]
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a live local view
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def publish(key: str, meta: dict, arrays: dict[str, np.ndarray]) -> PublishedSegment:
    """Write ``{meta, arrays}`` into a new checksummed shared-memory segment.

    Returns a :class:`PublishedSegment` whose ``name`` other processes
    pass to :func:`attach`.  The segment is tracked for
    :func:`unlink_all` cleanup.  Fires the ``shard:segment/KEY``
    injection point *after* the write: a ``truncate`` action zeroes the
    stored digest so every subsequent attach fails validation.
    """
    payload = _encode_payload(meta, arrays)
    digest = hashlib.sha256(payload).digest()
    name = f"repro-{os.getpid()}-{next(_COUNTER)}-{_safe(key)}"[:200]
    shm = shared_memory.SharedMemory(name=name, create=True,
                                     size=_HEADER.size + len(payload))
    shm.buf[:_HEADER.size] = _HEADER.pack(SHM_MAGIC, SHM_VERSION,
                                          len(payload), digest)
    shm.buf[_HEADER.size:_HEADER.size + len(payload)] = payload
    with _TRACKER_LOCK:
        _OWNED[name] = (os.getpid(), shm)
    if faults.maybe_fault("shard", f"segment/{key}") == "truncate":
        # corrupt the digest in place: the plane is now poisoned for
        # every attacher, which must fall back to recalibration
        shm.buf[16:16 + 32] = bytes(32)
    return PublishedSegment(name, shm)


#: mappings kept alive until a clean close succeeds.  Dropping a
#: SharedMemory while NumPy views still export its buffer makes its
#: ``__del__`` raise BufferError as interpreter-level noise; parking the
#: handle here instead defers the munmap to process exit (the OS's job
#: anyway), which is silent.
_LIVE: set = set()


class AttachedSegment:
    """Read-only view of a published segment in an attaching process.

    ``meta`` is the publisher's JSON metadata; :meth:`array` returns a
    zero-copy read-only NumPy view into the segment.  Keep the instance
    referenced for as long as any view is in use; :meth:`close` is
    best-effort (live views pin the mapping until they are dropped).
    """

    def __init__(self, name: str):
        try:
            with _untracked():
                self._shm = shared_memory.SharedMemory(name=name,
                                                       create=False)
        except (FileNotFoundError, ValueError) as exc:
            raise ShmIntegrityError(f"segment {name!r} not attachable: {exc}")
        buf = self._shm.buf
        if len(buf) < _HEADER.size:
            raise ShmIntegrityError(f"segment {name!r} shorter than a header")
        magic, version, length, digest = _HEADER.unpack(buf[:_HEADER.size])
        if magic != SHM_MAGIC:
            raise ShmIntegrityError(f"segment {name!r} has bad magic {magic!r}")
        if version != SHM_VERSION:
            raise ShmIntegrityError(
                f"segment {name!r} has schema version {version}, "
                f"expected {SHM_VERSION}")
        if _HEADER.size + length > len(buf):
            raise ShmIntegrityError(
                f"segment {name!r} truncated: header claims {length} payload "
                f"bytes, segment holds {len(buf) - _HEADER.size}")
        payload = bytes(buf[_HEADER.size:_HEADER.size + length])
        if hashlib.sha256(payload).digest() != digest:
            raise ShmIntegrityError(f"segment {name!r} failed its checksum")
        head_len = struct.unpack_from("<Q", payload)[0]
        head = json.loads(payload[8:8 + head_len].decode())
        with _TRACKER_LOCK:
            _LIVE.add(self._shm)
        self.name = name
        self.meta: dict = head["meta"]
        self._table = {entry["name"]: entry for entry in head["arrays"]}
        self._data_start = _HEADER.size + 8 + head_len

    def array_names(self) -> list[str]:
        """Names of the arrays stored in this segment."""
        return list(self._table)

    def array(self, name: str) -> np.ndarray:
        """Zero-copy read-only view of one stored array."""
        entry = self._table[name]
        start = self._data_start + entry["offset"]
        view = np.frombuffer(self._shm.buf, dtype=np.dtype(entry["dtype"]),
                             count=int(np.prod(entry["shape"], dtype=np.int64))
                             if entry["shape"] else 1,
                             offset=start).reshape(entry["shape"])
        view.flags.writeable = False
        return view

    def arrays(self) -> dict[str, np.ndarray]:
        """All stored arrays as read-only views, keyed by name."""
        return {name: self.array(name) for name in self._table}

    def close(self) -> None:
        """Drop the mapping (best-effort: live views keep pages alive)."""
        try:
            self._shm.close()
        except BufferError:  # a view is still referenced; the OS cleans up
            return           # ... and _LIVE keeps the handle from __del__
        with _TRACKER_LOCK:
            _LIVE.discard(self._shm)


def attach(name: str) -> AttachedSegment:
    """Validate and map the published segment ``name``.

    Raises :class:`ShmIntegrityError` on any validation failure — the
    caller falls back to local recalibration (with a one-line warning),
    it never serves from an unverified plane.
    """
    return AttachedSegment(name)


def owned_segments() -> list[str]:
    """Names of the segments this process published and still owns."""
    return sorted(_OWNED)


def unlink_all() -> None:
    """Unlink every segment this process published (idempotent).

    Registered with ``atexit`` so clean exits *and* Ctrl-C leave no
    ``/dev/shm`` entries behind; crashed attachers never owned segments,
    so the publisher's cleanup is always sufficient.
    """
    for name in list(_OWNED):
        PublishedSegment(name, _OWNED[name][1]).unlink()


atexit.register(unlink_all)
