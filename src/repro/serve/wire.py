"""Gateway wire format: length-prefixed JSON frames + exact array codec.

One frame is a 4-byte big-endian unsigned payload length followed by
that many bytes of UTF-8 JSON.  Length prefixing (rather than newline
delimiting) keeps the framing binary-safe and makes truncation
detectable: a reader that gets EOF mid-frame knows the wire died, it
never mis-parses a half message as a smaller one.

Request/reply payloads carry numpy arrays (inference inputs and
outputs).  JSON cannot hold them natively, so :func:`encode_payload`
maps every ndarray to ``{"__ndarray__": {dtype, shape, data}}`` with the
raw C-order bytes base64-encoded — a *bit-exact* round trip
(:func:`decode_payload` rebuilds with ``np.frombuffer``), which is what
lets the gateway chaos suite compare a reply byte-for-byte against
``infer_serial``.  Tuples are tagged (``{"__tuple__": [...]}``) so GLUE
``(ids, mask)`` request payloads survive the JSON list/tuple collapse.

Frames are capped at :data:`MAX_FRAME` bytes; an oversized, negative or
syntactically corrupt frame raises :class:`FrameError`, which both ends
treat as a connection-fatal protocol error (the stream may be
desynchronised, so the only safe recovery is to close and reconnect).
"""

from __future__ import annotations

import base64
import json
import struct

import numpy as np

__all__ = [
    "MAX_FRAME", "FrameError",
    "encode_payload", "decode_payload", "pack_frame", "unpack_frame",
    "frame_length", "recv_exact", "recv_frame", "send_frame", "garble",
]

#: hard cap on one frame's JSON payload (64 MiB) — an admission bound on
#: memory, not a practical limit (a 224x224x3 float32 image is ~780 KiB
#: encoded)
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(ValueError):
    """A wire frame was oversized, truncated or not valid JSON."""


def encode_payload(obj):
    """JSON-safe copy of ``obj`` with ndarrays/tuples tagged losslessly."""
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return {"__ndarray__": {
            "dtype": arr.dtype.str, "shape": list(arr.shape),
            "data": base64.b64encode(arr.tobytes()).decode("ascii")}}
    if isinstance(obj, (np.generic,)):
        return encode_payload(np.asarray(obj))
    if isinstance(obj, tuple):
        return {"__tuple__": [encode_payload(v) for v in obj]}
    if isinstance(obj, list):
        return [encode_payload(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): encode_payload(v) for k, v in obj.items()}
    return obj


def decode_payload(obj):
    """Inverse of :func:`encode_payload` (bit-exact for ndarrays)."""
    if isinstance(obj, dict):
        if set(obj) == {"__ndarray__"}:
            nd = obj["__ndarray__"]
            data = base64.b64decode(nd["data"])
            return np.frombuffer(data, dtype=np.dtype(nd["dtype"])).reshape(
                nd["shape"]).copy()
        if set(obj) == {"__tuple__"}:
            return tuple(decode_payload(v) for v in obj["__tuple__"])
        return {k: decode_payload(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [decode_payload(v) for v in obj]
    return obj


def pack_frame(msg: dict) -> bytes:
    """Serialise one message dict to its length-prefixed wire bytes."""
    payload = json.dumps(encode_payload(msg), sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame of {len(payload)} bytes exceeds the "
                         f"{MAX_FRAME}-byte cap")
    return _LEN.pack(len(payload)) + payload


def unpack_frame(payload: bytes) -> dict:
    """Parse one frame's JSON payload bytes back into a message dict."""
    try:
        msg = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"corrupt frame: {exc}") from None
    if not isinstance(msg, dict):
        raise FrameError(f"frame payload is {type(msg).__name__}, not an "
                         f"object")
    return decode_payload(msg)


def frame_length(header: bytes) -> int:
    """Decode and validate the 4-byte length prefix."""
    (n,) = _LEN.unpack(header)
    if n > MAX_FRAME:
        raise FrameError(f"frame length {n} exceeds the {MAX_FRAME}-byte cap")
    return n


def recv_exact(sock, n: int) -> bytes:
    """Read exactly ``n`` bytes from a blocking socket or raise EOF."""
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> dict:
    """Blocking-socket read of one complete frame (client side)."""
    payload = recv_exact(sock, frame_length(recv_exact(sock, _LEN.size)))
    return unpack_frame(payload)


def send_frame(sock, msg: dict) -> None:
    """Blocking-socket write of one complete frame (client side)."""
    sock.sendall(pack_frame(msg))


def garble(payload: bytes) -> bytes:
    """Deterministically corrupt frame payload bytes (net fault helper).

    Flips a bit in every 7th byte — enough to break JSON syntax or a
    base64 run without changing the frame length, so the peer reads a
    complete frame and fails *parsing* it (the corruption-detection
    path), not the length prefix.
    """
    out = bytearray(payload)
    for i in range(0, len(out), 7):
        out[i] ^= 0x20
    return bytes(out)
