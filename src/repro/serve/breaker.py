"""Per-key circuit breakers for the serving gateway.

A shard that keeps crashing (or a model whose workers keep timing out)
must not be allowed to soak up the whole fleet's retry capacity: after
``threshold`` *consecutive* breaker-countable failures the breaker for
that ``model|format|mode`` key opens, and further requests fast-fail
with a structured ``circuit-open`` reply instead of queueing behind a
backend that cannot answer.  The state machine is the classic
three-state one:

* **closed** — requests flow; consecutive failures are counted, any
  success resets the count.
* **open** — requests are rejected outright.  After ``cooldown_s`` the
  next admission attempt transitions to half-open.
* **half-open** — exactly *one* probe request is admitted (concurrent
  admissions keep failing fast while the probe is in flight).  If the
  probe succeeds — e.g. the shard's ``_revive`` respawned the worker and
  it answers again — the breaker closes; if it fails, the breaker
  re-opens for another cooldown.

Only failures that indicate backend ill-health count: worker crashes and
gateway-side timeouts.  Client-attributable outcomes (deadline budget
exhausted, queue-full backpressure, bad requests) never trip a breaker —
shedding load is not a symptom of a broken shard.

Breakers are keyed exactly like the shard ring (``model|format|mode``),
so an open breaker isolates precisely the failing key: every other key
keeps serving, which the breaker acceptance test pins.
"""

from __future__ import annotations

import threading
import time

from .errors import GatewayTimeoutError, ModelLoadError, WorkerCrashError

__all__ = ["CircuitBreaker", "BreakerBoard", "BREAKER_FAILURE_KINDS"]

#: error kinds that count as breaker failures (backend ill-health)
BREAKER_FAILURE_KINDS = frozenset(
    cls.kind for cls in (WorkerCrashError, GatewayTimeoutError,
                         ModelLoadError))


class CircuitBreaker:
    """Closed → open → half-open failure isolation for one key."""

    def __init__(self, threshold: int = 5, cooldown_s: float = 1.0, *,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.opens = 0          # times the breaker tripped open
        self.fast_fails = 0     # requests rejected while open

    @property
    def state(self) -> str:
        """Current state: ``closed`` / ``open`` / ``half-open``."""
        with self._lock:
            return self._state

    def admit(self) -> bool:
        """Whether a request for this key may proceed right now.

        While open, the first admission attempt after ``cooldown_s``
        flips to half-open and is admitted as the probe; everything else
        is rejected until the probe reports back.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self._state = "half-open"
                    self._probe_in_flight = True
                    return True
                self.fast_fails += 1
                return False
            # half-open: one probe at a time
            if self._probe_in_flight:
                self.fast_fails += 1
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        """An admitted request completed: close (or stay closed)."""
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """An admitted request failed with a breaker-countable kind."""
        with self._lock:
            if self._state == "half-open":
                self._probe_in_flight = False
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if (self._state == "closed"
                    and self._consecutive_failures >= self.threshold):
                self._trip_locked()

    def record_neutral(self) -> None:
        """An admitted request ended without proving health either way.

        Client-attributable outcomes (deadline, queue-full, bad request)
        say nothing about the backend — but a half-open *probe* slot must
        still be released, or the breaker would wedge half-open forever.
        The next admission becomes a fresh probe.
        """
        with self._lock:
            if self._state == "half-open":
                self._probe_in_flight = False

    def _trip_locked(self) -> None:
        self._state = "open"
        self._consecutive_failures = 0
        self._opened_at = self._clock()
        self.opens += 1

    def snapshot(self) -> dict:
        """JSON-ready state for the gateway's stats op."""
        with self._lock:
            return {"state": self._state,
                    "consecutive_failures": self._consecutive_failures,
                    "opens": self.opens,
                    "fast_fails": self.fast_fails}


class BreakerBoard:
    """Lazily-created :class:`CircuitBreaker` per request key."""

    def __init__(self, threshold: int = 5, cooldown_s: float = 1.0, *,
                 clock=time.monotonic):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def get(self, key: str) -> CircuitBreaker:
        """The breaker for ``key``, created closed on first use."""
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(self.threshold, self.cooldown_s,
                                         clock=self._clock)
                self._breakers[key] = breaker
            return breaker

    def record(self, key: str, error_kind: str | None) -> None:
        """Feed one request outcome (``None`` = success) to ``key``'s breaker."""
        breaker = self.get(key)
        if error_kind is None:
            breaker.record_success()
        elif error_kind in BREAKER_FAILURE_KINDS:
            breaker.record_failure()
        else:
            breaker.record_neutral()

    def snapshot(self) -> dict:
        """Per-key breaker states for the gateway's stats op."""
        with self._lock:
            items = list(self._breakers.items())
        return {key: b.snapshot() for key, b in items}
