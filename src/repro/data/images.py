"""Procedural image-classification dataset (the ImageNet stand-in).

The paper evaluates PTQ on ImageNet, which we cannot ship.  What the PTQ
experiment actually requires from the dataset is:

* a classification task hard enough that a miniature CNN reaches a stable
  but non-saturated FP32 accuracy (so quantization damage is measurable),
* realistic low-level statistics (smooth spatial structure, broad dynamic
  range after normalisation) so activation distributions behave like real
  feature maps,
* a small calibration split disjoint from the evaluation split.

``SynthImageNet`` generates each class from a seeded recipe: a smooth
random-field prototype plus a class-specific geometric glyph and grating,
then per-sample jitter (translation, contrast, occlusion, noise).  The
recipe is deterministic in ``(num_classes, image_size, seed)``, so train
and test sets are reproducible across processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SynthImageNet", "ImageBatches"]


def _smooth_field(rng: np.random.Generator, size: int, cutoff: int) -> np.ndarray:
    """Low-frequency Gaussian random field in [-1, 1], size x size."""
    spectrum = np.zeros((size, size), dtype=np.complex128)
    k = cutoff
    spectrum[:k, :k] = rng.normal(size=(k, k)) + 1j * rng.normal(size=(k, k))
    field = np.real(np.fft.ifft2(spectrum))
    field -= field.mean()
    peak = np.abs(field).max()
    return field / (peak + 1e-12)


def _glyph_mask(kind: int, size: int, cx: float, cy: float, radius: float) -> np.ndarray:
    """Binary mask of a class glyph: disk / square / ring / diagonal cross."""
    yy, xx = np.mgrid[0:size, 0:size]
    dx, dy = xx - cx, yy - cy
    r = np.sqrt(dx ** 2 + dy ** 2)
    kind = kind % 4
    if kind == 0:
        return r < radius
    if kind == 1:
        return (np.abs(dx) < radius) & (np.abs(dy) < radius)
    if kind == 2:
        return (r < radius) & (r > radius * 0.55)
    return (np.abs(dx - dy) < radius * 0.35) | (np.abs(dx + dy) < radius * 0.35)


@dataclass(frozen=True)
class ImageBatches:
    """A split of the dataset: images (N,C,H,W) float32 and labels (N,)."""

    images: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)

    def batches(self, batch_size: int):
        """Yield (images, labels) minibatches in order."""
        for i in range(0, len(self), batch_size):
            yield self.images[i:i + batch_size], self.labels[i:i + batch_size]


class SynthImageNet:
    """Deterministic procedural multi-class image dataset.

    Parameters
    ----------
    num_classes:
        Number of classes; each gets an independent seeded recipe.
    image_size:
        Square image side in pixels.
    seed:
        Master seed for the class recipes.  Split sampling uses independent
        per-split seeds so train/calibration/test never overlap.
    """

    def __init__(self, num_classes: int = 10, image_size: int = 24, seed: int = 2024):
        self.num_classes = num_classes
        self.image_size = image_size
        self.seed = seed
        self.channels = 3
        recipe_rng = np.random.default_rng(seed)
        self._prototypes = []
        self._params = []
        for c in range(num_classes):
            proto = np.stack([
                _smooth_field(recipe_rng, image_size, cutoff=3 + (c % 3))
                for _ in range(self.channels)
            ])
            color = recipe_rng.uniform(-1.0, 1.0, size=self.channels)
            freq = 1.5 + 0.9 * (c % 5)
            angle = recipe_rng.uniform(0, np.pi)
            self._prototypes.append(proto)
            self._params.append((c % 4, color, freq, angle))

    # ------------------------------------------------------------------
    def _render(self, label: int, rng: np.random.Generator) -> np.ndarray:
        size = self.image_size
        glyph_kind, color, freq, angle = self._params[label]
        proto = self._prototypes[label]

        # per-sample jitter: translation (circular), contrast, glyph pose
        shift = rng.integers(-size // 4, size // 4 + 1, size=2)
        img = np.roll(proto, shift, axis=(1, 2)).copy()
        img *= rng.uniform(0.5, 1.5)

        cx = size / 2 + rng.uniform(-size / 6, size / 6)
        cy = size / 2 + rng.uniform(-size / 6, size / 6)
        radius = size * rng.uniform(0.10, 0.20)
        mask = _glyph_mask(glyph_kind, size, cx, cy, radius)
        img += mask[None, :, :] * color[:, None, None] * rng.uniform(0.8, 1.2)

        # class-frequency grating
        yy, xx = np.mgrid[0:size, 0:size]
        phase = rng.uniform(0, 2 * np.pi)
        grating = np.sin(2 * np.pi * freq / size *
                         (np.cos(angle) * xx + np.sin(angle) * yy) + phase)
        img += 0.25 * grating[None, :, :]

        # occlusion patch + pixel noise
        if rng.random() < 0.6:
            ox, oy = rng.integers(0, size - size // 4, size=2)
            img[:, oy:oy + size // 4, ox:ox + size // 4] = rng.normal(scale=0.3)
        img += rng.normal(scale=0.70, size=img.shape)
        return img.astype(np.float32)

    def sample(self, n: int, seed: int) -> ImageBatches:
        """Draw ``n`` labelled images using an independent stream ``seed``."""
        rng = np.random.default_rng((self.seed, seed))
        labels = rng.integers(0, self.num_classes, size=n)
        images = np.stack([self._render(int(c), rng) for c in labels])
        return ImageBatches(images=images, labels=labels.astype(np.int64))

    # conventional split seeds -----------------------------------------
    def train_split(self, n: int) -> ImageBatches:
        return self.sample(n, seed=1)

    def calibration_split(self, n: int, seed: int = 0) -> ImageBatches:
        """The paper's '1000 random training images' analogue.

        ``seed`` picks the calibration draw for error-bar runs: seed 0 is
        the legacy stream (byte-identical to the historical split) and
        seed ``s > 0`` maps to stream ``100 + s``, well clear of the
        train/calib/test streams 1/2/3.
        """
        return self.sample(n, seed=2 if seed == 0 else 100 + seed)

    def test_split(self, n: int) -> ImageBatches:
        return self.sample(n, seed=3)
