"""Synthetic datasets: the ImageNet and GLUE stand-ins (see DESIGN.md)."""

from .glue import GLUE_TASKS, TASK_METRICS, GlueTask, TextBatches, Vocab, make_task
from .images import ImageBatches, SynthImageNet

__all__ = [
    "SynthImageNet", "ImageBatches",
    "GlueTask", "TextBatches", "Vocab", "make_task", "GLUE_TASKS", "TASK_METRICS",
]
