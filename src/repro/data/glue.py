"""Synthetic GLUE-style sentence tasks (the paper's BERT-base benchmark).

The paper reports CoLA (Matthews correlation), MNLI-mm, MRPC (F1) and SST-2
(accuracy) with BERT-base.  We build four analogue tasks over a small token
vocabulary that exercise the same *kinds* of reasoning, so that a miniature
transformer trained from scratch reaches a solid FP32 score and the PTQ
experiment measures format-induced degradation:

* ``sst2``  — lexical polarity: every content token carries a fixed polarity
  weight; the label is the sign of the sequence polarity sum.
* ``cola``  — acceptability: positive sequences follow a rigid alternating
  token-class grammar; negatives have a local grammar violation.
  Class-imbalanced (70/30), scored with Matthews correlation like CoLA.
* ``mrpc``  — paraphrase detection over a sentence pair `A [SEP] B`:
  paraphrases are shuffled copies with synonym substitutions; non-
  paraphrases share topic tokens but differ in content.  Scored with F1.
* ``mnli``  — 3-way entailment: B entails A (token subset), contradicts A
  (contains antonyms of A's tokens) or is neutral.

All tasks use the shared vocabulary layout of :data:`Vocab`, sequences are
fixed length with explicit padding masks, and generation is deterministic
in the seed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["Vocab", "TextBatches", "GlueTask", "make_task", "GLUE_TASKS", "TASK_METRICS"]


@dataclass(frozen=True)
class Vocab:
    """Shared token layout: specials then content tokens."""

    pad: int = 0
    cls: int = 1
    sep: int = 2
    neg: int = 3          # negation marker (the mnli contradiction cue)
    content_start: int = 4
    size: int = 64

    @property
    def num_content(self) -> int:
        return self.size - self.content_start


VOCAB = Vocab()

#: GLUE metric per task, matching the paper's Table 2 conventions.
TASK_METRICS = {"sst2": "accuracy", "cola": "matthews", "mrpc": "f1", "mnli": "accuracy"}

GLUE_TASKS = ("cola", "mnli", "mrpc", "sst2")


@dataclass(frozen=True)
class TextBatches:
    """A split: token ids (N,T) int64, mask (N,T) float32, labels (N,)."""

    ids: np.ndarray
    mask: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)

    def batches(self, batch_size: int):
        for i in range(0, len(self), batch_size):
            yield (self.ids[i:i + batch_size], self.mask[i:i + batch_size],
                   self.labels[i:i + batch_size])


class GlueTask:
    """One synthetic GLUE-style task with deterministic splits."""

    def __init__(self, name: str, seq_len: int = 24, seed: int = 77):
        if name not in GLUE_TASKS:
            raise KeyError(f"unknown task {name!r}; choose from {GLUE_TASKS}")
        if seq_len < 16:
            raise ValueError(f"seq_len must be >= 16 for the pair tasks, got {seq_len}")
        self.name = name
        self.seq_len = seq_len
        self.seed = seed
        self.vocab = VOCAB
        self.num_labels = 3 if name == "mnli" else 2
        rng = np.random.default_rng((seed, zlib.crc32(name.encode()) & 0xFFFF))
        n_content = self.vocab.num_content
        # task-specific fixed structure
        self._polarity = rng.choice([-1.0, 1.0], size=n_content) * rng.uniform(0.2, 1.0, n_content)
        self._token_class = rng.integers(0, 3, size=n_content)  # grammar classes for cola
        perm = rng.permutation(n_content)
        self._synonym = perm                       # mrpc synonym map (content index space)
        self._antonym = rng.permutation(n_content)  # mnli antonym map

    # ------------------------------------------------------------------
    def _content(self, rng, n):
        return rng.integers(0, self.vocab.num_content, size=n)

    def _to_ids(self, content: np.ndarray) -> np.ndarray:
        return content + self.vocab.content_start

    def _finish(self, body: list[int]) -> tuple[np.ndarray, np.ndarray]:
        """[CLS] + body, padded to seq_len, with mask."""
        ids = np.full(self.seq_len, self.vocab.pad, dtype=np.int64)
        seq = [self.vocab.cls] + list(body)
        seq = seq[: self.seq_len]
        ids[: len(seq)] = seq
        mask = (ids != self.vocab.pad).astype(np.float32)
        mask[0] = 1.0  # CLS always attended
        return ids, mask

    # ------------------------------------------------------------------
    def _gen_sst2(self, rng) -> tuple[np.ndarray, np.ndarray, int]:
        n = int(rng.integers(8, self.seq_len - 2))
        content = self._content(rng, n)
        label = int(self._polarity[content].sum() > 0)
        ids, mask = self._finish(self._to_ids(content))
        return ids, mask, label

    def _gen_cola(self, rng) -> tuple[np.ndarray, np.ndarray, int]:
        n = int(rng.integers(9, self.seq_len - 2))
        label = int(rng.random() < 0.7)
        # grammatical: token classes cycle 0,1,2,0,1,2,...
        tokens = []
        for i in range(n):
            want = i % 3
            pool = np.flatnonzero(self._token_class == want)
            tokens.append(int(rng.choice(pool)))
        if not label:
            # ungrammatical: two local violations of the class pattern
            positions = rng.choice(n, size=2, replace=False)
            for i in positions:
                bad = np.flatnonzero(self._token_class != i % 3)
                tokens[i] = int(rng.choice(bad))
        ids, mask = self._finish(self._to_ids(np.array(tokens)))
        return ids, mask, label

    def _gen_mrpc(self, rng) -> tuple[np.ndarray, np.ndarray, int]:
        half = (self.seq_len - 3) // 2
        n = int(rng.integers(max(4, half - 4), half))
        a = self._content(rng, n)
        label = int(rng.random() < 0.5)
        if label:
            # paraphrase: a shuffled copy with a few synonym substitutions
            b = a.copy()
            rng.shuffle(b)
            swap = rng.random(n) < 0.15
            b[swap] = self._synonym[b[swap]]
        else:
            # different sentence on the same "topic": small token overlap
            b = self._content(rng, n)
            keep = rng.choice(n, size=max(1, n // 5), replace=False)
            b[keep] = rng.choice(a, size=len(keep))
        body = list(self._to_ids(a)) + [self.vocab.sep] + list(self._to_ids(b))
        ids, mask = self._finish(body)
        return ids, mask, label

    def _gen_mnli(self, rng) -> tuple[np.ndarray, np.ndarray, int]:
        half = (self.seq_len - 4) // 2
        n = int(rng.integers(max(5, half - 3), half))
        premise = self._content(rng, n)
        label = int(rng.integers(0, 3))  # 0=entail, 1=neutral, 2=contradict
        m = max(3, n // 2)
        if label == 0:
            # entailment: the hypothesis restates part of the premise
            hypo = list(self._to_ids(rng.choice(premise, size=m, replace=False)))
        elif label == 2:
            # contradiction: a negated restatement ("NOT <premise facts>")
            base = rng.choice(premise, size=m, replace=False)
            hypo = [self.vocab.neg] + list(self._to_ids(base))
        else:
            # neutral: unrelated facts (low accidental overlap)
            hypo = list(self._to_ids(self._content(rng, m)))
        body = list(self._to_ids(premise)) + [self.vocab.sep] + hypo
        ids, mask = self._finish(body)
        return ids, mask, label

    # ------------------------------------------------------------------
    def sample(self, n: int, seed: int) -> TextBatches:
        rng = np.random.default_rng((self.seed, seed, zlib.crc32(self.name.encode()) & 0xFFFF))
        gen = getattr(self, f"_gen_{self.name}")
        ids = np.empty((n, self.seq_len), dtype=np.int64)
        mask = np.empty((n, self.seq_len), dtype=np.float32)
        labels = np.empty(n, dtype=np.int64)
        for i in range(n):
            ids[i], mask[i], labels[i] = gen(rng)
        return TextBatches(ids=ids, mask=mask, labels=labels)

    def train_split(self, n: int) -> TextBatches:
        return self.sample(n, seed=1)

    def calibration_split(self, n: int, seed: int = 0) -> TextBatches:
        """The paper's '5 % of the data inputs' analogue.

        ``seed`` picks the calibration draw for error-bar runs: seed 0 is
        the legacy stream (byte-identical to the historical split) and
        seed ``s > 0`` maps to stream ``100 + s``, well clear of the
        train/calib/test streams 1/2/3.
        """
        return self.sample(n, seed=2 if seed == 0 else 100 + seed)

    def test_split(self, n: int) -> TextBatches:
        return self.sample(n, seed=3)


def make_task(name: str, seq_len: int = 24, seed: int = 77) -> GlueTask:
    """Factory for the four GLUE-style tasks."""
    return GlueTask(name, seq_len=seq_len, seed=seed)
