"""repro: reproduction of MERSIT (DAC 2024).

A hardware-efficient 8-bit data format with enhanced post-training
quantization accuracy, plus every substrate the paper's evaluation rests on:

* :mod:`repro.formats` — INT8 / FP8 / Posit8 / MERSIT8 codebook formats.
* :mod:`repro.quant` — calibration + fake-quantization PTQ framework.
* :mod:`repro.autograd` / :mod:`repro.nn` — numpy reverse-mode autodiff and
  a neural-network layer library.
* :mod:`repro.zoo` — miniaturised VGG/ResNet/MobileNet/EfficientNet/BERT
  families, trained from scratch and cached.
* :mod:`repro.data` — procedural image-classification and GLUE-style tasks.
* :mod:`repro.hardware` — gate-level netlists, 45nm-style cell library, and
  the Kulisch-accumulator MAC units of the paper's hardware study.
* :mod:`repro.engine` — vectorized true-quantized inference: bit-true
  Kulisch arithmetic in 8-bit code space (PTQ ``mode="engine"``).
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

import os as _os

# the runtime concurrency sanitizer must patch the threading factories
# before any serve/pool/shm module creates its locks, so it enables
# first thing when requested (repro.sanitize imports no repro modules)
if _os.environ.get("REPRO_SANITIZE"):
    from . import sanitize as _sanitize
    _sanitize.enable()

from .formats import get_format

__version__ = "1.0.0"
__all__ = ["get_format", "__version__"]
