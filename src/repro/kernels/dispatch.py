"""Kernel backend selection: ``REPRO_KERNELS=reference|lut``.

The switch exists for A/B validation: the LUT kernel is bit-exact with the
reference path by construction, so flipping the backend must never change a
result.  When debugging a suspect quantization, run once under each backend
and diff; any difference is a kernel bug, not a format property.
"""

from __future__ import annotations

import contextlib
import os

__all__ = ["BACKENDS", "get_backend", "set_backend", "use_backend"]

#: recognised backend names
BACKENDS = ("lut", "reference")

_ENV_VAR = "REPRO_KERNELS"

#: programmatic override; takes precedence over the environment variable
_override: str | None = None


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKENDS} "
            f"(set via {_ENV_VAR} or repro.kernels.set_backend)")
    return name


def get_backend() -> str:
    """The active kernel backend: the override, else ``$REPRO_KERNELS``, else ``lut``."""
    if _override is not None:
        return _override
    env = os.environ.get(_ENV_VAR)
    return _validate(env) if env else "lut"


def set_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the programmatic backend override."""
    global _override
    # lint: allow[unlocked-shared-state] single GIL-atomic str rebind; workers set it once in their pipe loop before serving, scheduler threads only read
    _override = None if name is None else _validate(name)


@contextlib.contextmanager
def use_backend(name: str):
    """Temporarily switch the kernel backend (restores the prior override)."""
    global _override
    prev = _override
    _override = _validate(name)
    try:
        yield
    finally:
        _override = prev
