"""Fast quantization kernels and the backend dispatch switch.

The reproduction's hot path is nearest-value rounding against an 8-bit
codebook (:meth:`repro.formats.base.CodebookFormat.quantize`).  This package
provides a table-driven implementation of that rounding — a 65,536-entry
lookup table indexed by the top 16 bits of the float32 bit pattern of the
input (:mod:`repro.kernels.lut`) — plus the switch that selects between it
and the reference ``searchsorted`` path (:mod:`repro.kernels.dispatch`).

Both paths implement identical semantics (round-to-nearest with ties away
from zero, NaN to 0, saturation to ``+/-max_value``) and are verified
bit-exact against each other exhaustively in ``tests/test_kernels_lut.py``.
Select the backend with the ``REPRO_KERNELS`` environment variable
(``lut``, the default, or ``reference``) or programmatically::

    from repro import kernels
    with kernels.use_backend("reference"):
        fmt.quantize(x)        # slow path, for A/B validation
"""

from .dispatch import BACKENDS, get_backend, set_backend, use_backend
from .lut import (
    LUT_MAX_BITS, BitLUTKernel, clear_kernel_cache, export_tables,
    install_tables, kernel_for, kernel_stats,
)

__all__ = [
    "BACKENDS",
    "get_backend",
    "set_backend",
    "use_backend",
    "LUT_MAX_BITS",
    "BitLUTKernel",
    "kernel_for",
    "clear_kernel_cache",
    "kernel_stats",
    "export_tables",
    "install_tables",
]
