"""Bit-LUT quantize kernel: table-driven nearest-value rounding.

The idea (standard in the posit-DNN literature: small codebooks admit
table-driven rounding) is to bucket inputs by the top 16 bits of their
float32 bit pattern — sign, the full 8-bit exponent and the top 7 mantissa
bits — and precompute, per bucket, the index of the nearest representable
value.  A bucket spans a relative width of 2^-7, wider than the gap between
neighbouring codebook values for very precise formats, so a bucket may
straddate at most ``kmax`` rounding midpoints; the kernel stores the bucket's
*lowest* candidate index and resolves the remaining ``kmax`` steps with exact
float64 comparisons against the true midpoints.  For every 8-bit format in
the paper ``kmax == 1``, which collapses the fix-up to a single fused
compare against a per-bucket threshold.

Exactness argument (verified exhaustively in ``tests/test_kernels_lut.py``):

* An input ``x`` (any float dtype) is cast to float32 to pick its bucket.
  The cast rounds, so ``x`` itself is only guaranteed to lie within one
  float32 ULP of the bucket; the per-bucket index window is therefore built
  from the bucket bounds *extended by one ULP on each side*, and the window
  always contains the true index.
* The fix-up comparisons use the original (unrounded) input against exact
  float64 midpoints and replicate the reference tie rule (ties away from
  zero), so the resolved index matches :meth:`CodebookFormat.quantize_reference`
  bit-for-bit for every input, not just for bucket representatives.
* Saturation falls out of clipping the bucket bounds during construction;
  NaN inputs are detected at lookup time and routed to the zero entry.

The sibling code table maps the same resolved index to the format's code
word, accelerating ``encode_array`` with the identical machinery.
"""

from __future__ import annotations

import threading

import numpy as np

from ..resilience.pool import register_stats_provider as _register_stats_provider

__all__ = ["LUT_MAX_BITS", "BitLUTKernel", "kernel_for", "clear_kernel_cache",
           "kernel_stats", "export_tables", "install_tables"]

#: LUT construction enumerates the codebook; cap it at 12-bit formats
#: (4096 codes) so the table build and the midpoint windows stay small.
LUT_MAX_BITS = 12

#: number of 16-bit bucket patterns
_NBUCKETS = 1 << 16

_U16 = np.uint32(16)


class BitLUTKernel:
    """Precomputed rounding tables for one :class:`CodebookFormat`.

    Attributes
    ----------
    values:
        Sorted finite representable values (float64), the rounding targets.
    codes:
        Code word of each entry of ``values``.
    base:
        Per-bucket lowest candidate index into ``values`` (int32).
    thr:
        Per-bucket decision threshold (``kmax == 1`` formats): the input
        rounds to ``values[base + 1]`` iff it compares strictly greater.
        Tie-away-from-zero is folded in by nudging positive midpoints one
        float64 ULP down, so a single ``>`` implements the full tie rule.
    mid_ext:
        Midpoints padded with NaN (``kmax > 1`` fallback); NaN never
        compares true, so the padded entry also terminates saturated runs.
    kmax:
        Maximum number of midpoints any bucket window spans.
    zero_idx:
        Index of 0.0 in ``values`` (the NaN target).
    """

    __slots__ = ("name", "values", "codes", "base", "thr", "mid_ext", "kmax",
                 "zero_idx")

    def __init__(self, fmt):
        values, codes = fmt._sorted_codes
        self.name = fmt.name
        self.values = values
        self.codes = codes
        self.zero_idx = int(np.searchsorted(values, 0.0))
        mids = (values[1:] + values[:-1]) / 2.0
        self.mid_ext = np.concatenate([mids, [np.nan]])

        # Bucket bounds: value range covered by each 16-bit prefix.  The
        # all-ones low pattern is the bucket's other endpoint; for negative
        # buckets the endpoints swap (larger pattern = more negative).  NaN
        # buckets (exponent all ones, non-zero high mantissa) get pinned to
        # the zero entry; the +/-inf buckets saturate via clipping below.
        pat = np.arange(_NBUCKETS, dtype=np.uint32) << _U16
        with np.errstate(invalid="ignore", over="ignore"):
            e_lo = pat.view(np.float32).astype(np.float64)
            e_hi = (pat | np.uint32(0xFFFF)).view(np.float32).astype(np.float64)
            bmin = np.fmin(e_lo, e_hi)
            bmax = np.fmax(e_lo, e_hi)
            nan_bucket = np.isnan(bmin)
            bmin[nan_bucket] = 0.0
            bmax[nan_bucket] = 0.0
            # widen by one float32 ULP per side: the float32 cast of an
            # input may round it into this bucket from just outside
            lo = np.nextafter(bmin.astype(np.float32), np.float32(-np.inf))
            hi = np.nextafter(bmax.astype(np.float32), np.float32(np.inf))
        lo_idx = fmt._reference_index(lo)
        hi_idx = fmt._reference_index(hi)
        lo_idx[nan_bucket] = self.zero_idx
        hi_idx[nan_bucket] = self.zero_idx
        self.base = lo_idx.astype(np.int32)
        self.kmax = int(np.max(hi_idx - lo_idx))

        if self.kmax == 1:
            # fold the one fix-up step into a threshold: bump iff x > thr.
            # The reference rounds ties away from zero, i.e. bump at x >= m
            # for positive midpoints; x >= m is x > nextafter(m, -inf).
            thr = np.full(_NBUCKETS, np.inf, dtype=np.float64)
            strad = hi_idx > lo_idx
            m = self.mid_ext[lo_idx[strad]]
            thr[strad] = np.where(m > 0, np.nextafter(m, -np.inf), m)
            self.thr = thr
        else:
            self.thr = None

    # ------------------------------------------------------------------
    def _indices(self, x: np.ndarray) -> np.ndarray:
        """Resolved per-element indices into ``values`` for flat ``x``."""
        with np.errstate(invalid="ignore", over="ignore"):
            # the cast saturates huge magnitudes to +/-inf, which land in the
            # saturating inf buckets — exactly the semantics we want
            x32 = np.ascontiguousarray(x, dtype=np.float32)
        u = (x32.view(np.uint32) >> _U16).astype(np.intp)
        idx = self.base[u]
        if self.kmax == 1:
            np.add(idx, x > self.thr[u], out=idx, casting="unsafe")
        elif self.kmax > 1:
            for _ in range(self.kmax):
                m = self.mid_ext[idx]
                step = (x > m) | ((x == m) & (m > 0))
                if not step.any():
                    break
                np.add(idx, step, out=idx, casting="unsafe")
        nan = np.isnan(x32)
        if nan.any():
            idx[nan] = self.zero_idx
        return idx

    def quantize(self, x) -> np.ndarray:
        """Bit-exact fast path for :meth:`CodebookFormat.quantize_reference`."""
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(-1)
        return self.values[self._indices(flat)].reshape(x.shape)

    def encode(self, x) -> np.ndarray:
        """Bit-exact fast path for :meth:`CodebookFormat.encode_array`."""
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(-1)
        return self.codes[self._indices(flat)].reshape(x.shape)


#: built kernels, keyed by format name (formats hash/compare by name)
_CACHE: dict[str, BitLUTKernel] = {}

# guards _CACHE/_STATS writes: scheduler worker threads race on the first
# kernel_for() of a cold format, and without the lock two of them would
# both run the 65,536-bucket build (wasted work, torn counters)
_LUT_LOCK = threading.Lock()

# per-process build/hit/attach counters, exported to the parallel fabric so
# grid runs can verify that fork children inherited the 65,536-entry tables
# copy-on-write (builds stay 0 in warm workers) instead of rebuilding them,
# and so shard workers can prove they attached tables from shared memory
# (attaches > 0, builds == 0) instead of reconstructing them
_STATS = {"lut_builds": 0, "lut_hits": 0, "lut_attaches": 0}


def kernel_stats() -> dict:
    """Cumulative per-process LUT cache counters (builds/hits)."""
    return dict(_STATS)


_register_stats_provider("kernels", kernel_stats)


def kernel_for(fmt) -> BitLUTKernel:
    """The (lazily built, cached) LUT kernel for ``fmt``."""
    if fmt.nbits > LUT_MAX_BITS:
        raise ValueError(
            f"{fmt.name}: LUT kernel supports at most {LUT_MAX_BITS}-bit "
            f"formats, got nbits={fmt.nbits}")
    with _LUT_LOCK:
        kernel = _CACHE.get(fmt.name)
        if kernel is None:
            _STATS["lut_builds"] += 1
            kernel = _CACHE[fmt.name] = BitLUTKernel(fmt)
        else:
            _STATS["lut_hits"] += 1
    return kernel


def clear_kernel_cache() -> None:
    """Drop all built kernels (tests and memory-sensitive callers)."""
    with _LUT_LOCK:
        _CACHE.clear()
        _STATS["lut_builds"] = 0
        _STATS["lut_hits"] = 0
        _STATS["lut_attaches"] = 0


# ----------------------------------------------------------------------
# shared-memory export/attach (the serving plane)
#
# A shard parent builds each format's tables once and publishes them; a
# worker installs the published arrays directly instead of re-running
# the 65,536-bucket construction.  The tables are pure functions of the
# format, so an installed kernel is byte-identical to a built one — the
# shard differential suite enforces this end to end.

def export_tables(fmt) -> tuple[dict, dict[str, np.ndarray]]:
    """The (meta, arrays) payload describing ``fmt``'s LUT kernel.

    ``arrays`` holds the rounding tables (``values``, ``codes``,
    ``base``, ``mid_ext`` and — for ``kmax == 1`` formats — ``thr``);
    ``meta`` carries the scalar slots.  Feed both to
    :func:`install_tables` in another process.
    """
    kernel = kernel_for(fmt)
    meta = {"name": kernel.name, "kmax": kernel.kmax,
            "zero_idx": kernel.zero_idx}
    arrays = {"values": kernel.values, "codes": kernel.codes,
              "base": kernel.base, "mid_ext": kernel.mid_ext}
    if kernel.thr is not None:
        arrays["thr"] = kernel.thr
    return meta, arrays


def install_tables(meta: dict, arrays: dict[str, np.ndarray]) -> BitLUTKernel:
    """Install exported tables as the cached kernel for their format.

    The arrays may be zero-copy shared-memory views — the kernel only
    ever reads them.  Replaces any locally built kernel for the same
    format and counts as a ``lut_attaches`` in :func:`kernel_stats`.
    """
    kernel = BitLUTKernel.__new__(BitLUTKernel)
    kernel.name = meta["name"]
    kernel.values = arrays["values"]
    kernel.codes = arrays["codes"]
    kernel.base = arrays["base"]
    kernel.mid_ext = arrays["mid_ext"]
    kernel.thr = arrays.get("thr")
    kernel.kmax = int(meta["kmax"])
    kernel.zero_idx = int(meta["zero_idx"])
    with _LUT_LOCK:
        _CACHE[kernel.name] = kernel
        _STATS["lut_attaches"] += 1
    return kernel
