"""Quickstart: the MERSIT format and fake quantization in five minutes.

Run from the repository root:

    python examples/quickstart.py
"""

import numpy as np

from repro.formats import get_format
from repro.formats.analysis import precision_segments, summarize
from repro.quant import FakeQuantizer, relative_rmse


def main() -> None:
    # --- 1. formats are enumerable codebooks --------------------------------
    mersit = get_format("MERSIT(8,2)")
    posit = get_format("Posit(8,1)")
    fp8 = get_format("FP(8,4)")

    print("== Format summaries (the paper's Fig. 2 table) ==")
    for fmt in (fp8, posit, mersit):
        s = summarize(fmt)
        print(f"  {s.name:12s} range {s.dynamic_range:>14s}  "
              f"P={s.exponent_width} M={s.significand_bits} W={s.product_width}")

    # --- 2. decode a single MERSIT code -------------------------------------
    code = 0b11010110  # sign=1, ks=1, ECs = 01|01|10
    d = mersit.decode(code)
    print(f"\n== Decoding MERSIT(8,2) code 0b{code:08b} ==")
    print(f"  sign={d.sign} regime k={d.regime} effective exponent="
          f"{d.effective_exponent} fraction bits={d.fraction_bits}")
    print(f"  value = {d.value}")

    # --- 3. tapered precision (the paper's Fig. 4) --------------------------
    print("\n== MERSIT(8,2) precision by binade ==")
    for lo, hi, bits in precision_segments(mersit):
        print(f"  2^{lo:>3d} .. 2^{hi:>3d}: {bits} fraction bits")

    # --- 4. fake-quantize a tensor -------------------------------------------
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(64, 32)) * 0.08  # a typical DNN weight tensor

    print("\n== Per-channel fake quantization of a weight tensor ==")
    for fmt in (get_format("INT8"), fp8, posit, mersit):
        fq = FakeQuantizer(fmt, axis=0).calibrate(weights)
        err = relative_rmse(weights, fq(weights))
        print(f"  {fmt.name:12s} relative RMSE {err:.4f}")

    print("\nLower RMSE for the tapered formats (Posit/MERSIT) on this "
          "bell-shaped tensor is exactly the effect behind the paper's Fig. 6.")


if __name__ == "__main__":
    main()
