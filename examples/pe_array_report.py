"""Accelerator-scale roll-up: a 16x16 PE array per format (paper conclusion).

Maps a MobileNet-style layer stack onto weight-stationary arrays built
from the measured MAC netlists and compares per-layer energy.

    python examples/pe_array_report.py [rows] [cols]
"""

import sys

import numpy as np

from repro.formats import PAPER_FORMATS, get_format
from repro.hardware import PEArrayModel, dnn_operand_stream

# (name, c_in, c_out, kernel, oh, ow) of a MobileNetV2-ish stack
LAYERS = [
    ("stem 3x3", 3, 16, 3, 24, 24),
    ("expand 1x1", 16, 64, 1, 24, 24),
    ("project 1x1", 64, 24, 1, 12, 12),
    ("head 1x1", 48, 96, 1, 6, 6),
]


def main(rows: int = 16, cols: int = 16) -> None:
    rng = np.random.default_rng(0)
    weights = rng.standard_t(df=4, size=50_000) * 0.05
    activations = np.abs(rng.standard_t(df=3, size=50_000)) * 0.4

    for name in PAPER_FORMATS:
        fmt = get_format(name)
        array = PEArrayModel(fmt, rows=rows, cols=cols)
        w_codes, a_codes = dnn_operand_stream(fmt, weights, activations, n=256)
        s = array.summary()
        print(f"\n=== {name} {rows}x{cols} array ===")
        print(f"  total area {s['area_um2'] / 1e3:8.1f} kum^2 "
              f"(MAC {s['mac_area_um2']:.0f} um^2, "
              f"encoder {s['encoder_area_um2']:.0f} um^2/col)")
        print(f"  {'layer':12s} {'MACs':>10s} {'cycles':>8s} {'util':>6s} {'energy uJ':>10s}")
        for layer in LAYERS:
            m = array.map_conv(*layer, w_codes, a_codes)
            print(f"  {m.layer:12s} {m.macs:>10d} {m.cycles:>8d} "
                  f"{m.utilization:6.2f} {m.energy_uj:10.4f}")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:]]
    main(*(args or [16, 16]))
