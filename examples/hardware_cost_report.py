"""Gate-level hardware cost report for the three MAC designs (Fig. 7/Table 3).

Builds the FP(8,4), Posit(8,1) and MERSIT(8,2) MAC units, verifies each is
bit-exact against integer arithmetic on a random operand stream, and
prints the full area/power breakdown including per-cell usage.

    python examples/hardware_cost_report.py [stream_len]
"""

import sys

import numpy as np

from repro.formats import PAPER_FORMATS, get_format
from repro.hardware import MacUnit

GROUP_ORDER = ("decoder", "exp_adder", "frac_multiplier", "aligner", "accumulator")


def main(stream_len: int = 400) -> None:
    rng = np.random.default_rng(42)
    for name in PAPER_FORMATS:
        fmt = get_format(name)
        mac = MacUnit(fmt)
        w = rng.integers(0, 256, stream_len)
        a = rng.integers(0, 256, stream_len)

        hw = mac.accumulate_hw(w[:64], a[:64])
        ref = mac.accumulate_reference(w[:64], a[:64])
        exact = "bit-exact" if hw == ref else "MISMATCH"

        area = mac.area()
        power = mac.power(w, a)
        print(f"\n=== {name} MAC  [{exact} over 64 accumulations] ===")
        print(f"  accumulator: {mac.acc_width} bits "
              f"(paper W = {mac.paper_w}, margin V = {mac.overflow_margin})")
        print(f"  total: {area.total:8.1f} um^2, {power.total:7.2f} uW "
              f"({area.gate_count} gates, {power.toggle_count} toggles)")
        print(f"  {'group':16s}{'area um^2':>12s}{'power uW':>12s}")
        for g in GROUP_ORDER:
            print(f"  {g:16s}{area.by_group.get(g, 0):12.1f}"
                  f"{power.by_group.get(g, 0):12.2f}")
        cells = ", ".join(f"{k}:{v}" for k, v in sorted(area.by_cell.items()))
        print(f"  cells: {cells}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
