"""Interactive format explorer: inspect any supported 8-bit format.

    python examples/format_explorer.py MERSIT(8,2)            # overview
    python examples/format_explorer.py Posit(8,1) 0x4A        # decode a code
    python examples/format_explorer.py FP(8,4) 0.1375         # encode a value
"""

import sys

from repro.formats import available_formats, get_format
from repro.formats.analysis import precision_segments, summarize


def overview(fmt) -> None:
    s = summarize(fmt)
    print(f"{fmt.name}: {fmt.nbits}-bit, dynamic range {s.dynamic_range}")
    print(f"  exponent bus P = {s.exponent_width} bits, "
          f"significand M = {s.significand_bits} bits, "
          f"Kulisch product width W = {s.product_width}")
    print(f"  finite values: {len(fmt.finite_values)}, "
          f"max = {fmt.max_value}, min positive = {fmt.min_positive}")
    print("  precision by binade:")
    for lo, hi, bits in precision_segments(fmt):
        print(f"    2^{lo:>4d} .. 2^{hi:>4d}: {bits} fraction bits")


def decode(fmt, code: int) -> None:
    d = fmt.decode(code)
    print(f"{fmt.name} code 0b{code:0{fmt.nbits}b} (0x{code:02X}):")
    print(f"  class = {d.value_class}, value = {d.value}")
    if d.is_finite:
        print(f"  sign={d.sign} regime={d.regime} "
              f"effective_exponent={d.effective_exponent} "
              f"fraction={d.fraction_field}/{2**(d.fraction_bits or 0)}")


def encode(fmt, value: float) -> None:
    code = fmt.encode(value)
    q = fmt.decode(code).value
    err = abs(value - q)
    print(f"{fmt.name}: {value} -> code 0x{code:02X} = {q} "
          f"(abs error {err:.3g})")


def main(argv: list[str]) -> None:
    if not argv:
        print("formats:", ", ".join(available_formats()))
        print(__doc__)
        return
    fmt = get_format(argv[0])
    if len(argv) == 1:
        overview(fmt)
    else:
        token = argv[1]
        if token.lower().startswith("0x") or token.lower().startswith("0b"):
            decode(fmt, int(token, 0))
        elif token.isdigit():
            decode(fmt, int(token))
        else:
            encode(fmt, float(token))


if __name__ == "__main__":
    main(sys.argv[1:])
