"""PTQ of a BERT-style classifier on a GLUE-style task (a Table 2 row).

    python examples/ptq_text_classification.py [task] [n_eval]

Tasks: CoLA, MNLI-mm, MRPC, SST-2 (defaults: SST-2, 400 examples).
"""

import sys

from repro.quant import PTQConfig, dequantize_model, quantize_model
from repro.zoo import ALL_MODELS, evaluate_text, glue_task, pretrained

FORMATS = ["INT8", "FP(8,4)", "Posit(8,1)", "MERSIT(8,2)", "MERSIT(8,3)"]


def main(name: str = "SST-2", n_eval: int = 400) -> None:
    if name not in ALL_MODELS or ALL_MODELS[name].kind != "glue":
        glue = [n for n, e in ALL_MODELS.items() if e.kind == "glue"]
        raise SystemExit(f"unknown GLUE row {name!r}; choose from {glue}")
    entry = ALL_MODELS[name]

    print(f"loading pretrained MiniBERT for {name} (trains on first use)...")
    model, fp32_ref = pretrained(name)
    task = glue_task(entry.task)
    calib = task.calibration_split(150)   # the paper's 5%-of-inputs analogue
    test = task.test_split(n_eval)

    fp32 = evaluate_text(model, test, entry.metric)
    print(f"\n{name} ({entry.metric}): FP32 score {fp32:.2f} "
          f"(reference from training: {fp32_ref:.2f})\n")
    print(f"{'format':12s} {'score':>8s} {'drop':>7s}")
    for fmt in FORMATS:
        quantize_model(model, PTQConfig(weight_format=fmt), calib.batches(50),
                       forward=lambda m, b: m(b[0], b[1]))
        score = evaluate_text(model, test, entry.metric)
        dequantize_model(model)
        print(f"{fmt:12s} {score:8.2f} {fp32 - score:7.2f}")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if args else "SST-2", int(args[1]) if len(args) > 1 else 400)
