"""Which layers break under a narrow format? Layer sensitivity + stats.

Runs the per-layer quantization sensitivity sweep and the activation
statistics that explain the paper's Table 2 ordering.

    python examples/sensitivity_analysis.py [model] [format]
"""

import sys

from repro.autograd import Tensor
from repro.quant import (
    PTQConfig, collect_activation_stats, layer_sensitivity, summarize_stats,
)
from repro.zoo import dataset, evaluate_vision, pretrained


def main(model_name: str = "MobileNet_v3", fmt: str = "Posit(8,0)") -> None:
    model, _ = pretrained(model_name)
    ds = dataset()
    calib = ds.calibration_split(60)
    test = ds.test_split(250)

    print(f"== Activation statistics ({model_name}) ==")
    stats = collect_activation_stats(model, calib.images[:32])
    summary = summarize_stats(stats)
    for k, v in summary.items():
        print(f"  {k}: {v:.2f}")
    worst = max(stats, key=lambda s: s.range_ratio if s.abs_median else 0)
    print(f"  widest layer: {worst.layer} (max/median {worst.range_ratio:.1f})")

    print(f"\n== Layer sensitivity under {fmt} ==")
    results = layer_sensitivity(
        model, PTQConfig(fmt), list(calib.batches(60)),
        evaluate=lambda m: evaluate_vision(m, test),
        forward=lambda m, b: m(Tensor(b[0])))
    print(f"  {'layer':42s} {'accuracy':>9s} {'drop':>7s}")
    for r in results[:12]:
        print(f"  {r.layer:42s} {r.score:9.2f} {r.drop:7.2f}")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if args else "MobileNet_v3",
         args[1] if len(args) > 1 else "Posit(8,0)")
