"""PTQ of an image-classification CNN, end to end (a Table 2 column).

Loads (or trains on first use) the MobileNetV3 analogue, calibrates the
paper's max-observer PTQ on a small split, and compares 8-bit formats.

    python examples/ptq_image_classification.py [model] [n_eval]

Defaults: MobileNet_v3, 300 evaluation images.
"""

import sys

from repro.autograd import Tensor
from repro.quant import PTQConfig, dequantize_model, quantize_model
from repro.zoo import ALL_MODELS, dataset, evaluate_vision, pretrained

FORMATS = ["INT8", "FP(8,2)", "FP(8,4)", "Posit(8,0)", "Posit(8,1)", "MERSIT(8,2)"]


def main(model_name: str = "MobileNet_v3", n_eval: int = 300) -> None:
    if model_name not in ALL_MODELS or ALL_MODELS[model_name].kind != "vision":
        vision = [n for n, e in ALL_MODELS.items() if e.kind == "vision"]
        raise SystemExit(f"unknown vision model {model_name!r}; choose from {vision}")

    print(f"loading pretrained {model_name} (trains on first use)...")
    model, fp32_ref = pretrained(model_name)
    ds = dataset()
    calib = ds.calibration_split(100)   # the paper's 1000-image analogue
    test = ds.test_split(n_eval)

    fp32 = evaluate_vision(model, test)
    print(f"\n{model_name}: FP32 accuracy {fp32:.2f}% "
          f"(reference from training: {fp32_ref:.2f}%)\n")
    print(f"{'format':12s} {'accuracy':>9s} {'drop':>7s}")
    for fmt in FORMATS:
        quantize_model(model, PTQConfig(weight_format=fmt), calib.batches(50),
                       forward=lambda m, b: m(Tensor(b[0])))
        acc = evaluate_vision(model, test)
        dequantize_model(model)
        print(f"{fmt:12s} {acc:9.2f} {fp32 - acc:7.2f}")

    print("\nExpected shape (paper Table 2): Posit(8,1) and MERSIT(8,2) stay "
          "near FP32; INT8 and the narrow-range formats degrade on "
          "depthwise/SE models like this one.")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if args else "MobileNet_v3",
         int(args[1]) if len(args) > 1 else 300)
