"""Bench serving: dynamic batching vs serial single-sample inference.

The batching scheduler exists to amortise per-forward overhead (Python
dispatch, im2col, GEMM setup) across coalesced requests.  This benchmark
quantifies that: a closed-loop load drives the micro CNN through the
service at ``max_batch`` 1 / 8 / 32 and compares sustained throughput
against the serial single-sample baseline (the differential-test
reference path).  Numbers land in ``BENCH_serve.json`` at the repo root
(override with ``--out``) so the batching win is tracked from PR to PR:

* ``serial`` — one request at a time through ``infer_serial``;
* ``batched.N`` — closed-loop clients against a scheduler capped at
  ``max_batch=N`` (N=1 measures pure scheduler overhead);
* ``speedup_batch32_x`` — batched(32) over serial throughput; the serve
  acceptance bar is >= 3x;
* ``sharded.N`` — the same closed-loop load through a
  :class:`~repro.serve.ShardRouter` at N worker processes (plus an
  open-loop run), with a ``cpu_limited`` honesty flag: on a host with
  fewer cores than shards+router the numbers measure correctness
  overhead, not scaling, and must not be read as a fan-out win;
* ``gateway`` — closed- and open-loop load through a real localhost
  TCP socket (:class:`~repro.serve.Gateway` fronting the service,
  :class:`~repro.serve.GatewayClient` threads driving it), so the
  framing/serialisation tax of the network front door is measured
  against the in-process ``batched`` numbers.  Carries the same
  ``cpu_limited`` flag: clients, event loop and scheduler workers all
  contend for cores on a small host.

Usage::

    python benchmarks/bench_serve.py [--fast] [--out PATH]
        [--mode fakequant|engine]

``--fast`` shrinks request counts (used by the tier-1 smoke test).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import (  # noqa: E402
    BatchPolicy, Gateway, GatewayClient, InferenceService, ModelRepository,
    ShardRouter, micro_specs, run_closed_loop, run_open_loop,
)

DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"
MODEL = "micro-cnn"
FORMAT = "MERSIT(8,2)"
BATCH_SIZES = (1, 8, 32)
SHARD_COUNTS = (2,)


def _host_meta() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def bench_serial(service: InferenceService, payloads: list,
                 mode: str) -> dict:
    """One request at a time through the reference path."""
    t0 = time.perf_counter()
    for x in payloads:
        service.infer_serial(MODEL, x, FORMAT, mode)
    elapsed = time.perf_counter() - t0
    return {"requests": len(payloads), "elapsed_s": elapsed,
            "throughput_rps": len(payloads) / elapsed}


def bench_batched(repository: ModelRepository, max_batch: int,
                  requests: int, mode: str) -> dict:
    """Closed-loop clients against a scheduler capped at ``max_batch``."""
    policy = BatchPolicy(max_batch=max_batch, max_wait_ms=5.0,
                         queue_depth=max(64, 8 * max_batch), workers=2)
    with InferenceService(repository, policy) as service:
        report = run_closed_loop(
            service, MODEL, FORMAT, mode, requests=requests,
            concurrency=max(8, 3 * max_batch), seed=0)
    d = report.to_dict()
    return {"requests": requests, "ok": d["ok"],
            "elapsed_s": d["elapsed_s"],
            "throughput_rps": d["throughput_rps"],
            "latency_ms": d["latency_ms"],
            "mean_batch_size": d["metrics"]["mean_batch_size"],
            "batch_size_histogram": d["metrics"]["batch_size_histogram"]}


def bench_sharded(shards: int, requests: int, mode: str) -> dict:
    """Closed- and open-loop load through a shard-router fleet.

    The shards and the router each want a core; on a smaller host the
    result carries ``cpu_limited: true`` and measures cross-process
    serving *overhead* (pipes, pickling, shared-memory attach), not
    horizontal scaling.
    """
    cpu_limited = (os.cpu_count() or 1) < shards + 1
    policy = BatchPolicy(max_batch=8, max_wait_ms=5.0, queue_depth=256,
                         workers=2)
    with ShardRouter(shards=shards, specs="micro",
                     preheat=[(MODEL, FORMAT, mode)], policy=policy,
                     calib_n=32) as router:
        closed = run_closed_loop(router, MODEL, FORMAT, mode,
                                 requests=requests, concurrency=8, seed=0)
        open_ = run_open_loop(router, MODEL, FORMAT, mode,
                              requests=max(requests // 4, 16),
                              rate_rps=200.0, seed=0)
        fleet = router.stats()["fleet"]
    out = {}
    for name, report in (("closed_loop", closed), ("open_loop", open_)):
        d = report.to_dict()
        out[name] = {"requests": d["requests"], "ok": d["ok"],
                     "elapsed_s": d["elapsed_s"],
                     "throughput_rps": d["throughput_rps"],
                     "latency_ms": d["latency_ms"]}
    out["fleet"] = {"completed": fleet["completed"],
                    "mean_batch_size": fleet["mean_batch_size"],
                    "percentiles_exact": fleet["percentiles_exact"]}
    out["cpu_limited"] = cpu_limited
    return out


def _latency_summary(latencies_ms: list) -> dict:
    arr = np.asarray(latencies_ms, dtype=np.float64)
    return {"p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "mean": float(arr.mean())}


def _drive_gateway(host: str, port: int, payloads: list, mode: str,
                   concurrency: int, rate_rps: float | None) -> dict:
    """Drive one load shape through the socket.

    ``rate_rps is None`` is the closed loop: each of ``concurrency``
    clients fires its next request the moment the previous reply lands.
    Otherwise the open loop: request *i* is released at ``i / rate_rps``
    seconds after start, and the client pool drains that schedule, so
    queueing delay shows up in latency instead of throttling arrival.
    """
    latencies: list = []
    errors = [0]
    lock = threading.Lock()
    next_idx = [0]
    t0 = time.perf_counter()

    def run_client(cid: int) -> None:
        with GatewayClient(host, port, seed=cid) as client:
            while True:
                with lock:
                    i = next_idx[0]
                    if i >= len(payloads):
                        return
                    next_idx[0] = i + 1
                if rate_rps is not None:
                    release = t0 + i / rate_rps
                    now = time.perf_counter()
                    if release > now:
                        time.sleep(release - now)
                sent = time.perf_counter()
                try:
                    client.infer(MODEL, payloads[i], FORMAT, mode)
                except Exception:  # lint: allow[broad-except] bench counts failures, never masks them silently
                    with lock:
                        errors[0] += 1
                        continue
                with lock:
                    latencies.append((time.perf_counter() - sent) * 1e3)

    threads = [threading.Thread(target=run_client, args=(cid,), daemon=True)
               for cid in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    return {"requests": len(payloads), "ok": len(latencies),
            "errors": errors[0], "elapsed_s": elapsed,
            "throughput_rps": len(latencies) / elapsed,
            "latency_ms": _latency_summary(latencies or [0.0])}


def bench_gateway(repository: ModelRepository, requests: int,
                  mode: str) -> dict:
    """Closed- and open-loop load through a real localhost TCP socket.

    Same request stream as the in-process ``batched`` axis, but every
    request pays the wire tax: JSON framing, base64 ndarray codec, and
    a socket round trip through the asyncio gateway.  ``cpu_limited``
    is set when the host cannot give the client pool, the event loop
    and the scheduler workers a core each.
    """
    cpu_limited = (os.cpu_count() or 1) < 4
    policy = BatchPolicy(max_batch=8, max_wait_ms=5.0, queue_depth=256,
                         workers=2)
    payloads = repository.specs[MODEL].requests(requests, seed=0)
    service = InferenceService(repository, policy)
    gw = Gateway(service, port=0, max_inflight=256).start()
    try:
        with GatewayClient(gw.host, gw.port) as warm:
            warm.infer(MODEL, payloads[0], FORMAT, mode)
        closed = _drive_gateway(gw.host, gw.port, payloads, mode,
                                concurrency=8, rate_rps=None)
        open_ = _drive_gateway(gw.host, gw.port,
                               payloads[:max(requests // 4, 16)], mode,
                               concurrency=8, rate_rps=200.0)
    finally:
        gw.close()
    return {"closed_loop": closed, "open_loop": open_,
            "cpu_limited": cpu_limited}


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fast", action="store_true",
                    help="small request counts (smoke-test mode)")
    ap.add_argument("--mode", default="fakequant",
                    choices=("fakequant", "engine"))
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = ap.parse_args(argv)

    requests = 64 if args.fast else 512
    repository = ModelRepository(micro_specs(), calib_n=32, persist=False)
    payloads = repository.specs[MODEL].requests(requests, seed=0)

    # one warm resolve so calibration cost stays out of every timing
    with InferenceService(repository) as warm:
        warm.infer_serial(MODEL, payloads[0], FORMAT, args.mode)
        serial = bench_serial(warm, payloads, args.mode)
    print(f"serial          {serial['throughput_rps']:8.1f} req/s")

    batched = {}
    for n in BATCH_SIZES:
        batched[str(n)] = bench_batched(repository, n, requests, args.mode)
        print(f"batched max={n:<3d} {batched[str(n)]['throughput_rps']:8.1f} "
              f"req/s (mean batch {batched[str(n)]['mean_batch_size']:.1f})")

    speedup = batched["32"]["throughput_rps"] / serial["throughput_rps"]
    print(f"dynamic batching speedup at max_batch=32: {speedup:.2f}x over serial")

    sharded = {}
    for n in SHARD_COUNTS:
        sharded[str(n)] = bench_sharded(n, requests, args.mode)
        tag = " (cpu-limited)" if sharded[str(n)]["cpu_limited"] else ""
        print(f"sharded n={n:<3d}  "
              f"{sharded[str(n)]['closed_loop']['throughput_rps']:8.1f} "
              f"req/s closed-loop{tag}")

    gateway = bench_gateway(repository, requests, args.mode)
    tag = " (cpu-limited)" if gateway["cpu_limited"] else ""
    print(f"gateway         "
          f"{gateway['closed_loop']['throughput_rps']:8.1f} "
          f"req/s closed-loop over localhost TCP{tag}")

    payload = {
        "host": _host_meta(),
        "model": MODEL,
        "format": FORMAT,
        "mode": args.mode,
        "requests": requests,
        "serial": serial,
        "batched": batched,
        "sharded": sharded,
        "gateway": gateway,
        "speedup_batch32_x": speedup,
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
