"""Bench kernels: LUT vs reference quantize, serial vs parallel Table 2.

Times the two layers the ``repro.kernels`` subsystem accelerates and writes
the numbers to ``BENCH_kernels.json`` at the repo root (override with
``--out``), so the performance trajectory is tracked from PR to PR:

* ``quantize_1m`` — per-tensor MERSIT(8,2) quantize of a 1M-element array,
  reference ``searchsorted`` path vs the bit-LUT kernel.  Runs are
  interleaved and both min and median are recorded, because shared CI boxes
  are noisy.
* ``table2_grid`` — a small (model x format) grid run serially and with
  ``--jobs N``, using a throwaway artifacts directory so the real artifact
  cache is untouched.  Requires the zoo caches (trains on first use).
  Alongside the timings it records the warm-cache counters from
  ``executor.last_run_stats`` (zoo memo hits, kernel LUT builds/hits) and
  the pool shape (worker count, respawns, whether the pool was reused).
  When the process is confined to fewer CPUs than ``--jobs``
  (``affinity_cpus < jobs``) the record carries ``"cpu_limited": true``
  and the speedup is reported as an observation, not a pass/fail claim —
  a 1-CPU container cannot show a parallel speedup no matter how good the
  fabric is.

Usage::

    python benchmarks/bench_kernels.py [--fast] [--skip-table2]
                                       [--jobs N] [--out PATH]

``--fast`` shrinks the array and repeat counts (used by the tier-1 smoke
test); ``--skip-table2`` skips the grid section (no zoo training).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import kernels  # noqa: E402
from repro.formats import get_format  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_kernels.json"


def _host_meta() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "affinity_cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else None,
    }


def bench_quantize(n: int = 1_000_000, repeats: int = 11, fmt_name: str = "MERSIT(8,2)") -> dict:
    """Interleaved timing of reference vs LUT quantize on ``n`` normals."""
    fmt = get_format(fmt_name)
    rng = np.random.default_rng(0)
    x = rng.normal(size=n)
    kernels.kernel_for(fmt)  # build the tables outside the timed region

    def sample(backend: str, inner: int) -> tuple:
        # batch `inner` calls per sample so each measurement is long enough
        # (~100 ms) to ride out scheduler hiccups on shared machines
        with kernels.use_backend(backend):
            t0 = time.perf_counter()
            for _ in range(inner):
                q = fmt.quantize(x)
            elapsed = (time.perf_counter() - t0) * 1e3 / inner
        return elapsed, q

    ref_ms, lut_ms = [], []
    for _ in range(repeats):
        t, q_ref = sample("reference", 1)
        ref_ms.append(t)
        t, q_lut = sample("lut", 5)
        lut_ms.append(t)
    assert np.array_equal(q_ref, q_lut), "LUT kernel diverged from reference"
    return {
        "format": fmt_name,
        "n": n,
        "repeats": repeats,
        "reference_ms": {"min": min(ref_ms), "median": float(np.median(ref_ms))},
        "lut_ms": {"min": min(lut_ms), "median": float(np.median(lut_ms))},
        "speedup_min": min(ref_ms) / min(lut_ms),
        "speedup_median": float(np.median(ref_ms) / np.median(lut_ms)),
    }


def bench_table2(jobs: int = 4, eval_n: int = 200, calib_n: int = 50,
                 models: list[str] | None = None,
                 formats: list[str] | None = None) -> dict:
    """Serial vs ``jobs``-way parallel fill of a small Table 2 grid."""
    from repro.experiments import table2
    from repro.resilience import executor, shutdown_all
    from repro.zoo import pretrained

    models = models or ["SST-2", "CoLA", "MRPC", "MNLI-mm"]
    formats = formats or ["INT8", "FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"]
    for name in models:  # train/load outside the timed region
        pretrained(name)

    def timed_run(njobs: int) -> tuple[float, dict, dict]:
        with tempfile.TemporaryDirectory() as tmp:
            prev = os.environ.get("REPRO_ARTIFACTS")
            os.environ["REPRO_ARTIFACTS"] = tmp
            try:
                t0 = time.perf_counter()
                result = table2.run(models=models, formats=formats,
                                    eval_n=eval_n, calib_n=calib_n,
                                    refresh=True, jobs=njobs)
                return (time.perf_counter() - t0, result["grid"],
                        dict(executor.last_run_stats or {}))
            finally:
                if prev is None:
                    os.environ.pop("REPRO_ARTIFACTS", None)
                else:
                    os.environ["REPRO_ARTIFACTS"] = prev

    shutdown_all()  # time a cold pool: spawn + preload included
    serial_s, grid_serial, serial_stats = timed_run(1)
    parallel_s, grid_parallel, parallel_stats = timed_run(jobs)
    affinity = (len(os.sched_getaffinity(0))
                if hasattr(os, "sched_getaffinity") else os.cpu_count())
    return {
        "models": models,
        "formats": formats,
        "eval_n": eval_n,
        "calib_n": calib_n,
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "grids_match": grid_serial == grid_parallel,
        "cpu_limited": bool(affinity is not None and affinity < jobs),
        "affinity_cpus": affinity,
        "warm_cache": {
            "serial": serial_stats.get("worker_stats", {}),
            "parallel": parallel_stats.get("worker_stats", {}),
        },
        "pool": {
            "workers": len(parallel_stats.get("worker_pids", [])),
            "respawns": parallel_stats.get("respawns", 0),
            "pool_reused": parallel_stats.get("pool_reused", False),
            "dispatches": parallel_stats.get("dispatches", 0),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small sizes for smoke testing")
    parser.add_argument("--skip-table2", action="store_true",
                        help="skip the table2 grid section (needs zoo caches)")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    payload = {"host": _host_meta()}
    if args.fast:
        payload["quantize_1m"] = bench_quantize(n=50_000, repeats=3)
    else:
        payload["quantize_1m"] = bench_quantize()
    q = payload["quantize_1m"]
    print(f"quantize {q['format']} n={q['n']}: "
          f"ref {q['reference_ms']['median']:.1f} ms, "
          f"lut {q['lut_ms']['median']:.1f} ms, "
          f"speedup x{q['speedup_median']:.1f} (median), "
          f"x{q['speedup_min']:.1f} (min)")

    if not args.skip_table2:
        payload["table2_grid"] = bench_table2(jobs=args.jobs)
        t = payload["table2_grid"]
        print(f"table2 {len(t['models'])}x{len(t['formats'])} grid: "
              f"serial {t['serial_s']:.1f} s, "
              f"--jobs {t['jobs']} {t['parallel_s']:.1f} s, "
              f"speedup x{t['speedup']:.2f}, "
              f"grids_match={t['grids_match']}")
        warm = t["warm_cache"]["parallel"]
        print(f"  warm cache (parallel run): "
              f"zoo hits {warm.get('zoo_warm_hits', 0)}, "
              f"zoo misses {warm.get('zoo_warm_misses', 0)}, "
              f"lut builds {warm.get('lut_builds', 0)}, "
              f"lut hits {warm.get('lut_hits', 0)}; "
              f"pool workers {t['pool']['workers']}, "
              f"respawns {t['pool']['respawns']}")
        if t["cpu_limited"]:
            print(f"  NOTE: cpu_limited — only {t['affinity_cpus']} CPU(s) "
                  f"available for --jobs {t['jobs']}; the speedup above is "
                  f"an observation, not a pass/fail claim")
        elif t["speedup"] >= t["jobs"] / 2:
            print(f"  speedup x{t['speedup']:.2f} >= jobs/2 "
                  f"({t['jobs'] / 2:.1f}): PASS")
        else:
            print(f"  speedup x{t['speedup']:.2f} < jobs/2 "
                  f"({t['jobs'] / 2:.1f}): FAIL")

    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
