"""Ablation: decoupled weight/activation formats.

The paper uses one format for both weights and activations.  Because
activations carry the heavy tails (see the activation-stats tooling),
mixing formats shows *where* the dynamic range matters: a wide-range
activation format rescues a narrow weight format but not vice versa.
"""

from repro.autograd import Tensor
from repro.experiments.common import format_table
from repro.quant import PTQConfig, dequantize_model, quantize_model
from repro.zoo import dataset, evaluate_vision, pretrained

PAIRS = [
    ("MERSIT(8,2)", "MERSIT(8,2)"),
    ("FP(8,2)", "FP(8,2)"),
    ("FP(8,2)", "MERSIT(8,2)"),   # narrow weights, wide activations
    ("MERSIT(8,2)", "FP(8,2)"),   # wide weights, narrow activations
    ("INT8", "MERSIT(8,2)"),
    ("MERSIT(8,2)", "INT8"),
]


def test_ablation_mixed_formats(benchmark):
    model, fp32 = pretrained("MobileNet_v3")
    calib = dataset().calibration_split(60)
    test = dataset().test_split(250)

    def cell(wfmt, afmt):
        quantize_model(model, PTQConfig(wfmt, activation_format=afmt),
                       calib.batches(60), forward=lambda m, b: m(Tensor(b[0])))
        acc = evaluate_vision(model, test)
        dequantize_model(model)
        return acc

    benchmark(lambda: cell("MERSIT(8,2)", "MERSIT(8,2)"))

    scores = {(w, a): cell(w, a) for w, a in PAIRS}
    rows = [[w, a, round(s, 2)] for (w, a), s in scores.items()]

    # wide-range activations matter more than wide-range weights
    narrow_acts = scores[("MERSIT(8,2)", "FP(8,2)")]
    narrow_weights = scores[("FP(8,2)", "MERSIT(8,2)")]
    both_wide = scores[("MERSIT(8,2)", "MERSIT(8,2)")]
    assert narrow_weights >= narrow_acts - 3.0
    assert both_wide >= max(narrow_acts, narrow_weights) - 2.0
    print()
    print(f"Ablation - mixed weight/activation formats, MobileNet_v3 "
          f"(FP32 {fp32:.2f})")
    print(format_table(["weights", "activations", "accuracy"], rows))
