"""Bench fig7: MAC area/power for FP(8,4), Posit(8,1), MERSIT(8,2).

The benchmarked kernel is the activity simulation of the MERSIT MAC over
a 256-pair operand stream (the power-estimation workload).
"""

import numpy as np

from repro.experiments import fig7
from repro.formats import get_format
from repro.hardware import MacUnit


def test_fig7_mac_cost(benchmark):
    mac = MacUnit(get_format("MERSIT(8,2)"))
    rng = np.random.default_rng(0)
    w = rng.integers(0, 256, 256)
    a = rng.integers(0, 256, 256)

    benchmark(lambda: mac.power(w, a))

    result = fig7.run()
    rows = result["rows"]
    # reproduction targets: MERSIT strictly cheaper than Posit in both area
    # and power, and within ~25% of FP(8,4) area.
    assert rows["MERSIT(8,2)"]["area_total"] < rows["Posit(8,1)"]["area_total"]
    assert rows["MERSIT(8,2)"]["power_total"] < rows["Posit(8,1)"]["power_total"]
    assert rows["MERSIT(8,2)"]["area_total"] < 1.3 * rows["FP(8,4)"]["area_total"]
    assert result["headlines"]["area_saving_vs_posit_pct"] > 10.0
    print()
    print(fig7.render(result))
