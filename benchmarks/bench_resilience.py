"""Bench resilience: crash-safe artifact store vs bare ``json.dump``.

Every Table 2 cell commit persists the whole grid, so the store's extra
work (checksum, ``.bak`` rotation, tmp + fsync + rename) is paid per
cell.  This benchmark times both paths on a table2-sized payload and
writes the numbers to ``BENCH_resilience.json`` at the repo root
(override with ``--out``), so the overhead is tracked from PR to PR:

* ``save`` — bare ``json.dump`` vs :func:`repro.resilience.store
  .save_json` (repeated saves, so the store path includes rotation);
* ``load`` — ``json.load`` vs :func:`repro.resilience.store.load_json`
  (envelope + checksum verification).

Usage::

    python benchmarks/bench_resilience.py [--fast] [--out PATH]

``--fast`` shrinks the repeat counts (used by the tier-1 smoke test).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.resilience import store  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_resilience.json"


def _host_meta() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _table2_payload(n_models: int = 12, n_formats: int = 13) -> dict:
    """A synthetic grid shaped like the full Table 2 artifact."""
    rng = np.random.default_rng(0)
    grid = {f"Model_{m:02d}": {f"Format_{f:02d}": float(rng.uniform(0, 100))
                               for f in range(n_formats)}
            for m in range(n_models)}
    return {"grid": grid, "meta_key": "400/100"}


def _time_ms(fn, repeats: int) -> dict:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - t0) * 1e3)
    return {"min": min(samples), "median": float(np.median(samples))}


def bench_store(repeats: int = 50) -> dict:
    """Per-save/per-load cost of both persistence paths."""
    payload = _table2_payload()
    with tempfile.TemporaryDirectory() as tmp:
        bare = Path(tmp) / "bare.json"
        safe = Path(tmp) / "safe.json"

        def bare_save():
            with open(bare, "w") as f:
                json.dump(payload, f, indent=2, sort_keys=True)

        def bare_load():
            with open(bare) as f:
                json.load(f)

        bare_save_ms = _time_ms(bare_save, repeats)
        safe_save_ms = _time_ms(lambda: store.save_json(safe, payload), repeats)
        bare_load_ms = _time_ms(bare_load, repeats)
        safe_load_ms = _time_ms(lambda: store.load_json(safe), repeats)
        assert store.load_json(safe) == (payload, "ok")

    return {
        "payload_cells": 12 * 13,
        "repeats": repeats,
        "bare_save_ms": bare_save_ms,
        "safe_save_ms": safe_save_ms,
        "bare_load_ms": bare_load_ms,
        "safe_load_ms": safe_load_ms,
        "save_overhead_x": safe_save_ms["median"] / bare_save_ms["median"],
        "load_overhead_x": safe_load_ms["median"] / bare_load_ms["median"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="few repeats, for smoke testing")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    payload = {"host": _host_meta(),
               "store": bench_store(repeats=5 if args.fast else 50)}
    s = payload["store"]
    print(f"save ({s['payload_cells']} cells): "
          f"bare {s['bare_save_ms']['median']:.2f} ms, "
          f"crash-safe {s['safe_save_ms']['median']:.2f} ms "
          f"(x{s['save_overhead_x']:.1f})")
    print(f"load: bare {s['bare_load_ms']['median']:.2f} ms, "
          f"crash-safe {s['safe_load_ms']['median']:.2f} ms "
          f"(x{s['load_overhead_x']:.1f})")

    with open(args.out, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
