"""Bench table3: multiplier breakdown (decoder / exp adder / frac mult)."""

import numpy as np

from repro.experiments import table3
from repro.formats import get_format
from repro.hardware import Circuit, decoder_for_format


def build_all_decoders():
    circuits = []
    for name in ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"):
        c = Circuit()
        code = c.input_bus(8)
        decoder_for_format(c, code, get_format(name))
        circuits.append(c.area().total)
    return circuits


def test_table3_multiplier_breakdown(benchmark):
    areas = benchmark(build_all_decoders)
    fp8, posit, mersit = areas
    # the proposed decoder is the smallest of the regime-bearing formats
    assert mersit < posit

    result = table3.run()
    rows = result["rows"]
    # paper: MERSIT decoder saves the majority of the Posit decoder's area
    assert result["decoder_area_saving_vs_posit_pct"] > 30.0
    # paper: MERSIT multiplier power below FP(8,4)'s and Posit(8,1)'s
    assert rows["MERSIT(8,2)"]["power"]["decoder"] < rows["Posit(8,1)"]["power"]["decoder"]
    print()
    print(table3.render(result))
