"""Ablation: weight scaling granularity and tapered-format gain.

Two design choices of the PTQ recipe (paper Section 4.1):

* per-output-channel vs per-tensor weight scales;
* the gain mapping the observed max into the format (tapered formats use
  1.0 — the regime-band centre — instead of maxpos; see
  ``CodebookFormat.quantization_gain``).
"""

from repro.autograd import Tensor
from repro.experiments.common import format_table
from repro.quant import PTQConfig, dequantize_model, quantize_model
from repro.zoo import dataset, evaluate_vision, pretrained

GAINS = (None, 0.25, 1.0, 4.0, 16.0, "maxpos")


def test_ablation_scaling_and_gain(benchmark):
    model, fp32 = pretrained("VGG16")
    calib = dataset().calibration_split(60)
    test = dataset().test_split(250)

    def cell(fmt_name: str, per_channel: bool, gain):
        g = None if gain in (None, "maxpos") else float(gain)
        cfg = PTQConfig(fmt_name, per_channel_weights=per_channel, gain_override=g)
        if gain == "maxpos":
            from repro.formats import get_format
            cfg = PTQConfig(fmt_name, per_channel_weights=per_channel,
                            gain_override=get_format(fmt_name).max_value)
        quantize_model(model, cfg, calib.batches(60),
                       forward=lambda m, b: m(Tensor(b[0])))
        acc = evaluate_vision(model, test)
        dequantize_model(model)
        return acc

    benchmark(lambda: cell("MERSIT(8,2)", True, None))

    rows = []
    per_channel = cell("MERSIT(8,2)", True, None)
    per_tensor = cell("MERSIT(8,2)", False, None)
    rows.append(["per-channel weights", round(per_channel, 2)])
    rows.append(["per-tensor weights", round(per_tensor, 2)])
    gain_scores = {}
    for g in GAINS[1:]:
        gain_scores[g] = cell("MERSIT(8,2)", True, g)
        rows.append([f"gain={g}", round(gain_scores[g], 2)])

    # tapered default must beat maxpos mapping decisively
    assert per_channel > gain_scores["maxpos"] + 5.0
    # per-channel weights never much worse than per-tensor
    assert per_channel >= per_tensor - 2.0
    print()
    print(f"Ablation - scaling policy, MERSIT(8,2) on VGG16 (FP32 {fp32:.2f})")
    print(format_table(["Policy", "accuracy"], rows))
