"""Bench headline: the paper's abstract-level claims, measured vs stated."""

from repro.experiments import headline
from repro.formats import get_format
from repro.hardware import MacUnit


def test_headline_claims(benchmark):
    benchmark(lambda: MacUnit(get_format("MERSIT(8,2)")).area().total)

    result = headline.run()
    claims = result["claims"]
    # direction of every hardware claim must reproduce
    assert claims["mac_area_saving_vs_posit_pct"]["measured"] > 0
    assert claims["mac_power_saving_vs_posit_pct"]["measured"] > 0
    assert claims["decoder_area_saving_vs_posit_pct"]["measured"] > 0
    assert claims["posit_multiplier_area_overhead_vs_fp8_pct"]["measured"] > 0
    print()
    print(headline.render(result))
