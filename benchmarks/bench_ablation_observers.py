"""Ablation: calibration observer policy (max vs percentile vs MSE).

The paper's "basic settings" fix the observer to the absolute max so that
format differences are isolated.  This bench measures what advanced
observers change — and that the MERSIT advantage does not depend on the
observer choice.
"""

from repro.autograd import Tensor
from repro.experiments.common import format_table
from repro.quant import PTQConfig, dequantize_model, quantize_model
from repro.zoo import dataset, evaluate_vision, pretrained

OBSERVERS = ("max", "percentile", "mse")
FORMATS = ("INT8", "MERSIT(8,2)")


def test_ablation_observers(benchmark):
    model, fp32 = pretrained("MobileNet_v3")
    calib = dataset().calibration_split(60)
    test = dataset().test_split(250)

    def cell(fmt, observer):
        cfg = PTQConfig(fmt, activation_observer=observer)
        quantize_model(model, cfg, calib.batches(60),
                       forward=lambda m, b: m(Tensor(b[0])))
        acc = evaluate_vision(model, test)
        dequantize_model(model)
        return acc

    benchmark(lambda: cell("MERSIT(8,2)", "max"))

    scores = {(f, o): cell(f, o) for f in FORMATS for o in OBSERVERS}
    rows = [[f, o, round(scores[(f, o)], 2)] for f in FORMATS for o in OBSERVERS]

    # MERSIT with the paper's plain max observer must match or beat INT8
    # under ANY observer: the format, not the calibration, carries the win.
    best_int8 = max(scores[("INT8", o)] for o in OBSERVERS)
    assert scores[("MERSIT(8,2)", "max")] >= best_int8 - 2.5
    print()
    print(f"Ablation - calibration observers on MobileNet_v3 (FP32 {fp32:.2f})")
    print(format_table(["format", "observer", "accuracy"], rows))
