"""Ablation: Kulisch accumulator overflow margin V.

The paper's accumulator is 'W + V' bits with V an overflow margin
(Section 2.2).  This bench sweeps V and regenerates the linear area cost
of widening the accumulator + aligner datapath, the design pressure that
makes wide-dynamic-range formats expensive.
"""

from repro.experiments.common import format_table
from repro.formats import get_format
from repro.hardware import MacUnit

MARGINS = (0, 7, 14, 28)


def test_ablation_kulisch_margin(benchmark):
    fmt = get_format("MERSIT(8,2)")
    benchmark(lambda: MacUnit(fmt, overflow_margin=14).area().total)

    rows = []
    areas = {}
    for v in MARGINS:
        for name in ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"):
            mac = MacUnit(get_format(name), overflow_margin=v)
            areas[(name, v)] = mac.area().total
        rows.append([v] + [round(areas[(n, v)], 0)
                           for n in ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)")])

    for name in ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"):
        seq = [areas[(name, v)] for v in MARGINS]
        assert seq == sorted(seq), f"area must grow with V for {name}"
    # the format ordering is margin-independent
    for v in MARGINS:
        assert areas[("MERSIT(8,2)", v)] < areas[("Posit(8,1)", v)]
    print()
    print("Ablation - accumulator overflow margin V (area um^2)")
    print(format_table(["V", "FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"], rows))
