"""Bench table1: regenerate the paper's Table 1 (MERSIT(8,2) decode table).

Benchmarks the full 256-code decode sweep and prints the regenerated
table next to its match-status against the paper.
"""

from repro.experiments import table1
from repro.formats import MersitFormat


def decode_all_codes():
    fmt = MersitFormat(8, 2)
    return [fmt.decode(c) for c in range(256)]


def test_table1_decode(benchmark):
    decoded = benchmark(decode_all_codes)
    assert len(decoded) == 256
    result = table1.run()
    assert result["matches_paper"], result["mismatches"]
    print()
    print(table1.render(result))
