"""Ablation: the related formats of paper §2.1 (AdaptivFloat, BFP).

The paper excludes AdaptivFloat and block floating point from Table 2 on
the argument that, under channel/layer max scaling, they "align with
FP8, eliminating the need for a separate comparison".  This bench
implements both and measures that alignment on real model weights.
"""

import numpy as np

from repro.experiments.common import format_table
from repro.formats import FP8_E4, MERSIT8_2
from repro.formats.adaptivfloat import fit_bias
from repro.quant import FakeQuantizer, relative_rmse
from repro.quant.bfp import bfp_quantize
from repro.quant.ptq import quantized_layers
from repro.zoo import pretrained


def test_ablation_related_formats(benchmark):
    model, _ = pretrained("VGG16")
    weights = [layer.weight.data.astype(np.float64).ravel()
               for _, layer in quantized_layers(model)]

    benchmark(lambda: bfp_quantize(weights[0], mantissa_bits=7, block_size=16))

    rows = []
    errs = {"FP(8,4)": [], "AdaptivFloat(8,4)": [], "BFP(m7,b16)": [],
            "MERSIT(8,2)": []}
    for w in weights:
        errs["FP(8,4)"].append(relative_rmse(w, FakeQuantizer(FP8_E4).calibrate(w)(w)))
        af = fit_bias(w, 8, 4)
        errs["AdaptivFloat(8,4)"].append(relative_rmse(w, af.quantize(w)))
        errs["BFP(m7,b16)"].append(
            relative_rmse(w, bfp_quantize(w, mantissa_bits=7, block_size=16)))
        errs["MERSIT(8,2)"].append(
            relative_rmse(w, FakeQuantizer(MERSIT8_2).calibrate(w)(w)))
    means = {k: float(np.mean(v)) for k, v in errs.items()}
    for k, v in means.items():
        rows.append([k, round(v, 4)])

    # paper §2.1 claim: AdaptivFloat within the FP8 error class (same order)
    assert 0.4 < means["AdaptivFloat(8,4)"] / means["FP(8,4)"] < 2.5
    # and the proposed format still wins on bell-shaped weights
    assert means["MERSIT(8,2)"] < means["FP(8,4)"]
    print()
    print("Ablation - related formats (mean layer weight rel-RMSE, VGG16)")
    print(format_table(["Quantizer", "rel-RMSE"], rows))
