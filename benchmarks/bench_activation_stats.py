"""Diagnostic bench: the activation statistics behind the Table 2 ordering.

Quantifies the paper's implicit mechanism: depthwise/SE families have
heavy-tailed activations (large max/median ratio, high kurtosis), so
max-calibrated narrow-range formats crush their typical values, while
plain conv stacks stay well-conditioned.
"""

from repro.experiments.common import format_table
from repro.quant import collect_activation_stats, summarize_stats
from repro.zoo import dataset, pretrained

PLAIN = ("VGG16", "ResNet50")
FRAGILE = ("MobileNet_v3", "EfficientNet_b0")


def test_activation_stats_by_family(benchmark):
    images = dataset().calibration_split(32).images
    model, _ = pretrained("VGG16")
    benchmark(lambda: collect_activation_stats(model, images[:8]))

    rows = []
    summaries = {}
    for name in PLAIN + FRAGILE:
        m, _ = pretrained(name)
        summaries[name] = summarize_stats(collect_activation_stats(m, images))
        s = summaries[name]
        rows.append([name, round(s["mean_range_ratio"], 1),
                     round(s["max_range_ratio"], 1),
                     round(s["mean_kurtosis"], 1),
                     round(s["min_median_int8_levels"], 2)])

    plain_ratio = max(summaries[n]["mean_range_ratio"] for n in PLAIN)
    fragile_ratio = min(summaries[n]["mean_range_ratio"] for n in FRAGILE)
    # the depthwise/SE families are measurably heavier-tailed
    assert fragile_ratio > plain_ratio
    print()
    print("Activation statistics by architecture family")
    print(format_table(
        ["Model", "mean max/med", "max max/med", "mean kurtosis",
         "min INT8 levels @ median"], rows))
