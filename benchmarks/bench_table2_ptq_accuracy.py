"""Bench table2: the PTQ accuracy grid (paper Table 2).

By default regenerates a representative sub-grid (three contrasting models
x five formats) on top of whatever cells are already cached in the
artifact, then prints the full accumulated grid.  Set ``REPRO_TABLE2_FULL=1``
to force the complete 12-model x 12-column grid (slow: it runs every
quantized model over the evaluation split).

The benchmarked kernel is one PTQ quantize-calibrate cycle, the unit of
work the grid scales with.
"""

import os

import numpy as np

from repro.autograd import Tensor
from repro.experiments import table2
from repro.quant import PTQConfig, dequantize_model, quantize_model
from repro.zoo import dataset, pretrained

QUICK_MODELS = ["VGG16", "MobileNet_v3", "EfficientNet_b0"]
QUICK_FORMATS = ["INT8", "FP(8,4)", "FP(8,5)", "Posit(8,0)", "Posit(8,1)",
                 "MERSIT(8,2)"]


def test_table2_ptq_accuracy(benchmark):
    model, _ = pretrained("VGG16")
    calib = dataset().calibration_split(50)

    def ptq_cycle():
        quantize_model(model, PTQConfig("MERSIT(8,2)"), calib.batches(50),
                       forward=lambda m, b: m(Tensor(b[0])))
        dequantize_model(model)

    benchmark(ptq_cycle)

    if os.environ.get("REPRO_TABLE2_FULL") == "1":
        result = table2.run(verbose=True)
    else:
        result = table2.run(models=QUICK_MODELS, formats=QUICK_FORMATS)

    grid = result["grid"]
    for name in QUICK_MODELS:
        row = grid[name]
        # reproduction targets: MERSIT tracks Posit(8,1) and the baseline
        assert abs(row["MERSIT(8,2)"] - row["Posit(8,1)"]) < 6.0
        assert row["MERSIT(8,2)"] > row["FP32"] - 8.0
    # the precision-starved wide-range format (FP(8,5): 2-bit fraction)
    # degrades consistently more than MERSIT(8,2) — the paper's Section 4.2
    # finding that "fraction precision plays a critical role".  The paper's
    # full-scale narrow-range *collapses* (Posit(8,0)/FP(8,2) -> ~0) do not
    # reproduce on miniaturised models; see EXPERIMENTS.md.
    fp85_drop = np.mean([grid[m]["FP32"] - grid[m]["FP(8,5)"]
                         for m in QUICK_MODELS])
    mersit_drop = np.mean([grid[m]["FP32"] - grid[m]["MERSIT(8,2)"]
                           for m in QUICK_MODELS])
    assert fp85_drop > mersit_drop + 1.0
    print()
    print(table2.render(result))
