"""Ablation: calibration-set size.

The paper uses 1000 ImageNet images / 5% of GLUE inputs for max
calibration and argues this small-sample recipe suffices.  This bench
sweeps the calibration split size and regenerates that robustness.
"""

from repro.autograd import Tensor
from repro.experiments.common import format_table
from repro.quant import PTQConfig, dequantize_model, quantize_model
from repro.zoo import dataset, evaluate_vision, pretrained

SIZES = (10, 25, 50, 100, 200)


def test_ablation_calibration_size(benchmark):
    model, fp32 = pretrained("VGG16")
    test = dataset().test_split(250)

    def run_with(n):
        calib = dataset().calibration_split(n)
        quantize_model(model, PTQConfig("MERSIT(8,2)"), calib.batches(50),
                       forward=lambda m, b: m(Tensor(b[0])))
        acc = evaluate_vision(model, test)
        dequantize_model(model)
        return acc

    benchmark(lambda: run_with(25))

    scores = {n: run_with(n) for n in SIZES}
    rows = [[n, round(scores[n], 2)] for n in SIZES]
    # max-calibration must be stable beyond a small sample
    spread = max(scores[n] for n in SIZES[1:]) - min(scores[n] for n in SIZES[1:])
    assert spread < 6.0
    assert scores[200] > fp32 - 8.0
    print()
    print(f"Ablation - calibration size, MERSIT(8,2) on VGG16 (FP32 {fp32:.2f})")
    print(format_table(["calib images", "accuracy"], rows))
