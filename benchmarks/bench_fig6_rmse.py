"""Bench fig6: layer-wise RMSE of quantized tensors (paper Fig. 6)."""

import numpy as np

from repro.experiments import fig6
from repro.formats import get_format
from repro.quant import FakeQuantizer


def test_fig6_rmse(benchmark):
    fmt = get_format("MERSIT(8,2)")
    rng = np.random.default_rng(0)
    w = rng.normal(size=(64, 64)).astype(np.float64)

    def quantize_weight():
        return FakeQuantizer(fmt, axis=0).calibrate(w)(w)

    benchmark(quantize_weight)

    result = fig6.run()
    # the paper's finding: MERSIT(8,2) RMSE below FP(8,4) on all three models
    for model, chk in result["checks"].items():
        assert chk["mersit_leq_fp8"], f"{model}: MERSIT RMSE not below FP(8,4)"
        assert chk["mersit_vs_posit_ratio"] < 1.25
    print()
    print(fig6.render(result))
