"""Bench fig2: the MAC width table embedded in the paper's Fig. 2."""

from repro.experiments import fig2
from repro.formats import get_format
from repro.formats.analysis import summarize


def summarize_three():
    return [summarize(get_format(n))
            for n in ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)")]


def test_fig2_mac_widths(benchmark):
    rows = benchmark(summarize_three)
    assert [r.product_width for r in rows] == [33, 45, 35]
    result = fig2.run()
    assert result["all_match"]
    print()
    print(fig2.render(result))
