"""Bench engine: the true-quantized Kulisch matmul vs the Fraction reference.

Measures the two guarantees the ``repro.engine`` subsystem makes and
writes them to ``BENCH_engine.json`` at the repo root (override with
``--out``), so the performance trajectory is tracked from PR to PR:

* ``fuzz`` — bit-exactness: for every registered 8-bit format, seeded
  random code-vector dot products (special codes included) computed by
  the engine and by the exact-rational ``formats.arithmetic.dot``; the
  mismatch count must be zero.
* ``matmul_64`` — throughput: a 64x64 code matmul through ``qmatmul``
  vs the same products through the Fraction reference, per format.  The
  engine is required to be at least 20x faster (it is typically several
  hundred times faster).

Usage::

    python benchmarks/bench_engine.py [--fast] [--dots N] [--out PATH]

``--fast`` shrinks the fuzz count and matrix size (used by the tier-1
smoke test; the >=20x floor is only asserted in the full run).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import planes_for, qdot, qmatmul  # noqa: E402
from repro.formats import registered_formats  # noqa: E402
from repro.formats.arithmetic import dot  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_engine.json"


def _host_meta() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def bench_fuzz(dots_per_format: int = 1000, max_len: int = 48,
               seed: int = 0) -> dict:
    """Engine vs exact-rational dot on random code vectors, per format."""
    rng = np.random.default_rng(seed)
    per_format = {}
    for fmt in registered_formats():
        mismatches = 0
        for _ in range(dots_per_format):
            n = int(rng.integers(1, max_len))
            a = rng.integers(0, fmt.ncodes, n)
            b = rng.integers(0, fmt.ncodes, n)
            if qdot(fmt, a, b) != dot(fmt, a, b)[0]:
                mismatches += 1
        per_format[fmt.name] = mismatches
    return {
        "dots_per_format": dots_per_format,
        "max_len": max_len,
        "seed": seed,
        "mismatches": per_format,
        "total_mismatches": sum(per_format.values()),
    }


def bench_matmul(size: int = 64, repeats: int = 5, seed: int = 0) -> dict:
    """Engine vs Fraction-reference timing of a ``size x size`` matmul."""
    rng = np.random.default_rng(seed)
    per_format = {}
    for fmt in registered_formats():
        planes_for(fmt)  # compile the planes outside the timed region
        a = rng.integers(0, fmt.ncodes, (size, size))
        b = rng.integers(0, fmt.ncodes, (size, size))
        engine_ms = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            c_engine = qmatmul(fmt, a, b)
            engine_ms.append((time.perf_counter() - t0) * 1e3)
        # the reference is ~1000x slower; one run is plenty of signal
        t0 = time.perf_counter()
        c_ref = np.array([[dot(fmt, a[i], b[:, j])[0] for j in range(size)]
                          for i in range(size)])
        reference_ms = (time.perf_counter() - t0) * 1e3
        per_format[fmt.name] = {
            "engine_ms": min(engine_ms),
            "reference_ms": reference_ms,
            "speedup": reference_ms / min(engine_ms),
            "bit_exact": bool(np.array_equal(c_engine, c_ref)),
        }
    return {
        "size": size,
        "repeats": repeats,
        "seed": seed,
        "per_format": per_format,
        "min_speedup": min(v["speedup"] for v in per_format.values()),
        "all_bit_exact": all(v["bit_exact"] for v in per_format.values()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small sizes for smoke testing")
    parser.add_argument("--dots", type=int, default=1000,
                        help="fuzzed dot products per format (default 1000)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    payload = {"host": _host_meta()}
    if args.fast:
        payload["fuzz"] = bench_fuzz(dots_per_format=min(args.dots, 50))
        payload["matmul_64"] = bench_matmul(size=16, repeats=2)
    else:
        payload["fuzz"] = bench_fuzz(dots_per_format=args.dots)
        payload["matmul_64"] = bench_matmul()

    f = payload["fuzz"]
    print(f"fuzz: {f['dots_per_format']} dots x {len(f['mismatches'])} formats, "
          f"{f['total_mismatches']} mismatches")
    m = payload["matmul_64"]
    for name, v in m["per_format"].items():
        print(f"matmul {m['size']}x{m['size']} {name}: "
              f"engine {v['engine_ms']:.2f} ms, "
              f"reference {v['reference_ms']:.0f} ms, "
              f"speedup x{v['speedup']:.0f}, bit_exact={v['bit_exact']}")
    print(f"min speedup x{m['min_speedup']:.0f}, "
          f"all_bit_exact={m['all_bit_exact']}")

    ok = f["total_mismatches"] == 0 and m["all_bit_exact"]
    if not args.fast:
        ok = ok and m["min_speedup"] >= 20.0
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    if not ok:
        print("FAIL: engine diverged from the reference or missed the "
              "20x speedup floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
