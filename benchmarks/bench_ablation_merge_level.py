"""Ablation: the MERSIT merge level (es).

The paper proposes es as the tunable "merge level of exponent bits" and
evaluates (8,2) and (8,3).  This bench sweeps every legal 8-bit merge
level — es in {1, 2, 3, 6} — and regenerates the trade-off the paper's
Section 3 describes: larger es widens the dynamic range but shrinks the
usable fraction, while the grouped decoder stays small.
"""

import numpy as np

from repro.experiments.common import format_table
from repro.formats import MersitFormat
from repro.hardware import Circuit, decoder_for_format
from repro.quant import FakeQuantizer, relative_rmse

ES_LEVELS = (1, 2, 3, 6)


def build_decoder_area(es: int) -> float:
    c = Circuit()
    code = c.input_bus(8)
    decoder_for_format(c, code, MersitFormat(8, es))
    return c.area().total


def test_ablation_merge_level(benchmark):
    benchmark(lambda: build_decoder_area(2))

    rng = np.random.default_rng(0)
    weights = rng.normal(size=20_000) * 0.1
    rows = []
    results = {}
    for es in ES_LEVELS:
        fmt = MersitFormat(8, es)
        dr = fmt.dynamic_range
        q = FakeQuantizer(fmt).calibrate(weights)(weights)
        rmse = relative_rmse(weights, q)
        area = build_decoder_area(es)
        results[es] = {"area": area, "rmse": rmse, "span": dr.span,
                       "max_frac": fmt.max_fraction_bits()}
        rows.append([f"MERSIT(8,{es})", f"2^{dr.min_log2}~2^{dr.max_log2}",
                     fmt.max_fraction_bits(), round(area, 1), round(rmse, 4)])

    # trade-off direction: es up => range up, fraction down, RMSE up
    assert results[1]["span"] < results[2]["span"] < results[3]["span"] < results[6]["span"]
    assert results[1]["max_frac"] >= results[2]["max_frac"] >= results[3]["max_frac"]
    assert results[2]["rmse"] < results[6]["rmse"]
    print()
    print("Ablation - MERSIT merge level (es)")
    print(format_table(
        ["Format", "Range", "max frac bits", "decoder um^2", "weight rel-RMSE"],
        rows))
