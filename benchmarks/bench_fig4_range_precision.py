"""Bench fig4: range & precision profiles of the nine 8-bit formats."""

from repro.experiments import fig4
from repro.formats import get_format
from repro.formats.analysis import precision_segments


def profile_all():
    return {name: precision_segments(get_format(name))
            for name in fig4.FIG4_FORMATS}


def test_fig4_range_precision(benchmark):
    profiles = benchmark(profile_all)
    assert len(profiles) == len(fig4.FIG4_FORMATS)
    result = fig4.run()
    assert result["claims"]["mersit_band_wider"]
    print()
    print(fig4.render(result))
