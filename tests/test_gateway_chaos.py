"""Gateway chaos: a deterministic net storm on top of worker murder.

The acceptance storm for the network front door.  Faults attack both
failure domains at once through the one ``REPRO_FAULTS`` grammar:

* ``net:accept:close`` — connections severed at accept;
* ``net:frame/infer:drop|garble`` — inbound requests eaten or corrupted;
* ``net:reply/infer:drop|delay|close`` — replies eaten, stalled or the
  socket severed after the work was done (the ambiguous-outcome case
  that makes idempotent retry semantics matter);
* ``shard:req/KEY:kill`` / ``crash`` — the backend's own chaos riding
  underneath.

Invariants proven, per request, across every client thread:

1. **exactly one outcome** — a result or a structured ServeError; never
   a hang (the whole storm is wall-clock bounded) and never a duplicate
   (each ``infer()`` call returns exactly once by construction, and the
   ok-count + error-count must equal the request count);
2. every success is **byte-identical** to ``infer_serial`` on the same
   router — the bit-identity guarantee survives retries, respawns and
   reconnects;
3. every failure surfaces a **structured kind**, not a raw socket error.
"""

import threading
import time

import numpy as np
import pytest

from repro.resilience import faults
from repro.serve import (
    BatchPolicy, Gateway, GatewayClient, ServeError, ShardRouter,
    WorkerCrashError, micro_specs,
)

pytestmark = [pytest.mark.net, pytest.mark.chaos, pytest.mark.shard]

KEY = "micro-mlp|MERSIT(8,2)|fakequant"

#: the combined storm: every net action at every site, plus backend chaos
STORM = ",".join([
    "net:accept:close:1",
    "net:frame/infer:drop:2",
    "net:frame/infer:garble:1",
    "net:reply/infer:drop:2",
    "net:reply/infer:delay:2",
    "net:reply/infer:close:1",
    f"shard:req/{KEY}:kill:1",
    f"shard:req/{KEY}:crash:2",
])

THREADS = 4
REQUESTS_PER_THREAD = 5


@pytest.fixture(autouse=True)
def _disarm(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    yield
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


def test_net_storm_plus_worker_murder_keeps_exactly_once(monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, STORM)
    router = ShardRouter(
        shards=2, specs="micro", calib_n=8,
        policy=BatchPolicy(max_batch=4, max_wait_ms=2.0,
                           queue_depth=64, workers=2),
        preheat=[("micro-mlp", "MERSIT(8,2)", "fakequant")])
    xs = micro_specs()["micro-mlp"].requests(REQUESTS_PER_THREAD, seed=17)
    refs = [router.infer_serial("micro-mlp", x) for x in xs]
    outcomes: dict[tuple[int, int], tuple[str, object]] = {}
    lock = threading.Lock()

    # breaker_threshold above the armed crash budget: this test is about
    # the storm's exactly-once guarantee, not breaker tripping
    gw = Gateway(router, port=0, breaker_threshold=32).start()
    t0 = time.monotonic()

    def run_client(tid: int) -> None:
        with GatewayClient(gw.host, gw.port, seed=100 + tid, retries=8,
                           io_timeout_s=2.0) as client:
            for i, x in enumerate(xs):
                try:
                    got = client.infer("micro-mlp", x)
                    outcome = ("ok", got)
                except ServeError as exc:
                    outcome = ("error", exc)
                with lock:
                    assert (tid, i) not in outcomes, "duplicate completion"
                    outcomes[(tid, i)] = outcome

    threads = [threading.Thread(target=run_client, args=(tid,))
               for tid in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
        assert not t.is_alive(), "a client hung through the storm"
    elapsed = time.monotonic() - t0

    with gw:
        stats = gw.stats()
    # 1. exactly one outcome per request, bounded wall clock
    assert len(outcomes) == THREADS * REQUESTS_PER_THREAD
    assert elapsed < 90, f"storm took {elapsed:.0f}s — something stalled"
    # 2. every success is bit-identical to serial inference
    oks = errors = 0
    for (tid, i), (kind, value) in sorted(outcomes.items()):
        if kind == "ok":
            oks += 1
            assert value.tobytes() == refs[i].tobytes(), \
                f"client {tid} request {i} diverged from infer_serial"
        else:
            errors += 1
            # 3. failures are structured, and only expected kinds appear:
            # crash faults surface as worker-crash (not retried); budget-
            # exhausted retry chains surface as the base transport error
            assert isinstance(value, (WorkerCrashError, ServeError))
    assert oks + errors == THREADS * REQUESTS_PER_THREAD
    # the crash budget bounds structured worker-crash failures; transport
    # retries mean most requests still succeed through the storm
    assert oks >= THREADS * REQUESTS_PER_THREAD - 4
    # the storm actually happened: net faults were enacted at every site
    enacted = stats["gateway"]["net_faults_enacted"]
    assert sum(enacted.values()) == 9, enacted
    assert stats["service"]["respawns"] >= 1


def test_health_supervisor_escalates_hung_shard_to_respawn(monkeypatch):
    """A hang-faulted worker answers no probes; after ``escalate_after``
    consecutive misses the supervisor forces a respawn, the router's
    revive path redispatches the wedged request, and it still completes
    bit-identical to serial inference."""
    monkeypatch.setenv(faults.ENV_VAR, f"shard:req/{KEY}:hang:1")
    router = ShardRouter(
        shards=2, specs="micro", calib_n=8,
        policy=BatchPolicy(max_batch=4, max_wait_ms=2.0,
                           queue_depth=64, workers=2),
        preheat=[("micro-mlp", "MERSIT(8,2)", "fakequant")])
    x = micro_specs()["micro-mlp"].requests(1, seed=23)[0]
    ref = router.infer_serial("micro-mlp", x)
    # probe_interval_s is huge: the test drives probes by hand so the
    # escalation count is deterministic, not timing-dependent
    with Gateway(router, port=0, probe_interval_s=600.0,
                 probe_timeout_s=0.5, escalate_after=2,
                 breaker_threshold=32).start() as gw:
        fut = router.submit("micro-mlp", x)   # wedges one worker
        deadline = time.monotonic() + 10
        while all(router.ping(timeout=0.3)):
            assert time.monotonic() < deadline, "worker never wedged"
            time.sleep(0.05)
        first = gw.supervisor.probe_once()
        assert not all(first), "the hung slot must miss its probe"
        assert router.respawns == 0, "one miss must not respawn yet"
        assert gw.supervisor.state()["state"] == "degraded"
        gw.supervisor.probe_once()            # second miss -> escalation
        assert gw.supervisor.state()["forced_respawns"], \
            "the forced respawn must be visible in health state"
        # the SIGKILL lands now; the router's collector revives the slot
        deadline = time.monotonic() + 30
        while router.respawns < 1:
            assert time.monotonic() < deadline, "forced kill never revived"
            time.sleep(0.05)
        got = fut.result(120)
        assert got.tobytes() == ref.tobytes(), \
            "the wedged request must complete correctly after the respawn"
        # the revived shard answers probes again: health returns to ready
        deadline = time.monotonic() + 30
        while not all(router.ping(timeout=1.0)):
            assert time.monotonic() < deadline, "revived shard still deaf"
            time.sleep(0.1)
        gw.supervisor.probe_once()
        assert gw.supervisor.state()["state"] == "ready"
