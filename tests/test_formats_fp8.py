"""FP(8,E) semantics: IEEE-like miniature float with subnormals."""

import math

import numpy as np
import pytest

from repro.formats import FP8_E2, FP8_E3, FP8_E4, FP8_E5, FloatFormat, ValueClass

ALL_FP8 = [FP8_E2, FP8_E3, FP8_E4, FP8_E5]


class TestStructure:
    @pytest.mark.parametrize("ebits,fbits", [(2, 5), (3, 4), (4, 3), (5, 2)])
    def test_field_widths(self, ebits, fbits):
        fmt = FloatFormat(8, ebits)
        assert fmt.fbits == fbits
        assert fmt.bias == (1 << (ebits - 1)) - 1

    def test_bad_ebits_rejected(self):
        with pytest.raises(ValueError):
            FloatFormat(8, 0)
        with pytest.raises(ValueError):
            FloatFormat(8, 7)


class TestDynamicRange:
    """Fig. 2 table pins FP(8,4) at 2^-9 ~ 2^7."""

    def test_fp84_matches_fig2(self):
        dr = FP8_E4.dynamic_range
        assert (dr.min_log2, dr.max_log2) == (-9, 7)

    @pytest.mark.parametrize(
        "fmt,lo,hi",
        [(FP8_E2, -5, 1), (FP8_E3, -6, 3), (FP8_E4, -9, 7), (FP8_E5, -16, 15)],
        ids=lambda x: getattr(x, "name", x),
    )
    def test_ranges(self, fmt, lo, hi):
        dr = fmt.dynamic_range
        assert (dr.min_log2, dr.max_log2) == (lo, hi)

    def test_smallest_subnormal(self):
        # 2^(1-bias) * 2^-fbits
        assert FP8_E4.min_positive == pytest.approx(2.0 ** (1 - 7) * 2.0 ** -3)

    def test_largest_normal(self):
        # exponent field 1110 (all-ones reserved), full fraction
        assert FP8_E4.max_value == pytest.approx(2.0 ** 7 * (1 + 7 / 8))


class TestSpecials:
    @pytest.mark.parametrize("fmt", ALL_FP8, ids=lambda f: f.name)
    def test_inf_codes(self, fmt):
        pos_inf = ((1 << fmt.ebits) - 1) << fmt.fbits
        assert fmt.decode(pos_inf).value == math.inf
        assert fmt.decode(pos_inf | 0x80).value == -math.inf

    @pytest.mark.parametrize("fmt", ALL_FP8, ids=lambda f: f.name)
    def test_nan_codes(self, fmt):
        nan_code = (((1 << fmt.ebits) - 1) << fmt.fbits) | 1
        assert fmt.decode(nan_code).value_class == ValueClass.NAN

    @pytest.mark.parametrize("fmt", ALL_FP8, ids=lambda f: f.name)
    def test_signed_zero(self, fmt):
        assert fmt.decode(0).value == 0.0
        assert fmt.decode(0x80).value_class == ValueClass.ZERO

    def test_fn_variant_has_no_specials(self):
        fmt = FloatFormat(8, 4, reserve_infnan=False)
        classes = {d.value_class for d in fmt.decoded}
        assert ValueClass.INF not in classes
        assert ValueClass.NAN not in classes
        # one extra binade of range
        assert fmt.dynamic_range.max_log2 == 8


class TestSubnormals:
    def test_subnormal_values_linear(self):
        """Subnormals are equally spaced at 2^(1-bias-fbits)."""
        fmt = FP8_E4
        subs = [fmt.decode(c).value for c in range(1, 1 << fmt.fbits)]
        step = 2.0 ** (1 - fmt.bias) / (1 << fmt.fbits)
        np.testing.assert_allclose(subs, [step * i for i in range(1, 8)])

    def test_subnormal_effective_precision_shrinks(self):
        """The paper's Fig. 4 note: effective precision varies in subnormals."""
        fmt = FP8_E4
        # frac=1 -> 0 effective fraction bits; frac=0b100 -> 2 bits below lead
        assert fmt.decode(0b001).fraction_bits == 0
        assert fmt.decode(0b100).fraction_bits == 2

    def test_no_gap_at_subnormal_boundary(self):
        """Largest subnormal and smallest normal are one step apart."""
        fmt = FP8_E4
        largest_sub = fmt.decode((1 << fmt.fbits) - 1).value
        smallest_norm = fmt.decode(1 << fmt.fbits).value
        step = 2.0 ** (1 - fmt.bias) / (1 << fmt.fbits)
        assert smallest_norm - largest_sub == pytest.approx(step)


class TestAgainstNumpyFloat:
    """FP(8,E) decode must agree with exact binary float arithmetic."""

    @pytest.mark.parametrize("fmt", ALL_FP8, ids=lambda f: f.name)
    def test_roundtrip_through_quantize(self, fmt):
        for d in fmt.decoded:
            if d.is_finite:
                assert fmt.quantize(np.array([d.value]))[0] == d.value

    @pytest.mark.parametrize("fmt", ALL_FP8, ids=lambda f: f.name)
    def test_values_exactly_representable_in_float64(self, fmt):
        for d in fmt.decoded:
            if d.is_finite and d.value != 0:
                m, _ = math.frexp(abs(d.value))
                # mantissa must fit in fbits+1 bits
                assert (m * (1 << (fmt.fbits + 1))) == int(m * (1 << (fmt.fbits + 1)))

    def test_monotone_by_code_within_positive_half(self):
        for fmt in ALL_FP8:
            finite_max_code = ((1 << fmt.ebits) - 1) << fmt.fbits  # inf code
            vals = [fmt.decode(c).value for c in range(finite_max_code)]
            assert vals == sorted(vals)
