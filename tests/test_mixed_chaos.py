"""Chaos suite for the mixed-precision frontier grid.

The frontier fill (:mod:`repro.experiments.frontier`) is held to the
same storm contract as table2: under a crashing uniform cell, a
NaN-poisoned allocator (the ``mixed:allocate`` fault point), a
NaN-poisoned mixed cell and a truncated artifact save — all armed at
once — every unaffected cell completes, the affected ones land as
structured errors, and a follow-up run with faults disarmed converges
to an artifact byte-identical to a clean serial fill.

The zoo is monkeypatched with tiny deterministic models (real
quantization and real gate-level unit costs, fake data); the palette is
shrunk to two costable formats so the storm stays fast.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.experiments import frontier
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.resilience import faults, is_error_entry

pytestmark = pytest.mark.chaos

MODELS = ["tinyA", "tinyB"]
PALETTE = ("FP(8,2)", "MERSIT(8,2)")
UNIFORM = ("MERSIT(8,2)",)

CHAOS_SPEC = ",".join([
    "cell:frontier/tinyA/uniform/MERSIT(8,2):crash",  # anchor cell dies
    "mixed:allocate/tinyB:nan",       # tinyB's allocator table is poisoned
    "cell:frontier/tinyA/mixed/best:nan",  # one mixed score goes NaN
    "artifact:frontier:truncate:1",   # one save dies mid-write
])


class _TinyA(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(11)
        self.a1 = Linear(8, 16, rng=rng)
        self.a2 = Linear(16, 4, rng=rng)

    def forward(self, x):
        return self.a2(self.a1(x).relu())


class _TinyB(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(22)
        self.b1 = Linear(8, 16, rng=rng)
        self.b2 = Linear(16, 4, rng=rng)

    def forward(self, x):
        return self.b2(self.b1(x).relu())


class _Entry:
    kind = "vision"
    metric = "accuracy"
    task = None


class _Split:
    def __init__(self, n: int):
        rng = np.random.default_rng(n)
        self.x = rng.normal(size=(n, 8)).astype(np.float32)

    def batches(self, batch_size: int):
        return [(self.x[i:i + batch_size],)
                for i in range(0, len(self.x), batch_size)]


class _Data:
    def calibration_split(self, n, seed=0):
        return _Split(n + 1000 * seed)

    def test_split(self, n):
        return _Split(n)


def _fake_pretrained(name: str, memo: bool = False):
    return (_TinyA() if name == "tinyA" else _TinyB()), 0.0


def _fake_evaluate(model, split, *args):
    with no_grad():
        out = model(Tensor(split.x))
    return float(np.sum(np.abs(out.data)))


@pytest.fixture
def tiny_zoo(monkeypatch):
    monkeypatch.setattr(frontier, "ALL_MODELS",
                        {"tinyA": _Entry(), "tinyB": _Entry()})
    monkeypatch.setattr(frontier, "pretrained", _fake_pretrained)
    monkeypatch.setattr(frontier, "dataset", lambda: _Data())
    monkeypatch.setattr(frontier, "evaluate_vision", _fake_evaluate)
    monkeypatch.setattr(frontier, "is_cached", lambda name: False)
    monkeypatch.setattr(frontier, "PALETTE", PALETTE)
    monkeypatch.setattr(frontier, "UNIFORM_FORMATS", UNIFORM)
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


def _run(**kw):
    kw.setdefault("models", MODELS)
    kw.setdefault("eval_n", 16)
    kw.setdefault("calib_n", 8)
    return frontier.run(**kw)


def _walk_cells(result):
    for name, s in result["models"].items():
        for kind in ("sens", "uniform", "alloc", "mixed"):
            for which, value in s[kind].items():
                yield name, kind, which, value


def test_frontier_survives_combined_faults_and_converges(tiny_zoo, tmp_path,
                                                         monkeypatch):
    art_dir = tmp_path / "chaos"
    monkeypatch.setenv("REPRO_ARTIFACTS", str(art_dir))
    monkeypatch.setenv(faults.ENV_VAR, CHAOS_SPEC)
    result = _run(refresh=True, jobs=2, retries=1, backoff=0.01)
    models = result["models"]

    # the crashing uniform anchor exhausted its retries
    entry = models["tinyA"]["uniform"]["MERSIT(8,2)"]
    assert entry["error"]["kind"] == "crash"
    # sensitivity sweeps were unaffected everywhere
    for name in MODELS:
        for f in PALETTE:
            assert isinstance(models[name]["sens"][f]["baseline"], float), \
                (name, f)
    # tinyB's allocator hit the poisoned drop table: structured errors,
    # one deterministic attempt each, and no mixed cells were launched
    for label, alloc in models["tinyB"]["alloc"].items():
        assert alloc["error"]["kind"] == "NumericsError", label
        assert alloc["error"]["attempts"] == 1
    assert models["tinyB"]["mixed"] == {}
    # tinyA's allocator was clean; its NaN'd mixed cell failed
    # deterministically (numerics errors never burn retries) while the
    # other assignment completed
    assert models["tinyA"]["mixed"]["best"]["error"]["kind"] == "numerics"
    assert models["tinyA"]["mixed"]["best"]["error"]["attempts"] == 1
    ok = models["tinyA"]["mixed"]["le:MERSIT(8,2)"]
    assert isinstance(ok["acc"], float) and isinstance(ok["acc_bc"], float)
    # derived sections degrade structurally instead of crashing: tinyB
    # has no mixed points yet, tinyA's dominance is pending because its
    # only uniform anchor is the crashed cell
    assert all(p["kind"] == "uniform" for p in models["tinyB"]["points"])
    assert models["tinyA"]["dominance"] is None

    # despite the mid-write truncation, the persisted artifact is loadable
    from repro.experiments.common import load_artifact
    assert load_artifact("frontier") == result

    # follow-up run with faults disarmed repairs only the broken cells
    monkeypatch.setenv(faults.ENV_VAR, "")
    repaired = _run(jobs=1)
    assert not any(is_error_entry(v)
                   for *_, v in _walk_cells(repaired))
    for name in MODELS:
        assert repaired["models"][name]["mixed"], name
        assert repaired["models"][name]["dominance"] is not None

    # ... and converges byte-identically to a clean serial fill
    clean_dir = tmp_path / "clean"
    monkeypatch.setenv("REPRO_ARTIFACTS", str(clean_dir))
    _run(refresh=True, jobs=1)
    assert (art_dir / "frontier.json").read_bytes() == \
        (clean_dir / "frontier.json").read_bytes()


def test_repaired_sensitivity_moves_the_assignment(tiny_zoo, tmp_path,
                                                   monkeypatch):
    """Mixed cells are pinned to their spec: a stale cell recomputes."""
    art_dir = tmp_path / "pin"
    monkeypatch.setenv("REPRO_ARTIFACTS", str(art_dir))
    clean = _run(refresh=True, jobs=1)
    label = frontier.BEST_LABEL
    alloc = clean["models"]["tinyA"]["alloc"][label]

    # forge a persisted mixed cell whose spec no longer matches
    from repro.experiments.common import load_artifact, save_artifact
    art = load_artifact("frontier")
    stale = next(s for s in ("FP(8,2)", "MERSIT(8,2)",
                             "mixed(FP(8,2);a2=MERSIT(8,2))")
                 if s != alloc["spec"])
    art["models"]["tinyA"]["mixed"][label] = {
        "spec": stale, "acc": -1.0, "acc_bc": -1.0}
    save_artifact("frontier", art)

    repaired = _run(jobs=1)
    cell = repaired["models"]["tinyA"]["mixed"][label]
    assert cell["spec"] == alloc["spec"]
    assert cell["acc"] != -1.0
