"""Gate-level decoders verified exhaustively against behavioural decode."""

import numpy as np
import pytest

from repro.formats import ValueClass, get_format
from repro.formats.analysis import exponent_field_width
from repro.hardware import Circuit, decoder_for_format
from repro.hardware.decoders import (
    build_fp8_decoder, build_mersit_decoder, build_posit_decoder,
)

ALL_DECODED_FORMATS = [
    "FP(8,2)", "FP(8,3)", "FP(8,4)", "FP(8,5)",
    "Posit(8,0)", "Posit(8,1)", "Posit(8,2)", "Posit(8,3)",
    "MERSIT(8,2)", "MERSIT(8,3)",
]


def build_decoder_circuit(fmt):
    c = Circuit()
    code = c.input_bus(8)
    pins = decoder_for_format(c, code, fmt)
    c.set_output("exp", pins.exp_eff)
    c.set_output("frac", pins.frac_eff)
    c.set_output("sign", [pins.sign])
    c.set_output("zero", [pins.is_zero])
    c.set_output("special", [pins.is_special])
    return c


def all_codes_stimulus():
    return np.array([[(v >> i) & 1 for i in range(8)] for v in range(256)],
                    dtype=bool)


@pytest.fixture(scope="module")
def sims():
    cache = {}
    for name in ALL_DECODED_FORMATS:
        fmt = get_format(name)
        c = build_decoder_circuit(fmt)
        cache[name] = (fmt, c, c.simulate(all_codes_stimulus()))
    return cache


class TestExhaustiveAgainstBehavioural:
    @pytest.mark.parametrize("name", ALL_DECODED_FORMATS)
    def test_all_256_codes(self, sims, name):
        fmt, _, sim = sims[name]
        p = exponent_field_width(fmt)
        m = fmt.max_fraction_bits()
        for code in range(256):
            d = fmt.decode(code)
            hw_exp = int(sim["outputs"]["exp"][code])
            if hw_exp >= 1 << (p - 1):
                hw_exp -= 1 << p
            hw_frac = int(sim["outputs"]["frac"][code])
            hw_zero = int(sim["outputs"]["zero"][code])
            hw_special = int(sim["outputs"]["special"][code])
            if d.value_class == ValueClass.ZERO:
                assert hw_zero == 1 and hw_frac == 0, f"code {code:#04x}"
            elif d.value_class in (ValueClass.INF, ValueClass.NAN):
                assert hw_special == 1 and hw_frac == 0, f"code {code:#04x}"
            else:
                want_frac = (1 << m) | (d.fraction_field << (m - d.fraction_bits))
                assert hw_exp == d.effective_exponent, f"code {code:#04x}"
                assert hw_frac == want_frac, f"code {code:#04x}"
                assert int(sim["outputs"]["sign"][code]) == d.sign
                assert hw_zero == 0 and hw_special == 0

    @pytest.mark.parametrize("name", ALL_DECODED_FORMATS)
    def test_flags_partition_the_code_space(self, sims, name):
        fmt, _, sim = sims[name]
        zeros = int(sim["outputs"]["zero"].sum())
        specials = int(sim["outputs"]["special"].sum())
        ref_zero = sum(d.value_class == ValueClass.ZERO for d in fmt.decoded)
        ref_special = sum(d.value_class in (ValueClass.INF, ValueClass.NAN)
                          for d in fmt.decoded)
        assert zeros == ref_zero
        assert specials == ref_special


class TestDecoderAreas:
    """The paper's decoder-cost ordering (Table 3 direction)."""

    def area(self, name):
        fmt = get_format(name)
        return build_decoder_circuit(fmt).area().total

    def test_mersit_smaller_than_posit(self):
        assert self.area("MERSIT(8,2)") < 0.7 * self.area("Posit(8,1)")

    def test_posit_is_the_most_expensive(self):
        areas = {n: self.area(n) for n in ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)")}
        assert max(areas, key=areas.get) == "Posit(8,1)"

    def test_posit_area_grows_mildly_with_es(self):
        a = [self.area(f"Posit(8,{es})") for es in range(4)]
        assert a == sorted(a)

    def test_mersit_grouped_shift_beats_bitwise(self):
        """The grouped shifter gives MERSIT fewer mux stages than Posit."""
        from repro.hardware.cells import cell
        def muxes(name):
            c = build_decoder_circuit(get_format(name))
            return c.area().by_cell.get("MUX2", 0)
        assert muxes("MERSIT(8,2)") < muxes("Posit(8,1)")


class TestDispatch:
    def test_dispatch_by_family(self):
        for name, builder in [("FP(8,4)", build_fp8_decoder),
                              ("Posit(8,1)", build_posit_decoder),
                              ("MERSIT(8,2)", build_mersit_decoder)]:
            c = Circuit()
            code = c.input_bus(8)
            pins = builder(c, code, get_format(name))
            assert len(pins.frac_eff) == get_format(name).max_fraction_bits() + 1

    def test_unknown_format_raises(self):
        from repro.formats.int8 import INT8
        c = Circuit()
        code = c.input_bus(8)
        with pytest.raises(TypeError):
            decoder_for_format(c, code, INT8)

    def test_group_label_applied(self):
        c = Circuit()
        code = c.input_bus(8)
        decoder_for_format(c, code, get_format("MERSIT(8,2)"), group="dec0")
        assert set(c.area().by_group) == {"dec0"}
