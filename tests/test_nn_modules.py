"""Module system, layers, and optimiser behaviour."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.nn import (
    Adam, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool2d, LayerNorm,
    Linear, Module, MultiHeadAttention, Parameter, ReLU, SGD, Sequential,
    TransformerEncoderLayer,
)


class TestModuleTree:
    def test_named_parameters_paths(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        names = {n for n, _ in model.named_parameters()}
        assert "layer0.weight" in names
        assert "layer2.bias" in names

    def test_num_parameters(self):
        lin = Linear(4, 8)
        assert lin.num_parameters() == 4 * 8 + 8

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears(self):
        lin = Linear(3, 3)
        out = lin(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        a = Sequential(Linear(4, 5), Linear(5, 2))
        b = Sequential(Linear(4, 5), Linear(5, 2))
        # make them differ
        b.layers[0].weight.data += 1.0
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_buffers_in_state_dict(self):
        bn = BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_missing_key_raises(self):
        a = Linear(2, 2)
        state = a.state_dict()
        del state["bias"]
        with pytest.raises(KeyError, match="missing"):
            a.load_state_dict(state)

    def test_unexpected_key_raises(self):
        a = Linear(2, 2)
        state = a.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            a.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        a = Linear(2, 2)
        state = a.state_dict()
        state["weight"] = np.zeros((3, 3), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            a.load_state_dict(state)

    def test_loaded_copy_is_independent(self):
        a = Linear(2, 2)
        state = a.state_dict()
        a.weight.data[:] = 99.0
        b = Linear(2, 2)
        b.load_state_dict(state)
        assert not np.allclose(b.weight.data, 99.0)


class TestBatchNorm:
    def test_train_normalises_batch(self):
        bn = BatchNorm2d(4)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(3.0, 2.0, size=(8, 4, 5, 5)).astype(np.float32))
        y = bn(x).data
        assert abs(y.mean()) < 1e-4
        assert abs(y.std() - 1.0) < 1e-2

    def test_running_stats_update(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.ones((4, 2, 3, 3), dtype=np.float32) * 10.0)
        bn(x)
        assert np.all(bn.running_mean > 0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        bn.set_buffer("running_mean", np.array([1.0, 2.0], dtype=np.float32))
        bn.set_buffer("running_var", np.array([4.0, 9.0], dtype=np.float32))
        bn.eval()
        x = Tensor(np.ones((1, 2, 2, 2), dtype=np.float32))
        y = bn(x).data
        np.testing.assert_allclose(y[0, 0], (1 - 1) / 2, atol=1e-3)
        np.testing.assert_allclose(y[0, 1], (1 - 2) / 3, atol=1e-3)

    def test_unknown_buffer_raises(self):
        bn = BatchNorm2d(2)
        with pytest.raises(KeyError):
            bn.set_buffer("nope", np.zeros(2))


class TestLayerNorm:
    def test_normalises_last_axis(self):
        ln = LayerNorm(8)
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(5, 3, size=(4, 8)).astype(np.float32))
        y = ln(x).data
        np.testing.assert_allclose(y.mean(axis=-1), 0, atol=1e-4)
        np.testing.assert_allclose(y.std(axis=-1), 1, atol=1e-2)


class TestAttention:
    def test_output_shape(self):
        mha = MultiHeadAttention(16, 4)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)).astype(np.float32))
        assert mha(x).shape == (2, 5, 16)

    def test_mask_blocks_padding(self):
        """Changing a masked position must not change the output."""
        mha = MultiHeadAttention(8, 2)
        rng = np.random.default_rng(0)
        base = rng.normal(size=(1, 4, 8)).astype(np.float32)
        mask = np.array([[1, 1, 0, 0]], dtype=np.float32)
        altered = base.copy()
        altered[0, 3] += 5.0
        out1 = mha(Tensor(base), mask).data
        out2 = mha(Tensor(altered), mask).data
        np.testing.assert_allclose(out1[0, :2], out2[0, :2], atol=1e-5)

    def test_indivisible_heads_raise(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_encoder_layer_shape(self):
        enc = TransformerEncoderLayer(16, 4, 32)
        x = Tensor(np.random.default_rng(2).normal(size=(3, 6, 16)).astype(np.float32))
        assert enc(x).shape == (3, 6, 16)


class TestOptimisers:
    def _quadratic_step(self, opt_cls, **kw):
        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = opt_cls([p], **kw)
        for _ in range(200):
            loss = (p * p).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return float(p.data[0])

    def test_sgd_converges(self):
        assert abs(self._quadratic_step(SGD, lr=0.1, momentum=0.5)) < 1e-3

    def test_adam_converges(self):
        assert abs(self._quadratic_step(Adam, lr=0.1)) < 1e-3

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=1.0)
        # zero gradient: only decay acts
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_step_skips_gradless_params(self):
        p = Parameter(np.ones(1))
        q = Parameter(np.ones(1))
        opt = Adam([p, q], lr=0.5)
        p.grad = np.ones(1, dtype=np.float32)
        opt.step()
        assert q.data[0] == 1.0 and p.data[0] != 1.0


class TestShapesThroughLayers:
    def test_conv_output_shape(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1)
        out = conv(Tensor(np.zeros((2, 3, 24, 24), dtype=np.float32)))
        assert out.shape == (2, 8, 12, 12)

    def test_depthwise_shapes(self):
        conv = Conv2d(6, 6, 3, padding=1, groups=6)
        out = conv(Tensor(np.zeros((1, 6, 8, 8), dtype=np.float32)))
        assert out.shape == (1, 6, 8, 8)
        assert conv.weight.shape == (6, 1, 3, 3)

    def test_bad_groups_raise(self):
        with pytest.raises(ValueError):
            Conv2d(5, 8, 3, groups=2)

    def test_flatten_and_pool(self):
        x = Tensor(np.zeros((2, 4, 6, 6), dtype=np.float32))
        assert GlobalAvgPool2d()(x).shape == (2, 4)
        assert Flatten()(x).shape == (2, 4 * 36)
