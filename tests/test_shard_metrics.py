"""Fleet metrics aggregation: exact percentiles under concurrent writers.

``repro serve --stats`` at N shards reports fleet-wide p50/p95/p99 by
pooling the *raw sample reservoirs* each worker ships with its snapshot
(:func:`repro.serve.merge_snapshots`) — percentiles of a union cannot be
derived from per-process percentiles.  These tests pin the two
correctness properties that makes the fleet numbers trustworthy:

* recording from many concurrent writers loses no samples and yields
  exactly ``np.percentile`` of everything recorded;
* merging per-shard snapshots of a partitioned stream equals one
  instance that recorded the whole stream — and when any shard omits
  its samples, the merge *says so* (``percentiles_exact: False``)
  instead of silently reporting an upper bound as the truth.
"""

import threading

import numpy as np
import pytest

from repro.serve import ServeMetrics, merge_snapshots, percentile

pytestmark = pytest.mark.shard


def _record(metrics, latencies, depth=1):
    for lat in latencies:
        metrics.on_submit(depth)
        metrics.on_complete(float(lat))


def test_concurrent_writers_lose_no_samples_and_percentiles_are_exact():
    """8 threads hammering one instance: counters and percentiles equal
    a single-writer ground truth over the union of all samples."""
    rng = np.random.default_rng(42)
    per_thread = [rng.uniform(0.1, 50.0, size=200) for _ in range(8)]
    metrics = ServeMetrics()
    threads = [threading.Thread(target=_record, args=(metrics, lats))
               for lats in per_thread]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = metrics.snapshot(samples=True)
    everything = np.concatenate(per_thread)
    assert snap["submitted"] == snap["completed"] == everything.size
    assert len(snap["samples"]["latencies_ms"]) == everything.size
    for q in (50, 95, 99):
        assert snap["latency_ms"][f"p{q}"] == pytest.approx(
            float(np.percentile(everything, q)), abs=0.0), (
            f"p{q} diverged from np.percentile over the union")


def test_merge_of_partitioned_stream_equals_single_instance():
    """Shard the stream 3 ways, merge the snapshots: byte-equal
    percentiles and counters to one instance that saw everything."""
    rng = np.random.default_rng(7)
    stream = rng.uniform(0.5, 80.0, size=999)
    whole = ServeMetrics()
    _record(whole, stream)
    shards = [ServeMetrics() for _ in range(3)]
    for i, lat in enumerate(stream):
        _record(shards[i % 3], [lat], depth=1 + (i % 4))
    merged = merge_snapshots([s.snapshot(samples=True) for s in shards])
    reference = whole.snapshot(samples=True)
    assert merged["percentiles_exact"] is True
    assert merged["shards"] == 3
    for field in ("submitted", "completed", "rejected", "expired", "failed"):
        assert merged[field] == reference[field]
    for q in ("p50", "p95", "p99", "max"):
        assert merged["latency_ms"][q] == reference["latency_ms"][q], (
            f"fleet {q} != single-instance {q}")


def test_merge_without_samples_degrades_honestly():
    """A snapshot stripped of samples can only bound the fleet
    percentiles — the merge must flag that, not fake exactness."""
    a, b = ServeMetrics(), ServeMetrics()
    _record(a, [1.0, 2.0, 3.0])
    _record(b, [10.0, 20.0, 30.0])
    merged = merge_snapshots([a.snapshot(samples=True), b.snapshot()])
    assert merged["percentiles_exact"] is False
    # upper-bound semantics: the max over shards, never an average
    assert merged["latency_ms"]["p50"] == max(
        a.snapshot()["latency_ms"]["p50"], b.snapshot()["latency_ms"]["p50"])
    assert merged["submitted"] == 6   # counters still sum exactly


def test_merge_pools_histograms_and_counters():
    a, b = ServeMetrics(), ServeMetrics()
    a.on_batch(2, [0.1, 0.2])
    a.on_batch(2, [0.3, 0.4])
    b.on_batch(4, [0.1] * 4)
    b.on_reject()
    b.on_expire()
    a.on_fail()
    merged = merge_snapshots([a.snapshot(samples=True),
                              b.snapshot(samples=True)])
    assert merged["batch_size_histogram"] == {"2": 2, "4": 1}
    assert merged["mean_batch_size"] == pytest.approx(8 / 3)
    assert (merged["rejected"], merged["expired"], merged["failed"]) == (1, 1, 1)


def test_merge_of_nothing_is_empty_but_well_formed():
    merged = merge_snapshots([])
    assert merged["shards"] == 0
    assert merged["submitted"] == 0
    assert merged["latency_ms"]["p50"] == 0.0
    assert merged["percentiles_exact"] is False


def test_merge_of_single_snapshot_with_samples_is_exact_identity():
    """Degenerate fleet of one: the merge must be the snapshot itself,
    and exact (its samples are the whole population)."""
    m = ServeMetrics()
    _record(m, [5.0, 1.0, 9.0, 3.0])
    solo = m.snapshot(samples=True)
    merged = merge_snapshots([solo])
    assert merged["percentiles_exact"] is True
    assert merged["shards"] == 1
    for field in ("submitted", "completed", "rejected", "expired", "failed"):
        assert merged[field] == solo[field]
    for q in ("p50", "p95", "p99", "max"):
        assert merged["latency_ms"][q] == solo["latency_ms"][q]


def test_merge_of_single_sampleless_snapshot_is_honest_upper_bound():
    """One snapshot without samples: the numbers pass through but the
    merge must not claim exactness it cannot verify."""
    m = ServeMetrics()
    _record(m, [2.0, 4.0, 6.0])
    solo = m.snapshot()          # no samples shipped
    merged = merge_snapshots([solo])
    assert merged["percentiles_exact"] is False
    assert merged["latency_ms"]["p50"] == solo["latency_ms"]["p50"]
    assert merged["submitted"] == 3


def test_merge_with_idle_shard_keeps_exactness():
    """An idle shard (samples present but empty) must not flip the merge
    to inexact or perturb the busy shard's percentiles."""
    busy, idle = ServeMetrics(), ServeMetrics()
    _record(busy, [1.0, 2.0, 3.0, 4.0])
    merged = merge_snapshots([busy.snapshot(samples=True),
                              idle.snapshot(samples=True)])
    assert merged["percentiles_exact"] is True
    assert merged["shards"] == 2
    ref = busy.snapshot(samples=True)
    for q in ("p50", "p95", "p99", "max"):
        assert merged["latency_ms"][q] == ref["latency_ms"][q]
    assert merged["submitted"] == 4


def test_percentile_matches_numpy_on_ties_and_singletons():
    assert percentile([], 50) == 0.0
    assert percentile([3.0], 99) == 3.0
    samples = [1.0, 1.0, 1.0, 2.0, 100.0]
    for q in (50, 95, 99):
        assert percentile(samples, q) == float(np.percentile(samples, q))
