"""Crash-safe artifact store: atomicity, checksums, ``.bak`` fallback."""

import json
import os

import pytest

from repro.resilience import store


@pytest.fixture(autouse=True)
def no_faults(monkeypatch):
    monkeypatch.delenv(store.faults.ENV_VAR, raising=False)


class TestRoundtrip:
    def test_save_load_ok(self, tmp_path):
        p = tmp_path / "a.json"
        store.save_json(p, {"k": [1, 2.5, "x"]})
        payload, status = store.load_json(p)
        assert status == "ok"
        assert payload == {"k": [1, 2.5, "x"]}

    def test_file_is_enveloped(self, tmp_path):
        p = tmp_path / "a.json"
        store.save_json(p, {"k": 1})
        blob = json.loads(p.read_text())
        meta = blob[store.ENVELOPE_KEY]
        assert meta["schema"] == store.SCHEMA_VERSION
        assert meta["checksum"] == store.payload_checksum({"k": 1})

    def test_serialization_is_deterministic(self, tmp_path):
        # byte-identical artifacts are the contract the parallel grid
        # fill relies on
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        store.save_json(a, {"z": 1, "a": [2, 3]})
        store.save_json(b, {"a": [2, 3], "z": 1})
        assert a.read_bytes() == b.read_bytes()

    def test_no_tmp_file_left_behind(self, tmp_path):
        store.save_json(tmp_path / "a.json", {"k": 1})
        assert not [f for f in os.listdir(tmp_path) if ".tmp" in f]

    def test_missing_status(self, tmp_path):
        payload, status = store.load_json(tmp_path / "nope.json")
        assert payload is None and status == "missing"


class TestCorruption:
    def _saved(self, tmp_path, *payloads):
        p = tmp_path / "a.json"
        for payload in payloads:
            store.save_json(p, payload)
        return p

    def test_second_save_rotates_bak(self, tmp_path):
        p = self._saved(tmp_path, {"v": 1}, {"v": 2})
        assert store.load_json(p) == ({"v": 2}, "ok")
        bak = json.loads(store.bak_path(p).read_text())
        assert bak["payload"] == {"v": 1}

    def test_truncated_main_recovers_from_bak(self, tmp_path):
        p = self._saved(tmp_path, {"v": 1}, {"v": 2})
        data = p.read_bytes()
        p.write_bytes(data[: len(data) // 2])
        assert store.load_json(p) == ({"v": 1}, "recovered")

    def test_truncated_main_no_bak_is_corrupt(self, tmp_path):
        p = self._saved(tmp_path, {"v": 1})
        data = p.read_bytes()
        p.write_bytes(data[: len(data) // 2])
        payload, status = store.load_json(p)
        assert payload is None and status == "corrupt"

    def test_checksum_tamper_detected(self, tmp_path):
        # structurally valid JSON whose payload was edited by hand: the
        # checksum no longer matches, so it must not load as "ok"
        p = self._saved(tmp_path, {"v": 1}, {"v": 2})
        blob = json.loads(p.read_text())
        blob["payload"]["v"] = 999
        p.write_text(json.dumps(blob))
        assert store.load_json(p) == ({"v": 1}, "recovered")

    def test_wrong_schema_version_rejected(self, tmp_path):
        p = self._saved(tmp_path, {"v": 1})
        blob = json.loads(p.read_text())
        blob[store.ENVELOPE_KEY]["schema"] = store.SCHEMA_VERSION + 1
        p.write_text(json.dumps(blob))
        payload, status = store.load_json(p)
        assert payload is None and status == "corrupt"

    def test_legacy_bare_json_still_loads(self, tmp_path):
        # artifacts written before the envelope existed are plain dicts
        p = tmp_path / "a.json"
        p.write_text(json.dumps({"grid": {"m": {"INT8": 1.0}}}))
        payload, status = store.load_json(p)
        assert status == "ok"
        assert payload == {"grid": {"m": {"INT8": 1.0}}}

    def test_save_over_corrupt_file_does_not_rotate_it(self, tmp_path):
        p = self._saved(tmp_path, {"v": 1}, {"v": 2})
        p.write_bytes(b"garbage")
        store.save_json(p, {"v": 3})
        # the garbage must not have displaced the valid .bak
        assert json.loads(store.bak_path(p).read_text())["payload"] == {"v": 1}
        assert store.load_json(p) == ({"v": 3}, "ok")


class TestTruncateFault:
    def test_injected_truncation_then_recovery(self, tmp_path, monkeypatch):
        p = tmp_path / "t2.json"
        store.save_json(p, {"v": 1}, name="t2")
        monkeypatch.setenv(store.faults.ENV_VAR, "artifact:t2:truncate:1")
        store.save_json(p, {"v": 2}, name="t2")  # dies mid-write
        assert store.load_json(p) == ({"v": 1}, "recovered")
        monkeypatch.setenv(store.faults.ENV_VAR, "")
        store.save_json(p, {"v": 2}, name="t2")
        assert store.load_json(p) == ({"v": 2}, "ok")

    def test_fault_keyed_by_name(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store.faults.ENV_VAR, "artifact:other:truncate")
        p = tmp_path / "t2.json"
        store.save_json(p, {"v": 1}, name="t2")  # key mismatch: unharmed
        assert store.load_json(p) == ({"v": 1}, "ok")
