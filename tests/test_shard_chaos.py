"""Shard chaos: workers SIGKILL'd mid-flight, planes corrupted at publish.

The acceptance storm for the sharded serving layer.  Faults are armed
through the same ``REPRO_FAULTS`` grammar as the grid chaos suite:

* ``shard:req/KEY:kill:N`` — the router *fires* the fault in the parent
  (so the budget survives respawns) and ships the action for the worker
  to enact; ``kill`` hard-exits the worker mid-request, exercising the
  pipe-EOF detection, in-slot respawn, re-init and redispatch path.
* ``shard:req/KEY:crash:N`` — an injected exception inside the worker,
  which must come back as one structured error reply, not a dead pipe.
* ``shard:segment/KEY:truncate`` — corrupts the published plane's
  digest, so every worker attach fails validation and demotes to local
  recalibration (with a one-line warning), never a crash.

Invariants checked: **exactly one** structured outcome per request (a
value or a ServeError — no hangs, no duplicates), respawned shards keep
serving, and post-storm results are byte-identical to serial inference.
"""

import numpy as np
import pytest

from repro.resilience import faults
from repro.serve import (
    BatchPolicy, ShardRouter, WorkerCrashError, micro_specs,
)

pytestmark = [pytest.mark.shard, pytest.mark.chaos]

POLICY = BatchPolicy(max_batch=4, max_wait_ms=2.0, queue_depth=64, workers=2)

KEY = "micro-mlp|MERSIT(8,2)|fakequant"


@pytest.fixture(autouse=True)
def _disarm(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    yield
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


def _router(shards=2, **kw):
    kw.setdefault("policy", POLICY)
    kw.setdefault("calib_n", 8)
    kw.setdefault("preheat", [("micro-mlp", "MERSIT(8,2)", "fakequant")])
    return ShardRouter(shards=shards, specs="micro", **kw)


def test_killed_worker_respawns_and_stream_completes(monkeypatch):
    """SIGKILL mid-flight: the router revives the shard, redispatches the
    survivors, and every request still gets exactly one correct reply."""
    monkeypatch.setenv(faults.ENV_VAR, f"shard:req/{KEY}:kill:1")
    with _router() as router:
        xs = micro_specs()["micro-mlp"].requests(4, seed=11)
        refs = [router.infer_serial("micro-mlp", x, "MERSIT(8,2)")
                for x in xs]
        futs = [router.submit("micro-mlp", x, "MERSIT(8,2)")
                for x in xs for _ in range(2)]
        results = [fut.result(120) for fut in futs]
        assert router.respawns == 1
        for i, got in enumerate(results):
            np.testing.assert_array_equal(
                refs[i // 2], got,
                err_msg=f"request {i} diverged after the respawn storm")
        # post-storm: the revived shard keeps serving, still bit-exact
        post = router.infer("micro-mlp", xs[0], "MERSIT(8,2)", timeout=120)
        np.testing.assert_array_equal(refs[0], post)


def test_injected_crash_is_one_structured_reply(monkeypatch):
    """A ``crash`` action surfaces as one WorkerCrashError — the worker
    process survives and the next request succeeds."""
    monkeypatch.setenv(faults.ENV_VAR, f"shard:req/{KEY}:crash:1")
    with _router() as router:
        x = micro_specs()["micro-mlp"].requests(1, seed=2)[0]
        with pytest.raises(WorkerCrashError):
            router.infer("micro-mlp", x, "MERSIT(8,2)", timeout=120)
        assert router.respawns == 0, "a crash reply must not cost a respawn"
        ref = router.infer_serial("micro-mlp", x, "MERSIT(8,2)")
        np.testing.assert_array_equal(
            ref, router.infer("micro-mlp", x, "MERSIT(8,2)", timeout=120))
        assert router.metrics.snapshot()["failed"] == 1


def test_fault_budget_is_consumed_once_across_respawns(monkeypatch):
    """The kill budget is fired in the parent: the redispatched requests
    must NOT re-enact it, or the shard would die in a loop."""
    monkeypatch.setenv(faults.ENV_VAR, f"shard:req/{KEY}:kill:1")
    with _router() as router:
        xs = micro_specs()["micro-mlp"].requests(3, seed=4)
        futs = [router.submit("micro-mlp", x, "MERSIT(8,2)") for x in xs]
        for fut in futs:
            fut.result(120)   # every survivor completes
        assert router.respawns == 1, (
            f"expected exactly one respawn, got {router.respawns}")


def test_corrupt_segment_demotes_to_recalibration(monkeypatch, capsys):
    """A truncated plane is rejected by its checksum in every worker;
    they recalibrate locally and results stay byte-identical."""
    monkeypatch.setenv(faults.ENV_VAR, "shard:segment/plane/*:truncate")
    with _router() as router:
        x = micro_specs()["micro-mlp"].requests(1, seed=8)[0]
        ref = router.infer_serial("micro-mlp", x, "MERSIT(8,2)")
        np.testing.assert_array_equal(
            ref, router.infer("micro-mlp", x, "MERSIT(8,2)", timeout=120))
        served = [e["stats"] for e in router.stats()["per_shard"]
                  if e["stats"]]
        rejects = sum(s["repository"]["shm_rejects"] for s in served)
        calibs = sum(s["repository"]["calibrations"] for s in served)
        assert rejects >= 1, "no worker rejected the poisoned plane"
        assert calibs >= 1, "rejection must fall back to recalibration"


def test_exactly_once_under_mixed_storm(monkeypatch):
    """kill + crash armed together over a mixed burst: every submitted
    request resolves exactly once (a value or a structured error)."""
    monkeypatch.setenv(
        faults.ENV_VAR,
        f"shard:req/{KEY}:kill:1,shard:req/micro-cnn*:crash:1")
    with _router(preheat=[("micro-mlp", "MERSIT(8,2)", "fakequant"),
                          ("micro-cnn", "INT8", "fakequant")]) as router:
        mlp = micro_specs()["micro-mlp"].requests(3, seed=21)
        cnn = micro_specs()["micro-cnn"].requests(3, seed=22)
        refs = {"micro-mlp": [router.infer_serial("micro-mlp", x,
                                                  "MERSIT(8,2)")
                              for x in mlp],
                "micro-cnn": [router.infer_serial("micro-cnn", x, "INT8")
                              for x in cnn]}
        futs = ([("micro-mlp", i, router.submit("micro-mlp", x,
                                                "MERSIT(8,2)"))
                 for i, x in enumerate(mlp)]
                + [("micro-cnn", i, router.submit("micro-cnn", x, "INT8"))
                   for i, x in enumerate(cnn)])
        outcomes = []
        for model, i, fut in futs:
            try:
                got = fut.result(120)
            except WorkerCrashError as exc:
                outcomes.append(("err", model, str(exc)))
            else:
                outcomes.append(("ok", model, None))
                np.testing.assert_array_equal(refs[model][i], got)
        assert len(outcomes) == len(futs), "a request vanished in the storm"
        crashed = [o for o in outcomes if o[0] == "err"]
        assert len(crashed) == 1 and crashed[0][1] == "micro-cnn"
        snap = router.metrics.snapshot()
        assert snap["submitted"] == len(futs)
        assert snap["completed"] + snap["failed"] == len(futs)
