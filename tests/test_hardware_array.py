"""PE-array roll-up model and critical-path timing."""

import numpy as np
import pytest

from repro.formats import get_format
from repro.hardware import Circuit, decoder_for_format
from repro.hardware.array import PEArrayModel


@pytest.fixture(scope="module")
def arrays():
    return {n: PEArrayModel(get_format(n), rows=8, cols=8)
            for n in ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)")}


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, 128), rng.integers(0, 256, 128)


class TestArrayCosts:
    def test_area_scales_with_pe_count(self):
        fmt = get_format("MERSIT(8,2)")
        small = PEArrayModel(fmt, rows=4, cols=4).area_um2()
        big = PEArrayModel(fmt, rows=8, cols=8).area_um2()
        assert 3.5 < big / small < 4.3  # ~4x PEs, sublinear encoder share

    def test_format_ordering_survives_rollup(self, arrays):
        a = {n: m.area_um2() for n, m in arrays.items()}
        assert a["MERSIT(8,2)"] < a["Posit(8,1)"]

    def test_power_positive_and_ordered(self, arrays, stream):
        w, a = stream
        p = {n: m.power_uw(w, a) for n, m in arrays.items()}
        assert all(v > 0 for v in p.values())
        assert p["MERSIT(8,2)"] < p["Posit(8,1)"]

    def test_summary_fields(self, arrays):
        s = arrays["MERSIT(8,2)"].summary()
        assert s["rows"] == 8 and s["cols"] == 8
        assert s["area_um2"] > s["mac_area_um2"] * 64


class TestLayerMapping:
    def test_perfect_fit_full_utilization(self, arrays, stream):
        w, a = stream
        m = arrays["MERSIT(8,2)"].map_linear("fc", 8, 8, w, a)
        assert m.utilization == pytest.approx(1.0)
        assert m.cycles == 1

    def test_tiling_counts(self, arrays, stream):
        w, a = stream
        # reduction 3*3*3=27 -> 4 row tiles of 8; c_out 16 -> 2 col tiles
        m = arrays["MERSIT(8,2)"].map_conv("conv", 3, 16, 3, 5, 5, w, a)
        assert m.cycles == 4 * 2 * 25
        assert m.macs == 27 * 16 * 25
        assert 0 < m.utilization <= 1.0

    def test_energy_scales_with_work(self, arrays, stream):
        w, a = stream
        arr = arrays["MERSIT(8,2)"]
        small = arr.map_conv("s", 8, 8, 3, 4, 4, w, a)
        big = arr.map_conv("b", 8, 8, 3, 8, 8, w, a)
        assert big.energy_uj > small.energy_uj

    def test_mersit_layer_energy_below_posit(self, arrays, stream):
        w, a = stream
        e = {n: m.map_conv("c", 16, 16, 3, 8, 8, w, a).energy_uj
             for n, m in arrays.items()}
        assert e["MERSIT(8,2)"] < e["Posit(8,1)"]


class TestCriticalPath:
    def _decoder_delay(self, name):
        c = Circuit()
        code = c.input_bus(8)
        decoder_for_format(c, code, get_format(name))
        return c.critical_path()

    def test_mersit_decoder_faster_than_posit(self):
        """Paper 4.1: 'our decoder having a shorter critical path than the
        Posit one'."""
        assert self._decoder_delay("MERSIT(8,2)") < self._decoder_delay("Posit(8,1)")

    def test_delays_positive(self):
        for n in ("FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"):
            assert self._decoder_delay(n) > 0

    def test_empty_circuit_zero_delay(self):
        c = Circuit()
        c.input_bus(4)
        assert c.critical_path() == 0.0

    def test_chain_adds_up(self):
        from repro.hardware.cells import cell
        c = Circuit()
        a = c.input_bus(1)
        x = a[0]
        for _ in range(5):
            x = c.inv(x)
        assert c.critical_path() == pytest.approx(5 * cell("INV").delay)
