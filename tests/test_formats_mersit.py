"""MERSIT format semantics, pinned against the paper's Table 1 and Fig. 2/3."""

import math

import numpy as np
import pytest

from repro.formats import MERSIT8_2, MERSIT8_3, MersitFormat, ValueClass

# The paper's Table 1, verbatim: (pattern, k, exp, effective exponent, fraction bits).
PAPER_TABLE_1 = [
    ("0111111", None, None, "zero", 0),
    ("0111100", -3, 0, -9, 0),
    ("0111101", -3, 1, -8, 0),
    ("0111110", -3, 2, -7, 0),
    ("01100xx", -2, 0, -6, 2),
    ("01101xx", -2, 1, -5, 2),
    ("01110xx", -2, 2, -4, 2),
    ("000xxxx", -1, 0, -3, 4),
    ("001xxxx", -1, 1, -2, 4),
    ("010xxxx", -1, 2, -1, 4),
    ("100xxxx", 0, 0, 0, 4),
    ("101xxxx", 0, 1, 1, 4),
    ("110xxxx", 0, 2, 2, 4),
    ("11100xx", 1, 0, 3, 2),
    ("11101xx", 1, 1, 4, 2),
    ("11110xx", 1, 2, 5, 2),
    ("1111100", 2, 0, 6, 0),
    ("1111101", 2, 1, 7, 0),
    ("1111110", 2, 2, 8, 0),
    ("1111111", None, None, "inf", 0),
]


class TestTable1:
    def test_decode_table_matches_paper_exactly(self):
        rows = MERSIT8_2.decode_table()
        got = [(r["pattern"], r["k"], r["exp"], r["eff_exp"], r["fraction_bits"])
               for r in rows]
        assert got == PAPER_TABLE_1

    def test_row_count(self):
        assert len(MERSIT8_2.decode_table()) == 20

    @pytest.mark.parametrize("pattern,k,exp,eff,fbits", PAPER_TABLE_1)
    def test_each_pattern_decodes_to_row(self, pattern, k, exp, eff, fbits):
        # substitute a fixed fraction for the x's and check decode agrees
        code = int(pattern.replace("x", "0"), 2)
        d = MERSIT8_2.decode(code)
        if eff == "zero":
            assert d.value_class == ValueClass.ZERO
        elif eff == "inf":
            assert d.value_class == ValueClass.INF
        else:
            assert d.regime == k
            assert d.effective_exponent == eff
            assert d.fraction_bits == fbits
            assert d.value == pytest.approx(2.0 ** eff)


class TestRepresentativeValueEquation:
    """Equation (1): (-1)^s * 2^((2^es-1)k) * 2^exp * (1 + .frac)."""

    @pytest.mark.parametrize("fmt", [MERSIT8_2, MERSIT8_3], ids=lambda f: f.name)
    def test_equation_holds_for_every_finite_code(self, fmt):
        step = (1 << fmt.es) - 1
        for d in fmt.decoded:
            if not d.is_finite:
                continue
            expected = (
                (-1.0) ** d.sign
                * 2.0 ** (step * d.regime)
                * 2.0 ** (d.effective_exponent - step * d.regime)
                * d.significand
            )
            assert d.value == pytest.approx(expected)

    @pytest.mark.parametrize("fmt", [MERSIT8_2, MERSIT8_3], ids=lambda f: f.name)
    def test_exp_field_bounded_below_all_ones(self, fmt):
        """The exponent EC can never be the all-ones pattern."""
        step = (1 << fmt.es) - 1
        for d in fmt.decoded:
            if d.is_finite:
                exp = d.effective_exponent - step * d.regime
                assert 0 <= exp <= step - 1

    def test_effective_exponent_range_8_2(self):
        exps = {d.effective_exponent for d in MERSIT8_2.decoded if d.is_finite}
        assert exps == set(range(-9, 9))

    def test_effective_exponent_range_8_3(self):
        exps = {d.effective_exponent for d in MERSIT8_3.decoded if d.is_finite}
        assert exps == set(range(-14, 14))

    def test_effective_exponents_contiguous(self):
        """Merged regime/exponent tiles a contiguous range with no gaps."""
        for fmt in (MERSIT8_2, MERSIT8_3):
            exps = sorted({d.effective_exponent for d in fmt.decoded if d.is_finite})
            assert exps == list(range(exps[0], exps[-1] + 1))


class TestSpecialValues:
    def test_zero_patterns(self):
        # ks=0, all-ones magnitude is zero for either sign bit
        assert MERSIT8_2.decode(0b00111111).value_class == ValueClass.ZERO
        assert MERSIT8_2.decode(0b10111111).value_class == ValueClass.ZERO

    def test_inf_patterns(self):
        d_pos = MERSIT8_2.decode(0b01111111)
        d_neg = MERSIT8_2.decode(0b11111111)
        assert d_pos.value_class == ValueClass.INF and d_pos.value == math.inf
        assert d_neg.value_class == ValueClass.INF and d_neg.value == -math.inf

    def test_all_zero_code_is_not_zero(self):
        """Code 0x00 decodes to +2^-3 (Table 1 row '000xxxx', k=-1, exp=0)."""
        d = MERSIT8_2.decode(0x00)
        assert d.value == pytest.approx(0.125)

    def test_exactly_one_zero_magnitude(self):
        zeros = [d for d in MERSIT8_2.decoded if d.value_class == ValueClass.ZERO]
        assert len(zeros) == 2  # +0 and -0 codes

    def test_no_nan_codes(self):
        assert not any(d.value_class == ValueClass.NAN for d in MERSIT8_2.decoded)


class TestDynamicRangeAndPrecision:
    def test_dynamic_range_8_2_matches_fig2(self):
        dr = MERSIT8_2.dynamic_range
        assert (dr.min_log2, dr.max_log2) == (-9, 8)

    def test_dynamic_range_8_3(self):
        dr = MERSIT8_3.dynamic_range
        assert (dr.min_log2, dr.max_log2) == (-14, 13)

    def test_max_fraction_bits(self):
        assert MERSIT8_2.max_fraction_bits() == 4
        assert MERSIT8_3.max_fraction_bits() == 3

    def test_fraction_bits_by_regime_8_2(self):
        """Table 1: |k| in {0,1} -> 4 bits, {1,2} -> 2 bits, {-3,2} -> 0 bits."""
        expected = {-3: 0, -2: 2, -1: 4, 0: 4, 1: 2, 2: 0}
        for d in MERSIT8_2.decoded:
            if d.is_finite:
                assert d.fraction_bits == expected[d.regime]

    def test_values_symmetric(self):
        vals = MERSIT8_2.finite_values
        np.testing.assert_allclose(vals, -vals[::-1])

    def test_codebook_size(self):
        # 256 codes - 2 inf - 2 zero = 252 finite nonzero; +1 shared zero
        assert len(MERSIT8_2.finite_values) == 253


class TestConstruction:
    def test_bad_group_width_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            MersitFormat(8, 4)

    def test_bad_es_rejected(self):
        with pytest.raises(ValueError):
            MersitFormat(8, 0)

    def test_too_narrow_rejected(self):
        with pytest.raises(ValueError):
            MersitFormat(3, 1)

    def test_general_widths_supported(self):
        fmt = MersitFormat(10, 2)  # 8 magnitude bits, 4 groups
        assert fmt.ngroups == 4
        exps = sorted({d.effective_exponent for d in fmt.decoded if d.is_finite})
        assert exps == list(range(exps[0], exps[-1] + 1))

    def test_mersit_6_2(self):
        fmt = MersitFormat(6, 2)
        assert fmt.ngroups == 2
        assert fmt.max_fraction_bits() == 2


class TestMonotonicity:
    """Within one sign, magnitude codes order monotonically by value."""

    @pytest.mark.parametrize("fmt", [MERSIT8_2, MERSIT8_3], ids=lambda f: f.name)
    def test_positive_codes_monotone(self, fmt):
        # Order positive finite codes by (ks, magnitude-with-zero-anchor):
        # MERSIT's zero sits at magnitude all-ones with ks=0, so raw code
        # order is NOT monotone; value order must still be consistent with
        # effective exponent then fraction.
        finite = [d for d in fmt.decoded if d.is_finite and d.sign == 0]
        finite.sort(key=lambda d: (d.effective_exponent, d.fraction_field))
        values = [d.value for d in finite]
        assert values == sorted(values)
        assert len(set(values)) == len(values)  # no duplicate encodings
