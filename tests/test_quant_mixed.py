"""Unit and property tests for :mod:`repro.quant.mixed`.

Covers the four pieces of the mixed-precision pipeline in isolation:
the ``mixed(...)`` spec grammar (round-trips, canonicalisation, loud
failures), the gate-level unit-cost model (INT8 exclusion, memo), the
MAC counter, the multiple-choice-knapsack allocator (budget respected
in real units, budget monotonicity, exact == greedy == brute force on
pinned seeded instances, determinism, the ``mixed:allocate`` fault
point) and DFQ bias correction (strict bias reduction on a pinned
micro-model, the exact-zero no-op path, engine snapshot refresh).
"""

import itertools
import math

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU, Sequential
from repro.quant import (
    AllocationProblem, PTQConfig, allocate, bias_correct, build_problem,
    canonical_format_spec, count_macs, format_unit_cost, parse_format_spec,
    quantize_model, quantized_layers, render_format_spec,
)
from repro.resilience import NumericsError


# ----------------------------------------------------------------------
# format specs
# ----------------------------------------------------------------------

class TestFormatSpecs:
    def test_roundtrip(self):
        spec = render_format_spec(
            "MERSIT(8,2)", {"head": "FP(8,4)", "block.fc1": "Posit(8,1)"})
        assert spec == "mixed(MERSIT(8,2);block.fc1=Posit(8,1);head=FP(8,4))"
        default, layers = parse_format_spec(spec)
        assert default == "MERSIT(8,2)"
        assert layers == {"block.fc1": "Posit(8,1)", "head": "FP(8,4)"}

    def test_uniform_map_renders_plain_name(self):
        spec = render_format_spec("FP(8,4)", {"a": "FP(8,4)", "b": "FP(8,4)"})
        assert spec == "FP(8,4)"

    def test_default_equal_entries_dropped(self):
        spec = render_format_spec("FP(8,4)", {"a": "INT8", "b": "FP(8,4)"})
        assert spec == "mixed(FP(8,4);a=INT8)"

    def test_plain_name_parses_to_empty_map(self):
        assert parse_format_spec("MERSIT(8,2)") == ("MERSIT(8,2)", {})

    def test_canonical_sorts_and_drops(self):
        messy = "mixed(FP(8,4);z=INT8;a=MERSIT(8,2);m=FP(8,4))"
        assert (canonical_format_spec(messy)
                == "mixed(FP(8,4);a=MERSIT(8,2);z=INT8)")

    def test_canonical_uniform_spellings_collapse(self):
        assert canonical_format_spec("mixed(INT8;x=INT8)") == "INT8"

    def test_unknown_format_raises(self):
        with pytest.raises((KeyError, ValueError)):
            parse_format_spec("mixed(INT8;x=NOPE(9,9))")
        with pytest.raises((KeyError, ValueError)):
            parse_format_spec("NOPE(9,9)")

    def test_malformed_entry_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_format_spec("mixed(INT8;justalayer)")

    def test_duplicate_layer_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_format_spec("mixed(INT8;x=INT8;x=FP(8,4))")

    def test_missing_default_raises(self):
        with pytest.raises(ValueError, match="default"):
            parse_format_spec("mixed(;x=INT8)")

    @pytest.mark.parametrize("bad", ["a|b", "a;b", "a=b", "a(b", "a)b"])
    def test_forbidden_layer_characters_raise(self, bad):
        with pytest.raises(ValueError, match="collides"):
            render_format_spec("INT8", {bad: "FP(8,4)"})

    def test_spec_contains_no_serving_separator(self):
        spec = render_format_spec(
            "MERSIT(8,2)", {f"l{i}": "Posit(8,1)" for i in range(4)})
        assert "|" not in spec  # the serving key splits on '|'


# ----------------------------------------------------------------------
# hardware cost model + MAC counter
# ----------------------------------------------------------------------

class TestUnitCost:
    def test_int8_has_no_gate_level_cost(self):
        with pytest.raises(TypeError):
            format_unit_cost("INT8", n=8)

    def test_cost_is_positive_and_memoized(self):
        a = format_unit_cost("MERSIT(8,2)", n=16)
        assert a["area"] > 0 and a["power"] > 0 and a["cost"] > 0
        assert format_unit_cost("MERSIT(8,2)", n=16) is a


def tiny_mlp():
    rng = np.random.default_rng(20)
    return Sequential(Linear(16, 24, rng=rng), ReLU(),
                      Linear(24, 16, rng=rng), ReLU(),
                      Linear(16, 6, rng=rng))


class TestCountMacs:
    def test_linear_counts_exact(self):
        model = tiny_mlp()
        batch = np.zeros((4, 16), dtype=np.float32)
        macs = count_macs(model, batch, forward=lambda m, b: m(Tensor(b)))
        assert macs == {"layer0": 4 * 16 * 24,
                        "layer2": 4 * 24 * 16,
                        "layer4": 4 * 16 * 6}

    def test_conv_counts_exact(self):
        rng = np.random.default_rng(10)
        model = Sequential(Conv2d(3, 4, 3, padding=1, rng=rng),
                           GlobalAvgPool2d(), Flatten(),
                           Linear(4, 2, rng=rng))
        batch = np.zeros((2, 3, 8, 8), dtype=np.float32)
        macs = count_macs(model, batch, forward=lambda m, b: m(Tensor(b)))
        # conv: out numel (2*4*8*8) x in-per-out (3*3*3)
        assert macs["layer0"] == 2 * 4 * 8 * 8 * 27
        assert macs["layer3"] == 2 * 4 * 2

    def test_no_quantizable_layers_raises(self):
        with pytest.raises(ValueError, match="quantizable"):
            count_macs(Sequential(ReLU()), np.zeros((1, 4), dtype=np.float32),
                       forward=lambda m, b: m(Tensor(b)))


# ----------------------------------------------------------------------
# the allocator
# ----------------------------------------------------------------------

def rand_problem(rng, n_layers=3, n_formats=3):
    layers = tuple(f"l{i}" for i in range(n_layers))
    formats = tuple(f"f{j}" for j in range(n_formats))
    drop = {l: {f: float(rng.normal()) for f in formats} for l in layers}
    cost = {l: {f: float(rng.uniform(0.1, 2.0)) for f in formats}
            for l in layers}
    return AllocationProblem(layers, formats, drop, cost)


def brute_force_min_drop(problem, budget):
    best = math.inf
    for combo in itertools.product(problem.formats,
                                   repeat=len(problem.layers)):
        pairs = list(zip(problem.layers, combo))
        if sum(problem.cost[l][f] for l, f in pairs) <= budget:
            best = min(best, sum(problem.drop[l][f] for l, f in pairs))
    return best


def budget_range(problem):
    lo = sum(min(problem.cost[l].values()) for l in problem.layers)
    hi = sum(max(problem.cost[l].values()) for l in problem.layers)
    return lo, hi


class TestAllocator:
    #: seeds pinned to instances where the ratio-greedy happens to be
    #: optimal (it is not in general; exact == brute force always holds)
    PINNED_SEEDS = [0, 1, 2, 3, 4, 5]

    @pytest.mark.parametrize("seed", PINNED_SEEDS)
    @pytest.mark.parametrize("frac", [0.3, 0.6, 0.9])
    def test_exact_equals_greedy_equals_brute_force(self, seed, frac):
        problem = rand_problem(np.random.default_rng(seed))
        lo, hi = budget_range(problem)
        budget = lo + frac * (hi - lo)
        exact = allocate(problem, budget=budget, method="exact")
        greedy = allocate(problem, budget=budget, method="greedy")
        reference = brute_force_min_drop(problem, budget)
        assert exact.method == "exact" and greedy.method == "greedy"
        assert exact.predicted_drop == pytest.approx(reference, abs=1e-9)
        assert greedy.predicted_drop == pytest.approx(reference, abs=1e-9)

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("method", ["exact", "greedy"])
    def test_budget_respected_in_real_units(self, seed, method):
        problem = rand_problem(np.random.default_rng(seed), 4, 3)
        lo, hi = budget_range(problem)
        for frac in (0.0, 0.25, 0.5, 1.0):
            budget = lo + frac * (hi - lo)
            alloc = allocate(problem, budget=budget, method=method)
            assert alloc.cost <= budget + 1e-12

    @pytest.mark.parametrize("seed", range(8))
    def test_relaxing_budget_never_increases_drop(self, seed):
        problem = rand_problem(np.random.default_rng(seed), 4, 3)
        lo, hi = budget_range(problem)
        budgets = [lo + frac * (hi - lo)
                   for frac in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)]
        drops = [allocate(problem, budget=b).predicted_drop for b in budgets]
        for tight, relaxed in zip(drops, drops[1:]):
            assert relaxed <= tight + 1e-9

    def test_unbounded_budget_minimises_drop(self):
        problem = rand_problem(np.random.default_rng(3))
        alloc = allocate(problem, budget=math.inf)
        ideal = sum(min(problem.drop[l].values()) for l in problem.layers)
        assert alloc.predicted_drop == pytest.approx(ideal)

    @pytest.mark.parametrize("seed", range(6))
    def test_floor_mode_respects_floor_and_minimises_cost(self, seed):
        problem = rand_problem(np.random.default_rng(seed))
        min_drop = sum(min(problem.drop[l].values()) for l in problem.layers)
        max_drop = sum(max(problem.drop[l].values()) for l in problem.layers)
        floor = min_drop + 0.5 * (max_drop - min_drop)
        alloc = allocate(problem, floor=floor)
        assert alloc.predicted_drop <= floor + 1e-9
        # brute-force the cheapest assignment under the floor
        best = math.inf
        for combo in itertools.product(problem.formats,
                                       repeat=len(problem.layers)):
            pairs = list(zip(problem.layers, combo))
            if sum(problem.drop[l][f] for l, f in pairs) <= floor:
                best = min(best,
                           sum(problem.cost[l][f] for l, f in pairs))
        if alloc.method == "exact":
            assert alloc.cost == pytest.approx(best, abs=1e-9)
        else:
            assert alloc.cost >= best - 1e-9

    def test_deterministic_under_fixed_seed(self):
        problems = [rand_problem(np.random.default_rng(7)) for _ in range(2)]
        lo, hi = budget_range(problems[0])
        a, b = (allocate(p, budget=(lo + hi) / 2) for p in problems)
        assert a == b

    def test_exactly_one_objective_required(self):
        problem = rand_problem(np.random.default_rng(0))
        with pytest.raises(ValueError, match="exactly one"):
            allocate(problem)
        with pytest.raises(ValueError, match="exactly one"):
            allocate(problem, budget=1.0, floor=1.0)

    def test_infeasible_budget_raises(self):
        problem = rand_problem(np.random.default_rng(0))
        lo, _ = budget_range(problem)
        with pytest.raises(ValueError, match="below the cheapest"):
            allocate(problem, budget=lo * 0.5)

    def test_infeasible_floor_raises(self):
        problem = rand_problem(np.random.default_rng(0))
        min_drop = sum(min(problem.drop[l].values()) for l in problem.layers)
        with pytest.raises(ValueError, match="below the best"):
            allocate(problem, floor=min_drop - 1.0)

    def test_unknown_method_raises(self):
        problem = rand_problem(np.random.default_rng(0))
        with pytest.raises(ValueError, match="unknown method"):
            allocate(problem, budget=1.0, method="typo")

    def test_allocation_spec_is_canonical(self):
        problem = rand_problem(np.random.default_rng(0))
        problem = AllocationProblem(
            problem.layers, ("INT8", "FP(8,4)"),
            {l: {"INT8": 0.5, "FP(8,4)": 0.0} for l in problem.layers},
            {l: {"INT8": 0.1, "FP(8,4)": 0.2} for l in problem.layers})
        alloc = allocate(problem, budget=math.inf)
        spec = alloc.spec("FP(8,4)")
        assert spec == "FP(8,4)"  # everyone picked the default

    def test_build_problem_uniform_total_equals_unit_cost(self):
        macs = {"a": 100, "b": 300}
        unit = {"f1": 2.0, "f2": 5.0}
        drops = {"f1": {"a": 0.1, "b": 0.2}, "f2": {"a": 0.0, "b": 0.0}}
        problem = build_problem(drops, macs, unit)
        for f, expected in unit.items():
            total = sum(problem.cost[l][f] for l in problem.layers)
            assert total == pytest.approx(expected)

    def test_allocate_fault_point_raises_numerics_error(self, monkeypatch):
        problem = rand_problem(np.random.default_rng(0))
        monkeypatch.setenv("REPRO_FAULTS", "mixed:allocate/modelX:nan")
        with pytest.raises(NumericsError, match="non-finite"):
            allocate(problem, budget=math.inf, key="modelX")
        # other keys do not match the armed clause
        allocate(problem, budget=math.inf, key="modelY")


# ----------------------------------------------------------------------
# bias correction
# ----------------------------------------------------------------------

def calib_batches(n=3, bs=16, dim=16, seed=5):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(bs, dim)).astype(np.float32) for _ in range(n)]


def mean_final_output(model, batches):
    outs = [model(Tensor(b)).data for b in batches]
    return np.concatenate(outs).mean(axis=0)


class TestBiasCorrection:
    def test_strictly_reduces_mean_output_bias(self):
        """On the pinned micro-model + stream, |E_fp - E_q| shrinks."""
        batches = calib_batches()
        fp = tiny_mlp()
        fp_mean = mean_final_output(fp, batches)

        model = tiny_mlp()
        quantize_model(model, PTQConfig("FP(8,2)"), batches,
                       forward=lambda m, b: m(Tensor(b)))
        before = np.abs(mean_final_output(model, batches) - fp_mean).mean()
        corrections = bias_correct(model, batches,
                                   forward=lambda m, b: m(Tensor(b)))
        after = np.abs(mean_final_output(model, batches) - fp_mean).mean()
        assert corrections  # every layer has a bias here
        assert before > 0
        assert after < before

    def test_corrected_means_match_fp32_on_calibration(self):
        batches = calib_batches()
        fp_mean = mean_final_output(tiny_mlp(), batches)
        model = tiny_mlp()
        quantize_model(model, PTQConfig("FP(8,2)"), batches,
                       forward=lambda m, b: m(Tensor(b)))
        bias_correct(model, batches, forward=lambda m, b: m(Tensor(b)))
        # the last layer's expected output is matched (up to fp32 eval)
        got = mean_final_output(model, batches)
        np.testing.assert_allclose(got, fp_mean, atol=1e-5)

    def test_unquantized_model_is_a_noop(self):
        model = tiny_mlp()
        saved = [layer.bias.data.tobytes()
                 for _, layer in quantized_layers(model)]
        assert bias_correct(model, calib_batches(),
                            forward=lambda m, b: m(Tensor(b))) == {}
        assert saved == [layer.bias.data.tobytes()
                         for _, layer in quantized_layers(model)]

    def test_zero_quantization_error_keeps_bias_bits(self):
        """All-zero calibration: E_fp == E_q exactly, biases untouched."""
        model = tiny_mlp()
        batches = [np.zeros((4, 16), dtype=np.float32)]
        quantize_model(model, PTQConfig("FP(8,2)"), calib_batches(),
                       forward=lambda m, b: m(Tensor(b)))
        saved = [layer.bias.data.tobytes()
                 for _, layer in quantized_layers(model)]
        # zero inputs quantize to exactly zero in every layer, and a
        # layer's output on zero input is its bias verbatim -> corr == 0
        corrections = bias_correct(model, batches,
                                   forward=lambda m, b: m(Tensor(b)))
        assert all(np.all(c == 0.0) for c in corrections.values())
        assert saved == [layer.bias.data.tobytes()
                         for _, layer in quantized_layers(model)]

    def test_engine_bias_snapshot_refreshed(self):
        batches = calib_batches()
        model = tiny_mlp()
        quantize_model(model, PTQConfig("FP(8,2)", mode="engine"), batches,
                       forward=lambda m, b: m(Tensor(b)))
        bias_correct(model, batches, forward=lambda m, b: m(Tensor(b)))
        for _, layer in quantized_layers(model):
            np.testing.assert_array_equal(
                layer.engine_exec.bias,
                layer.bias.data.astype(np.float64))

    def test_empty_calibration_raises(self):
        model = tiny_mlp()
        quantize_model(model, PTQConfig("FP(8,2)"), calib_batches(),
                       forward=lambda m, b: m(Tensor(b)))
        with pytest.raises(ValueError, match="empty"):
            bias_correct(model, [], forward=lambda m, b: m(Tensor(b)))
