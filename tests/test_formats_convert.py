"""Cross-format conversion tables and double-rounding analysis."""

import numpy as np
import pytest

from repro.formats import get_format
from repro.formats.convert import conversion_error, conversion_table, convert_codes

FMT_PAIRS = [
    ("MERSIT(8,2)", "Posit(8,1)"),
    ("Posit(8,1)", "MERSIT(8,2)"),
    ("FP(8,4)", "MERSIT(8,2)"),
    ("INT8", "FP(8,4)"),
]


class TestConversionTable:
    @pytest.mark.parametrize("src,dst", FMT_PAIRS)
    def test_table_shape_and_range(self, src, dst):
        s, d = get_format(src), get_format(dst)
        table = conversion_table(s, d)
        assert table.shape == (256,)
        assert table.min() >= 0 and table.max() < 256

    @pytest.mark.parametrize("src,dst", FMT_PAIRS)
    def test_conversion_is_nearest_value(self, src, dst):
        s, d = get_format(src), get_format(dst)
        table = conversion_table(s, d)
        for code in range(0, 256, 3):
            v = s.values[code]
            if not np.isfinite(v):
                continue
            got = d.values[table[code]]
            clipped = np.clip(v, -d.max_value, d.max_value)
            best = float(d.quantize(np.array([v]))[0])
            assert abs(clipped - got) <= abs(clipped - best) + 1e-15

    def test_identity_conversion_preserves_values(self):
        fmt = get_format("MERSIT(8,2)")
        table = conversion_table(fmt, fmt)
        finite = [c for c in range(256) if np.isfinite(fmt.values[c])]
        for c in finite:
            assert fmt.values[table[c]] == fmt.values[c]

    def test_specials_handled(self):
        s, d = get_format("Posit(8,1)"), get_format("MERSIT(8,2)")
        table = conversion_table(s, d)
        # posit +inf code (0x7F) saturates to the max finite mersit value
        assert d.values[table[0x7F]] == d.max_value
        assert d.values[table[0x81]] == -d.max_value

    def test_convert_codes_applies_table(self):
        s, d = get_format("FP(8,4)"), get_format("MERSIT(8,2)")
        codes = np.array([0x00, 0x41, 0x80, 0xC1])
        out = convert_codes(codes, s, d)
        table = conversion_table(s, d)
        np.testing.assert_array_equal(out, table[codes])


class TestConversionError:
    def test_chained_at_least_direct(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=2000)
        err = conversion_error(x, get_format("INT8"), get_format("MERSIT(8,2)"))
        assert err["chained"] >= err["direct"] - 1e-12
        assert err["excess"] >= -1e-12

    def test_identity_chain_adds_nothing(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=500)
        fmt = get_format("MERSIT(8,2)")
        err = conversion_error(x, fmt, fmt)
        assert err["excess"] == pytest.approx(0.0, abs=1e-12)

    def test_similar_formats_lose_little(self):
        """Posit(8,1) -> MERSIT(8,2): overlapping high-precision bands."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=2000) * 0.5
        err = conversion_error(x, get_format("Posit(8,1)"), get_format("MERSIT(8,2)"))
        assert err["chained"] < 2.0 * err["direct"]
