"""Smoke test: benchmarks/bench_engine.py runs and emits valid JSON."""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_engine.py"


def test_bench_engine_fast_mode(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    proc = subprocess.run(
        [sys.executable, str(BENCH), "--fast", "--out", str(out)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert "host" in payload and payload["host"]["cpu_count"] >= 1
    assert payload["fuzz"]["total_mismatches"] == 0
    m = payload["matmul_64"]
    assert m["all_bit_exact"]
    assert m["min_speedup"] > 0
    assert "min speedup x" in proc.stdout
