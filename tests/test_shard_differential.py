"""The cross-process differential guarantee: sharded == serial, byte-for-byte.

Mixed model/format request streams are routed through a
:class:`~repro.serve.ShardRouter` at 1, 2 and 4 shards, under both PTQ
modes (float fakequant and true-quantized engine) and both kernel
backends (``lut`` and ``reference``), and every reply must be
**bit-identical** to serial single-sample inference in the router's own
process.

This is the composition proof for the whole sharding design: workers run
the same ``execute_batch`` data path (batched == serial is proven by
``tests/test_serve_differential.py``), attached shared-memory planes
round-trip scales and quantized weights exactly, decode LUTs are pure
functions of the format, and the caller's kernel backend travels with
each request.  If any link regresses — a misaligned shm view, a scale
that lost a bit in transit, a worker serving under the wrong backend —
these streams catch it as a byte diff.
"""

import numpy as np
import pytest

from repro.kernels.dispatch import use_backend
from repro.serve import BatchPolicy, HashRing, ShardRouter, micro_specs

pytestmark = pytest.mark.shard

MODELS = ["micro-mlp", "micro-cnn"]
FORMATS = ["MERSIT(8,2)", "INT8"]

#: preheated (published via shared memory); the rest calibrate in-worker
PREHEAT = [("micro-mlp", "MERSIT(8,2)"), ("micro-cnn", "INT8")]

POLICY = BatchPolicy(max_batch=4, max_wait_ms=2.0, queue_depth=64, workers=2)


def _stream(rng, n, models=MODELS, formats=FORMATS):
    """n seeded (model, format, inputs) requests from fixed request pools."""
    pools = {m: micro_specs()[m].requests(6, seed=17) for m in models}
    stream = []
    for _ in range(n):
        m = models[rng.integers(len(models))]
        f = formats[rng.integers(len(formats))]
        stream.append((m, f, pools[m][rng.integers(len(pools[m]))]))
    return stream


def _router(shards, mode, **kw):
    preheat = [(m, f, mode) for m, f in PREHEAT]
    kw.setdefault("policy", POLICY)
    kw.setdefault("calib_n", 8)
    return ShardRouter(shards=shards, specs="micro", preheat=preheat, **kw)


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("mode", ["fakequant", "engine"])
def test_sharded_streams_bit_identical_to_serial(shards, mode):
    """Both backends, one router per (shards, mode): sharded == serial."""
    with _router(shards, mode) as router:
        for backend in ("lut", "reference"):
            rng = np.random.default_rng(1000 * shards + len(backend))
            with use_backend(backend):
                stream = _stream(rng, 14)
                reference = [router.infer_serial(m, x, f, mode)
                             for m, f, x in stream]
                futures = [router.submit(m, x, f, mode)
                           for m, f, x in stream]
                results = [fut.result(120) for fut in futures]
            for i, (ref, got) in enumerate(zip(reference, results)):
                np.testing.assert_array_equal(
                    ref, got,
                    err_msg=f"request {i} ({stream[i][0]}|{stream[i][1]}|"
                            f"{mode}|{backend}|{shards} shards) diverged "
                            f"from serial inference")


def test_preheated_keys_attach_instead_of_recalibrating():
    """Every preheated key resolves from shared memory in every worker."""
    with _router(2, "fakequant") as router:
        spec = micro_specs()["micro-mlp"]
        xs = spec.requests(4, seed=3)
        for x in xs:
            ref = router.infer_serial("micro-mlp", x, "MERSIT(8,2)")
            np.testing.assert_array_equal(
                ref, router.infer("micro-mlp", x, "MERSIT(8,2)"))
        stats = router.stats()
        served = [e["stats"] for e in stats["per_shard"] if e["stats"]]
        assert served, "no shard answered the stats ask"
        attaches = sum(s["repository"]["shm_attaches"] for s in served)
        calibs = sum(s["repository"]["calibrations"] for s in served)
        assert attaches >= 1, "the preheated plane was never attached"
        assert calibs == 0, (
            f"workers recalibrated {calibs}x despite a published plane")


def test_non_preheated_key_calibrates_in_worker_and_matches_serial():
    """A cold key calibrates inside its worker, still bit-identical."""
    with _router(2, "engine") as router:
        spec = micro_specs()["micro-cnn"]
        x = spec.requests(1, seed=9)[0]
        # micro-cnn/MERSIT/engine is not in PREHEAT: worker-side calibration
        ref = router.infer_serial("micro-cnn", x, "MERSIT(8,2)", mode="engine")
        got = router.infer("micro-cnn", x, "MERSIT(8,2)", mode="engine",
                           timeout=120)
        np.testing.assert_array_equal(ref, got)
        served = [e["stats"] for e in router.stats()["per_shard"]
                  if e["stats"]]
        assert sum(s["repository"]["calibrations"] for s in served) >= 1


def test_hash_ring_is_deterministic_and_sticky():
    """Identical rings in every process; each key owned by one shard."""
    a, b = HashRing(4, vnodes=64), HashRing(4, vnodes=64)
    keys = [f"{m}|{f}|{mode}" for m in MODELS for f in FORMATS
            for mode in ("fakequant", "engine")]
    owners = {k: a.lookup(k) for k in keys}
    assert owners == {k: b.lookup(k) for k in keys}
    assert all(0 <= s < 4 for s in owners.values())
    # growing the ring remaps only arcs the new shard takes over
    grown = HashRing(5, vnodes=64)
    moved = [k for k in keys if grown.lookup(k) not in (owners[k], 4)]
    assert not moved, f"keys moved between surviving shards: {moved}"


def test_all_requests_for_one_key_land_on_one_shard():
    """Batching locality: a key's requests never spread across shards."""
    with _router(4, "fakequant") as router:
        spec = micro_specs()["micro-mlp"]
        xs = spec.requests(4, seed=5)
        futs = [router.submit("micro-mlp", x, "MERSIT(8,2)") for x in xs
                for _ in range(2)]
        for fut in futs:
            fut.result(120)
        served = [e["stats"]["metrics"]["completed"]
                  for e in router.stats()["per_shard"] if e["stats"]]
        assert sum(served) == len(futs)
        assert sum(1 for c in served if c) == 1, (
            f"one key spread over {sum(1 for c in served if c)} shards")


def test_replayed_stream_is_deterministic_across_router_rebuilds():
    """Same seeded stream, fresh router: byte-identical outputs."""
    def run_once():
        with _router(2, "fakequant") as router:
            stream = _stream(np.random.default_rng(77), 8)
            return [router.infer(m, x, f) for m, f, x in stream]

    for first, second in zip(run_once(), run_once()):
        np.testing.assert_array_equal(first, second)
