"""Experiment drivers: artifact plumbing and the paper-pinned fast checks."""

import json

import numpy as np
import pytest

from repro.experiments import common, fig2, fig4, table1


@pytest.fixture(autouse=True)
def isolated_artifacts(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
    yield tmp_path


class TestCommon:
    def test_save_load_roundtrip(self, isolated_artifacts):
        payload = {"a": [1, 2], "b": {"c": 3.5}}
        path = common.save_artifact("unit", payload)
        assert path.exists()
        assert common.load_artifact("unit") == payload

    def test_load_missing_returns_none(self):
        assert common.load_artifact("nope") is None

    def test_artifact_is_valid_json(self, isolated_artifacts):
        common.save_artifact("x", {"k": 1})
        with open(isolated_artifacts / "x.json") as f:
            assert json.load(f) == {"k": 1}

    def test_format_table_alignment(self):
        out = common.format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_format_table_floatfmt(self):
        out = common.format_table(["x"], [[1.23456]], floatfmt=".3f")
        assert "1.235" in out


class TestTable1:
    def test_matches_paper(self):
        result = table1.run()
        assert result["matches_paper"]
        assert result["row_count"] == 20
        assert result["mismatches"] == []

    def test_render_contains_status(self):
        assert "MATCHES PAPER" in table1.render()

    def test_artifact_written(self, isolated_artifacts):
        table1.run()
        assert (isolated_artifacts / "table1.json").exists()


class TestFig2:
    def test_all_rows_match(self):
        result = fig2.run()
        assert result["all_match"]
        for name, row in result["rows"].items():
            assert row["measured"] == row["paper"], name

    def test_render(self):
        out = fig2.render()
        assert "MATCHES PAPER" in out
        assert "45" in out  # Posit(8,1) W


class TestFig4:
    def test_profiles_cover_all_formats(self):
        result = fig4.run()
        assert set(result["profiles"]) == set(fig4.FIG4_FORMATS)

    def test_section32_claims(self):
        claims = fig4.run()["claims"]
        assert claims["mersit_band_wider"] is True
        assert claims["mersit82_4bit_band"] == [-3, 2]
        assert claims["posit81_4bit_band"] == [-2, 1]

    def test_section43_fraction_band_claim(self):
        """Paper 4.3: MERSIT fraction-bearing range 2^-6..2^5 vs 2^-8..2^7."""
        claims = fig4.run()["claims"]
        assert claims["mersit82_fraction_band"] == [-6, 5]
        assert claims["posit81_fraction_band"] == [-8, 7]

    def test_segments_are_sorted_and_disjoint(self):
        result = fig4.run()
        for name, prof in result["profiles"].items():
            segs = prof["segments"]
            for (a, b, _), (c, d, _) in zip(segs, segs[1:]):
                assert c > b, name


class TestRunnerDispatch:
    def test_unknown_experiment_rejected(self):
        from repro.experiments.runner import main
        assert main(["not_an_experiment"]) == 2

    def test_unknown_name_rejected_before_running_anything(self, capsys):
        from repro.experiments.runner import main
        assert main(["table1", "not_an_experiment"]) == 2
        out = capsys.readouterr().out
        assert "=====" not in out  # nothing rendered

    def test_unknown_name_beside_all_rejected(self, capsys):
        # regression: 'all' expansion used to swallow a typo'd name and
        # launch the full (slow) suite instead of erroring
        from repro.experiments.runner import main
        assert main(["all", "not_an_experiment"]) == 2
        out = capsys.readouterr().out
        assert "=====" not in out

    def test_fast_experiments_run(self, capsys):
        from repro.experiments.runner import main
        assert main(["table1", "fig2", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig4" in out

    def test_all_expands_to_every_experiment(self, capsys, monkeypatch):
        from repro.experiments import runner
        for name, mod in runner.EXPERIMENTS.items():
            monkeypatch.setattr(mod, "render", lambda name=name: f"<{name}>")
        assert runner.main(["all"]) == 0
        out = capsys.readouterr().out
        for name in runner.EXPERIMENTS:
            assert f"<{name}>" in out

    def test_jobs_flag_reaches_table2(self, capsys, monkeypatch):
        from repro.experiments import runner, table2
        seen = {}

        def fake_run(jobs=1):
            seen["jobs"] = jobs
            return {"grid": {}, "meta_key": "x"}

        monkeypatch.setattr(table2, "run", fake_run)
        monkeypatch.setattr(table2, "render", lambda result=None: "<table2>")
        assert runner.main(["table2", "--jobs", "3"]) == 0
        assert seen["jobs"] == 3
        assert "<table2>" in capsys.readouterr().out


def _fake_cell(name, fmt_name, eval_n, calib_n):
    # deterministic, cheap stand-in for a grid cell evaluation
    return float(len(name) * 10 + len(fmt_name) + eval_n / 100 + calib_n / 1000)


class TestTable2Parallel:
    def _run(self, jobs):
        from repro.experiments import table2
        return table2.run(models=["VGG16", "SST-2"],
                          formats=["INT8", "MERSIT(8,2)"],
                          eval_n=10, calib_n=5, refresh=True, jobs=jobs)

    def test_parallel_matches_serial_bit_identically(self, monkeypatch):
        from repro.experiments import table2
        monkeypatch.setattr(table2, "_eval_cell", _fake_cell)
        serial = self._run(jobs=1)
        parallel = self._run(jobs=2)
        assert serial == parallel
        # ordering (hence the serialized artifact) must also be identical
        assert list(serial["grid"]) == list(parallel["grid"])
        for model in serial["grid"]:
            assert list(serial["grid"][model]) == list(parallel["grid"][model])

    def test_parallel_artifact_readable(self, isolated_artifacts, monkeypatch):
        from repro.experiments import common, table2
        monkeypatch.setattr(table2, "_eval_cell", _fake_cell)
        result = self._run(jobs=2)
        assert common.load_artifact("table2") == result

    def test_incremental_cells_reused(self, monkeypatch):
        from repro.experiments import table2
        calls = []

        def counting_cell(name, fmt_name, eval_n, calib_n):
            calls.append((name, fmt_name))
            return _fake_cell(name, fmt_name, eval_n, calib_n)

        monkeypatch.setattr(table2, "_eval_cell", counting_cell)
        self._run(jobs=1)
        n_first = len(calls)
        table2.run(models=["VGG16", "SST-2"], formats=["INT8", "MERSIT(8,2)"],
                   eval_n=10, calib_n=5, jobs=1)  # no refresh: all cached
        assert len(calls) == n_first
