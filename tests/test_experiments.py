"""Experiment drivers: artifact plumbing and the paper-pinned fast checks."""

import json

import numpy as np
import pytest

from repro.experiments import common, fig2, fig4, table1


@pytest.fixture(autouse=True)
def isolated_artifacts(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
    yield tmp_path


class TestCommon:
    def test_save_load_roundtrip(self, isolated_artifacts):
        payload = {"a": [1, 2], "b": {"c": 3.5}}
        path = common.save_artifact("unit", payload)
        assert path.exists()
        assert common.load_artifact("unit") == payload

    def test_load_missing_returns_none(self):
        assert common.load_artifact("nope") is None

    def test_artifact_is_valid_json(self, isolated_artifacts):
        common.save_artifact("x", {"k": 1})
        with open(isolated_artifacts / "x.json") as f:
            blob = json.load(f)
        # artifacts are enveloped: schema version + payload checksum
        assert blob["payload"] == {"k": 1}
        meta = blob["__repro_artifact__"]
        assert meta["schema"] == 1
        assert isinstance(meta["checksum"], str) and len(meta["checksum"]) == 64

    def test_truncated_artifact_loads_as_none_with_warning(
            self, isolated_artifacts, capsys):
        # regression: a SIGKILL mid-save used to leave a truncated JSON
        # that made every later load_artifact raise JSONDecodeError
        common.save_artifact("trunc", {"grid": {"a": 1}})
        path = isolated_artifacts / "trunc.json"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        bak = isolated_artifacts / "trunc.json.bak"
        if bak.exists():
            bak.unlink()
        assert common.load_artifact("trunc") is None
        out = capsys.readouterr().out
        assert "corrupt" in out and "trunc.json" in out

    def test_truncated_artifact_recovers_from_bak(self, isolated_artifacts,
                                                  capsys):
        common.save_artifact("r", {"v": 1})
        common.save_artifact("r", {"v": 2})  # rotates v=1 to .bak
        path = isolated_artifacts / "r.json"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert common.load_artifact("r") == {"v": 1}
        assert "recovered" in capsys.readouterr().out

    def test_format_table_alignment(self):
        out = common.format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_format_table_floatfmt(self):
        out = common.format_table(["x"], [[1.23456]], floatfmt=".3f")
        assert "1.235" in out


class TestTable1:
    def test_matches_paper(self):
        result = table1.run()
        assert result["matches_paper"]
        assert result["row_count"] == 20
        assert result["mismatches"] == []

    def test_render_contains_status(self):
        assert "MATCHES PAPER" in table1.render()

    def test_artifact_written(self, isolated_artifacts):
        table1.run()
        assert (isolated_artifacts / "table1.json").exists()


class TestFig2:
    def test_all_rows_match(self):
        result = fig2.run()
        assert result["all_match"]
        for name, row in result["rows"].items():
            assert row["measured"] == row["paper"], name

    def test_render(self):
        out = fig2.render()
        assert "MATCHES PAPER" in out
        assert "45" in out  # Posit(8,1) W


class TestFig4:
    def test_profiles_cover_all_formats(self):
        result = fig4.run()
        assert set(result["profiles"]) == set(fig4.FIG4_FORMATS)

    def test_section32_claims(self):
        claims = fig4.run()["claims"]
        assert claims["mersit_band_wider"] is True
        assert claims["mersit82_4bit_band"] == [-3, 2]
        assert claims["posit81_4bit_band"] == [-2, 1]

    def test_section43_fraction_band_claim(self):
        """Paper 4.3: MERSIT fraction-bearing range 2^-6..2^5 vs 2^-8..2^7."""
        claims = fig4.run()["claims"]
        assert claims["mersit82_fraction_band"] == [-6, 5]
        assert claims["posit81_fraction_band"] == [-8, 7]

    def test_segments_are_sorted_and_disjoint(self):
        result = fig4.run()
        for name, prof in result["profiles"].items():
            segs = prof["segments"]
            for (a, b, _), (c, d, _) in zip(segs, segs[1:]):
                assert c > b, name


class TestRunnerDispatch:
    def test_unknown_experiment_rejected(self):
        from repro.experiments.runner import main
        assert main(["not_an_experiment"]) == 2

    def test_unknown_name_rejected_before_running_anything(self, capsys):
        from repro.experiments.runner import main
        assert main(["table1", "not_an_experiment"]) == 2
        out = capsys.readouterr().out
        assert "=====" not in out  # nothing rendered

    def test_unknown_name_beside_all_rejected(self, capsys):
        # regression: 'all' expansion used to swallow a typo'd name and
        # launch the full (slow) suite instead of erroring
        from repro.experiments.runner import main
        assert main(["all", "not_an_experiment"]) == 2
        out = capsys.readouterr().out
        assert "=====" not in out

    def test_fast_experiments_run(self, capsys):
        from repro.experiments.runner import main
        assert main(["table1", "fig2", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig4" in out

    def test_all_expands_to_every_experiment(self, capsys, monkeypatch):
        from repro.experiments import runner
        for name, mod in runner.EXPERIMENTS.items():
            monkeypatch.setattr(mod, "render",
                                lambda result=None, name=name: f"<{name}>")
        # the expensive grids are computed by the runner itself — stub the
        # run() calls so 'all' stays fast
        monkeypatch.setattr(runner.table2, "run", lambda **kw: {"grid": {}})
        monkeypatch.setattr(runner.engine_delta, "run", lambda **kw: {})
        assert runner.main(["all"]) == 0
        out = capsys.readouterr().out
        for name in runner.EXPERIMENTS:
            assert f"<{name}>" in out

    def test_jobs_flag_reaches_table2(self, capsys, monkeypatch):
        from repro.experiments import runner, table2
        seen = {}

        def fake_run(jobs=1, **kw):
            seen["jobs"] = jobs
            seen.update(kw)
            return {"grid": {}, "meta_key": "x"}

        monkeypatch.setattr(table2, "run", fake_run)
        monkeypatch.setattr(table2, "render", lambda result=None: "<table2>")
        assert runner.main(["table2", "--jobs", "3"]) == 0
        assert seen["jobs"] == 3
        assert "<table2>" in capsys.readouterr().out

    def test_resilience_flags_reach_table2(self, capsys, monkeypatch):
        from repro.experiments import runner, table2
        seen = {}

        def fake_run(**kw):
            seen.update(kw)
            return {"grid": {}, "meta_key": "x"}

        monkeypatch.setattr(table2, "run", fake_run)
        monkeypatch.setattr(table2, "render", lambda result=None: "<table2>")
        assert runner.main(["table2", "--cell-timeout", "2.5",
                            "--retries", "4"]) == 0
        assert seen["cell_timeout"] == 2.5
        assert seen["retries"] == 4

    def test_table2_render_without_artifact_does_not_run(self, capsys,
                                                         monkeypatch):
        from repro.experiments import table2
        # regression: render() with no artifact used to fall back to the
        # full (hours-long at paper settings) grid fill
        monkeypatch.setattr(table2, "run", lambda **kw: pytest.fail(
            "render() must not launch run()"))
        out = table2.render()
        assert "no artifact" in out and "experiments table2" in out

    def test_engine_delta_render_without_artifact_does_not_run(
            self, monkeypatch):
        from repro.experiments import engine_delta
        monkeypatch.setattr(engine_delta, "run", lambda **kw: pytest.fail(
            "render() must not launch run()"))
        out = engine_delta.render()
        assert "no artifact" in out and "engine_delta" in out


def _fake_cell(name, fmt_name, eval_n, calib_n):
    # deterministic, cheap stand-in for a grid cell evaluation
    return float(len(name) * 10 + len(fmt_name) + eval_n / 100 + calib_n / 1000)


class TestTable2Parallel:
    def _run(self, jobs):
        from repro.experiments import table2
        return table2.run(models=["VGG16", "SST-2"],
                          formats=["INT8", "MERSIT(8,2)"],
                          eval_n=10, calib_n=5, refresh=True, jobs=jobs)

    def test_parallel_matches_serial_bit_identically(self, monkeypatch):
        from repro.experiments import table2
        monkeypatch.setattr(table2, "_eval_cell", _fake_cell)
        serial = self._run(jobs=1)
        parallel = self._run(jobs=2)
        assert serial == parallel
        # ordering (hence the serialized artifact) must also be identical
        assert list(serial["grid"]) == list(parallel["grid"])
        for model in serial["grid"]:
            assert list(serial["grid"][model]) == list(parallel["grid"][model])

    def test_parallel_artifact_readable(self, isolated_artifacts, monkeypatch):
        from repro.experiments import common, table2
        monkeypatch.setattr(table2, "_eval_cell", _fake_cell)
        result = self._run(jobs=2)
        assert common.load_artifact("table2") == result

    def test_incremental_cells_reused(self, monkeypatch):
        from repro.experiments import table2
        calls = []

        def counting_cell(name, fmt_name, eval_n, calib_n):
            calls.append((name, fmt_name))
            return _fake_cell(name, fmt_name, eval_n, calib_n)

        monkeypatch.setattr(table2, "_eval_cell", counting_cell)
        self._run(jobs=1)
        n_first = len(calls)
        table2.run(models=["VGG16", "SST-2"], formats=["INT8", "MERSIT(8,2)"],
                   eval_n=10, calib_n=5, jobs=1)  # no refresh: all cached
        assert len(calls) == n_first

    def test_meta_key_change_keeps_old_grid_superseded(self, capsys,
                                                       monkeypatch):
        # regression: changing eval_n/calib_n used to silently wipe every
        # cached cell with no trace of what was discarded
        from repro.experiments import table2
        monkeypatch.setattr(table2, "_eval_cell", _fake_cell)
        old = table2.run(models=["VGG16"], formats=["INT8"],
                         eval_n=10, calib_n=5, refresh=True, jobs=1)
        capsys.readouterr()
        new = table2.run(models=["VGG16"], formats=["INT8"],
                         eval_n=20, calib_n=5, jobs=1)
        out = capsys.readouterr().out
        assert "meta_key changed" in out and "superseded" in out
        assert new["meta_key"] == "20/5"
        assert new["superseded"]["meta_key"] == "10/5"
        assert new["superseded"]["grid"] == old["grid"]
        # the new grid was recomputed at the new settings
        assert new["grid"]["VGG16"]["INT8"] != old["grid"]["VGG16"]["INT8"]
