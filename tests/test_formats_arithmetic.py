"""Exact format-space arithmetic, cross-checked against the gate-level MAC."""

from fractions import Fraction

import numpy as np
import pytest

from repro.formats import get_format
from repro.formats.arithmetic import dot, exact_value, fmt_add, fmt_mul


@pytest.fixture(scope="module")
def mersit():
    return get_format("MERSIT(8,2)")


class TestExactValue:
    def test_matches_float_decode(self, mersit):
        for code in range(256):
            d = mersit.decode(code)
            if d.is_finite:
                assert float(exact_value(mersit, code)) == d.value

    def test_specials_are_zero(self, mersit):
        assert exact_value(mersit, 0b01111111) == 0  # +inf code
        assert exact_value(mersit, 0b00111111) == 0  # zero code

    def test_is_exact_rational(self, mersit):
        v = exact_value(mersit, mersit.encode(0.1))
        assert isinstance(v, Fraction)
        # 0.1 is not dyadic, so the encoded value differs but is exact
        assert v.denominator & (v.denominator - 1) == 0  # power of two


class TestMulAdd:
    def test_mul_exact_when_representable(self, mersit):
        a = mersit.encode(2.0)
        b = mersit.encode(1.5)
        assert mersit.decode(fmt_mul(mersit, a, b)).value == 3.0

    def test_mul_rounds_to_nearest(self, mersit):
        rng = np.random.default_rng(0)
        for _ in range(100):
            a, b = rng.integers(0, 256, 2)
            exact = exact_value(mersit, int(a)) * exact_value(mersit, int(b))
            got = mersit.decode(fmt_mul(mersit, int(a), int(b))).value
            best = float(mersit.quantize(np.array([float(exact)]))[0])
            clipped = min(max(float(exact), -mersit.max_value), mersit.max_value)
            assert abs(clipped - got) <= abs(clipped - best) + 1e-15

    def test_add_commutative(self, mersit):
        rng = np.random.default_rng(1)
        for _ in range(50):
            a, b = (int(v) for v in rng.integers(0, 256, 2))
            assert fmt_add(mersit, a, b) == fmt_add(mersit, b, a)

    def test_add_identity(self, mersit):
        zero = 0b00111111
        for code in [mersit.encode(v) for v in (1.0, -2.5, 0.125)]:
            out = fmt_add(mersit, code, zero)
            assert mersit.decode(out).value == mersit.decode(code).value


class TestDot:
    def test_no_intermediate_rounding(self, mersit):
        """Kulisch-style: sum of cancelling terms is exact."""
        big = mersit.encode(128.0)
        neg_big = mersit.encode(-128.0)
        small = mersit.encode(0.125)
        one = mersit.encode(1.0)
        # 128*1 + (-128)*1 + 0.125*1: naive seq rounding could lose 0.125
        code, exact = dot(mersit, [big, neg_big, small], [one, one, one])
        assert float(exact) == 0.125
        assert mersit.decode(code).value == 0.125

    def test_matches_gate_level_mac(self, mersit):
        """The software quire equals the hardware Kulisch accumulator."""
        from repro.hardware import MacUnit
        rng = np.random.default_rng(2)
        w = rng.integers(0, 256, 40)
        a = rng.integers(0, 256, 40)
        _, exact = dot(mersit, w, a)
        mac = MacUnit(mersit)
        acc = mac.accumulate_hw(w, a)[-1]
        if acc >= 1 << (mac.acc_width - 1):
            acc -= 1 << mac.acc_width
        hw_value = Fraction(acc) * Fraction(2) ** mac.frac_lsb_exp
        assert hw_value == exact

    def test_shape_mismatch(self, mersit):
        with pytest.raises(ValueError):
            dot(mersit, [1, 2], [3])

    def test_dot_on_fp8_too(self):
        fmt = get_format("FP(8,4)")
        rng = np.random.default_rng(3)
        w = rng.integers(0, 256, 16)
        a = rng.integers(0, 256, 16)
        code, exact = dot(fmt, w, a)
        best = float(fmt.quantize(np.array([float(exact)]))[0])
        assert fmt.decode(code).value == pytest.approx(best)
