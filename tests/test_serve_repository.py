"""ModelRepository: calibrate-once memoization, crash-safe persistence,
and the cache-key regression (observer config + engine accumulator width
must invalidate persisted artifacts)."""

import json
import threading

import numpy as np
import pytest

from repro.engine import planes
from repro.serve import ModelLoadError, ModelRepository, micro_specs

pytestmark = pytest.mark.serve


def make_repo(tmp_path, **kw):
    kw.setdefault("calib_n", 8)
    return ModelRepository(micro_specs(), cache_dir=tmp_path / "cache", **kw)


def run_one(repo, model="micro-mlp", fmt="MERSIT(8,2)", mode="fakequant"):
    net, spec = repo.resolve(model, fmt, mode)
    x = spec.collate(spec.requests(3, seed=5))
    return spec.run(net, x)


def test_resolve_calibrates_once_per_key(tmp_path):
    repo = make_repo(tmp_path)
    net1, _ = repo.resolve("micro-mlp", "MERSIT(8,2)")
    net2, _ = repo.resolve("micro-mlp", "MERSIT(8,2)")
    assert net1 is net2
    assert repo.calibrations == 1
    repo.resolve("micro-mlp", "INT8")  # different format: its own entry
    assert repo.calibrations == 2


def test_concurrent_resolvers_share_one_calibration(tmp_path):
    repo = make_repo(tmp_path)
    results = []

    def resolver():
        results.append(repo.resolve("micro-cnn", "MERSIT(8,2)")[0])

    threads = [threading.Thread(target=resolver) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert repo.calibrations == 1
    assert all(r is results[0] for r in results)


@pytest.mark.parametrize("mode", ["fakequant", "engine"])
def test_artifact_restores_bit_identically_across_instances(tmp_path, mode):
    out1 = run_one(make_repo(tmp_path), mode=mode)
    repo2 = make_repo(tmp_path)
    out2 = run_one(repo2, mode=mode)
    assert repo2.calibrations == 0 and repo2.artifact_hits == 1
    np.testing.assert_array_equal(out1, out2)


def test_corrupt_artifact_falls_back_to_recalibration(tmp_path):
    repo1 = make_repo(tmp_path)
    out1 = run_one(repo1)
    path = repo1.artifact_path("micro-mlp", "MERSIT(8,2)")
    path.write_text("{ truncated garbage")
    bak = path.with_name(path.name + ".bak")
    if bak.exists():
        bak.unlink()
    repo2 = make_repo(tmp_path)
    out2 = run_one(repo2)
    assert repo2.calibrations == 1 and repo2.artifact_hits == 0
    np.testing.assert_array_equal(out1, out2)  # recalibration is deterministic


def test_unknown_model_is_a_structured_load_error(tmp_path):
    repo = make_repo(tmp_path)
    with pytest.raises(ModelLoadError) as ei:
        repo.resolve("no-such-model", "INT8")
    assert ei.value.to_entry()["error"]["kind"] == "model-load"


# ----------------------------------------------------------------------
# cache-key regression: every served-number knob must be in the key
# ----------------------------------------------------------------------

def test_cache_key_covers_observer_and_accumulator_width(tmp_path):
    repo = make_repo(tmp_path)
    base = repo.cache_key("micro-mlp", "MERSIT(8,2)", "engine")
    assert base["observer"] == "max"
    assert base["accumulator_block"] == planes.BLOCK
    assert make_repo(tmp_path, observer="percentile").cache_key(
        "micro-mlp", "MERSIT(8,2)", "engine") != base
    assert make_repo(tmp_path, gain_override=2.0).cache_key(
        "micro-mlp", "MERSIT(8,2)", "engine") != base
    assert make_repo(tmp_path, per_channel=False).cache_key(
        "micro-mlp", "MERSIT(8,2)", "engine") != base
    assert make_repo(tmp_path, calib_seed=1).cache_key(
        "micro-mlp", "MERSIT(8,2)", "engine") != base


def test_observer_change_does_not_reuse_artifact(tmp_path):
    make_repo(tmp_path).resolve("micro-mlp", "MERSIT(8,2)")
    repo2 = make_repo(tmp_path, observer="percentile")
    repo2.resolve("micro-mlp", "MERSIT(8,2)")
    assert repo2.calibrations == 1  # artifact ignored, not silently reused
    assert repo2.artifact_hits == 0


def test_accumulator_width_change_does_not_reuse_artifact(tmp_path, monkeypatch):
    make_repo(tmp_path).resolve("micro-mlp", "MERSIT(8,2)", "engine")
    # a rebuilt engine with a different Kulisch block width must not pick
    # up scales persisted under the old accumulator configuration
    monkeypatch.setattr(planes, "BLOCK", planes.BLOCK * 2)
    repo2 = make_repo(tmp_path)
    assert repo2.cache_key("micro-mlp", "MERSIT(8,2)",
                           "engine")["accumulator_block"] == planes.BLOCK
    repo2.resolve("micro-mlp", "MERSIT(8,2)", "engine")
    assert repo2.calibrations == 1
    assert repo2.artifact_hits == 0


def test_artifact_embeds_its_full_key(tmp_path):
    repo = make_repo(tmp_path)
    repo.resolve("micro-mlp", "INT8")
    blob = json.loads(repo.artifact_path("micro-mlp", "INT8").read_text())
    key = blob["payload"]["key"]
    for field in ("model", "weight_format", "mode", "calib_n", "calib_seed",
                  "observer", "per_channel", "gain_override",
                  "accumulator_block", "schema"):
        assert field in key
    assert blob["payload"]["scales"]  # per-layer scales present


# ----------------------------------------------------------------------
# mixed-precision specs through the repository
# ----------------------------------------------------------------------

def test_mixed_maps_differing_in_one_layer_get_distinct_keys(tmp_path):
    repo = make_repo(tmp_path)
    a = repo.cache_key("micro-mlp", "mixed(MERSIT(8,2);layer2=FP(8,2))",
                       "engine")
    b = repo.cache_key("micro-mlp", "mixed(MERSIT(8,2);layer2=FP(8,3))",
                       "engine")
    assert a != b
    assert a["layer_formats"] == {"layer2": "FP(8,2)"}
    # a uniform map canonicalises onto the plain-format key (and cache)
    u = repo.cache_key("micro-mlp", "mixed(MERSIT(8,2);layer2=MERSIT(8,2))",
                       "engine")
    assert u == repo.cache_key("micro-mlp", "MERSIT(8,2)", "engine")
    assert u["layer_formats"] is None


def test_mixed_spec_spellings_share_one_calibration(tmp_path):
    repo = make_repo(tmp_path)
    net1, _ = repo.resolve("micro-mlp", "mixed(MERSIT(8,2);layer2=FP(8,2))")
    net2, _ = repo.resolve("micro-mlp", "mixed(MERSIT(8,2);layer2=FP(8,2)) ")
    assert net1 is net2 and repo.calibrations == 1
    repo.resolve("micro-mlp", "mixed(MERSIT(8,2);layer2=FP(8,3))")
    assert repo.calibrations == 2


@pytest.mark.parametrize("mode", ["fakequant", "engine"])
def test_mixed_artifact_restores_per_layer_scales_bit_identically(
        tmp_path, mode):
    spec = "mixed(MERSIT(8,2);layer2=FP(8,2);layer4=FP(8,4))"
    repo1 = make_repo(tmp_path)
    out1 = run_one(repo1, fmt=spec, mode=mode)
    net1, _ = repo1.resolve("micro-mlp", spec, mode)

    repo2 = make_repo(tmp_path)
    out2 = run_one(repo2, fmt=spec, mode=mode)
    net2, _ = repo2.resolve("micro-mlp", spec, mode)
    assert repo2.calibrations == 0 and repo2.artifact_hits == 1

    from repro.quant import parse_format_spec, quantized_layers
    _, layer_formats = parse_format_spec(spec)
    fresh = dict(quantized_layers(net1))
    restored = dict(quantized_layers(net2))
    assert set(fresh) == set(restored)
    for name, layer in fresh.items():
        other = restored[name]
        expect = layer_formats.get(name, "MERSIT(8,2)")
        assert layer.weight_quant.fmt.name == expect
        assert other.weight_quant.fmt.name == expect
        assert (layer.weight_quant.scale.tobytes()
                == other.weight_quant.scale.tobytes())
        assert (np.asarray(layer.input_quant.scale).tobytes()
                == np.asarray(other.input_quant.scale).tobytes())
        if mode == "engine":
            assert other.engine_exec.wfmt.name == expect
    np.testing.assert_array_equal(out1, out2)


def test_unknown_layer_in_mixed_spec_is_a_structured_load_error(tmp_path):
    repo = make_repo(tmp_path)
    with pytest.raises(ModelLoadError):
        repo.resolve("micro-mlp", "mixed(MERSIT(8,2);nope=FP(8,2))")
