"""Zoo architectures: shapes, family traits, micro-trainability, registry."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.nn import Conv2d
from repro.zoo import (
    ALL_MODELS, GLUE_MODELS, MiniBERT, MiniEfficientNetB0, MiniEfficientNetV2,
    MiniMobileNetV2, MiniMobileNetV3, MiniVGG, TrainConfig, VISION_MODELS,
    resnet18_mini, resnet50_mini, resnet101_mini, train_vision,
)
from repro.zoo.blocks import InvertedResidual, SqueezeExcite
from repro.quant.ptq import quantized_layers

VISION_FACTORIES = {
    "vgg": lambda: MiniVGG(num_classes=7, width=8, image_size=16),
    "resnet18": lambda: resnet18_mini(7),
    "resnet50": lambda: resnet50_mini(7),
    "resnet101": lambda: resnet101_mini(7),
    "mobilenet_v2": lambda: MiniMobileNetV2(7, width=8),
    "mobilenet_v3": lambda: MiniMobileNetV3(7, width=8),
    "efficientnet_b0": lambda: MiniEfficientNetB0(7, width=8),
    "efficientnet_v2": lambda: MiniEfficientNetV2(7, width=8),
}


class TestForwardShapes:
    @pytest.mark.parametrize("name", list(VISION_FACTORIES))
    def test_logit_shape(self, name):
        model = VISION_FACTORIES[name]()
        size = 16 if name == "vgg" else 24
        x = np.random.default_rng(0).normal(size=(2, 3, size, size)).astype(np.float32)
        model.eval()
        assert model(x).shape == (2, 7)

    def test_bert_logit_shape(self):
        m = MiniBERT(vocab_size=32, seq_len=12, dim=16, num_heads=2,
                     num_layers=1, ffn_dim=32, num_labels=3)
        ids = np.random.default_rng(0).integers(0, 32, size=(4, 12))
        mask = np.ones((4, 12), dtype=np.float32)
        assert m(ids, mask).shape == (4, 3)


class TestFamilyTraits:
    """Architectural fingerprints that drive the paper's Table 2 ordering."""

    def _has_depthwise(self, model):
        return any(isinstance(m, Conv2d) and m.groups > 1 for m in model.modules())

    def _has_se(self, model):
        return any(isinstance(m, SqueezeExcite) for m in model.modules())

    def test_plain_families_have_no_depthwise(self):
        assert not self._has_depthwise(VISION_FACTORIES["vgg"]())
        assert not self._has_depthwise(VISION_FACTORIES["resnet50"]())

    def test_mobile_families_have_depthwise(self):
        for name in ("mobilenet_v2", "mobilenet_v3", "efficientnet_b0"):
            assert self._has_depthwise(VISION_FACTORIES[name]())

    def test_se_only_in_v3_and_efficientnet(self):
        assert not self._has_se(VISION_FACTORIES["mobilenet_v2"]())
        assert self._has_se(VISION_FACTORIES["mobilenet_v3"]())
        assert self._has_se(VISION_FACTORIES["efficientnet_b0"]())

    def test_efficientnet_v2_mixes_fused_and_mbconv(self):
        from repro.zoo.blocks import FusedMBConv, MBConv
        model = VISION_FACTORIES["efficientnet_v2"]()
        kinds = {type(m) for m in model.modules()}
        assert FusedMBConv in kinds and MBConv in kinds

    def test_resnet_depth_ordering(self):
        p18 = resnet18_mini(7).num_parameters()
        p50 = resnet50_mini(7).num_parameters()
        p101 = resnet101_mini(7).num_parameters()
        assert p101 > p50

    def test_inverted_residual_uses_skip_only_when_shapes_match(self):
        with_skip = InvertedResidual(8, 8, stride=1)
        without = InvertedResidual(8, 16, stride=2)
        assert with_skip.use_res and not without.use_res

    def test_all_models_have_quantizable_layers(self):
        for name, factory in VISION_FACTORIES.items():
            layers = quantized_layers(factory())
            assert len(layers) >= 5, name


class TestMicroTraining:
    def test_vgg_loss_decreases_on_tiny_task(self):
        from repro.data import SynthImageNet
        ds = SynthImageNet(num_classes=3, image_size=16, seed=1)
        model = MiniVGG(num_classes=3, width=8, image_size=16)
        losses = train_vision(model, ds.train_split(96),
                              TrainConfig(epochs=4, batch_size=32, lr=3e-3))
        assert losses[-1] < losses[0] * 0.8

    def test_bert_learns_trivial_rule(self):
        """One-token lookup task: loss must collapse quickly."""
        rng = np.random.default_rng(0)
        from repro.nn import Adam
        m = MiniBERT(vocab_size=16, seq_len=6, dim=16, num_heads=2,
                     num_layers=1, ffn_dim=32, num_labels=2)
        ids = rng.integers(4, 16, size=(128, 6))
        labels = (ids[:, 1] % 2).astype(np.int64)
        mask = np.ones((128, 6), dtype=np.float32)
        opt = Adam(m.parameters(), lr=3e-3)
        first = last = None
        for step in range(30):
            loss = F.cross_entropy(m(ids, mask), labels)
            opt.zero_grad()
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
            last = loss.item()
        assert last < first * 0.5


class TestRegistry:
    def test_twelve_rows(self):
        assert len(ALL_MODELS) == 12
        assert len(VISION_MODELS) == 8
        assert len(GLUE_MODELS) == 4

    def test_metrics_per_row(self):
        assert ALL_MODELS["CoLA"].metric == "matthews"
        assert ALL_MODELS["MRPC"].metric == "f1"
        assert ALL_MODELS["VGG16"].metric == "accuracy"

    def test_unknown_model_raises(self):
        from repro.zoo import pretrained
        with pytest.raises(KeyError):
            pretrained("AlexNet")

    def test_pretrained_cache_roundtrip(self, tmp_path, monkeypatch):
        """Train a micro entry once, reload it identically from cache."""
        import repro.zoo.registry as reg
        monkeypatch.setenv("REPRO_ZOO_CACHE", str(tmp_path))
        micro = reg.ZooEntry(
            "micro", "vision",
            lambda: MiniVGG(num_classes=reg.NUM_CLASSES, width=4,
                            image_size=reg.IMAGE_SIZE, seed=0),
            train_cfg=TrainConfig(epochs=1, batch_size=64, lr=1e-3))
        monkeypatch.setitem(reg.ALL_MODELS, "micro", micro)
        monkeypatch.setattr(reg, "TRAIN_N", 64)
        m1, s1 = reg.pretrained("micro")
        m2, s2 = reg.pretrained("micro")
        assert s1 == s2
        assert (tmp_path / "micro.npz").exists()
        x = np.random.default_rng(0).normal(
            size=(2, 3, reg.IMAGE_SIZE, reg.IMAGE_SIZE)).astype(np.float32)
        np.testing.assert_allclose(m1(x).data, m2(x).data, atol=1e-6)
