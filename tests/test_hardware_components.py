"""Gate-level component correctness: exhaustive/randomised vs integer arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.components import (
    array_multiplier, barrel_shifter_left, equals_const, incrementer, mux_bus,
    priority_encoder_first_one, ripple_adder, ripple_addsub, sign_extend,
    twos_complement_negate,
)
from repro.hardware.netlist import Bus, Circuit


def int_to_bits(value: int, width: int) -> list[int]:
    return [(value >> i) & 1 for i in range(width)]


def stimulus_from_ints(values: list[tuple[int, ...]], widths: list[int]) -> np.ndarray:
    rows = []
    for tup in values:
        bits: list[int] = []
        for v, w in zip(tup, widths):
            bits.extend(int_to_bits(v, w))
        rows.append(bits)
    return np.array(rows, dtype=bool)


class TestRippleAdder:
    def test_exhaustive_4bit(self):
        c = Circuit()
        a = c.input_bus(4)
        b = c.input_bus(4)
        s, cout = ripple_adder(c, a, b)
        c.set_output("sum", s)
        c.set_output("cout", cout)
        pairs = [(x, y) for x in range(16) for y in range(16)]
        sim = c.simulate(stimulus_from_ints(pairs, [4, 4]))
        expect = np.array([x + y for x, y in pairs])
        got = sim["outputs"]["sum"] + (sim["outputs"]["cout"] << 4)
        np.testing.assert_array_equal(got, expect)

    def test_addsub_exhaustive_4bit(self):
        c = Circuit()
        a = c.input_bus(4)
        b = c.input_bus(4)
        sub = c.input_bus(1)
        s, _ = ripple_addsub(c, a, b, sub[0])
        c.set_output("r", s)
        cases = [(x, y, m) for x in range(16) for y in range(16) for m in (0, 1)]
        sim = c.simulate(stimulus_from_ints(cases, [4, 4, 1]))
        expect = np.array([(x - y if m else x + y) % 16 for x, y, m in cases])
        np.testing.assert_array_equal(sim["outputs"]["r"], expect)

    def test_width_mismatch_raises(self):
        c = Circuit()
        with pytest.raises(ValueError):
            ripple_adder(c, c.input_bus(4), c.input_bus(3))


class TestNegateIncrement:
    def test_negate_exhaustive_5bit(self):
        c = Circuit()
        a = c.input_bus(5)
        c.set_output("neg", twos_complement_negate(c, a))
        vals = [(x,) for x in range(32)]
        sim = c.simulate(stimulus_from_ints(vals, [5]))
        expect = np.array([(-x) % 32 for (x,) in vals])
        np.testing.assert_array_equal(sim["outputs"]["neg"], expect)

    def test_incrementer(self):
        c = Circuit()
        a = c.input_bus(6)
        c.set_output("inc", incrementer(c, a))
        vals = [(x,) for x in range(64)]
        sim = c.simulate(stimulus_from_ints(vals, [6]))
        np.testing.assert_array_equal(sim["outputs"]["inc"],
                                      [(x + 1) % 64 for (x,) in vals])


class TestMultiplier:
    @pytest.mark.parametrize("n,m", [(3, 3), (4, 4), (5, 5), (4, 6)])
    def test_exhaustive(self, n, m):
        c = Circuit()
        a = c.input_bus(n)
        b = c.input_bus(m)
        c.set_output("p", array_multiplier(c, a, b))
        cases = [(x, y) for x in range(1 << n) for y in range(1 << m)]
        sim = c.simulate(stimulus_from_ints(cases, [n, m]))
        np.testing.assert_array_equal(sim["outputs"]["p"],
                                      [x * y for x, y in cases])


class TestBarrelShifter:
    def test_shift_left_8bit(self):
        c = Circuit()
        a = c.input_bus(8)
        sh = c.input_bus(3)
        c.set_output("r", barrel_shifter_left(c, a, sh))
        cases = [(x, s) for x in (0x01, 0x5A, 0xFF, 0x80) for s in range(8)]
        sim = c.simulate(stimulus_from_ints(cases, [8, 3]))
        np.testing.assert_array_equal(sim["outputs"]["r"],
                                      [(x << s) & 0xFF for x, s in cases])


class TestPriorityEncoder:
    @pytest.mark.parametrize("n", [2, 3, 6, 7])
    def test_exhaustive(self, n):
        c = Circuit()
        bits = c.input_bus(n)
        idx, valid = priority_encoder_first_one(c, list(bits))
        c.set_output("idx", idx)
        c.set_output("valid", valid)
        cases = [(x,) for x in range(1 << n)]
        sim = c.simulate(stimulus_from_ints(cases, [n]))
        for (x,), got_idx, got_valid in zip(cases, sim["outputs"]["idx"],
                                            sim["outputs"]["valid"]):
            if x == 0:
                assert got_valid == 0
            else:
                first = (x & -x).bit_length() - 1
                assert got_valid == 1 and got_idx == first


class TestSmallHelpers:
    def test_equals_const(self):
        c = Circuit()
        a = c.input_bus(4)
        c.set_output("eq", Bus([equals_const(c, a, 0b1010)]))
        sim = c.simulate(stimulus_from_ints([(x,) for x in range(16)], [4]))
        np.testing.assert_array_equal(sim["outputs"]["eq"],
                                      [int(x == 0b1010) for x in range(16)])

    def test_mux_bus(self):
        c = Circuit()
        a = c.input_bus(4)
        b = c.input_bus(4)
        s = c.input_bus(1)
        c.set_output("r", mux_bus(c, a, b, s[0]))
        cases = [(3, 12, 0), (3, 12, 1), (15, 0, 0), (15, 0, 1)]
        sim = c.simulate(stimulus_from_ints(cases, [4, 4, 1]))
        np.testing.assert_array_equal(sim["outputs"]["r"], [3, 12, 15, 0])

    def test_sign_extend(self):
        c = Circuit()
        a = c.input_bus(3)
        c.set_output("r", sign_extend(c, a, 6))
        sim = c.simulate(stimulus_from_ints([(x,) for x in range(8)], [3]))
        expect = [x if x < 4 else x | 0b111000 for x in range(8)]
        np.testing.assert_array_equal(sim["outputs"]["r"], expect)


class TestCircuitInfrastructure:
    def test_area_report_groups(self):
        c = Circuit()
        a = c.input_bus(2)
        with c.group("left"):
            x = c.and2(a[0], a[1])
        with c.group("right"):
            y = c.xor2(a[0], a[1])
        c.set_output("x", Bus([x]))
        c.set_output("y", Bus([y]))
        rep = c.area()
        assert set(rep.by_group) == {"left", "right"}
        assert rep.by_group["left"] == pytest.approx(1.064)
        assert rep.by_group["right"] == pytest.approx(1.596)
        assert rep.total == pytest.approx(1.064 + 1.596)
        assert rep.gate_count == 2

    def test_power_counts_toggles(self):
        c = Circuit()
        a = c.input_bus(1)
        c.set_output("q", Bus([c.inv(a[0])]))
        toggling = np.array([[0], [1], [0], [1]], dtype=bool)
        quiet = np.zeros((4, 1), dtype=bool)
        p_hot = c.power(toggling)
        p_cold = c.power(quiet)
        assert p_hot.dynamic > p_cold.dynamic
        assert p_cold.dynamic == 0.0
        assert p_hot.leakage == p_cold.leakage > 0

    def test_power_needs_two_vectors(self):
        c = Circuit()
        a = c.input_bus(1)
        c.set_output("q", Bus([c.inv(a[0])]))
        with pytest.raises(ValueError):
            c.power(np.zeros((1, 1), dtype=bool))

    def test_bad_stimulus_shape(self):
        c = Circuit()
        c.input_bus(3)
        with pytest.raises(ValueError):
            c.simulate(np.zeros((4, 2), dtype=bool))

    @given(x=st.integers(0, 255), y=st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_adder_8bit_hypothesis(self, x, y):
        c = Circuit()
        a = c.input_bus(8)
        b = c.input_bus(8)
        s, cout = ripple_adder(c, a, b)
        c.set_output("s", s)
        c.set_output("c", cout)
        sim = c.simulate(stimulus_from_ints([(x, y), (x, y)], [8, 8]))
        assert int(sim["outputs"]["s"][0] + (sim["outputs"]["c"][0] << 8)) == x + y
